// Overload governance (docs/GOVERNANCE.md): search budgets, the per-pattern
// circuit breaker, byte-capped histories, callback containment, and worker
// supervision.  The through-line of every test is the degradation contract:
// governance may drop *work* (searches, matches, history), never
// *correctness* — whatever is still reported is a subset of the unbudgeted
// run, other patterns are unaffected, and every loss is counted in the
// health report.  Determinism is the second contract: the breaker clock is
// the observe count, so identical inputs and budgets produce identical
// match sets and health across worker counts.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/governor.h"
#include "core/monitor.h"
#include "random_computation.h"
#include "testing/chaos_harness.h"

namespace ocep {
namespace {

/// A cheap two-leaf precedence pattern (the well-behaved tenant).
constexpr const char* kBenign =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

/// The adversarial tenant.  Every leaf reference instantiates a fresh
/// leaf, so this compiles to six independent concurrent pairs — twelve
/// same-type backtracking levels with no precedence edge to prune on, the
/// worst case for the search.
constexpr const char* kHostile = R"(
    E1 := ['', A, '']; E2 := ['', A, ''];
    E3 := ['', A, '']; E4 := ['', A, ''];
    pattern := (E1 || E2) && (E1 || E3) && (E1 || E4) &&
               (E2 || E3) && (E2 || E4) && (E3 || E4);
)";

EventStore make_store(StringPool& pool, std::uint32_t events = 600,
                      std::uint64_t seed = 1, std::uint32_t traces = 8) {
  testing::RandomComputationOptions options;
  options.traces = traces;
  options.events = events;
  options.seed = seed;
  return testing::random_computation(pool, options);
}

std::vector<Symbol> trace_names(const EventStore& store) {
  std::vector<Symbol> names;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    names.push_back(store.trace_name(t));
  }
  return names;
}

void feed_all(Monitor& monitor, const EventStore& store) {
  monitor.on_traces(trace_names(store));
  for (std::uint64_t pos = 0; pos < store.event_count(); ++pos) {
    const EventId id = store.arrival(pos);
    monitor.on_event(store.event(id), store.clock(id));
  }
  monitor.drain();
}

// ---------------------------------------------------------------------------
// PatternGovernor state machine.

TEST(Governor, TripsAfterKBlownBudgetsInsideTheWindow) {
  PatternGovernor governor;
  SearchBudget budget;
  budget.max_steps = 10;
  BreakerConfig breaker;
  breaker.trip_failures = 3;
  breaker.window_observes = 100;
  breaker.cooldown_observes = 5;
  governor.configure(budget, breaker);

  SearchBudget effective;
  for (std::uint64_t i = 1; i <= 2; ++i) {
    ASSERT_TRUE(governor.admit(i, effective));
    EXPECT_EQ(effective.max_steps, 10U);
    governor.on_search_result(i, true);
    EXPECT_EQ(governor.state(), BreakerState::kClosed);
  }
  ASSERT_TRUE(governor.admit(3, effective));
  governor.on_search_result(3, true);  // third blow: trip
  EXPECT_EQ(governor.state(), BreakerState::kOpen);
  EXPECT_EQ(governor.trips(), 1U);

  // Open: observes are shed until the cooldown elapses.
  EXPECT_FALSE(governor.admit(4, effective));
  EXPECT_FALSE(governor.admit(7, effective));
  // Cooldown over: half-open probe with the reduced budget.
  ASSERT_TRUE(governor.admit(8, effective));
  EXPECT_EQ(governor.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(effective.max_steps, 5U);
  EXPECT_EQ(governor.probes(), 1U);

  // Probe succeeds: closed again, with a clean failure window.
  governor.on_search_result(8, false);
  EXPECT_EQ(governor.state(), BreakerState::kClosed);
  ASSERT_TRUE(governor.admit(9, effective));
  EXPECT_EQ(effective.max_steps, 10U);
  governor.on_search_result(9, true);
  EXPECT_EQ(governor.state(), BreakerState::kClosed)
      << "the pre-trip failures must not count after a successful probe";
}

TEST(Governor, FailuresOutsideTheRollingWindowDoNotCount) {
  PatternGovernor governor;
  SearchBudget budget;
  budget.max_steps = 1;
  BreakerConfig breaker;
  breaker.trip_failures = 2;
  breaker.window_observes = 10;
  governor.configure(budget, breaker);

  SearchBudget effective;
  ASSERT_TRUE(governor.admit(1, effective));
  governor.on_search_result(1, true);
  // The second blow lands 11 observes later: the first has expired.
  ASSERT_TRUE(governor.admit(12, effective));
  governor.on_search_result(12, true);
  EXPECT_EQ(governor.state(), BreakerState::kClosed);
  // A third inside the window of the second trips.
  ASSERT_TRUE(governor.admit(13, effective));
  governor.on_search_result(13, true);
  EXPECT_EQ(governor.state(), BreakerState::kOpen);
}

TEST(Governor, FailedProbeReopensTheBreaker) {
  PatternGovernor governor;
  SearchBudget budget;
  budget.max_steps = 8;
  BreakerConfig breaker;
  breaker.trip_failures = 1;
  breaker.cooldown_observes = 4;
  governor.configure(budget, breaker);

  SearchBudget effective;
  ASSERT_TRUE(governor.admit(1, effective));
  governor.on_search_result(1, true);
  EXPECT_EQ(governor.state(), BreakerState::kOpen);
  ASSERT_TRUE(governor.admit(5, effective));  // half-open probe
  governor.on_search_result(5, true);         // probe blows too
  EXPECT_EQ(governor.state(), BreakerState::kOpen);
  EXPECT_EQ(governor.trips(), 2U);
  // The cooldown restarts from the failed probe.
  EXPECT_FALSE(governor.admit(6, effective));
  EXPECT_TRUE(governor.admit(9, effective));
}

TEST(Governor, QuarantineIsTerminal) {
  PatternGovernor governor;
  governor.configure(SearchBudget{}, BreakerConfig{});
  governor.quarantine("callback exploded");
  EXPECT_EQ(governor.state(), BreakerState::kQuarantined);
  EXPECT_EQ(governor.last_error(), "callback exploded");
  SearchBudget effective;
  for (std::uint64_t i = 1; i < 100000; i *= 3) {
    EXPECT_FALSE(governor.admit(i, effective));
  }
}

TEST(Governor, CheckpointRoundTripsTheDynamicState) {
  PatternGovernor governor;
  SearchBudget budget;
  budget.max_steps = 4;
  BreakerConfig breaker;
  breaker.trip_failures = 2;
  breaker.cooldown_observes = 50;
  governor.configure(budget, breaker);
  SearchBudget effective;
  ASSERT_TRUE(governor.admit(1, effective));
  governor.on_search_result(1, true);
  ASSERT_TRUE(governor.admit(2, effective));
  governor.on_search_result(2, true);  // trip at observe 2
  ASSERT_EQ(governor.state(), BreakerState::kOpen);

  std::ostringstream out;
  governor.checkpoint(out);
  PatternGovernor restored;
  restored.configure(budget, breaker);
  std::istringstream in(out.str());
  restored.restore(in);
  EXPECT_EQ(restored.state(), BreakerState::kOpen);
  EXPECT_EQ(restored.trips(), 1U);
  // Same cooldown clock: still shedding at 51, probing at 52.
  EXPECT_FALSE(restored.admit(51, effective));
  EXPECT_TRUE(restored.admit(52, effective));
}

// ---------------------------------------------------------------------------
// Budgeted matching: drops work, never correctness.

TEST(Governance, BudgetedMatchesStayGenuineAndMatchingContinues) {
  StringPool pool;
  const EventStore store = make_store(pool);

  MatcherConfig tight;
  tight.budget.max_steps = 32;
  Monitor budgeted(pool, store.storage());
  budgeted.add_pattern(kHostile, tight);
  feed_all(budgeted, store);

  const MatcherStats& stats = budgeted.matcher(0).stats();
  EXPECT_GT(stats.searches_aborted, 0U) << "the budget never engaged — the "
                                           "workload is not adversarial";
  EXPECT_LT(stats.searches_aborted, stats.searches)
      << "some searches must still complete";
  EXPECT_GT(stats.matches_reported, 0U)
      << "aborted searches must not wedge the matcher";
  // Aborting mid-search may drop matches and shift which representative
  // the coverage pins retain, but everything that *is* reported must be a
  // genuine match: each constrained pair (2i, 2i+1) genuinely concurrent.
  ASSERT_FALSE(budgeted.matcher(0).subset().matches().empty());
  for (const Match& match : budgeted.matcher(0).subset().matches()) {
    ASSERT_EQ(match.bindings.size() % 2, 0U);
    for (std::size_t pair = 0; pair + 1 < match.bindings.size(); pair += 2) {
      EXPECT_EQ(store.relate(match.bindings[pair], match.bindings[pair + 1]),
                Relation::kConcurrent);
    }
  }
  EXPECT_TRUE(budgeted.health().degraded());
}

TEST(Governance, DefaultAndExplicitUnlimitedBudgetsAreByteIdentical) {
  StringPool pool;
  const EventStore store = make_store(pool, 400, 5);

  const auto checkpoint_of = [&](const MatcherConfig& config) {
    Monitor monitor(pool, store.storage());
    monitor.add_pattern(kHostile, config);
    feed_all(monitor, store);
    std::ostringstream out;
    monitor.checkpoint(out);
    return out.str();
  };

  MatcherConfig explicit_unlimited;
  explicit_unlimited.budget.max_steps = 0;
  explicit_unlimited.budget.deadline_ns = 0;
  explicit_unlimited.breaker.trip_failures = 0;
  EXPECT_EQ(checkpoint_of(MatcherConfig{}),
            checkpoint_of(explicit_unlimited))
      << "governance at its defaults must be bit-for-bit invisible";
}

/// The acceptance scenario: a hostile pattern trips its breaker while the
/// benign tenant's match set stays bit-identical to a solo run — in both
/// synchronous and pipelined modes.
void check_isolation(std::size_t worker_threads) {
  StringPool pool;
  const EventStore store = make_store(pool, 800, 3);

  Monitor solo(pool, store.storage());
  solo.add_pattern(kBenign);
  feed_all(solo, store);
  const std::vector<std::string> expected =
      testing::match_signature(solo, 0);

  MonitorConfig mode;
  mode.worker_threads = worker_threads;
  mode.batch_size = 16;
  MatcherConfig tight;
  tight.budget.max_steps = 16;
  tight.breaker.trip_failures = 3;
  tight.breaker.window_observes = 64;
  tight.breaker.cooldown_observes = 32;
  Monitor shared(pool, mode, store.storage());
  shared.add_pattern(kBenign);
  shared.add_pattern(kHostile, tight);
  feed_all(shared, store);

  EXPECT_EQ(testing::match_signature(shared, 0), expected)
      << "the hostile tenant leaked into the benign pattern's results";
  const HealthReport health = shared.health();
  ASSERT_EQ(health.patterns.size(), 2U);
  EXPECT_EQ(health.patterns[0].state, BreakerState::kClosed);
  EXPECT_EQ(health.patterns[0].searches_aborted, 0U);
  EXPECT_GT(health.patterns[1].breaker_trips, 0U);
  EXPECT_GT(health.patterns[1].observes_shed, 0U);
  EXPECT_TRUE(health.degraded());
}

TEST(Governance, HostilePatternCannotStarveItsNeighborSynchronous) {
  check_isolation(0);
}

TEST(Governance, HostilePatternCannotStarveItsNeighborPipelined) {
  check_isolation(2);
}

TEST(Governance, MatchSetsAndHealthAreIdenticalAcrossWorkerCounts) {
  StringPool pool;
  const EventStore store = make_store(pool, 700, 11);
  MatcherConfig tight;
  tight.budget.max_steps = 24;
  tight.breaker.trip_failures = 2;
  tight.breaker.window_observes = 128;
  tight.breaker.cooldown_observes = 64;

  std::vector<std::vector<std::string>> hostile_matches;
  std::vector<std::vector<std::string>> benign_matches;
  std::vector<std::vector<PatternHealth>> healths;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    MonitorConfig mode;
    mode.worker_threads = workers;
    mode.batch_size = 8;
    Monitor monitor(pool, mode, store.storage());
    monitor.add_pattern(kHostile, tight);
    monitor.add_pattern(kBenign);
    feed_all(monitor, store);
    hostile_matches.push_back(testing::match_signature(monitor, 0));
    benign_matches.push_back(testing::match_signature(monitor, 1));
    healths.push_back(monitor.health().patterns);
  }
  EXPECT_GT(healths[0][0].breaker_trips, 0U)
      << "the breaker never engaged — the comparison is vacuous";
  EXPECT_EQ(hostile_matches[0], hostile_matches[1]);
  EXPECT_EQ(benign_matches[0], benign_matches[1]);
  // The per-pattern section is deterministic; the worker section is
  // process-local (heartbeats, shard layout) and deliberately excluded.
  EXPECT_EQ(healths[0], healths[1]);
}

// ---------------------------------------------------------------------------
// History byte cap.

TEST(Governance, ByteCapBoundsHistoryAndCountsEvictions) {
  StringPool pool;
  const EventStore store = make_store(pool, 1200, 17);

  Monitor unbounded(pool, store.storage());
  unbounded.add_pattern(kBenign);
  feed_all(unbounded, store);
  const std::vector<std::string> full =
      testing::match_signature(unbounded, 0);
  const std::size_t full_bytes = unbounded.matcher(0).history_bytes();
  ASSERT_GT(full_bytes, 4096U) << "workload too small to exercise the cap";

  MatcherConfig capped;
  capped.history_bytes_limit = 4096;
  Monitor bounded(pool, store.storage());
  bounded.add_pattern(kBenign, capped);
  feed_all(bounded, store);

  EXPECT_LE(bounded.matcher(0).history_bytes(), capped.history_bytes_limit);
  const PatternHealth health = bounded.matcher(0).health();
  EXPECT_GT(health.history_evicted, 0U);
  EXPECT_EQ(health.history_bytes, bounded.matcher(0).history_bytes());
  EXPECT_TRUE(testing::is_subset_of(testing::match_signature(bounded, 0),
                                    full))
      << "eviction may lose matches, never invent them";
}

// ---------------------------------------------------------------------------
// Callback containment and worker supervision.

TEST(Governance, ThrowingCallbackIsContainedSynchronously) {
  StringPool pool;
  const EventStore store = make_store(pool, 400, 23);
  std::uint64_t calls = 0;
  Monitor monitor(pool, store.storage());
  monitor.add_pattern(kBenign, MatcherConfig{},
                      [&calls](const Match&, bool) {
                        ++calls;
                        throw std::runtime_error("sink on fire");
                      });
  // The legacy behaviour propagated mid-search; containment must both
  // swallow the exception and keep the matcher running.
  EXPECT_NO_THROW(feed_all(monitor, store));
  const MatcherStats& stats = monitor.matcher(0).stats();
  EXPECT_GT(calls, 1U) << "matching must continue past the first throw";
  EXPECT_EQ(stats.callback_errors, calls);
  const HealthReport health = monitor.health();
  EXPECT_TRUE(health.degraded());
  EXPECT_NE(health.patterns[0].last_error.find("sink on fire"),
            std::string::npos);
}

TEST(Governance, EscapedCallbackQuarantinesPatternAndRespawnsWorker) {
  StringPool pool;
  const EventStore store = make_store(pool, 500, 29);

  Monitor solo(pool, store.storage());
  solo.add_pattern(kBenign);
  feed_all(solo, store);
  const std::vector<std::string> expected =
      testing::match_signature(solo, 0);

  MonitorConfig mode;
  mode.worker_threads = 2;
  mode.batch_size = 16;
  MatcherConfig legacy;  // propagate: the exception escapes observe()
  legacy.contain_callback_errors = false;
  Monitor monitor(pool, mode, store.storage());
  monitor.add_pattern(kBenign);
  monitor.add_pattern(kBenign, legacy, [](const Match&, bool) {
    throw std::runtime_error("poisoned sink");
  });
  feed_all(monitor, store);  // must not hang or kill the process

  const HealthReport health = monitor.health();
  ASSERT_EQ(health.patterns.size(), 2U);
  EXPECT_EQ(health.patterns[0].state, BreakerState::kClosed);
  EXPECT_EQ(health.patterns[1].state, BreakerState::kQuarantined);
  EXPECT_NE(health.patterns[1].last_error.find("poisoned sink"),
            std::string::npos);
  std::uint64_t restarts = 0;
  std::uint64_t quarantined = 0;
  for (const WorkerHealth& worker : health.workers) {
    restarts += worker.restarts;
    quarantined += worker.quarantined_patterns;
  }
  EXPECT_GE(restarts, 1U) << "the supervisor never respawned the worker";
  EXPECT_EQ(quarantined, 1U);
  EXPECT_EQ(testing::match_signature(monitor, 0), expected)
      << "the healthy pattern was disturbed by its neighbor's quarantine";
  // The quarantined matcher degraded to appends but kept its histories:
  // every event it admitted is still there.
  EXPECT_EQ(monitor.stats().patterns[1].quarantined, true);
}

TEST(Governance, ContainedCallbackErrorsQuarantineWithoutRespawn) {
  StringPool pool;
  const EventStore store = make_store(pool, 500, 29);
  MonitorConfig mode;
  mode.worker_threads = 2;
  mode.batch_size = 16;
  Monitor monitor(pool, mode, store.storage());
  monitor.add_pattern(kBenign);
  monitor.add_pattern(kBenign, MatcherConfig{}, [](const Match&, bool) {
    throw std::runtime_error("contained sink failure");
  });
  feed_all(monitor, store);

  const HealthReport health = monitor.health();
  EXPECT_EQ(health.patterns[1].state, BreakerState::kQuarantined);
  EXPECT_GT(health.patterns[1].callback_errors, 0U);
  std::uint64_t restarts = 0;
  for (const WorkerHealth& worker : health.workers) {
    restarts += worker.restarts;
  }
  EXPECT_EQ(restarts, 0U)
      << "a contained callback error must not cost a worker respawn";
}

TEST(Governance, HealthReportRendersBothFormats) {
  StringPool pool;
  const EventStore store = make_store(pool, 300, 31);
  MatcherConfig tight;
  tight.budget.max_steps = 8;
  tight.breaker.trip_failures = 1;
  Monitor monitor(pool, store.storage());
  monitor.add_pattern(kHostile, tight);
  feed_all(monitor, store);

  const HealthReport health = monitor.health();
  const std::string text = health.to_text();
  EXPECT_NE(text.find("pattern"), std::string::npos);
  const std::string json = health.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"searches_aborted\""), std::string::npos);
}

}  // namespace
}  // namespace ocep
