// Simulator and case-study application tests: the substrate must produce
// valid partial-order computations before anything can be matched on them.
#include <gtest/gtest.h>

#include <set>

#include "apps/apps.h"
#include "poet/event_store.h"
#include "sim/sim.h"

namespace ocep {
namespace {

using sim::EndReason;
using sim::Sim;
using sim::SimConfig;

SimConfig small_config(std::uint64_t seed) {
  SimConfig config;
  config.seed = seed;
  config.channel_capacity = 2;
  return config;
}

// --- basic two-process ping-pong -------------------------------------------

sim::ProcessBody ping_body(sim::Proc& ctx, TraceId peer, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    co_await ctx.send(peer, ctx.sym("ping"), kEmptySymbol, i);
    co_await ctx.recv(peer, ctx.sym("recv_pong"));
  }
}

sim::ProcessBody pong_body(sim::Proc& ctx, TraceId peer, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const sim::Incoming in = co_await ctx.recv(peer, ctx.sym("recv_ping"));
    EXPECT_EQ(in.payload, i);
    co_await ctx.send(peer, ctx.sym("pong"), kEmptySymbol, i);
  }
}

TEST(Sim, PingPongCompletesWithCausallyOrderedEvents) {
  StringPool pool;
  Sim sim(pool, small_config(7));
  // Two-party setup needs the ids before the bodies; reserve them first.
  struct Ids {
    TraceId a = 0, b = 0;
  };
  auto ids = std::make_shared<Ids>();
  ids->a = sim.add_process("A", [ids](sim::Proc& ctx) {
    return ping_body(ctx, ids->b, 50);
  });
  ids->b = sim.add_process("B", [ids](sim::Proc& ctx) {
    return pong_body(ctx, ids->a, 50);
  });

  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, EndReason::kCompleted);
  // 50 rounds x (send+recv on each side) = 200 events.
  EXPECT_EQ(result.events, 200U);
  const EventStore& store = sim.store();
  EXPECT_EQ(store.event_count(), 200U);

  // Every ping send happens before its matching receive, and the first
  // ping precedes everything on B.
  EXPECT_TRUE(store.happens_before(EventId{ids->a, 1},
                                   EventId{ids->b, 1}));
  // B's first pong (event 2 on B) precedes A's second round send.
  EXPECT_TRUE(store.happens_before(EventId{ids->b, 2},
                                   EventId{ids->a, 3}));
}

TEST(Sim, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    StringPool pool;
    Sim sim(pool, small_config(seed));
    apps::RaceParams params;
    params.traces = 5;
    params.messages_each = 40;
    apps::setup_race_bench(sim, params);
    const sim::RunResult result = sim.run();
    std::vector<std::uint32_t> signature;
    for (const EventId id : sim.store().arrival_order()) {
      signature.push_back(id.trace);
      signature.push_back(id.index);
    }
    signature.push_back(static_cast<std::uint32_t>(result.events));
    return signature;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

// --- case studies -----------------------------------------------------------

TEST(Apps, RandomWalkDeadlocksWithInjectedCycle) {
  StringPool pool;
  Sim sim(pool, small_config(11));
  apps::RandomWalkParams params;
  params.processes = 10;
  params.cycle_length = 4;
  params.steps = 60;
  const apps::RandomWalkApp app = setup_random_walk(sim, params);
  ASSERT_EQ(app.cycle.size(), 4U);

  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, EndReason::kQuiescent);

  // Every cycle member must be blocked sending to the next member.
  std::set<std::pair<TraceId, TraceId>> blocked_edges;
  for (const sim::BlockedInfo& info : result.blocked) {
    if (info.kind == sim::BlockedInfo::Kind::kSend) {
      blocked_edges.emplace(info.trace, info.peer);
    }
  }
  for (std::size_t i = 0; i < app.cycle.size(); ++i) {
    const TraceId from = app.cycle[i];
    const TraceId to = app.cycle[(i + 1) % app.cycle.size()];
    EXPECT_TRUE(blocked_edges.contains({from, to}))
        << "cycle member " << from << " should block sending to " << to;
  }

  // The cycle's blocked_send events must be pairwise concurrent: that is
  // exactly what the deadlock pattern will match.
  const EventStore& store = sim.store();
  std::vector<EventId> blocked_events;
  for (const sim::BlockedInfo& info : result.blocked) {
    if (info.kind == sim::BlockedInfo::Kind::kSend &&
        std::find(app.cycle.begin(), app.cycle.end(), info.trace) !=
            app.cycle.end()) {
      blocked_events.push_back(info.blocked_event);
    }
  }
  ASSERT_EQ(blocked_events.size(), app.cycle.size());
  for (std::size_t i = 0; i < blocked_events.size(); ++i) {
    for (std::size_t j = i + 1; j < blocked_events.size(); ++j) {
      EXPECT_EQ(store.relate(blocked_events[i], blocked_events[j]),
                Relation::kConcurrent);
    }
  }
}

TEST(Apps, RandomWalkWithoutInjectionCompletes) {
  StringPool pool;
  Sim sim(pool, small_config(13));
  apps::RandomWalkParams params;
  params.processes = 8;
  params.steps = 40;
  params.inject_deadlock = false;
  setup_random_walk(sim, params);
  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, EndReason::kCompleted);
  EXPECT_TRUE(result.blocked.empty());
}

TEST(Apps, RaceBenchProducesConcurrentReceives) {
  StringPool pool;
  Sim sim(pool, small_config(17));
  apps::RaceParams params;
  params.traces = 6;
  params.messages_each = 30;
  const apps::RaceApp app = setup_race_bench(sim, params);
  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, EndReason::kCompleted);

  // Count racing pairs among consecutive receives on the receiver: two
  // receives race iff their sends are concurrent.
  const EventStore& store = sim.store();
  const EventIndex receives = store.trace_size(app.receiver);
  std::size_t racing = 0, ordered = 0;
  for (EventIndex i = 1; i < receives; ++i) {
    const Event& first = store.event(EventId{app.receiver, i});
    const Event& second = store.event(EventId{app.receiver, i + 1});
    if (first.kind != EventKind::kReceive ||
        second.kind != EventKind::kReceive) {
      continue;
    }
    // Identify the partner sends via the message ids.
    EventId send_a, send_b;
    bool found_a = false, found_b = false;
    for (const TraceId sender : app.senders) {
      for (EventIndex k = 1; k <= store.trace_size(sender); ++k) {
        const Event& event = store.event(EventId{sender, k});
        if (event.kind == EventKind::kSend) {
          if (event.message == first.message) {
            send_a = event.id;
            found_a = true;
          }
          if (event.message == second.message) {
            send_b = event.id;
            found_b = true;
          }
        }
      }
    }
    if (!found_a || !found_b) {
      continue;  // one of the two was a token, not a data message
    }
    if (store.relate(send_a, send_b) == Relation::kConcurrent) {
      ++racing;
    } else {
      ++ordered;
    }
  }
  EXPECT_GT(racing, 0U) << "ANY_SOURCE receives should race";
  EXPECT_GT(ordered, 0U) << "token chaining should order some pairs";
}

TEST(Apps, AtomicitySkipsAreConcurrentWithLegitimateSections) {
  StringPool pool;
  Sim sim(pool, small_config(19));
  apps::AtomicityParams params;
  params.workers = 6;
  params.iterations = 80;
  params.skip_percent = 5;  // raised so the test reliably sees injections
  const apps::AtomicityApp app = setup_atomicity(sim, params);
  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, EndReason::kCompleted);
  ASSERT_FALSE(app.injections->empty());

  // Every injected (unprotected) entry must be concurrent with at least
  // one other worker's entry.
  const EventStore& store = sim.store();
  const Symbol enter = pool.intern("cs_enter");
  for (const apps::AtomicityInjection& injection : *app.injections) {
    bool concurrent_with_someone = false;
    for (const TraceId w : app.workers) {
      if (w == injection.worker) {
        continue;
      }
      for (EventIndex k = 1; k <= store.trace_size(w); ++k) {
        const Event& event = store.event(EventId{w, k});
        if (event.type == enter &&
            store.relate(injection.enter_event, event.id) ==
                Relation::kConcurrent) {
          concurrent_with_someone = true;
          break;
        }
      }
      if (concurrent_with_someone) {
        break;
      }
    }
    EXPECT_TRUE(concurrent_with_someone);
  }

  // Legitimate (semaphore-protected) entries must be totally ordered with
  // each other — the causal chain through the semaphore trace.
  std::vector<EventId> legit;
  for (const TraceId w : app.workers) {
    for (EventIndex k = 1; k <= store.trace_size(w); ++k) {
      const Event& event = store.event(EventId{w, k});
      if (event.type != enter) {
        continue;
      }
      bool injected = false;
      for (const apps::AtomicityInjection& injection : *app.injections) {
        if (injection.enter_event == event.id) {
          injected = true;
          break;
        }
      }
      if (!injected) {
        legit.push_back(event.id);
      }
    }
  }
  ASSERT_GT(legit.size(), 2U);
  for (std::size_t i = 0; i < legit.size(); ++i) {
    for (std::size_t j = i + 1; j < legit.size(); ++j) {
      if (legit[i].trace == legit[j].trace) {
        continue;
      }
      EXPECT_NE(store.relate(legit[i], legit[j]), Relation::kConcurrent)
          << "two protected critical sections overlapped";
    }
  }
}

TEST(Apps, LeaderFollowerInjectsUpdateBetweenSnapshotAndForward) {
  StringPool pool;
  Sim sim(pool, small_config(23));
  apps::OrderingParams params;
  params.followers = 8;
  params.requests_each = 30;
  params.bug_percent = 5;
  const apps::OrderingApp app = setup_leader_follower(sim, params);
  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, EndReason::kCompleted);
  ASSERT_FALSE(app.injections->empty());

  const EventStore& store = sim.store();
  for (const apps::OrderingInjection& injection : *app.injections) {
    EXPECT_TRUE(store.happens_before(injection.snapshot_event,
                                     injection.update_event));
    EXPECT_TRUE(store.happens_before(injection.update_event,
                                     injection.forward_event));
    // Snapshot and forward carry the same request tag.
    EXPECT_EQ(store.event(injection.snapshot_event).text,
              store.event(injection.forward_event).text);
  }
}

TEST(Sim, EventLimitStopsTheRun) {
  StringPool pool;
  SimConfig config = small_config(29);
  config.max_events = 500;
  Sim sim(pool, config);
  apps::RaceParams params;
  params.traces = 5;
  params.messages_each = 100000;  // would be far more than 500 events
  setup_race_bench(sim, params);
  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, EndReason::kEventLimit);
  EXPECT_GE(result.events, 500U);
  EXPECT_LE(result.events, 520U);  // small overshoot within one action
}

}  // namespace
}  // namespace ocep
