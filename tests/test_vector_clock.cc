// Unit and property tests for vector clocks and the pairwise causal
// relations (paper §III).
#include <gtest/gtest.h>

#include "causality/vector_clock.h"
#include "common/string_pool.h"
#include "poet/event_store.h"
#include "random_computation.h"

namespace ocep {
namespace {

TEST(VectorClock, TickAndMerge) {
  VectorClock a(3), b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  b.merge(a);
  EXPECT_EQ(b[0], 2U);
  EXPECT_EQ(b[1], 1U);
  EXPECT_EQ(b[2], 0U);
}

TEST(VectorClock, MergeIsComponentwiseMax) {
  VectorClock a(std::vector<std::uint32_t>{5, 1, 7});
  const VectorClock b(std::vector<std::uint32_t>{2, 9, 7});
  a.merge(b);
  EXPECT_EQ(a, VectorClock(std::vector<std::uint32_t>{5, 9, 7}));
}

TEST(VectorClock, RaiseRejectsNothingAndGrows) {
  VectorClock a(2);
  a.raise(1, 4);
  EXPECT_EQ(a[1], 4U);
  a.raise(1, 4);  // equal is allowed
  EXPECT_EQ(a[1], 4U);
}

TEST(Relation, SimpleMessageChain) {
  // Trace 0: e1 sends; trace 1: f1 receives then f2.
  const EventId e1{0, 1};
  const EventId f1{1, 1};
  const EventId f2{1, 2};
  const VectorClock ve1(std::vector<std::uint32_t>{1, 0});
  const VectorClock vf1(std::vector<std::uint32_t>{1, 1});
  const VectorClock vf2(std::vector<std::uint32_t>{1, 2});

  EXPECT_TRUE(happens_before(e1, vf1, f1));
  EXPECT_FALSE(happens_before(f1, ve1, e1));
  EXPECT_EQ(relate(e1, ve1, f1, vf1), Relation::kBefore);
  EXPECT_EQ(relate(f1, vf1, e1, ve1), Relation::kAfter);
  EXPECT_EQ(relate(f1, vf1, f2, vf2), Relation::kBefore);
  EXPECT_EQ(relate(e1, ve1, e1, ve1), Relation::kEqual);
}

TEST(Relation, ConcurrentEvents) {
  const EventId a{0, 1};
  const EventId b{1, 1};
  const VectorClock va(std::vector<std::uint32_t>{1, 0});
  const VectorClock vb(std::vector<std::uint32_t>{0, 1});
  EXPECT_EQ(relate(a, va, b, vb), Relation::kConcurrent);
  EXPECT_EQ(relate(b, vb, a, va), Relation::kConcurrent);
}

// --- Property sweep over random computations --------------------------------

class RelationProperties : public ::testing::TestWithParam<std::uint64_t> {};

// relate() must be a strict partial order extended with symmetric
// concurrency: antisymmetric, transitive, and consistent under swap.
TEST_P(RelationProperties, PartialOrderAxiomsHold) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 4;
  options.events = 60;
  const EventStore store = testing::random_computation(pool, options);

  std::vector<EventId> ids;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    for (EventIndex i = 1; i <= store.trace_size(t); ++i) {
      ids.push_back(EventId{t, i});
    }
  }

  for (const EventId a : ids) {
    EXPECT_EQ(store.relate(a, a), Relation::kEqual);
    for (const EventId b : ids) {
      const Relation ab = store.relate(a, b);
      const Relation ba = store.relate(b, a);
      if (ab == Relation::kBefore) {
        EXPECT_EQ(ba, Relation::kAfter);
      } else if (ab == Relation::kConcurrent) {
        EXPECT_EQ(ba, Relation::kConcurrent);
      }
      for (const EventId c : ids) {
        if (ab == Relation::kBefore &&
            store.relate(b, c) == Relation::kBefore) {
          EXPECT_EQ(store.relate(a, c), Relation::kBefore)
              << "transitivity violated";
        }
      }
    }
  }
}

// Events on one trace must be totally ordered by index.
TEST_P(RelationProperties, TraceOrderIsTotal) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam() + 1000;
  options.traces = 3;
  options.events = 80;
  const EventStore store = testing::random_computation(pool, options);
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    for (EventIndex i = 1; i < store.trace_size(t); ++i) {
      EXPECT_EQ(store.relate(EventId{t, i}, EventId{t, i + 1}),
                Relation::kBefore);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ocep
