// Unit tests for the leaf history (with the §VI redundancy elimination and
// the keyed secondary index) and the representative subset container.
#include <gtest/gtest.h>

#include "core/history.h"
#include "core/subset.h"

namespace ocep {
namespace {

// --- LeafHistory -------------------------------------------------------------

TEST(LeafHistory, AppendAndRange) {
  LeafHistory history;
  history.reset(2);
  history.append(0, 1, 0, false, false);
  history.append(0, 5, 1, false, false);
  history.append(0, 9, 2, false, false);
  history.append(1, 2, 0, false, false);

  EXPECT_EQ(history.total(), 4U);
  EXPECT_EQ(history.on_trace(0).size(), 3U);

  const auto mid = history.range(0, 2, 8);
  EXPECT_EQ(mid.last - mid.first, 1U);
  EXPECT_EQ(history.on_trace(0)[mid.first].index, 5U);

  EXPECT_TRUE(history.range(0, 10, 20).empty());
  EXPECT_TRUE(history.range(0, 8, 2).empty());  // inverted interval
  const auto all = history.range(0, 1, 9);
  EXPECT_EQ(all.last - all.first, 3U);
}

TEST(LeafHistory, MergeDropsCausallyIdenticalEvents) {
  LeafHistory history;
  history.reset(1);
  // Three events with the same communication count: only the first stays.
  EXPECT_TRUE(history.append(0, 1, 0, false, true));
  EXPECT_FALSE(history.append(0, 2, 0, false, true));
  EXPECT_FALSE(history.append(0, 3, 0, false, true));
  // A communication event bumps the count; the next event survives.
  EXPECT_TRUE(history.append(0, 4, 0, true, true));
  EXPECT_TRUE(history.append(0, 5, 1, false, true));
  EXPECT_EQ(history.total(), 3U);
  EXPECT_EQ(history.merged(), 2U);
}

TEST(LeafHistory, CommunicationEventsAreNeverMerged) {
  LeafHistory history;
  history.reset(1);
  EXPECT_TRUE(history.append(0, 1, 0, true, true));
  EXPECT_TRUE(history.append(0, 2, 1, true, true));
  EXPECT_TRUE(history.append(0, 3, 2, true, true));
  EXPECT_EQ(history.merged(), 0U);
}

TEST(LeafHistory, KeyedIndexGroupsBySymbol) {
  LeafHistory history;
  history.reset(2, /*keyed=*/true);
  const Symbol x{1}, y{2};
  history.append(0, 1, 0, false, false, x);
  history.append(0, 2, 0, false, false, y);
  history.append(0, 3, 0, false, false, x);
  history.append(1, 1, 0, false, false, x);

  EXPECT_EQ(history.on_trace_keyed(0, x).size(), 2U);
  EXPECT_EQ(history.on_trace_keyed(0, y).size(), 1U);
  EXPECT_TRUE(history.on_trace_keyed(0, Symbol{9}).empty());
  const auto ranged = history.range_keyed(0, x, 2, 3);
  EXPECT_EQ(ranged.last - ranged.first, 1U);
}

TEST(LeafHistory, PruneFrontKeepsTheMostRecent) {
  LeafHistory history;
  history.reset(1);
  for (EventIndex i = 1; i <= 20; ++i) {
    history.append(0, i, 0, true, false);
  }
  history.prune_front(0, 5);
  EXPECT_EQ(history.on_trace(0).size(), 5U);
  EXPECT_EQ(history.on_trace(0).front().index, 16U);
  EXPECT_EQ(history.pruned(), 15U);
  EXPECT_EQ(history.total(), 5U);
  // Pruning below the current size is a no-op.
  history.prune_front(0, 10);
  EXPECT_EQ(history.on_trace(0).size(), 5U);
}

TEST(LeafHistory, PruneFrontUpdatesKeyedIndex) {
  LeafHistory history;
  history.reset(1, /*keyed=*/true);
  const Symbol x{1}, y{2};
  for (EventIndex i = 1; i <= 10; ++i) {
    history.append(0, i, 0, true, false, i % 2 == 0 ? x : y);
  }
  history.prune_front(0, 4);  // keep indexes 7..10
  EXPECT_EQ(history.on_trace_keyed(0, x).size(), 2U);  // 8, 10
  EXPECT_EQ(history.on_trace_keyed(0, y).size(), 2U);  // 7, 9
  EXPECT_EQ(history.on_trace_keyed(0, x).front().index, 8U);
}

// Feeding a corrupt stream used to abort the process (OCEP_ASSERT); a
// monitor embedded in a long-lived service needs a catchable, positioned
// error instead.
TEST(LeafHistory, OutOfOrderAppendThrowsPositionedError) {
  LeafHistory history;
  history.reset(2);
  history.append(0, 5, 0, false, false);
  try {
    history.append(0, 5, 1, false, false);  // same index: not increasing
    FAIL() << "expected a HistoryError";
  } catch (const HistoryError& error) {
    EXPECT_EQ(error.trace(), 0U);
    EXPECT_EQ(error.index(), 5U);
    const std::string what = error.what();
    EXPECT_NE(what.find("out-of-order"), std::string::npos);
    EXPECT_NE(what.find("(trace 0, event index 5)"), std::string::npos);
  }
  EXPECT_THROW(history.append(0, 3, 1, false, false), HistoryError);
  // The history survives the rejected appends untouched.
  EXPECT_EQ(history.total(), 1U);
  history.append(0, 6, 1, false, false);
  EXPECT_EQ(history.total(), 2U);
}

TEST(LeafHistory, UnknownTraceAppendThrowsPositionedError) {
  LeafHistory history;
  history.reset(2);
  try {
    history.append(7, 1, 0, false, false);
    FAIL() << "expected a HistoryError";
  } catch (const HistoryError& error) {
    EXPECT_EQ(error.trace(), 7U);
    EXPECT_EQ(error.index(), 1U);
    EXPECT_NE(std::string(error.what()).find("unknown trace"),
              std::string::npos);
  }
  // HistoryError is an ocep::Error, so existing catch sites keep working.
  EXPECT_THROW(history.append(7, 1, 0, false, false), Error);
}

TEST(LeafHistory, EvictFrontCountsAndFreesBytes) {
  LeafHistory history;
  history.reset(2, /*keyed=*/true);
  const Symbol x{1};
  for (EventIndex i = 1; i <= 8; ++i) {
    history.append(0, i, 0, true, false, x);
    history.append(1, i, 0, true, false, x);
  }
  const std::size_t before = history.approx_bytes();
  TraceId largest = 99;
  EXPECT_EQ(history.largest_trace(largest), 8U);
  EXPECT_EQ(largest, 0U) << "ties break to the lowest trace";

  const std::size_t freed = history.evict_front(0, /*keep=*/3);
  EXPECT_GT(freed, 0U);
  EXPECT_EQ(history.approx_bytes(), before - freed);
  EXPECT_EQ(history.evicted(), 5U);
  EXPECT_EQ(history.on_trace(0).size(), 3U);
  EXPECT_EQ(history.on_trace(0).front().index, 6U);
  // The keyed index was cut consistently with the main entries.
  EXPECT_EQ(history.on_trace_keyed(0, x).front().index, 6U);
  // Eviction and pruning are separate ledgers (coverage loss vs benign).
  EXPECT_EQ(history.pruned(), 0U);
}

// --- RepresentativeSubset ----------------------------------------------------

Match make_match(std::initializer_list<EventId> ids) {
  Match match;
  match.bindings.assign(ids);
  return match;
}

TEST(RepresentativeSubset, AddsOnlyCoveringMatches) {
  RepresentativeSubset subset;
  subset.reset(2, 3);
  EXPECT_FALSE(subset.covered(0, 0));

  EXPECT_TRUE(subset.add(make_match({EventId{0, 1}, EventId{1, 1}})));
  EXPECT_TRUE(subset.covered(0, 0));
  EXPECT_TRUE(subset.covered(1, 1));
  EXPECT_EQ(subset.coverage(), 2U);

  // Same pairs again: rejected.
  EXPECT_FALSE(subset.add(make_match({EventId{0, 7}, EventId{1, 9}})));
  EXPECT_EQ(subset.matches().size(), 1U);

  // A new trace for leaf 1: retained.
  EXPECT_TRUE(subset.add(make_match({EventId{0, 2}, EventId{2, 1}})));
  EXPECT_EQ(subset.coverage(), 3U);
  EXPECT_EQ(subset.matches().size(), 2U);
}

TEST(RepresentativeSubset, CardinalityNeverExceedsKTimesN) {
  const std::size_t k = 3, n = 4;
  RepresentativeSubset subset;
  subset.reset(k, n);
  // Throw every possible binding combination at it.
  std::size_t added = 0;
  for (TraceId t0 = 0; t0 < n; ++t0) {
    for (TraceId t1 = 0; t1 < n; ++t1) {
      for (TraceId t2 = 0; t2 < n; ++t2) {
        if (subset.add(make_match(
                {EventId{t0, 1}, EventId{t1, 1}, EventId{t2, 1}}))) {
          ++added;
        }
      }
    }
  }
  EXPECT_LE(subset.matches().size(), k * n);
  EXPECT_EQ(subset.coverage(), k * n);
  EXPECT_EQ(added, subset.matches().size());
}

TEST(RepresentativeSubset, ResetClearsState) {
  RepresentativeSubset subset;
  subset.reset(1, 2);
  EXPECT_TRUE(subset.add(make_match({EventId{0, 1}})));
  subset.reset(1, 2);
  EXPECT_FALSE(subset.covered(0, 0));
  EXPECT_TRUE(subset.matches().empty());
}

}  // namespace
}  // namespace ocep
