// Unit tests for the leaf history (with the §VI redundancy elimination and
// the keyed secondary index) and the representative subset container.
#include <gtest/gtest.h>

#include "core/history.h"
#include "core/subset.h"

namespace ocep {
namespace {

// --- LeafHistory -------------------------------------------------------------

TEST(LeafHistory, AppendAndRange) {
  LeafHistory history;
  history.reset(2);
  history.append(0, 1, 0, false, false);
  history.append(0, 5, 1, false, false);
  history.append(0, 9, 2, false, false);
  history.append(1, 2, 0, false, false);

  EXPECT_EQ(history.total(), 4U);
  EXPECT_EQ(history.on_trace(0).size(), 3U);

  const auto mid = history.range(0, 2, 8);
  EXPECT_EQ(mid.last - mid.first, 1U);
  EXPECT_EQ(history.on_trace(0)[mid.first].index, 5U);

  EXPECT_TRUE(history.range(0, 10, 20).empty());
  EXPECT_TRUE(history.range(0, 8, 2).empty());  // inverted interval
  const auto all = history.range(0, 1, 9);
  EXPECT_EQ(all.last - all.first, 3U);
}

TEST(LeafHistory, MergeDropsCausallyIdenticalEvents) {
  LeafHistory history;
  history.reset(1);
  // Three events with the same communication count: only the first stays.
  EXPECT_TRUE(history.append(0, 1, 0, false, true));
  EXPECT_FALSE(history.append(0, 2, 0, false, true));
  EXPECT_FALSE(history.append(0, 3, 0, false, true));
  // A communication event bumps the count; the next event survives.
  EXPECT_TRUE(history.append(0, 4, 0, true, true));
  EXPECT_TRUE(history.append(0, 5, 1, false, true));
  EXPECT_EQ(history.total(), 3U);
  EXPECT_EQ(history.merged(), 2U);
}

TEST(LeafHistory, CommunicationEventsAreNeverMerged) {
  LeafHistory history;
  history.reset(1);
  EXPECT_TRUE(history.append(0, 1, 0, true, true));
  EXPECT_TRUE(history.append(0, 2, 1, true, true));
  EXPECT_TRUE(history.append(0, 3, 2, true, true));
  EXPECT_EQ(history.merged(), 0U);
}

TEST(LeafHistory, KeyedIndexGroupsBySymbol) {
  LeafHistory history;
  history.reset(2, /*keyed=*/true);
  const Symbol x{1}, y{2};
  history.append(0, 1, 0, false, false, x);
  history.append(0, 2, 0, false, false, y);
  history.append(0, 3, 0, false, false, x);
  history.append(1, 1, 0, false, false, x);

  EXPECT_EQ(history.on_trace_keyed(0, x).size(), 2U);
  EXPECT_EQ(history.on_trace_keyed(0, y).size(), 1U);
  EXPECT_TRUE(history.on_trace_keyed(0, Symbol{9}).empty());
  const auto ranged = history.range_keyed(0, x, 2, 3);
  EXPECT_EQ(ranged.last - ranged.first, 1U);
}

TEST(LeafHistory, PruneFrontKeepsTheMostRecent) {
  LeafHistory history;
  history.reset(1);
  for (EventIndex i = 1; i <= 20; ++i) {
    history.append(0, i, 0, true, false);
  }
  history.prune_front(0, 5);
  EXPECT_EQ(history.on_trace(0).size(), 5U);
  EXPECT_EQ(history.on_trace(0).front().index, 16U);
  EXPECT_EQ(history.pruned(), 15U);
  EXPECT_EQ(history.total(), 5U);
  // Pruning below the current size is a no-op.
  history.prune_front(0, 10);
  EXPECT_EQ(history.on_trace(0).size(), 5U);
}

TEST(LeafHistory, PruneFrontUpdatesKeyedIndex) {
  LeafHistory history;
  history.reset(1, /*keyed=*/true);
  const Symbol x{1}, y{2};
  for (EventIndex i = 1; i <= 10; ++i) {
    history.append(0, i, 0, true, false, i % 2 == 0 ? x : y);
  }
  history.prune_front(0, 4);  // keep indexes 7..10
  EXPECT_EQ(history.on_trace_keyed(0, x).size(), 2U);  // 8, 10
  EXPECT_EQ(history.on_trace_keyed(0, y).size(), 2U);  // 7, 9
  EXPECT_EQ(history.on_trace_keyed(0, x).front().index, 8U);
}

// --- RepresentativeSubset ----------------------------------------------------

Match make_match(std::initializer_list<EventId> ids) {
  Match match;
  match.bindings.assign(ids);
  return match;
}

TEST(RepresentativeSubset, AddsOnlyCoveringMatches) {
  RepresentativeSubset subset;
  subset.reset(2, 3);
  EXPECT_FALSE(subset.covered(0, 0));

  EXPECT_TRUE(subset.add(make_match({EventId{0, 1}, EventId{1, 1}})));
  EXPECT_TRUE(subset.covered(0, 0));
  EXPECT_TRUE(subset.covered(1, 1));
  EXPECT_EQ(subset.coverage(), 2U);

  // Same pairs again: rejected.
  EXPECT_FALSE(subset.add(make_match({EventId{0, 7}, EventId{1, 9}})));
  EXPECT_EQ(subset.matches().size(), 1U);

  // A new trace for leaf 1: retained.
  EXPECT_TRUE(subset.add(make_match({EventId{0, 2}, EventId{2, 1}})));
  EXPECT_EQ(subset.coverage(), 3U);
  EXPECT_EQ(subset.matches().size(), 2U);
}

TEST(RepresentativeSubset, CardinalityNeverExceedsKTimesN) {
  const std::size_t k = 3, n = 4;
  RepresentativeSubset subset;
  subset.reset(k, n);
  // Throw every possible binding combination at it.
  std::size_t added = 0;
  for (TraceId t0 = 0; t0 < n; ++t0) {
    for (TraceId t1 = 0; t1 < n; ++t1) {
      for (TraceId t2 = 0; t2 < n; ++t2) {
        if (subset.add(make_match(
                {EventId{t0, 1}, EventId{t1, 1}, EventId{t2, 1}}))) {
          ++added;
        }
      }
    }
  }
  EXPECT_LE(subset.matches().size(), k * n);
  EXPECT_EQ(subset.coverage(), k * n);
  EXPECT_EQ(added, subset.matches().size());
}

TEST(RepresentativeSubset, ResetClearsState) {
  RepresentativeSubset subset;
  subset.reset(1, 2);
  EXPECT_TRUE(subset.add(make_match({EventId{0, 1}})));
  subset.reset(1, 2);
  EXPECT_FALSE(subset.covered(0, 0));
  EXPECT_TRUE(subset.matches().empty());
}

}  // namespace
}  // namespace ocep
