// Tests for the sessionized lossy-wire transport (poet/session.h): frame
// round trips, per-frame corruption containment, the resync handshake,
// budget exhaustion and degraded flush, plus the positioned
// SerializationError contract of the loss-free formats.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "poet/dump.h"
#include "poet/session.h"
#include "poet/wire.h"
#include "random_computation.h"

namespace ocep {
namespace {

/// Records each server write as one frame, so tests can drop / corrupt /
/// reorder individual frames before handing them to the client.
class FrameCapture final : public ByteSink {
 public:
  void write(std::string_view bytes) override {
    frames.emplace_back(bytes);
  }
  std::vector<std::string> frames;
};

class QueueTransport final : public ResyncTransport {
 public:
  void request_resync(const ResyncRequest& request) override {
    requests.push_back(request);
  }
  std::vector<ResyncRequest> requests;
};

/// A transport that swallows requests: resyncs can never succeed.
class BlackHoleTransport final : public ResyncTransport {
 public:
  void request_resync(const ResyncRequest&) override { ++swallowed; }
  std::uint64_t swallowed = 0;
};

class CollectingSink final : public EventSink {
 public:
  void on_traces(const std::vector<Symbol>& names) override {
    trace_names = names;
  }
  void on_event(const Event& event, const VectorClock&) override {
    events.push_back(event);
  }
  std::vector<Symbol> trace_names;
  std::vector<Event> events;
};

struct Rig {
  explicit Rig(std::uint64_t seed = 11, std::uint32_t events = 150)
      : store(make_store(pool, seed, events)) {
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
  }

  static EventStore make_store(StringPool& pool, std::uint64_t seed,
                               std::uint32_t events) {
    testing::RandomComputationOptions options;
    options.seed = seed;
    options.events = events;
    return testing::random_computation(pool, options);
  }

  /// Streams the whole computation through a server into `capture`.
  SessionServer make_server(FrameCapture& capture,
                            SessionConfig config = {}) {
    SessionServer server(capture, pool, names, config);
    for (std::uint64_t pos = 0; pos < store.event_count(); ++pos) {
      const EventId id = store.arrival(pos);
      server.write(store.event(id), store.clock(id));
    }
    server.finish();
    return server;
  }

  StringPool pool;
  EventStore store;
  std::vector<Symbol> names;
};

/// Feeds `frames` to the client, then answers queued resyncs (appending
/// the server's snapshot frames and feeding those too) until the client is
/// done or `max_ticks` idle ticks elapsed.
void pump(SessionClient& client, SessionServer& server,
          FrameCapture& capture, QueueTransport& transport,
          std::size_t already_fed = 0, std::uint64_t max_ticks = 4096) {
  std::size_t fed = already_fed;
  const auto feed_new = [&] {
    while (fed < capture.frames.size()) {
      client.feed(capture.frames[fed++]);
    }
  };
  feed_new();
  client.finish_input();
  std::uint64_t ticks = 0;
  while (!client.done() && ticks < max_ticks) {
    while (!transport.requests.empty()) {
      const ResyncRequest request = transport.requests.front();
      transport.requests.erase(transport.requests.begin());
      server.handle_resync(request);
    }
    feed_new();
    client.tick();
    ++ticks;
  }
}

void expect_full_delivery(const Rig& rig, const CollectingSink& sink) {
  ASSERT_EQ(sink.events.size(), rig.store.event_count());
  for (std::uint64_t pos = 0; pos < rig.store.event_count(); ++pos) {
    EXPECT_EQ(sink.events[pos].id, rig.store.arrival(pos))
        << "delivery diverged from arrival order at position " << pos;
  }
}

TEST(Session, CleanRoundTripPreservesArrivalOrder) {
  Rig rig;
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  EXPECT_EQ(server.stats().frames_written,
            rig.store.event_count() + 2);  // HELLO + events + BYE

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  pump(client, server, capture, transport);

  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.degraded());
  expect_full_delivery(rig, sink);
  ASSERT_EQ(sink.trace_names.size(), rig.names.size());
  const IngestStats stats = client.stats();
  EXPECT_EQ(stats.frames_corrupt, 0U);
  EXPECT_EQ(stats.resyncs, 0U);
  EXPECT_EQ(stats.sheds, 0U);
}

TEST(Session, BitFlipIsContainedAndResyncRefills) {
  Rig rig;
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  // Flip one bit in the middle of an event frame's payload.
  std::string& victim = capture.frames[capture.frames.size() / 2];
  victim[victim.size() / 2] = static_cast<char>(
      static_cast<unsigned char>(victim[victim.size() / 2]) ^ 0x10U);

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  pump(client, server, capture, transport);

  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.degraded()) << "a resync recovery is not degradation";
  expect_full_delivery(rig, sink);
  const IngestStats stats = client.stats();
  EXPECT_GE(stats.frames_corrupt, 1U);
  EXPECT_GE(stats.resyncs, 1U);
  EXPECT_GE(stats.recoveries, 1U);
  EXPECT_GT(server.stats().resyncs_served, 0U);
}

TEST(Session, DroppedFramesAreRefilledBySnapshot) {
  Rig rig;
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  // Drop a run of frames (but keep HELLO, frame 0).
  capture.frames.erase(capture.frames.begin() + 20,
                       capture.frames.begin() + 27);

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  pump(client, server, capture, transport);

  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.degraded());
  expect_full_delivery(rig, sink);
  const IngestStats stats = client.stats();
  EXPECT_GE(stats.frames_gap, 7U);
  EXPECT_GE(stats.resyncs, 1U);
  EXPECT_GE(stats.snapshots, 1U);
}

TEST(Session, LostHelloIsRecoveredFromSnapshot) {
  Rig rig;
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  capture.frames.erase(capture.frames.begin());  // HELLO gone

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  pump(client, server, capture, transport);

  EXPECT_TRUE(client.done());
  expect_full_delivery(rig, sink);
  ASSERT_EQ(sink.trace_names.size(), rig.names.size());
  for (std::size_t i = 0; i < rig.names.size(); ++i) {
    EXPECT_EQ(rig.pool.view(sink.trace_names[i]),
              rig.pool.view(rig.names[i]));
  }
}

TEST(Session, DuplicatedFramesAreIdempotent) {
  Rig rig;
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  // Deliver the whole stream twice, interleaved as duplicates.
  std::vector<std::string> doubled;
  for (const std::string& frame : capture.frames) {
    doubled.push_back(frame);
    doubled.push_back(frame);
  }
  capture.frames = std::move(doubled);

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  pump(client, server, capture, transport);

  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.degraded());
  expect_full_delivery(rig, sink);
  EXPECT_GE(client.stats().duplicates, rig.store.event_count());
}

TEST(Session, ReorderedFramesNeedNoResync) {
  Rig rig;
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  // Transpose a few adjacent event frames; default grace (8 ticks) is far
  // longer than the one-frame displacement, so position buffering alone
  // must absorb it.
  for (const std::size_t i : {5UL, 20UL, 40UL, 60UL}) {
    std::swap(capture.frames[i], capture.frames[i + 1]);
  }

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  pump(client, server, capture, transport);

  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.degraded());
  expect_full_delivery(rig, sink);
  EXPECT_EQ(client.stats().resyncs, 0U);
}

TEST(Session, ResyncBudgetExhaustionDegradesLoudly) {
  Rig rig;
  FrameCapture capture;
  SessionConfig config;
  config.resync_grace = 2;
  config.backoff_initial = 2;
  config.backoff_max = 8;
  config.max_resync_attempts = 3;
  SessionServer server = rig.make_server(capture, config);
  // Lose some frames AND the reverse channel: recovery is impossible.
  capture.frames.erase(capture.frames.begin() + 10,
                       capture.frames.begin() + 14);

  CollectingSink sink;
  BlackHoleTransport transport;
  SessionClient client(sink, rig.pool, transport, config);
  for (const std::string& frame : capture.frames) {
    client.feed(frame);
  }
  client.finish_input();
  for (std::uint64_t tick = 0; tick < 4096 && !client.done(); ++tick) {
    client.tick();
  }

  EXPECT_TRUE(client.done()) << "budget exhaustion must not deadlock";
  EXPECT_TRUE(client.degraded()) << "an unrecovered loss must be reported";
  EXPECT_GE(transport.swallowed, 1U);
  const IngestStats stats = client.stats();
  EXPECT_GE(stats.resync_failures, 1U);
  EXPECT_LE(stats.resyncs, config.max_resync_attempts);
  // Everything that did arrive was still delivered, in order.
  EXPECT_GT(sink.events.size(), 0U);
}

TEST(Session, GarbageBytesBetweenFramesAreSkipped) {
  Rig rig(23, 60);
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  // Splice noise between frames; the marker scan must step over it.
  std::vector<std::string> noisy;
  for (std::size_t i = 0; i < capture.frames.size(); ++i) {
    noisy.push_back(capture.frames[i]);
    if (i % 3 == 0) {
      noisy.emplace_back("\x13\x37garbage\xa7");  // includes a lone marker byte
    }
  }
  capture.frames = std::move(noisy);

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  pump(client, server, capture, transport);

  EXPECT_TRUE(client.done());
  expect_full_delivery(rig, sink);
  EXPECT_GT(client.stats().bytes_skipped, 0U);
}

TEST(Session, ChunkedFeedReassemblesFrames) {
  Rig rig(29, 80);
  FrameCapture capture;
  SessionServer server = rig.make_server(capture);
  std::string stream;
  for (const std::string& frame : capture.frames) {
    stream += frame;
  }

  CollectingSink sink;
  QueueTransport transport;
  SessionClient client(sink, rig.pool, transport);
  // One byte at a time: every partial-header / partial-payload path runs.
  for (const char byte : stream) {
    client.feed(std::string_view(&byte, 1));
  }
  client.finish_input();
  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.degraded());
  expect_full_delivery(rig, sink);
}

// --- positioned SerializationError (error.h satellite) ---------------------

TEST(PositionedErrors, TruncatedDumpReportsByteAndRecord) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 5;
  options.events = 40;
  const EventStore store = testing::random_computation(pool, options);
  std::ostringstream out;
  dump(store, pool, out);
  const std::string bytes = out.str();

  // Cut inside the event section: the error must carry the offset of the
  // record being decoded and its 1-based record index.
  std::istringstream cut(bytes.substr(0, bytes.size() - 3));
  StringPool reload_pool;
  try {
    static_cast<void>(reload_store(cut, reload_pool));
    FAIL() << "truncated dump must not reload";
  } catch (const SerializationError& error) {
    EXPECT_GE(error.byte_offset(), 0);
    EXPECT_GT(error.frame_index(), 0);
    EXPECT_NE(std::string(error.what()).find("at byte"), std::string::npos)
        << error.what();
  }
}

TEST(PositionedErrors, CorruptDumpHeaderIsFrameZero) {
  std::istringstream bogus("OCEPDMP1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff");
  StringPool pool;
  try {
    static_cast<void>(reload_store(bogus, pool));
    FAIL() << "corrupt header must not reload";
  } catch (const SerializationError& error) {
    EXPECT_EQ(error.frame_index(), 0);
    EXPECT_GE(error.byte_offset(), 0);
  }
}

TEST(PositionedErrors, UnknownPositionFormatsWithoutSuffix) {
  const SerializationError plain("boom");
  EXPECT_EQ(plain.byte_offset(), -1);
  EXPECT_EQ(plain.frame_index(), -1);
  EXPECT_EQ(std::string(plain.what()).find("at byte"), std::string::npos);
  const SerializationError at(std::string("boom"), 17, 3);
  EXPECT_EQ(at.byte_offset(), 17);
  EXPECT_EQ(at.frame_index(), 3);
}

}  // namespace
}  // namespace ocep
