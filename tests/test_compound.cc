// Tests for compound-event relations (paper §III-B, eqs. (1)-(3)).
#include <gtest/gtest.h>

#include <vector>

#include "causality/compound.h"
#include "common/string_pool.h"
#include "poet/event_store.h"
#include "random_computation.h"

namespace ocep {
namespace {

/// Fixture world: a 3-trace computation from the paper's style of
/// process-time diagrams.
///
///   T0:  a1 --m1--> .          a2
///   T1:       b1(recv m1) --m2--> .
///   T2:  c1                 c2(recv m2)   c3
class CompoundFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    clocks_ = {
        VectorClock(std::vector<std::uint32_t>{1, 0, 0}),  // a1 (send m1)
        VectorClock(std::vector<std::uint32_t>{2, 0, 0}),  // a2
        VectorClock(std::vector<std::uint32_t>{1, 1, 0}),  // b1 (recv m1,
                                                           //     send m2)
        VectorClock(std::vector<std::uint32_t>{0, 0, 1}),  // c1
        VectorClock(std::vector<std::uint32_t>{1, 1, 2}),  // c2 (recv m2)
        VectorClock(std::vector<std::uint32_t>{1, 1, 3}),  // c3
    };
    a1_ = {EventId{0, 1}, &clocks_[0]};
    a2_ = {EventId{0, 2}, &clocks_[1]};
    b1_ = {EventId{1, 1}, &clocks_[2]};
    c1_ = {EventId{2, 1}, &clocks_[3]};
    c2_ = {EventId{2, 2}, &clocks_[4]};
    c3_ = {EventId{2, 3}, &clocks_[5]};
  }

  std::vector<VectorClock> clocks_;
  TimedEvent a1_, a2_, b1_, c1_, c2_, c3_;
};

TEST_F(CompoundFixture, StrongVersusWeakPrecedence) {
  const std::vector<TimedEvent> front{a1_, c1_};
  const std::vector<TimedEvent> back{c2_, c3_};
  // a1 -> c2 (via m1, m2) and c1 -> c2 on the trace, so strong holds.
  EXPECT_TRUE(strong_precedes(front, back));
  EXPECT_TRUE(weak_precedes(front, back));

  const std::vector<TimedEvent> mixed{a2_, c1_};
  // c1 -> c2 holds but a2 is concurrent with everything on T2.
  EXPECT_FALSE(strong_precedes(mixed, back));
  EXPECT_TRUE(weak_precedes(mixed, back));
}

TEST_F(CompoundFixture, OverlapAndDisjoint) {
  const std::vector<TimedEvent> ab{a1_, b1_};
  const std::vector<TimedEvent> bc{b1_, c2_};
  const std::vector<TimedEvent> cc{c1_, c2_};
  EXPECT_TRUE(overlaps(ab, bc));
  EXPECT_FALSE(disjoint(ab, bc));
  EXPECT_TRUE(disjoint(ab, cc));
}

TEST_F(CompoundFixture, CrossesRequiresBothDirectionsAndDisjointness) {
  // A = {a1, a2}, B = {b1 ... } won't cross: nothing in B precedes A.
  const std::vector<TimedEvent> a{a1_, a2_};
  const std::vector<TimedEvent> b{b1_, c2_};
  EXPECT_FALSE(crosses(a, b));

  // A = {a1, c3}, B = {b1}:  a1 -> b1 and b1 -> c3, disjoint => crosses.
  const std::vector<TimedEvent> xa{a1_, c3_};
  const std::vector<TimedEvent> xb{b1_};
  EXPECT_TRUE(crosses(xa, xb));
  EXPECT_TRUE(crosses(xb, xa));
  EXPECT_TRUE(entangled(xa, xb));
  // Entangled pairs are neither preceding nor concurrent (eq. 2).
  EXPECT_FALSE(precedes(xa, xb));
  EXPECT_FALSE(precedes(xb, xa));
  EXPECT_EQ(classify(xa, xb), CompoundRelation::kEntangled);
}

TEST_F(CompoundFixture, ConcurrentCompounds) {
  const std::vector<TimedEvent> a{a2_};
  const std::vector<TimedEvent> c{c1_, c3_};
  // a2 || c1 and a2 || c3.
  EXPECT_TRUE(concurrent(a, c));
  EXPECT_EQ(classify(a, c), CompoundRelation::kConcurrent);
}

TEST_F(CompoundFixture, ClassifyPrecedence) {
  const std::vector<TimedEvent> first{a1_};
  const std::vector<TimedEvent> second{c2_, c3_};
  EXPECT_EQ(classify(first, second), CompoundRelation::kBefore);
  EXPECT_EQ(classify(second, first), CompoundRelation::kAfter);
}

// --- Property: the four relationships partition all pairs (paper claim) ----

class CompoundPartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompoundPartition, ExactlyOneOfFourHolds) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 4;
  options.events = 50;
  const EventStore store = testing::random_computation(pool, options);

  // Materialize clocks so TimedEvent pointers stay valid.
  std::vector<EventId> ids;
  std::vector<VectorClock> clocks;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    for (EventIndex i = 1; i <= store.trace_size(t); ++i) {
      ids.push_back(EventId{t, i});
    }
  }
  clocks.reserve(ids.size());
  for (const EventId id : ids) {
    clocks.push_back(store.clock(id));
  }

  Rng rng(GetParam() * 77 + 1);
  auto random_compound = [&](std::size_t size) {
    std::vector<TimedEvent> out;
    for (std::size_t i = 0; i < size; ++i) {
      const std::size_t pick = rng.below(ids.size());
      out.push_back(TimedEvent{ids[pick], &clocks[pick]});
    }
    return out;
  };

  for (int round = 0; round < 50; ++round) {
    const auto a = random_compound(1 + rng.below(4));
    const auto b = random_compound(1 + rng.below(4));
    const int count = (precedes(a, b) ? 1 : 0) + (precedes(b, a) ? 1 : 0) +
                      (concurrent(a, b) ? 1 : 0) + (entangled(a, b) ? 1 : 0);
    EXPECT_EQ(count, 1) << "pair must satisfy exactly one relationship";

    // classify() must agree with the predicates.
    switch (classify(a, b)) {
      case CompoundRelation::kBefore:
        EXPECT_TRUE(precedes(a, b));
        break;
      case CompoundRelation::kAfter:
        EXPECT_TRUE(precedes(b, a));
        break;
      case CompoundRelation::kConcurrent:
        EXPECT_TRUE(concurrent(a, b));
        break;
      case CompoundRelation::kEntangled:
        EXPECT_TRUE(entangled(a, b));
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompoundPartition,
                         ::testing::Values(10, 11, 12, 13, 14, 15));

}  // namespace
}  // namespace ocep
