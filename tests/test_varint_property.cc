// Property tests for the varint / length-prefixed-string primitives the
// dump format and wire protocol share (poet/varint.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "poet/varint.h"

namespace ocep::poet {
namespace {

std::string encode(std::uint64_t value) {
  std::ostringstream out;
  put_varint(out, value);
  return out.str();
}

std::uint64_t decode(const std::string& bytes) {
  std::istringstream in(bytes);
  return get_varint(in);
}

/// Expected LEB128 length: ceil(bit_width / 7), minimum 1.
std::size_t expected_length(std::uint64_t value) {
  std::size_t length = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++length;
  }
  return length;
}

TEST(VarintProperty, EveryLengthBoundaryRoundTrips) {
  // For each encoded length k in 1..10 bytes, the first and last value
  // of that length plus both neighbours across the boundary.
  for (std::size_t k = 1; k <= 10; ++k) {
    const std::uint64_t lo = k == 1 ? 0 : 1ULL << (7 * (k - 1));
    const std::uint64_t hi =
        7 * k >= 64 ? ~0ULL : (1ULL << (7 * k)) - 1;
    for (const std::uint64_t value : {lo, lo + 1, hi - 1, hi}) {
      const std::string bytes = encode(value);
      EXPECT_EQ(bytes.size(), k) << "value " << value;
      EXPECT_EQ(decode(bytes), value);
    }
  }
  // Sanity: the max value really needs all ten bytes.
  EXPECT_EQ(encode(~0ULL).size(), 10U);
}

TEST(VarintProperty, RandomValuesRoundTrip) {
  Rng rng(0x7A91A701);
  for (int i = 0; i < 20000; ++i) {
    // Uniform over bit widths, not values, so short encodings are hit
    // as often as long ones.
    const std::uint64_t width = rng.between(1, 64);
    std::uint64_t value = rng();
    if (width < 64) {
      value &= (1ULL << width) - 1;
    }
    const std::string bytes = encode(value);
    EXPECT_EQ(bytes.size(), expected_length(value));
    EXPECT_EQ(decode(bytes), value);
  }
}

TEST(VarintProperty, EveryTruncationIsRejected) {
  Rng rng(0x7A91A702);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t width = rng.between(8, 64);
    std::uint64_t value = rng() | (1ULL << (width - 1));
    if (width < 64) {
      value &= (1ULL << width) - 1;
    }
    const std::string bytes = encode(value);
    ASSERT_GE(bytes.size(), 2U);
    // Cutting the stream anywhere before the final byte must throw, not
    // return a partial value.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_THROW((void)decode(bytes.substr(0, cut)), SerializationError);
    }
  }
}

TEST(VarintProperty, OverlongEncodingIsRejected) {
  // Ten continuation bytes would shift past bit 63; an eleventh byte can
  // never be legitimate.
  std::string bytes(10, '\x80');
  bytes += '\x01';
  EXPECT_THROW((void)decode(bytes), SerializationError);
  // All-ones for eleven bytes likewise.
  EXPECT_THROW((void)decode(std::string(11, '\xff')), SerializationError);
  // But the genuine 10-byte encoding of 2^64-1 decodes fine.
  EXPECT_EQ(decode(encode(~0ULL)), ~0ULL);
}

TEST(VarintProperty, StringsRoundTripAndRejectTruncation) {
  Rng rng(0x7A91A703);
  for (int i = 0; i < 500; ++i) {
    std::string payload(rng.below(200), '\0');
    for (char& c : payload) {
      c = static_cast<char>(rng.below(256));
    }
    std::ostringstream out;
    put_string(out, payload);
    const std::string bytes = out.str();
    {
      std::istringstream in(bytes);
      EXPECT_EQ(get_string(in), payload);
    }
    if (!payload.empty()) {
      // Drop the last payload byte: length prefix now overruns.
      std::istringstream in(bytes.substr(0, bytes.size() - 1));
      EXPECT_THROW((void)get_string(in), SerializationError);
    }
  }
  // A length prefix far beyond any sane string is rejected before
  // allocation.
  std::ostringstream out;
  put_varint(out, 1ULL << 32);
  std::istringstream in(out.str());
  EXPECT_THROW((void)get_string(in), SerializationError);
}

}  // namespace
}  // namespace ocep::poet
