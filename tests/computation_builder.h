// Hand-construction helper for small test computations.
#pragma once

#include <string_view>
#include <vector>

#include "common/assert.h"
#include "common/string_pool.h"
#include "poet/event_store.h"

namespace ocep::testing {

/// Builds an EventStore one event at a time with correct vector clocks.
/// Usage:
///   ComputationBuilder b(pool, {"P1", "P2"});
///   b.local(0, "a");
///   auto m = b.send(0, "ping");
///   b.recv(1, m, "recv_ping");
class ComputationBuilder {
 public:
  ComputationBuilder(StringPool& pool,
                     const std::vector<std::string_view>& traces)
      : pool_(pool) {
    for (const std::string_view name : traces) {
      store_.add_trace(pool_.intern(name));
    }
    clocks_.assign(traces.size(), VectorClock(traces.size()));
  }

  EventId local(TraceId t, std::string_view type, std::string_view text = "") {
    return emit(t, EventKind::kLocal, type, text, kNoMessage, nullptr);
  }

  /// Returns the message id to pass to recv().
  std::uint64_t send(TraceId t, std::string_view type,
                     std::string_view text = "") {
    const std::uint64_t message = next_message_++;
    emit(t, EventKind::kSend, type, text, message, nullptr);
    send_clocks_.push_back(clocks_[t]);  // index message - 1
    return message;
  }

  EventId recv(TraceId t, std::uint64_t message, std::string_view type,
               std::string_view text = "") {
    OCEP_ASSERT(message >= 1 && message <= send_clocks_.size());
    return emit(t, EventKind::kReceive, type, text, message,
                &send_clocks_[message - 1]);
  }

  EventId blocked_send(TraceId t, std::string_view dest_trace_name) {
    return emit(t, EventKind::kBlockedSend, "blocked_send", dest_trace_name,
                kNoMessage, nullptr);
  }

  [[nodiscard]] const EventStore& store() const noexcept { return store_; }
  [[nodiscard]] StringPool& pool() const noexcept { return pool_; }

 private:
  EventId emit(TraceId t, EventKind kind, std::string_view type,
               std::string_view text, std::uint64_t message,
               const VectorClock* merge) {
    VectorClock& clock = clocks_[t];
    if (merge != nullptr) {
      clock.merge(*merge);
    }
    clock.tick(t);
    Event event;
    event.id = EventId{t, clock[t]};
    event.kind = kind;
    event.type = pool_.intern(type);
    event.text = pool_.intern(text);
    event.message = message;
    store_.append(event, clock);
    return event.id;
  }

  StringPool& pool_;
  EventStore store_;
  std::vector<VectorClock> clocks_;
  std::vector<VectorClock> send_clocks_;
  std::uint64_t next_message_ = 1;
};

}  // namespace ocep::testing
