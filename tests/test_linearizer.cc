// Tests for the causal-delivery linearizer: events offered in any order
// must reach the client in a linearization of the partial order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/string_pool.h"
#include "poet/linearizer.h"
#include "poet/replay.h"
#include "random_computation.h"

namespace ocep {
namespace {

/// Collects delivered events and checks the delivery condition as it goes.
class CheckingSink final : public EventSink {
 public:
  explicit CheckingSink(std::size_t traces) : delivered_counts_(traces, 0) {}

  void on_event(const Event& event, const VectorClock& clock) override {
    // Every causal predecessor must already have been delivered.
    ASSERT_EQ(delivered_counts_[event.id.trace], event.id.index - 1);
    for (TraceId s = 0; s < delivered_counts_.size(); ++s) {
      if (s != event.id.trace) {
        ASSERT_GE(delivered_counts_[s], clock[s])
            << "delivered an event before its predecessor on trace " << s;
      }
    }
    delivered_counts_[event.id.trace] = event.id.index;
    order_.push_back(event.id);
  }

  [[nodiscard]] const std::vector<EventId>& order() const { return order_; }

 private:
  std::vector<std::uint32_t> delivered_counts_;
  std::vector<EventId> order_;
};

TEST(Linearizer, InOrderStreamPassesThrough) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 31;
  const EventStore store = testing::random_computation(pool, options);

  CheckingSink sink(store.trace_count());
  Linearizer linearizer(store.trace_count(), sink);
  for (const EventId id : store.arrival_order()) {
    linearizer.offer(store.event(id), store.clock(id));
  }
  EXPECT_EQ(linearizer.pending(), 0U);
  EXPECT_EQ(linearizer.delivered(), store.event_count());
}

class LinearizerShuffle : public ::testing::TestWithParam<std::uint64_t> {};

// Offer the computation in a heavily shuffled order; delivery must still be
// a complete, causally consistent linearization.
TEST_P(LinearizerShuffle, ShuffledStreamIsReordered) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 5;
  options.events = 200;
  const EventStore store = testing::random_computation(pool, options);

  // Shuffle with the constraint that per-trace order is preserved (POET
  // reports each trace's events in order; only cross-trace interleaving
  // races on the wire).
  std::vector<EventId> offers(store.arrival_order().begin(),
                              store.arrival_order().end());
  Rng rng(GetParam() * 13 + 7);
  for (int pass = 0; pass < 2000; ++pass) {
    const std::size_t i = rng.below(offers.size() - 1);
    if (offers[i].trace != offers[i + 1].trace) {
      std::swap(offers[i], offers[i + 1]);
    }
  }

  CheckingSink sink(store.trace_count());
  Linearizer linearizer(store.trace_count(), sink);
  for (const EventId id : offers) {
    linearizer.offer(store.event(id), store.clock(id));
  }
  EXPECT_EQ(linearizer.pending(), 0U);
  EXPECT_EQ(linearizer.delivered(), store.event_count());
  EXPECT_EQ(sink.order().size(), store.event_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizerShuffle,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

TEST(Linearizer, BuffersUntilPredecessorArrives) {
  StringPool pool;
  EventStore store;
  const TraceId t0 = store.add_trace(pool.intern("P0"));
  const TraceId t1 = store.add_trace(pool.intern("P1"));

  Event send;
  send.id = EventId{t0, 1};
  send.kind = EventKind::kSend;
  send.message = 1;
  const VectorClock send_clock(std::vector<std::uint32_t>{1, 0});

  Event recv;
  recv.id = EventId{t1, 1};
  recv.kind = EventKind::kReceive;
  recv.message = 1;
  const VectorClock recv_clock(std::vector<std::uint32_t>{1, 1});

  CheckingSink sink(2);
  Linearizer linearizer(2, sink);
  // Receive first: must be buffered, not delivered.
  linearizer.offer(recv, recv_clock);
  EXPECT_EQ(linearizer.delivered(), 0U);
  EXPECT_EQ(linearizer.pending(), 1U);
  // The send unblocks it.
  linearizer.offer(send, send_clock);
  EXPECT_EQ(linearizer.delivered(), 2U);
  EXPECT_EQ(linearizer.pending(), 0U);
  ASSERT_EQ(sink.order().size(), 2U);
  EXPECT_EQ(sink.order()[0], send.id);
  EXPECT_EQ(sink.order()[1], recv.id);
}

TEST(Linearizer, DuplicateOffersAreCountedAndDropped) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 61;
  options.traces = 3;
  options.events = 60;
  const EventStore store = testing::random_computation(pool, options);

  CheckingSink sink(store.trace_count());
  Linearizer linearizer(store.trace_count(), sink);
  std::uint64_t duplicates = 0;
  for (const EventId id : store.arrival_order()) {
    EXPECT_NE(linearizer.offer(store.event(id), store.clock(id)),
              OfferResult::kDuplicate);
    // Immediately re-offer every third event (a retransmission).
    if (id.index % 3 == 0) {
      EXPECT_EQ(linearizer.offer(store.event(id), store.clock(id)),
                OfferResult::kDuplicate);
      ++duplicates;
    }
  }
  EXPECT_GT(duplicates, 0U);
  EXPECT_EQ(linearizer.ingest_stats().duplicates, duplicates);
  // Duplicates must not distort delivery: everything arrives exactly once.
  EXPECT_EQ(linearizer.delivered(), store.event_count());
  EXPECT_EQ(sink.order().size(), store.event_count());
  EXPECT_EQ(linearizer.ingest_stats().offered,
            store.event_count() + duplicates);
}

TEST(Linearizer, DuplicateOfBufferedEventIsDropped) {
  StringPool pool;
  EventStore store;
  static_cast<void>(store.add_trace(pool.intern("P0")));
  const TraceId t1 = store.add_trace(pool.intern("P1"));

  Event recv;
  recv.id = EventId{t1, 1};
  recv.kind = EventKind::kReceive;
  recv.message = 1;
  const VectorClock recv_clock(std::vector<std::uint32_t>{1, 1});

  CheckingSink sink(2);
  Linearizer linearizer(2, sink);
  EXPECT_EQ(linearizer.offer(recv, recv_clock), OfferResult::kBuffered);
  EXPECT_EQ(linearizer.offer(recv, recv_clock), OfferResult::kDuplicate);
  EXPECT_EQ(linearizer.pending(), 1U);
  EXPECT_EQ(linearizer.ingest_stats().duplicates, 1U);
}

TEST(LinearizerDeathTest, StrictModeAbortsOnDuplicate) {
  StringPool pool;
  EventStore store;
  const TraceId t0 = store.add_trace(pool.intern("P0"));
  Event local;
  local.id = EventId{t0, 1};
  local.kind = EventKind::kLocal;
  const VectorClock clock(std::vector<std::uint32_t>{1});

  CheckingSink sink(1);
  LinearizerConfig config;
  config.strict = true;
  Linearizer linearizer(1, sink, config);
  EXPECT_EQ(linearizer.offer(local, clock), OfferResult::kDelivered);
  EXPECT_DEATH(static_cast<void>(linearizer.offer(local, clock)),
               "duplicate or regressed event index");
}

/// Sink for degraded runs: checks causal delivery like CheckingSink but
/// also tallies placeholders so tests can separate real from synthesized.
class DegradedSink final : public EventSink {
 public:
  DegradedSink(std::size_t traces, Symbol shed_type)
      : delivered_counts_(traces, 0), shed_type_(shed_type) {}

  void on_event(const Event& event, const VectorClock& clock) override {
    ASSERT_EQ(delivered_counts_[event.id.trace], event.id.index - 1);
    for (TraceId s = 0; s < delivered_counts_.size(); ++s) {
      if (s != event.id.trace) {
        ASSERT_GE(delivered_counts_[s], clock[s]);
      }
    }
    delivered_counts_[event.id.trace] = event.id.index;
    ++total_;
    if (event.type == shed_type_) {
      ++placeholders_;
    }
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t placeholders() const noexcept {
    return placeholders_;
  }

 private:
  std::vector<std::uint32_t> delivered_counts_;
  Symbol shed_type_;
  std::uint64_t total_ = 0;
  std::uint64_t placeholders_ = 0;
};

class LinearizerProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, OverflowPolicy>> {
};

// Adversarial ingestion: cross-trace shuffles, dropped events (gaps that
// only shedding or blocking can resolve), and duplicated offers.  Whatever
// happens, causal delivery must hold for every released event and the
// counters must reconcile exactly with the offered totals:
//
//   offered == (delivered - sheds) + pending + duplicates + blocked
//
// (sheds are synthesized, never offered; a blocked offer was refused).
TEST_P(LinearizerProperty, CountersReconcileUnderAdversarialStreams) {
  const auto& [seed, policy] = GetParam();
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = seed;
  options.traces = 5;
  options.events = 300;
  const EventStore store = testing::random_computation(pool, options);

  Rng rng(seed * 31 + 5);
  // Cross-trace shuffle preserving per-trace order.
  std::vector<EventId> offers(store.arrival_order().begin(),
                              store.arrival_order().end());
  for (int pass = 0; pass < 3000; ++pass) {
    const std::size_t i = rng.below(offers.size() - 1);
    if (offers[i].trace != offers[i + 1].trace) {
      std::swap(offers[i], offers[i + 1]);
    }
  }
  // Drop ~8% (gaps) and duplicate ~10% of the survivors in place.
  std::vector<EventId> stream;
  for (const EventId id : offers) {
    if (rng.chance(8, 100)) {
      continue;
    }
    stream.push_back(id);
    if (rng.chance(10, 100)) {
      stream.push_back(id);
    }
  }

  LinearizerConfig config;
  config.high_watermark = 24;
  config.stall_horizon = 64;
  config.policy = policy;
  config.shed_type = pool.intern("__shed");
  DegradedSink sink(store.trace_count(), config.shed_type);
  Linearizer linearizer(store.trace_count(), sink, config);

  std::uint64_t duplicates = 0;
  std::uint64_t blocked = 0;
  for (const EventId id : stream) {
    switch (linearizer.offer(store.event(id), store.clock(id))) {
      case OfferResult::kDuplicate:
        ++duplicates;
        break;
      case OfferResult::kBlocked:
        ++blocked;
        break;
      case OfferResult::kDelivered:
      case OfferResult::kBuffered:
        break;
    }
  }

  const auto reconcile = [&](const IngestStats& stats) {
    EXPECT_EQ(stats.offered, stream.size());
    EXPECT_EQ(stats.duplicates, duplicates);
    EXPECT_EQ(stats.blocked, blocked);
    EXPECT_EQ(stats.pending, linearizer.pending());
    EXPECT_GE(stats.delivered, stats.sheds);
    EXPECT_EQ(stats.offered, (stats.delivered - stats.sheds) + stats.pending +
                                 stats.duplicates + stats.blocked);
    EXPECT_GE(stats.max_pending, stats.pending);
  };
  reconcile(linearizer.ingest_stats());

  // End-of-stream flush: everything still held is forced out through
  // placeholders; the identity must survive with pending == 0.
  linearizer.shed_to(0);
  const IngestStats stats = linearizer.ingest_stats();
  EXPECT_EQ(linearizer.pending(), 0U);
  reconcile(stats);
  EXPECT_EQ(sink.total(), linearizer.delivered());
  EXPECT_EQ(sink.placeholders(), stats.sheds);
  // Under kShed the watermark must have actually bounded the buffer (the
  // +1 is the offer that trips the policy before it sheds).
  if (policy == OverflowPolicy::kShed) {
    EXPECT_LE(stats.max_pending, config.high_watermark + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LinearizerProperty,
    ::testing::Combine(::testing::Values(std::uint64_t{71}, std::uint64_t{72},
                                         std::uint64_t{73}, std::uint64_t{74},
                                         std::uint64_t{75}, std::uint64_t{76}),
                       ::testing::Values(OverflowPolicy::kShed,
                                         OverflowPolicy::kBlock)),
    [](const auto& param_info) {
      return std::string(std::get<1>(param_info.param) == OverflowPolicy::kShed
                             ? "shed"
                             : "block") +
             "_seed" + std::to_string(std::get<0>(param_info.param));
    });

TEST(Replay, DeliversWholeStoreInLinearization) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 51;
  options.traces = 6;
  options.events = 300;
  const EventStore store = testing::random_computation(pool, options);
  CheckingSink sink(store.trace_count());
  replay(store, sink);
  EXPECT_EQ(sink.order().size(), store.event_count());
}

}  // namespace
}  // namespace ocep
