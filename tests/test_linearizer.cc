// Tests for the causal-delivery linearizer: events offered in any order
// must reach the client in a linearization of the partial order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/string_pool.h"
#include "poet/linearizer.h"
#include "poet/replay.h"
#include "random_computation.h"

namespace ocep {
namespace {

/// Collects delivered events and checks the delivery condition as it goes.
class CheckingSink final : public EventSink {
 public:
  explicit CheckingSink(std::size_t traces) : delivered_counts_(traces, 0) {}

  void on_event(const Event& event, const VectorClock& clock) override {
    // Every causal predecessor must already have been delivered.
    ASSERT_EQ(delivered_counts_[event.id.trace], event.id.index - 1);
    for (TraceId s = 0; s < delivered_counts_.size(); ++s) {
      if (s != event.id.trace) {
        ASSERT_GE(delivered_counts_[s], clock[s])
            << "delivered an event before its predecessor on trace " << s;
      }
    }
    delivered_counts_[event.id.trace] = event.id.index;
    order_.push_back(event.id);
  }

  [[nodiscard]] const std::vector<EventId>& order() const { return order_; }

 private:
  std::vector<std::uint32_t> delivered_counts_;
  std::vector<EventId> order_;
};

TEST(Linearizer, InOrderStreamPassesThrough) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 31;
  const EventStore store = testing::random_computation(pool, options);

  CheckingSink sink(store.trace_count());
  Linearizer linearizer(store.trace_count(), sink);
  for (const EventId id : store.arrival_order()) {
    linearizer.offer(store.event(id), store.clock(id));
  }
  EXPECT_EQ(linearizer.pending(), 0U);
  EXPECT_EQ(linearizer.delivered(), store.event_count());
}

class LinearizerShuffle : public ::testing::TestWithParam<std::uint64_t> {};

// Offer the computation in a heavily shuffled order; delivery must still be
// a complete, causally consistent linearization.
TEST_P(LinearizerShuffle, ShuffledStreamIsReordered) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 5;
  options.events = 200;
  const EventStore store = testing::random_computation(pool, options);

  // Shuffle with the constraint that per-trace order is preserved (POET
  // reports each trace's events in order; only cross-trace interleaving
  // races on the wire).
  std::vector<EventId> offers(store.arrival_order().begin(),
                              store.arrival_order().end());
  Rng rng(GetParam() * 13 + 7);
  for (int pass = 0; pass < 2000; ++pass) {
    const std::size_t i = rng.below(offers.size() - 1);
    if (offers[i].trace != offers[i + 1].trace) {
      std::swap(offers[i], offers[i + 1]);
    }
  }

  CheckingSink sink(store.trace_count());
  Linearizer linearizer(store.trace_count(), sink);
  for (const EventId id : offers) {
    linearizer.offer(store.event(id), store.clock(id));
  }
  EXPECT_EQ(linearizer.pending(), 0U);
  EXPECT_EQ(linearizer.delivered(), store.event_count());
  EXPECT_EQ(sink.order().size(), store.event_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizerShuffle,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

TEST(Linearizer, BuffersUntilPredecessorArrives) {
  StringPool pool;
  EventStore store;
  const TraceId t0 = store.add_trace(pool.intern("P0"));
  const TraceId t1 = store.add_trace(pool.intern("P1"));

  Event send;
  send.id = EventId{t0, 1};
  send.kind = EventKind::kSend;
  send.message = 1;
  const VectorClock send_clock(std::vector<std::uint32_t>{1, 0});

  Event recv;
  recv.id = EventId{t1, 1};
  recv.kind = EventKind::kReceive;
  recv.message = 1;
  const VectorClock recv_clock(std::vector<std::uint32_t>{1, 1});

  CheckingSink sink(2);
  Linearizer linearizer(2, sink);
  // Receive first: must be buffered, not delivered.
  linearizer.offer(recv, recv_clock);
  EXPECT_EQ(linearizer.delivered(), 0U);
  EXPECT_EQ(linearizer.pending(), 1U);
  // The send unblocks it.
  linearizer.offer(send, send_clock);
  EXPECT_EQ(linearizer.delivered(), 2U);
  EXPECT_EQ(linearizer.pending(), 0U);
  ASSERT_EQ(sink.order().size(), 2U);
  EXPECT_EQ(sink.order()[0], send.id);
  EXPECT_EQ(sink.order()[1], recv.id);
}

TEST(Replay, DeliversWholeStoreInLinearization) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 51;
  options.traces = 6;
  options.events = 300;
  const EventStore store = testing::random_computation(pool, options);
  CheckingSink sink(store.trace_count());
  replay(store, sink);
  EXPECT_EQ(sink.order().size(), store.event_count());
}

}  // namespace
}  // namespace ocep
