// Dump / reload round-trip tests (paper §V-B methodology).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/string_pool.h"
#include "poet/dump.h"
#include "random_computation.h"

namespace ocep {
namespace {

void expect_stores_equal(const EventStore& a, const EventStore& b,
                         const StringPool& pool_a, const StringPool& pool_b) {
  ASSERT_EQ(a.trace_count(), b.trace_count());
  ASSERT_EQ(a.event_count(), b.event_count());
  for (TraceId t = 0; t < a.trace_count(); ++t) {
    EXPECT_EQ(pool_a.view(a.trace_name(t)), pool_b.view(b.trace_name(t)));
    ASSERT_EQ(a.trace_size(t), b.trace_size(t));
    for (EventIndex i = 1; i <= a.trace_size(t); ++i) {
      const EventId id{t, i};
      const Event& ea = a.event(id);
      const Event& eb = b.event(id);
      EXPECT_EQ(ea.kind, eb.kind);
      EXPECT_EQ(pool_a.view(ea.type), pool_b.view(eb.type));
      EXPECT_EQ(pool_a.view(ea.text), pool_b.view(eb.text));
      EXPECT_EQ(ea.message, eb.message);
      EXPECT_EQ(a.clock(id), b.clock(id));
    }
  }
}

class DumpRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DumpRoundTrip, ReloadReproducesTheComputation) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 5;
  options.events = 250;
  const EventStore store = testing::random_computation(pool, options);

  std::stringstream buffer;
  dump(store, pool, buffer);

  StringPool fresh_pool;  // reload must not depend on the original pool
  EventStore reloaded = reload_store(buffer, fresh_pool);
  expect_stores_equal(store, reloaded, pool, fresh_pool);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DumpRoundTrip,
                         ::testing::Values(61, 62, 63, 64, 65));

TEST(Dump, EmptyComputationRoundTrips) {
  StringPool pool;
  EventStore store;
  store.add_trace(pool.intern("only"));
  std::stringstream buffer;
  dump(store, pool, buffer);
  StringPool fresh;
  const EventStore reloaded = reload_store(buffer, fresh);
  EXPECT_EQ(reloaded.trace_count(), 1U);
  EXPECT_EQ(reloaded.event_count(), 0U);
}

TEST(Dump, RejectsBadMagic) {
  std::stringstream buffer("THIS IS NOT A DUMP FILE");
  StringPool pool;
  EXPECT_THROW(reload_store(buffer, pool), SerializationError);
}

TEST(Dump, RejectsTruncation) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 71;
  const EventStore store = testing::random_computation(pool, options);
  std::stringstream buffer;
  dump(store, pool, buffer);
  const std::string full = buffer.str();
  // Cut the stream at several points; every prefix must be rejected, never
  // crash or silently succeed.
  for (const double fraction : {0.2, 0.5, 0.9, 0.99}) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(full.size()) * fraction);
    std::stringstream truncated(full.substr(0, cut));
    StringPool fresh;
    EXPECT_THROW(reload_store(truncated, fresh), SerializationError)
        << "prefix of " << cut << " bytes was accepted";
  }
}

TEST(Dump, RejectsCorruptedClockDelta) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 73;
  options.traces = 3;
  options.events = 60;
  const EventStore store = testing::random_computation(pool, options);
  std::stringstream buffer;
  dump(store, pool, buffer);
  std::string bytes = buffer.str();
  // Flip bits near the end of the event stream; decode must either throw or
  // (rarely) still parse to the same count — it must never crash.
  int rejected = 0;
  for (std::size_t offset = bytes.size() - 20; offset < bytes.size();
       ++offset) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x55);
    std::stringstream stream(corrupt);
    StringPool fresh;
    try {
      const EventStore reloaded = reload_store(stream, fresh);
      static_cast<void>(reloaded);
    } catch (const SerializationError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace ocep
