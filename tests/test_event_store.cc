// Tests for the POET-equivalent event store: append invariants, O(1)
// timestamp retrieval, and the greatest-predecessor / least-successor
// queries the matcher's domain restriction is built on (paper §IV-C).
#include <gtest/gtest.h>

#include "common/string_pool.h"
#include "poet/event_store.h"
#include "random_computation.h"

namespace ocep {
namespace {

TEST(EventStore, AppendAndLookup) {
  StringPool pool;
  EventStore store;
  const TraceId t0 = store.add_trace(pool.intern("P0"));
  const TraceId t1 = store.add_trace(pool.intern("P1"));
  EXPECT_EQ(store.trace_count(), 2U);
  EXPECT_EQ(pool.view(store.trace_name(t0)), "P0");

  Event send;
  send.id = EventId{t0, 1};
  send.kind = EventKind::kSend;
  send.type = pool.intern("ping");
  send.message = 7;
  store.append(send, VectorClock(std::vector<std::uint32_t>{1, 0}));

  Event recv;
  recv.id = EventId{t1, 1};
  recv.kind = EventKind::kReceive;
  recv.type = pool.intern("recv_ping");
  recv.message = 7;
  store.append(recv, VectorClock(std::vector<std::uint32_t>{1, 1}));

  EXPECT_EQ(store.event_count(), 2U);
  EXPECT_EQ(store.trace_size(t0), 1U);
  EXPECT_EQ(store.event(EventId{t0, 1}).message, 7U);
  EXPECT_EQ(store.clock_entry(EventId{t1, 1}, t0), 1U);
  EXPECT_TRUE(store.happens_before(EventId{t0, 1}, EventId{t1, 1}));
  EXPECT_EQ(store.arrival_order().size(), 2U);
}

TEST(EventStore, ClockEntryMatchesMaterializedClock) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 3;
  const EventStore store = testing::random_computation(pool, options);
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    for (EventIndex i = 1; i <= store.trace_size(t); ++i) {
      const EventId id{t, i};
      const VectorClock clock = store.clock(id);
      for (TraceId s = 0; s < store.trace_count(); ++s) {
        EXPECT_EQ(store.clock_entry(id, s), clock[s]);
      }
      // Fidge/Mattern invariant: own entry equals the index.
      EXPECT_EQ(clock[t], i);
    }
  }
}

// --- GP / LS ----------------------------------------------------------------

class GpLsProperties : public ::testing::TestWithParam<std::uint64_t> {};

// GP(e, t) must be the most-recent event on t that happens before e, and
// LS(e, t) the least-recent event on t that happens after e — verified
// against brute force over the whole trace (paper §IV-C definitions).
TEST_P(GpLsProperties, MatchBruteForce) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 5;
  options.events = 120;
  const EventStore store = testing::random_computation(pool, options);

  for (TraceId te = 0; te < store.trace_count(); ++te) {
    for (EventIndex ie = 1; ie <= store.trace_size(te); ++ie) {
      const EventId e{te, ie};
      for (TraceId t = 0; t < store.trace_count(); ++t) {
        // Brute-force GP: scan t from the back.
        EventIndex expected_gp = kNoEvent;
        for (EventIndex k = store.trace_size(t); k >= 1; --k) {
          if (store.happens_before(EventId{t, k}, e)) {
            expected_gp = k;
            break;
          }
        }
        EXPECT_EQ(store.greatest_predecessor(e, t), expected_gp)
            << "GP mismatch for e=(" << te << "," << ie << ") on t=" << t;

        // Brute-force LS: scan t from the front.
        EventIndex expected_ls = kInfiniteIndex;
        for (EventIndex k = 1; k <= store.trace_size(t); ++k) {
          if (store.happens_before(e, EventId{t, k})) {
            expected_ls = k;
            break;
          }
        }
        EXPECT_EQ(store.least_successor(e, t), expected_ls)
            << "LS mismatch for e=(" << te << "," << ie << ") on t=" << t;
      }
    }
  }
}

// The paper's key property (§IV-C): on trace t, events strictly inside
// (GP(e,t), LS(e,t)) are exactly the events concurrent with e.
TEST_P(GpLsProperties, OpenIntervalIsConcurrencyDomain) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam() + 500;
  options.traces = 4;
  options.events = 100;
  const EventStore store = testing::random_computation(pool, options);

  for (TraceId te = 0; te < store.trace_count(); ++te) {
    for (EventIndex ie = 1; ie <= store.trace_size(te); ++ie) {
      const EventId e{te, ie};
      for (TraceId t = 0; t < store.trace_count(); ++t) {
        if (t == te) {
          continue;
        }
        const EventIndex gp = store.greatest_predecessor(e, t);
        const EventIndex ls = store.least_successor(e, t);
        for (EventIndex k = 1; k <= store.trace_size(t); ++k) {
          const Relation relation = store.relate(EventId{t, k}, e);
          const bool inside = k > gp && (ls == kInfiniteIndex || k < ls);
          EXPECT_EQ(inside, relation == Relation::kConcurrent);
          EXPECT_EQ(k <= gp, relation == Relation::kBefore);
          EXPECT_EQ(ls != kInfiniteIndex && k >= ls,
                    relation == Relation::kAfter);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpLsProperties,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(EventStore, GpLsOwnTrace) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 9;
  options.traces = 3;
  options.events = 30;
  const EventStore store = testing::random_computation(pool, options);
  const TraceId t = 0;
  const EventIndex n = store.trace_size(t);
  ASSERT_GE(n, 3U);
  const EventId mid{t, 2};
  EXPECT_EQ(store.greatest_predecessor(mid, t), 1U);
  EXPECT_EQ(store.least_successor(mid, t), 3U);
  EXPECT_EQ(store.greatest_predecessor(EventId{t, 1}, t), kNoEvent);
  EXPECT_EQ(store.least_successor(EventId{t, n}, t), kInfiniteIndex);
}

// --- Sparse clock storage backend -------------------------------------------

class SparseStoreEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

// Both backends must answer every causal query identically.
TEST_P(SparseStoreEquivalence, AgreesWithDenseOnEveryQuery) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 5;
  options.events = 150;
  const EventStore dense = testing::random_computation(pool, options);
  options.storage = ClockStorage::kSparse;
  const EventStore sparse = testing::random_computation(pool, options);

  ASSERT_EQ(dense.event_count(), sparse.event_count());
  for (TraceId t = 0; t < dense.trace_count(); ++t) {
    for (EventIndex i = 1; i <= dense.trace_size(t); ++i) {
      const EventId e{t, i};
      EXPECT_EQ(dense.clock(e), sparse.clock(e));
      for (TraceId s = 0; s < dense.trace_count(); ++s) {
        EXPECT_EQ(dense.clock_entry(e, s), sparse.clock_entry(e, s));
        EXPECT_EQ(dense.greatest_predecessor(e, s),
                  sparse.greatest_predecessor(e, s));
        EXPECT_EQ(dense.least_successor(e, s), sparse.least_successor(e, s));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseStoreEquivalence,
                         ::testing::Values(91, 92, 93, 94, 95));

TEST(EventStore, SparseBackendUsesLessMemoryOnWideComputations) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 97;
  options.traces = 24;
  options.events = 4000;
  // Mostly local events: sparse columns barely grow.
  options.local_weight = 8;
  options.send_weight = 1;
  options.receive_weight = 1;
  const EventStore dense = testing::random_computation(pool, options);
  options.storage = ClockStorage::kSparse;
  const EventStore sparse = testing::random_computation(pool, options);
  EXPECT_LT(sparse.approx_bytes() * 2, dense.approx_bytes())
      << "sparse should be at least 2x smaller here";
}

TEST(EventStore, ApproxBytesGrows) {
  StringPool pool;
  EventStore store;
  store.add_trace(pool.intern("P0"));
  store.add_trace(pool.intern("P1"));
  const std::size_t before = store.approx_bytes();
  VectorClock clock(2);
  for (EventIndex i = 1; i <= 100; ++i) {
    clock.tick(0);
    Event event;
    event.id = EventId{0, i};
    store.append(event, clock);
  }
  EXPECT_GT(store.approx_bytes(), before);
}

}  // namespace
}  // namespace ocep
