// Loopback tests for the serving layer (src/net): a real ocep_served
// reactor on its own thread, real TCP connections from producer threads,
// checked against the clean-channel golden match set
// (tools/zk962_golden.poet — 342 events, 4 traces, 1 representative
// match).  Labeled `net` in ctest; the multi-client cases also run under
// TSan in CI.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fd_stream.h"
#include "common/string_pool.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/shard.h"
#include "poet/dump.h"
#include "testing/chaos_harness.h"

namespace ocep {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string golden_bytes() {
  return read_file(std::string(OCEP_SOURCE_DIR) + "/tools/zk962_golden.poet");
}

std::string golden_pattern() {
  return read_file(std::string(OCEP_SOURCE_DIR) + "/tools/zk962.ocep");
}

EventStore golden_store(StringPool& pool) {
  std::istringstream in(golden_bytes());
  return reload_store(in, pool);
}

/// The clean-channel reference match signature set.
std::vector<std::string> golden_clean() {
  StringPool pool;
  const EventStore store = golden_store(pool);
  return testing::clean_matches(store, pool, golden_pattern());
}

/// Default server config honouring OCEP_TEST_SHARDS, so CI can run the
/// whole suite against a single-reactor and a 4-shard daemon without
/// duplicating every test.
net::ServerConfig base_config() {
  net::ServerConfig config;
  if (const char* env = std::getenv("OCEP_TEST_SHARDS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      config.shards = static_cast<std::size_t>(n);
    }
  }
  return config;
}

/// Runs a Server on its own thread; stop() is idempotent and joins.
class ServerThread {
 public:
  explicit ServerThread(net::ServerConfig config)
      : server(std::move(config)) {
    thread_ = std::thread([this] { server.run(); });
  }
  ~ServerThread() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server.request_shutdown();
      thread_.join();
    }
  }

  net::Server server;

 private:
  std::thread thread_;
};

/// Deadline-based readiness poll: true as soon as `condition` holds,
/// false only after `deadline` elapses with it still false.  The one
/// blessed way this file waits on cross-thread state — no fixed-iteration
/// sleep loops, which under TSan or load turn into flaky truncated waits.
bool wait_until(const std::function<bool()>& condition,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(5000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= until) {
      return condition();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Polls a registry counter until it reaches `at_least` (5 s deadline).
bool wait_counter(net::Server& server, const std::string& key,
                  std::uint64_t at_least) {
  return wait_until(
      [&server, &key, at_least] {
        return server.counter_value(key) >= at_least;
      });
}

/// Streams the golden store as `tenant`, retrying while the server still
/// considers a predecessor connection attached (detach is asynchronous).
net::StreamResult stream_golden(std::uint16_t port, const std::string& tenant,
                                const net::StreamOptions& options = {}) {
  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig config;
  config.port = port;
  config.tenant = tenant;
  config.patterns = {golden_pattern()};
  for (int attempt = 0; attempt < 200; ++attempt) {
    const net::StreamResult result =
        net::stream_store(store, pool, config, options);
    // Two transient rejections: "attached" (a dead predecessor connection
    // not reaped yet) and "migrating" (the tenant is mid-hop between
    // shards).  Both clear in milliseconds.
    if (result.ack.status != net::AckStatus::kRejected ||
        (result.ack.message.find("attached") == std::string::npos &&
         result.ack.message.find("migrating") == std::string::npos)) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "tenant '" << tenant << "' never detached";
  return {};
}

TEST(NetProtocol, HandshakeRoundTripsIncrementally) {
  net::HandshakeRequest request;
  request.flags = net::kFlagResume;
  request.tenant = "tenant-a";
  request.patterns = {"p1", "p2"};
  const std::string wire = net::encode_handshake(request);

  net::HandshakeRequest decoded;
  std::string error;
  std::size_t pos = 0;
  // Byte-at-a-time: kNeedMore until the last byte, pos untouched.
  for (std::size_t cut = 0; cut + 1 < wire.size(); ++cut) {
    ASSERT_EQ(net::parse_handshake(wire.substr(0, cut), pos, decoded, error),
              net::ParseStatus::kNeedMore);
    ASSERT_EQ(pos, 0U);
  }
  ASSERT_EQ(net::parse_handshake(wire, pos, decoded, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(pos, wire.size());
  EXPECT_EQ(decoded.tenant, "tenant-a");
  EXPECT_EQ(decoded.patterns, request.patterns);
  EXPECT_TRUE(decoded.want_resume());
}

TEST(NetProtocol, AckCarriesOwningShardAndDefaultsToZero) {
  net::HandshakeAck ack;
  ack.status = net::AckStatus::kResumed;
  ack.resume_position = 42;
  ack.message = "hi";
  ack.shard = 3;
  const std::string wire = net::encode_ack(ack);

  net::HandshakeAck decoded;
  std::string error;
  std::size_t pos = 0;
  ASSERT_EQ(net::parse_ack(wire, pos, decoded, error), net::ParseStatus::kDone);
  EXPECT_EQ(decoded.shard, 3U);
  EXPECT_EQ(decoded.resume_position, 42U);

  // Default round trip: shard 0, the single-reactor daemon's answer.
  pos = 0;
  const std::string plain = net::encode_ack(net::HandshakeAck{});
  ASSERT_EQ(net::parse_ack(plain, pos, decoded, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(decoded.shard, 0U);
}

TEST(NetProtocol, CorruptHandshakeIsRejected) {
  net::HandshakeRequest request;
  request.tenant = "t";
  std::string wire = net::encode_handshake(request);
  wire[wire.size() - 1] = static_cast<char>(wire[wire.size() - 1] ^ 0x40);
  std::size_t pos = 0;
  net::HandshakeRequest decoded;
  std::string error;
  EXPECT_EQ(net::parse_handshake(wire, pos, decoded, error),
            net::ParseStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(NetProtocol, ReverseFramesRoundTrip) {
  ResyncRequest resync;
  resync.request_id = 7;
  resync.next_position = 123;
  const std::string wire = net::encode_resync_frame(resync) +
                           net::encode_fin_frame(true, "why") +
                           net::encode_notice_frame("note");
  std::size_t pos = 0;
  net::ReverseFrame frame;
  std::string error;
  ASSERT_EQ(net::parse_reverse_frame(wire, pos, frame, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(frame.type, net::kReverseResync);
  EXPECT_EQ(frame.resync.request_id, 7U);
  EXPECT_EQ(frame.resync.next_position, 123U);
  ASSERT_EQ(net::parse_reverse_frame(wire, pos, frame, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(frame.type, net::kReverseFin);
  EXPECT_TRUE(frame.degraded);
  EXPECT_EQ(frame.message, "why");
  ASSERT_EQ(net::parse_reverse_frame(wire, pos, frame, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(frame.type, net::kReverseNotice);
  EXPECT_EQ(frame.message, "note");
  EXPECT_EQ(pos, wire.size());
}

TEST(NetServe, SingleClientMatchesGolden) {
  ServerThread st(base_config());
  const net::StreamResult result =
      stream_golden(st.server.port(), "solo");
  ASSERT_EQ(result.ack.status, net::AckStatus::kFresh);
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("solo");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// The acceptance bar: 8 concurrent clients, one tenant each, all equal to
// the clean-channel reference.  Runs under TSan in CI (-R MultiClient).
TEST(NetServe, MultiClientConcurrentGoldenEquivalence) {
  constexpr int kClients = 8;
  net::ServerConfig config = base_config();
  config.tenant.monitor.worker_threads = 2;  // parallel pipeline per tenant
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  std::vector<std::thread> producers;
  std::vector<net::StreamResult> results(kClients);
  producers.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    producers.emplace_back([&results, port, i] {
      results[static_cast<std::size_t>(i)] =
          stream_golden(port, "t" + std::to_string(i));
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  st.stop();

  const std::vector<std::string> clean = golden_clean();
  for (int i = 0; i < kClients; ++i) {
    SCOPED_TRACE("tenant t" + std::to_string(i));
    const net::StreamResult& result = results[static_cast<std::size_t>(i)];
    ASSERT_TRUE(result.fin_received);
    EXPECT_FALSE(result.fin.degraded);
    net::Tenant* tenant = st.server.find_tenant("t" + std::to_string(i));
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
    EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), clean);
  }
}

TEST(NetServe, ByteAtATimeTrickleReassembles) {
  ServerThread st(base_config());
  net::StreamOptions options;
  options.session.max_frame_payload = 1U << 12U;
  const std::uint16_t port = st.server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig config;
  config.port = port;
  config.tenant = "trickle";
  config.patterns = {golden_pattern()};
  config.write_chunk = 1;  // one byte per send()
  const net::StreamResult result =
      net::stream_store(store, pool, config, options);
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("trickle");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// Satellite regression: a client dying mid-frame must finalize its tenant
// through the session's degradation machinery — monitor retained and
// reporting, never leaked, never wedging the server.
TEST(NetServe, MidFrameDisconnectFinalizesDegraded) {
  net::ServerConfig config = base_config();
  config.detach_linger_ms = 100;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  {
    // Capture the session encoding, then send a prefix that ends inside a
    // frame (three bytes short of a frame boundary).
    class Capture final : public ByteSink {
     public:
      void write(std::string_view bytes) override { data.append(bytes); }
      std::string data;
    };
    Capture capture;
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(capture, pool, names);
    for (std::uint64_t pos = 0; pos < store.event_count() / 2; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    net::ConnectorConfig cc;
    cc.port = port;
    cc.tenant = "lossy";
    cc.patterns = {golden_pattern()};
    net::Connector connector(cc);
    ASSERT_NE(connector.ack().status, net::AckStatus::kRejected);
    connector.write(
        std::string_view(capture.data).substr(0, capture.data.size() - 3));
    connector.close();  // abrupt death, mid-frame
  }

  ASSERT_TRUE(wait_counter(st.server, "net.linger_finalized", 1));

  // The server must keep serving: a second tenant streams cleanly while
  // the first sits finalized.
  const net::StreamResult clean_run = stream_golden(port, "healthy");
  ASSERT_TRUE(clean_run.fin_received);
  EXPECT_FALSE(clean_run.fin.degraded);
  st.stop();

  net::Tenant* lossy = st.server.find_tenant("lossy");
  ASSERT_NE(lossy, nullptr);
  EXPECT_EQ(lossy->state(), net::TenantState::kDegraded);
  EXPECT_GT(lossy->monitor().events_seen(), 0U);
  EXPECT_LT(lossy->monitor().events_seen(), 342U);
  // Whatever it matched is consistent with (a prefix of) the clean run.
  EXPECT_TRUE(testing::is_subset_of(
      testing::match_signature(lossy->monitor(), 0), golden_clean()));

  net::Tenant* healthy = st.server.find_tenant("healthy");
  ASSERT_NE(healthy, nullptr);
  EXPECT_EQ(testing::match_signature(healthy->monitor(), 0), golden_clean());
}

// Kill a producer mid-stream, reconnect, and resume past a deliberate gap:
// the server-side session requests a resync over the reverse channel and
// the snapshot frames refill the hole over TCP.
TEST(NetServe, KillAndReconnectResumesViaSnapshotResync) {
  net::ServerConfig config = base_config();
  config.detach_linger_ms = 10000;  // survive the reconnect window
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  net::StreamOptions first_half;
  first_half.max_events = 150;
  const net::StreamResult first = stream_golden(port, "phoenix", first_half);
  ASSERT_EQ(first.ack.status, net::AckStatus::kFresh);
  EXPECT_FALSE(first.fin_received);  // killed before BYE

  // Reconnect, suppressing everything below position 200.  The server saw
  // at most 150 events, so the hole [watermark, 200) is real and only a
  // snapshot resync over the reverse channel can fill it.
  net::StreamOptions rest;
  rest.skip_below = 200;
  const net::StreamResult second = stream_golden(port, "phoenix", rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed);
  EXPECT_GT(second.ack.resume_position, 0U);
  ASSERT_TRUE(second.fin_received);
  // Recovered purely via resync: NOT degraded.
  EXPECT_FALSE(second.fin.degraded);
  EXPECT_GT(second.session.resyncs_served, 0U);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("phoenix");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// The shutdown/restart acceptance bar: SIGTERM (request_shutdown — same
// code path) mid-stream checkpoints the tenant; a restarted server
// restores it, the producer resumes at the watermark, and the final
// monitor state is byte-identical to an uninterrupted run.
TEST(NetServe, CheckpointOnShutdownThenRestartResumesByteIdentical) {
  const std::string dir =
      ::testing::TempDir() + "ocep_net_ckp_" + std::to_string(::getpid());
  constexpr std::uint64_t kHalf = 171;

  std::atomic<std::uint64_t> released{0};
  net::ServerConfig config = base_config();
  config.checkpoint_dir = dir;
  config.detach_linger_ms = 10000;
  config.observe_hook = [&released](std::string_view, std::uint64_t) {
    released.fetch_add(1, std::memory_order_relaxed);
  };
  auto st = std::make_unique<ServerThread>(std::move(config));
  const std::uint16_t port1 = st->server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = port1;
  cc.tenant = "durable";
  cc.patterns = {golden_pattern()};
  {
    // Keep the connection open while the server is terminated, as a real
    // daemon kill would.
    net::Connector connector(cc);
    ASSERT_EQ(connector.ack().status, net::AckStatus::kFresh);
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(connector, pool, names);
    for (std::uint64_t pos = 0; pos < kHalf; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    ASSERT_TRUE(wait_until([&released] { return released.load() >= kHalf; }));
    ASSERT_EQ(released.load(), kHalf);
    st->stop();  // graceful shutdown: drains + checkpoints mid-stream
  }

  // Restart against the same checkpoint directory and finish the stream
  // from the watermark on.
  net::ServerConfig config2 = base_config();
  config2.checkpoint_dir = dir;
  config2.detach_linger_ms = 10000;
  ServerThread st2(std::move(config2));
  net::StreamOptions rest;
  rest.skip_below = kHalf;
  const net::StreamResult second =
      stream_golden(st2.server.port(), "durable", rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed)
      << second.ack.message;
  ASSERT_EQ(second.ack.resume_position, kHalf);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  st2.stop();

  net::Tenant* resumed = st2.server.find_tenant("durable");
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->state(), net::TenantState::kComplete);
  EXPECT_EQ(resumed->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(resumed->monitor(), 0), golden_clean());

  // Byte-identity of the matching state against an uninterrupted run.
  ServerThread st3(base_config());
  const net::StreamResult uninterrupted =
      stream_golden(st3.server.port(), "durable");
  ASSERT_TRUE(uninterrupted.fin_received);
  st3.stop();
  net::Tenant* reference = st3.server.find_tenant("durable");
  ASSERT_NE(reference, nullptr);

  std::stringstream resumed_ckp;
  resumed->checkpoint(resumed_ckp);
  std::stringstream reference_ckp;
  reference->checkpoint(reference_ckp);
  const net::TenantCheckpoint a = net::read_tenant_checkpoint(resumed_ckp);
  const net::TenantCheckpoint b = net::read_tenant_checkpoint(reference_ckp);
  EXPECT_EQ(a.monitor_blob, b.monitor_blob);
}

TEST(NetServe, ByteBudgetShedsTenantAndRejectsReattach) {
  net::ServerConfig config = base_config();
  config.max_tenant_bytes = 2048;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  // The shed closes the connection while the producer may still be
  // writing; both a degraded FIN and a dropped connection are valid
  // producer-side observations.
  try {
    const net::StreamResult result = stream_golden(port, "greedy");
    if (result.fin_received) {
      EXPECT_TRUE(result.fin.degraded);
    }
  } catch (const net::NetError&) {
    // Producer lost the race to the close; the server-side state decides.
  }
  ASSERT_TRUE(wait_counter(st.server, "net.tenants_shed", 1));

  // Re-attaching a shed tenant is refused.
  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = port;
  cc.tenant = "greedy";
  cc.patterns = {golden_pattern()};
  const net::StreamResult retry = net::stream_store(store, pool, cc, {});
  EXPECT_EQ(retry.ack.status, net::AckStatus::kRejected);
  EXPECT_NE(retry.ack.message.find("shed"), std::string::npos);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("greedy");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kShed);
}

TEST(NetServe, AdminPlaneServesMetricsAndHealth) {
  ServerThread st(base_config());
  const net::StreamResult result = stream_golden(st.server.port(), "adm");
  ASSERT_TRUE(result.fin_received);

  const auto http_get = [&](const std::string& target) {
    net::OwnedFd fd = net::tcp_connect("127.0.0.1", st.server.admin_port());
    const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
    net::write_all(fd.get(), request, 5000);
    std::string response;
    char chunk[4096];
    while (true) {
      if (!net::wait_readable(fd.get(), 5000)) {
        break;
      }
      const net::IoResult got = net::read_some(fd.get(), chunk, sizeof(chunk));
      if (got.status == net::IoStatus::kOk) {
        response.append(chunk, got.bytes);
        continue;
      }
      break;
    }
    return response;
  };

  const std::string metrics = http_get("/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("net_accepted"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("tenant=\"adm\""), std::string::npos);

  const std::string health = http_get("/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("\"adm\""), std::string::npos);
  EXPECT_NE(health.find("\"state\":\"complete\""), std::string::npos);

  const std::string missing = http_get("/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  st.stop();
}

// The sharded acceptance bar: 8 concurrent clients against a 4-shard
// daemon, every tenant equal to the clean-channel reference and placed on
// its affinity shard.  Runs under TSan in CI (-R MultiClient).
TEST(NetShard, MultiClientShardedGoldenEquivalence) {
  constexpr int kClients = 8;
  constexpr std::size_t kShards = 4;
  net::ServerConfig config;
  config.shards = kShards;
  config.tenant.monitor.worker_threads = 2;  // parallel pipeline per tenant
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  std::vector<std::thread> producers;
  std::vector<net::StreamResult> results(kClients);
  producers.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    producers.emplace_back([&results, port, i] {
      results[static_cast<std::size_t>(i)] =
          stream_golden(port, "s" + std::to_string(i));
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  st.stop();

  const std::vector<std::string> clean = golden_clean();
  for (int i = 0; i < kClients; ++i) {
    const std::string name = "s" + std::to_string(i);
    SCOPED_TRACE("tenant " + name);
    const net::StreamResult& result = results[static_cast<std::size_t>(i)];
    ASSERT_TRUE(result.fin_received);
    EXPECT_FALSE(result.fin.degraded);
    net::Tenant* tenant = st.server.find_tenant(name);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
    EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), clean);
    EXPECT_EQ(st.server.tenant_shard(name),
              static_cast<int>(net::shard_for(name, kShards)));
  }
}

// With SO_REUSEPORT the kernel picks an arbitrary shard per connect, so
// across 24 tenants some handshakes must land on a non-owning shard and
// migrate (P(all 24 land on their owner) = 4^-24).  Every tenant must
// end up on its affinity shard regardless of where it connected.
TEST(NetShard, HandshakeMigratesTenantsToOwningShard) {
  constexpr int kTenants = 24;
  constexpr std::size_t kShards = 4;
  net::ServerConfig config;
  config.shards = kShards;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  for (int i = 0; i < kTenants; ++i) {
    const net::StreamResult result =
        stream_golden(port, "mig" + std::to_string(i));
    ASSERT_TRUE(result.fin_received) << "tenant mig" << i;
    EXPECT_FALSE(result.fin.degraded);
  }
  EXPECT_GE(st.server.counter_value("net.conn_migrations"), 1U);
  st.stop();

  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "mig" + std::to_string(i);
    SCOPED_TRACE("tenant " + name);
    net::Tenant* tenant = st.server.find_tenant(name);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
    EXPECT_EQ(st.server.tenant_shard(name),
              static_cast<int>(net::shard_for(name, kShards)));
  }
}

// Shard-affinity resume across a repartition: kill the producer
// mid-stream, SIGTERM a 3-shard daemon (checkpointing into the shared
// directory), restart with 2 shards, and the tenant must restore on its
// new affinity shard and finish byte-identical to an uninterrupted run.
TEST(NetShard, RestartWithDifferentShardCountResumesByteIdentical) {
  const std::string dir =
      ::testing::TempDir() + "ocep_net_reshard_" + std::to_string(::getpid());
  constexpr std::uint64_t kHalf = 171;
  const std::string name = "resharded";

  std::atomic<std::uint64_t> released{0};
  net::ServerConfig config;
  config.shards = 3;
  config.checkpoint_dir = dir;
  config.detach_linger_ms = 10000;
  config.observe_hook = [&released](std::string_view, std::uint64_t) {
    released.fetch_add(1, std::memory_order_relaxed);
  };
  auto st = std::make_unique<ServerThread>(std::move(config));
  const std::uint16_t port1 = st->server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = port1;
  cc.tenant = name;
  cc.patterns = {golden_pattern()};
  {
    net::Connector connector(cc);
    ASSERT_EQ(connector.ack().status, net::AckStatus::kFresh);
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(connector, pool, names);
    for (std::uint64_t pos = 0; pos < kHalf; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    ASSERT_TRUE(wait_until([&released] { return released.load() >= kHalf; }));
    ASSERT_EQ(released.load(), kHalf);
    st->stop();  // graceful shutdown: drains + checkpoints mid-stream
  }
  EXPECT_EQ(st->server.tenant_shard(name),
            static_cast<int>(net::shard_for(name, 3)));

  // Restart against the same checkpoint directory with a different shard
  // count; the tenant must restore on its new owner and resume exactly.
  net::ServerConfig config2;
  config2.shards = 2;
  config2.checkpoint_dir = dir;
  config2.detach_linger_ms = 10000;
  ServerThread st2(std::move(config2));
  net::StreamOptions rest;
  rest.skip_below = kHalf;
  const net::StreamResult second =
      stream_golden(st2.server.port(), name, rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed) << second.ack.message;
  ASSERT_EQ(second.ack.resume_position, kHalf);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  st2.stop();

  EXPECT_EQ(st2.server.tenant_shard(name),
            static_cast<int>(net::shard_for(name, 2)));
  net::Tenant* resumed = st2.server.find_tenant(name);
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->state(), net::TenantState::kComplete);
  EXPECT_EQ(resumed->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(resumed->monitor(), 0), golden_clean());

  // Byte-identity of the matching state against an uninterrupted run.
  ServerThread st3(base_config());
  const net::StreamResult uninterrupted =
      stream_golden(st3.server.port(), name);
  ASSERT_TRUE(uninterrupted.fin_received);
  st3.stop();
  net::Tenant* reference = st3.server.find_tenant(name);
  ASSERT_NE(reference, nullptr);

  std::stringstream resumed_ckp;
  resumed->checkpoint(resumed_ckp);
  std::stringstream reference_ckp;
  reference->checkpoint(reference_ckp);
  const net::TenantCheckpoint a = net::read_tenant_checkpoint(resumed_ckp);
  const net::TenantCheckpoint b = net::read_tenant_checkpoint(reference_ckp);
  EXPECT_EQ(a.monitor_blob, b.monitor_blob);
}

// ===================================================================
// NetRebalance: the live tenant-migration torture suite.  A migration
// freezes a tenant at a frame boundary on its source shard, carries the
// OCEPNTC1 image (plus any attached socket and both directions' buffered
// bytes) through the destination's mailbox, and resumes byte-identically.
// These tests force migrations mid-stream, race them against
// disconnects, inject faults at every phase, and check the placement
// override map across restarts.
// ===================================================================

/// Forces one migration of `name` to `target` and waits for it to settle
/// (adopted, bounced home, or dropped — placement clears `migrating` in
/// every terminal state).  False when the source refused.
bool force_migration(net::Server& server, const std::string& name,
                     std::size_t target) {
  if (!server.migrate_tenant(name, target)) {
    return false;
  }
  return wait_until(
      [&server, &name] { return !server.placement().is_migrating(name); });
}

// Migrate-while-streaming equivalence: a producer streams the golden
// store while the tenant is bounced between shards under its feet.  The
// producer must never observe the hops (clean FIN, no resyncs needed
// beyond what churn causes) and the final monitor state must be
// byte-identical to an unsharded, unmigrated run.
TEST(NetRebalance, MigrateWhileStreamingMatchesUnshardedRun) {
  constexpr std::size_t kShards = 4;
  const std::string name = "roamer";
  net::ServerConfig config;
  config.shards = kShards;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  std::atomic<bool> streaming{true};
  net::StreamResult result;
  std::thread producer([&] {
    net::StreamOptions so;
    // ~1.5 ms per event: the stream stays live long enough for several
    // migrations to land mid-flight.
    so.before_write = [](std::uint64_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(1500));
    };
    result = stream_golden(port, name, so);
    streaming.store(false, std::memory_order_release);
  });

  // Ping-pong the tenant between its affinity shard and a neighbour for
  // as long as the stream lasts.
  const std::size_t home = net::shard_for(name, kShards);
  std::size_t hops = 0;
  std::size_t at = home;
  while (streaming.load(std::memory_order_acquire)) {
    const std::size_t next = at == home ? (home + 1) % kShards : home;
    if (force_migration(st.server, name, next)) {
      at = next;
      ++hops;
    } else {
      // Tenant not handshaken yet (or a hop raced the stream's end).
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  producer.join();
  EXPECT_GE(hops, 3U) << "stream finished before migrations could land";
  EXPECT_GE(st.server.counter_value("net.tenant_migrations"), hops);
  EXPECT_GE(st.server.counter_value("net.tenant_adoptions"), hops);
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);
  st.stop();

  net::Tenant* roamer = st.server.find_tenant(name);
  ASSERT_NE(roamer, nullptr);
  EXPECT_EQ(roamer->state(), net::TenantState::kComplete);
  EXPECT_EQ(roamer->monitor().events_seen(), 342U);
  EXPECT_EQ(roamer->migrations, hops);
  EXPECT_EQ(testing::match_signature(roamer->monitor(), 0), golden_clean());

  // Byte-identity against an unsharded, unmigrated reference run.
  net::ServerConfig ref_config;
  ref_config.shards = 1;
  ServerThread ref(std::move(ref_config));
  const net::StreamResult ref_result = stream_golden(ref.server.port(), name);
  ASSERT_TRUE(ref_result.fin_received);
  ref.stop();
  net::Tenant* reference = ref.server.find_tenant(name);
  ASSERT_NE(reference, nullptr);

  std::stringstream roamed_ckp;
  roamer->checkpoint(roamed_ckp);
  std::stringstream reference_ckp;
  reference->checkpoint(reference_ckp);
  const net::TenantCheckpoint a = net::read_tenant_checkpoint(roamed_ckp);
  const net::TenantCheckpoint b = net::read_tenant_checkpoint(reference_ckp);
  EXPECT_EQ(a.monitor_blob, b.monitor_blob);
}

// The acceptance torture bar: >= 100 forced ping-pong hops while the
// producer streams, with an exactly-once position bitmap proving zero
// event loss and zero duplicate observes across every hop.
TEST(NetRebalance, HundredPingPongHopsLoseNothingDuplicateNothing) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kHops = 110;
  constexpr std::uint64_t kEvents = 342;
  const std::string name = "pingpong";

  // One slot per golden position; the observe hook runs serially per
  // tenant, so relaxed increments are enough.
  std::vector<std::atomic<std::uint32_t>> observed(kEvents);
  net::ServerConfig config;
  config.shards = kShards;
  config.observe_hook = [&observed](std::string_view, std::uint64_t position) {
    if (position < kEvents) {
      observed[position].fetch_add(1, std::memory_order_relaxed);
    }
  };
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  std::atomic<bool> streaming{true};
  net::StreamResult result;
  std::thread producer([&] {
    net::StreamOptions so;
    so.before_write = [](std::uint64_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(1200));
    };
    result = stream_golden(port, name, so);
    streaming.store(false, std::memory_order_release);
  });

  // Keep hopping to the full budget even if the stream drains first — a
  // detached or complete tenant must survive migration just as cleanly.
  const std::size_t home = net::shard_for(name, kShards);
  std::size_t hops = 0;
  std::size_t at = home;
  while (hops < kHops) {
    const std::size_t next = at == home ? (home + 1) % kShards : home;
    if (force_migration(st.server, name, next)) {
      at = next;
      ++hops;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  producer.join();
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);
  EXPECT_GE(st.server.counter_value("net.tenant_migrations"), kHops);
  EXPECT_GE(st.server.counter_value("net.tenant_adoptions"), kHops);
  EXPECT_EQ(st.server.counter_value("net.tenant_migration_failures"), 0U);
  EXPECT_EQ(st.server.counter_value("net.tenant_migration_dropped"), 0U);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant(name);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), kEvents);
  EXPECT_GE(tenant->migrations, kHops);
  // The bitmap is the loss/duplication proof: every position exactly once.
  for (std::uint64_t pos = 0; pos < kEvents; ++pos) {
    ASSERT_EQ(observed[pos].load(), 1U) << "position " << pos;
  }
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// Migration raced against an abrupt disconnect and a resuming reconnect:
// the tenant is moved twice while detached (its producer died mid-frame
// moments earlier), then the producer comes back past a deliberate gap
// and must resume via resync on the tenant's *new* shard.
TEST(NetRebalance, MigrationRacesDisconnectThenResumesOnNewShard) {
  constexpr std::size_t kShards = 4;
  const std::string name = "racer";
  net::ServerConfig config;
  config.shards = kShards;
  config.detach_linger_ms = 10000;  // survive the reconnect window
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  net::StreamOptions first_half;
  first_half.max_events = 150;
  const net::StreamResult first = stream_golden(port, name, first_half);
  ASSERT_EQ(first.ack.status, net::AckStatus::kFresh);
  EXPECT_FALSE(first.fin_received);  // abrupt death, no BYE

  // Migrate immediately — deliberately racing the server's reap of the
  // dead socket — then hop once more while detached.
  const std::size_t home = net::shard_for(name, kShards);
  const std::size_t hop1 = (home + 1) % kShards;
  const std::size_t hop2 = (home + 2) % kShards;
  ASSERT_TRUE(wait_until([&] { return force_migration(st.server, name, hop1); }));
  ASSERT_TRUE(force_migration(st.server, name, hop2));

  // Reconnect past a hole: only a snapshot resync can refill [150, 200).
  net::StreamOptions rest;
  rest.skip_below = 200;
  const net::StreamResult second = stream_golden(port, name, rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed) << second.ack.message;
  // The ack names the shard that answered; it must be the migrated-to
  // one (the handshake-time hand-off routed the connection there).
  EXPECT_EQ(second.ack.shard, hop2);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  EXPECT_GT(second.session.resyncs_served, 0U);
  st.stop();

  EXPECT_EQ(st.server.tenant_shard(name), static_cast<int>(hop2));
  net::Tenant* tenant = st.server.find_tenant(name);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// Kill-point fault injection: fail a migration at each phase in turn.
// Freeze and transfer failures must abort with the tenant untouched on
// its source shard; an adoption failure must bounce it home.  After all
// three, the tenant still completes its stream with zero loss.
TEST(NetRebalance, KillPointsAtEveryPhaseNeverLoseTheTenant) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kEvents = 342;
  const std::string name = "victim";

  // -1 = no fault; otherwise the phase to fail exactly once.
  auto fail_phase = std::make_shared<std::atomic<int>>(-1);
  std::vector<std::atomic<std::uint32_t>> observed(kEvents);
  net::ServerConfig config;
  config.shards = kShards;
  config.detach_linger_ms = 10000;
  config.migration_hook = [fail_phase](net::MigrationPhase phase,
                                       std::string_view) {
    int want = static_cast<int>(phase);
    return fail_phase->compare_exchange_strong(want, -1);
  };
  config.observe_hook = [&observed](std::string_view, std::uint64_t position) {
    if (position < kEvents) {
      observed[position].fetch_add(1, std::memory_order_relaxed);
    }
  };
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  // Put real state on the tenant first (abrupt half-stream, no BYE).
  net::StreamOptions first_half;
  first_half.max_events = 150;
  const net::StreamResult first = stream_golden(port, name, first_half);
  ASSERT_EQ(first.ack.status, net::AckStatus::kFresh);

  const std::size_t home = net::shard_for(name, kShards);
  const std::size_t away = (home + 1) % kShards;

  // Freeze fails: the source refuses before anything is serialized.
  fail_phase->store(static_cast<int>(net::MigrationPhase::kFreeze));
  ASSERT_TRUE(wait_until([&] {
    // Retried because the dead first connection may still be reaping.
    return !st.server.migrate_tenant(name, away) &&
           st.server.counter_value("net.tenant_migration_failures") >= 1;
  }));
  EXPECT_EQ(st.server.tenant_shard(name), static_cast<int>(home));

  // Transfer fails: serialization aborted, tenant stays home.
  fail_phase->store(static_cast<int>(net::MigrationPhase::kTransfer));
  EXPECT_FALSE(st.server.migrate_tenant(name, away));
  EXPECT_GE(st.server.counter_value("net.tenant_migration_failures"), 2U);
  EXPECT_FALSE(st.server.placement().is_migrating(name));
  EXPECT_EQ(st.server.tenant_shard(name), static_cast<int>(home));

  // Adoption fails: the handoff reaches the destination, which bounces
  // the blob straight back; the tenant must land home intact.
  fail_phase->store(static_cast<int>(net::MigrationPhase::kAdopt));
  ASSERT_TRUE(st.server.migrate_tenant(name, away));
  ASSERT_TRUE(wait_counter(st.server, "net.tenant_bounced", 1));
  ASSERT_TRUE(wait_until(
      [&] { return !st.server.placement().is_migrating(name); }));
  ASSERT_TRUE(
      wait_until([&] { return st.server.tenant_shard(name) ==
                              static_cast<int>(home); }));

  // After all three kill points: a clean hop still works...
  ASSERT_EQ(fail_phase->load(), -1);
  ASSERT_TRUE(force_migration(st.server, name, away));
  ASSERT_TRUE(wait_counter(st.server, "net.tenant_adoptions", 1));

  // ...and the producer resumes and completes with zero loss.
  net::StreamOptions rest;
  rest.skip_below = 150;
  const net::StreamResult second = stream_golden(port, name, rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed) << second.ack.message;
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant(name);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), kEvents);
  for (std::uint64_t pos = 0; pos < kEvents; ++pos) {
    ASSERT_EQ(observed[pos].load(), 1U) << "position " << pos;
  }
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// Placement-override persistence: a migrated tenant's placement survives
// restart — it restores on the shard the migration chose, not its hash
// shard.  And an override naming a shard that no longer exists after a
// --shards shrink falls back to the affinity hash instead of vanishing.
TEST(NetRebalance, PlacementOverrideSurvivesRestartAndShardShrink) {
  const std::string dir = ::testing::TempDir() + "ocep_net_rebal_ckp_" +
                          std::to_string(::getpid());
  const std::string keeper = "ovr_keep";  // override stays valid at 2 shards
  const std::string faller = "ovr_fall";  // override invalid at 2 shards

  net::ServerConfig config;
  config.shards = 4;
  config.checkpoint_dir = dir;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  const net::StreamResult r1 = stream_golden(port, keeper);
  ASSERT_TRUE(r1.fin_received);
  const net::StreamResult r2 = stream_golden(port, faller);
  ASSERT_TRUE(r2.fin_received);

  // Move keeper to a low shard (survives a shrink to 2), faller to a
  // high one (does not).
  const std::size_t keep_to = net::shard_for(keeper, 4) == 1 ? 0 : 1;
  const std::size_t fall_to = net::shard_for(faller, 4) == 3 ? 2 : 3;
  ASSERT_TRUE(wait_until(
      [&] { return force_migration(st.server, keeper, keep_to); }));
  ASSERT_TRUE(wait_until(
      [&] { return force_migration(st.server, faller, fall_to); }));
  st.stop();  // writes checkpoints and placement.map
  EXPECT_EQ(st.server.tenant_shard(keeper), static_cast<int>(keep_to));
  EXPECT_EQ(st.server.tenant_shard(faller), static_cast<int>(fall_to));

  // Same shard count: both restore exactly where migration put them.
  {
    net::ServerConfig config2;
    config2.shards = 4;
    config2.checkpoint_dir = dir;
    net::Server server2(std::move(config2));  // restore happens at build
    EXPECT_EQ(server2.tenant_shard(keeper), static_cast<int>(keep_to));
    EXPECT_EQ(server2.tenant_shard(faller), static_cast<int>(fall_to));
  }

  // Shrink to 2 shards: the keeper's override still names a real shard
  // and is honoured; the faller's names shard >= 2 and falls back to its
  // affinity hash.
  {
    net::ServerConfig config3;
    config3.shards = 2;
    config3.checkpoint_dir = dir;
    net::Server server3(std::move(config3));
    EXPECT_EQ(server3.tenant_shard(keeper), static_cast<int>(keep_to));
    EXPECT_EQ(server3.tenant_shard(faller),
              static_cast<int>(net::shard_for(faller, 2)));
    net::Tenant* restored = server3.find_tenant(keeper);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->monitor().events_seen(), 342U);
  }
}

// With rebalancing on, fresh tenants are placed least-loaded instead of
// by hash: on an idle daemon that degenerates to resident-count
// round-robin, so N tenants over M shards spread exactly N/M each.
TEST(NetRebalance, FreshTenantsSpreadLeastLoaded) {
  constexpr std::size_t kShards = 4;
  constexpr int kTenants = 8;
  net::ServerConfig config;
  config.shards = kShards;
  config.rebalance = true;
  config.rebalance_interval_ms = 60000;  // placement only; no cycles
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  for (int i = 0; i < kTenants; ++i) {
    const net::StreamResult result =
        stream_golden(port, "fresh" + std::to_string(i));
    ASSERT_TRUE(result.fin_received) << "tenant fresh" << i;
  }
  st.stop();

  std::vector<int> per_shard(kShards, 0);
  for (int i = 0; i < kTenants; ++i) {
    const int shard = st.server.tenant_shard("fresh" + std::to_string(i));
    ASSERT_GE(shard, 0);
    ++per_shard[static_cast<std::size_t>(shard)];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(per_shard[s], kTenants / static_cast<int>(kShards))
        << "shard " << s;
  }
}

// The rebalancer end-to-end: a deliberately skewed daemon (every tenant
// force-migrated onto shard 0) must spread back out under load scoring —
// cycles fire, hot tenants move off the hot shard, and the spread
// tightens, all while producers stream.
TEST(NetRebalance, RebalancerSpreadsAForcedHotShard) {
  constexpr std::size_t kShards = 4;
  constexpr int kTenants = 8;
  net::ServerConfig config;
  config.shards = kShards;
  config.rebalance = true;
  config.rebalance_interval_ms = 40;
  config.rebalance_min_rate = 2048;  // test streams are small
  config.rebalance_cooldown_ms = 200;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  // All eight producers stream concurrently, slowly, as their tenants
  // are first piled onto shard 0 and then spread back by the rebalancer.
  std::vector<std::thread> producers;
  std::vector<net::StreamResult> results(kTenants);
  for (int i = 0; i < kTenants; ++i) {
    producers.emplace_back([&results, port, i] {
      net::StreamOptions so;
      so.before_write = [](std::uint64_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(2500));
      };
      results[static_cast<std::size_t>(i)] =
          stream_golden(port, "hot" + std::to_string(i), so);
    });
  }

  // Pile every tenant onto shard 0 (ignore failures: a tenant may not
  // have handshaken yet — the pile-up only needs to mostly succeed).
  std::size_t piled = 0;
  for (int round = 0; round < 50 && piled < kTenants; ++round) {
    piled = 0;
    for (int i = 0; i < kTenants; ++i) {
      const std::string name = "hot" + std::to_string(i);
      if (st.server.tenant_shard(name) == 0 ||
          force_migration(st.server, name, 0)) {
        ++piled;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(piled, static_cast<std::size_t>(kTenants - 1));

  // The periodic rebalancer must now act: cycles fire and tenants move
  // off the pile while the streams are still running.
  EXPECT_TRUE(wait_counter(st.server, "net.rebalance_cycles", 2));
  EXPECT_TRUE(wait_counter(st.server, "net.rebalance_moves", 1));

  for (std::thread& t : producers) {
    t.join();
  }
  st.stop();

  // Every stream survived the churn bit-exactly.
  const std::vector<std::string> clean = golden_clean();
  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "hot" + std::to_string(i);
    SCOPED_TRACE("tenant " + name);
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].fin_received);
    EXPECT_FALSE(results[static_cast<std::size_t>(i)].fin.degraded);
    net::Tenant* tenant = st.server.find_tenant(name);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
    EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), clean);
  }
  // And the pile actually thinned: not all tenants still sit on shard 0.
  int on_zero = 0;
  for (int i = 0; i < kTenants; ++i) {
    if (st.server.tenant_shard("hot" + std::to_string(i)) == 0) {
      ++on_zero;
    }
  }
  EXPECT_LT(on_zero, kTenants);
}

// ===================================================================
// NetStore: crash-consistent durability on the append-only segment log
// (--store-dir).  Input deltas are group-committed on the flush
// interval, SIGTERM drains write only dirty state (never a full image
// per tenant), a SIGKILL image recovers to a prefix of the acknowledged
// stream, and cold tenants spill to the log under a byte budget.
// ===================================================================

namespace fs_store = std::filesystem;

/// Recursive byte total of every regular file under `dir`.
std::uintmax_t dir_bytes(const std::string& dir) {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       fs_store::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      total += entry.file_size();
    }
  }
  return total;
}

/// True when no `.ckp` whole-image checkpoint exists anywhere under
/// `dir` — the store path must never fall back to full-image writes.
bool no_ckp_files(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry :
       fs_store::recursive_directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".ckp") {
      return false;
    }
  }
  return true;
}

net::ServerConfig store_config(const std::string& dir) {
  net::ServerConfig config = base_config();
  config.store_dir = dir;
  config.flush_interval_ms = 10;
  return config;
}

// The store-backed shutdown/restart acceptance bar, mirroring the
// checkpoint-dir test above: SIGTERM mid-stream flushes the delta log, a
// restarted server replays base+deltas, the producer resumes at the
// watermark, and the final state is byte-identical to an uninterrupted
// run — with no whole-image .ckp file ever written.
TEST(NetStore, ShutdownRestartResumesByteIdentical) {
  const std::string dir =
      ::testing::TempDir() + "ocep_net_store_" + std::to_string(::getpid());
  fs_store::remove_all(dir);
  constexpr std::uint64_t kHalf = 171;

  std::atomic<std::uint64_t> released{0};
  net::ServerConfig config = store_config(dir);
  config.detach_linger_ms = 10000;
  config.observe_hook = [&released](std::string_view, std::uint64_t) {
    released.fetch_add(1, std::memory_order_relaxed);
  };
  auto st = std::make_unique<ServerThread>(std::move(config));
  const std::uint16_t port1 = st->server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = port1;
  cc.tenant = "durable";
  cc.patterns = {golden_pattern()};
  {
    net::Connector connector(cc);
    ASSERT_EQ(connector.ack().status, net::AckStatus::kFresh);
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(connector, pool, names);
    for (std::uint64_t pos = 0; pos < kHalf; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    ASSERT_TRUE(wait_until([&released] { return released.load() >= kHalf; }));
    st->stop();  // SIGTERM path: drain + flush the delta log
  }
  EXPECT_TRUE(no_ckp_files(dir));
  EXPECT_GT(st->server.counter_value("store.delta_records"), 0U);

  // Restart against the same store root and finish from the watermark.
  net::ServerConfig config2 = store_config(dir);
  config2.detach_linger_ms = 10000;
  ServerThread st2(std::move(config2));
  ASSERT_TRUE(wait_counter(st2.server, "net.tenants_restored", 1));
  net::StreamOptions rest;
  rest.skip_below = kHalf;
  const net::StreamResult second =
      stream_golden(st2.server.port(), "durable", rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed)
      << second.ack.message;
  ASSERT_EQ(second.ack.resume_position, kHalf);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  st2.stop();

  net::Tenant* resumed = st2.server.find_tenant("durable");
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->state(), net::TenantState::kComplete);
  EXPECT_EQ(resumed->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(resumed->monitor(), 0), golden_clean());

  // Byte-identity of the matching state against an uninterrupted run.
  ServerThread st3(base_config());
  const net::StreamResult uninterrupted =
      stream_golden(st3.server.port(), "durable");
  ASSERT_TRUE(uninterrupted.fin_received);
  st3.stop();
  net::Tenant* reference = st3.server.find_tenant("durable");
  ASSERT_NE(reference, nullptr);

  std::stringstream resumed_ckp;
  resumed->checkpoint(resumed_ckp);
  std::stringstream reference_ckp;
  reference->checkpoint(reference_ckp);
  const net::TenantCheckpoint a = net::read_tenant_checkpoint(resumed_ckp);
  const net::TenantCheckpoint b = net::read_tenant_checkpoint(reference_ckp);
  EXPECT_EQ(a.monitor_blob, b.monitor_blob);
}

// The O(dirty-state) drain contract: a full golden stream (well under the
// re-base threshold) persists as genesis + input deltas only — zero full
// images — and an idle restart+shutdown cycle appends not a single byte.
TEST(NetStore, ShutdownWritesOnlyDeltasAndIdleRestartAppendsNothing) {
  const std::string dir = ::testing::TempDir() + "ocep_net_store_delta_" +
                          std::to_string(::getpid());
  fs_store::remove_all(dir);

  {
    ServerThread st(store_config(dir));
    const net::StreamResult result = stream_golden(st.server.port(), "lean");
    ASSERT_TRUE(result.fin_received);
    EXPECT_FALSE(result.fin.degraded);
    st.stop();
    EXPECT_GT(st.server.counter_value("store.delta_records"), 0U);
    EXPECT_EQ(st.server.counter_value("store.genesis_records"), 1U);
    // The byte-count assertion: nothing but deltas — no image writes.
    EXPECT_EQ(st.server.counter_value("store.base_records"), 0U);
  }
  const std::uintmax_t after_first = dir_bytes(dir);
  ASSERT_GT(after_first, 0U);

  // Restart, touch nothing, shut down: recovery replays the log but the
  // drain finds no dirty state, so the store is byte-for-byte unchanged.
  {
    ServerThread st(store_config(dir));
    ASSERT_TRUE(wait_counter(st.server, "net.tenants_restored", 1));
    st.stop();
    EXPECT_EQ(st.server.counter_value("store.base_records"), 0U);
    net::Tenant* restored = st.server.find_tenant("lean");
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->monitor().events_seen(), 342U);
    EXPECT_EQ(testing::match_signature(restored->monitor(), 0),
              golden_clean());
  }
  EXPECT_EQ(dir_bytes(dir), after_first);
}

// The SIGKILL acceptance bar, via a directory snapshot: quiesce the
// group commit mid-stream, copy the store root (exactly what a kill -9
// leaves behind), and boot a server on the copy.  The tenant recovers to
// the acknowledged prefix, the producer resumes at the watermark, and
// the final state is byte-identical to a never-crashed run.
TEST(NetStore, CrashImageRecoversPrefixAndResumesToGolden) {
  const std::string dir = ::testing::TempDir() + "ocep_net_store_crash_" +
                          std::to_string(::getpid());
  const std::string image = dir + "_image";
  fs_store::remove_all(dir);
  fs_store::remove_all(image);
  constexpr std::uint64_t kHalf = 171;

  /// Counts the session wire bytes so the test can wait until the store
  /// has group-committed every byte the producer sent.
  class CountingSink final : public ByteSink {
   public:
    explicit CountingSink(ByteSink& inner) : inner_(inner) {}
    void write(std::string_view bytes) override {
      count += bytes.size();
      inner_.write(bytes);
    }
    std::uint64_t count = 0;

   private:
    ByteSink& inner_;
  };

  std::atomic<std::uint64_t> released{0};
  net::ServerConfig config = store_config(dir);
  config.detach_linger_ms = 10000;
  config.observe_hook = [&released](std::string_view, std::uint64_t) {
    released.fetch_add(1, std::memory_order_relaxed);
  };
  auto st = std::make_unique<ServerThread>(std::move(config));

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = st->server.port();
  cc.tenant = "phoenix";
  cc.patterns = {golden_pattern()};
  {
    net::Connector connector(cc);
    ASSERT_EQ(connector.ack().status, net::AckStatus::kFresh);
    CountingSink counted(connector);
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(counted, pool, names);
    for (std::uint64_t pos = 0; pos < kHalf; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    ASSERT_TRUE(wait_until([&released] { return released.load() >= kHalf; }));
    // Every wire byte group-committed (the delta-bytes counter is folded
    // only after the fsync), so the snapshot below is a complete image of
    // the acknowledged prefix.  The producer stays connected throughout —
    // copying the directory is the kill -9, not the disconnect.
    ASSERT_TRUE(wait_until([&] {
      return st->server.counter_value("store.delta_bytes") >= counted.count;
    }));
    std::error_code ec;
    fs_store::copy(dir, image, fs_store::copy_options::recursive, ec);
    ASSERT_FALSE(ec) << ec.message();
    st->stop();
    st.reset();
  }

  // First boot on the crash image: the acknowledged prefix, exactly.
  {
    net::ServerConfig config2 = store_config(image);
    ServerThread st2(std::move(config2));
    ASSERT_TRUE(wait_counter(st2.server, "net.tenants_restored", 1));
    st2.stop();
    net::Tenant* recovered = st2.server.find_tenant("phoenix");
    ASSERT_NE(recovered, nullptr);
    EXPECT_EQ(recovered->monitor().events_seen(), kHalf);
    EXPECT_TRUE(testing::is_subset_of(
        testing::match_signature(recovered->monitor(), 0), golden_clean()));
  }

  // Second boot (replay is idempotent): resume and run to completion.
  net::ServerConfig config3 = store_config(image);
  config3.detach_linger_ms = 10000;
  ServerThread st3(std::move(config3));
  net::StreamOptions rest;
  rest.skip_below = kHalf;
  const net::StreamResult second =
      stream_golden(st3.server.port(), "phoenix", rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed)
      << second.ack.message;
  ASSERT_EQ(second.ack.resume_position, kHalf);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  st3.stop();

  net::Tenant* resumed = st3.server.find_tenant("phoenix");
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(resumed->monitor(), 0), golden_clean());

  ServerThread st4(base_config());
  const net::StreamResult uninterrupted =
      stream_golden(st4.server.port(), "phoenix");
  ASSERT_TRUE(uninterrupted.fin_received);
  st4.stop();
  net::Tenant* reference = st4.server.find_tenant("phoenix");
  ASSERT_NE(reference, nullptr);

  std::stringstream resumed_ckp;
  resumed->checkpoint(resumed_ckp);
  std::stringstream reference_ckp;
  reference->checkpoint(reference_ckp);
  const net::TenantCheckpoint a = net::read_tenant_checkpoint(resumed_ckp);
  const net::TenantCheckpoint b = net::read_tenant_checkpoint(reference_ckp);
  EXPECT_EQ(a.monitor_blob, b.monitor_blob);
}

// Cold-tenant spill under a byte budget: a finished, detached tenant is
// written to the log (base + fsync before eviction) and leaves RAM; a
// reconnecting producer triggers the reload and sees its terminal FIN
// with the matching state fully intact.
TEST(NetStore, SpillsColdTenantAndUnspillsOnReconnect) {
  const std::string dir = ::testing::TempDir() + "ocep_net_store_spill_" +
                          std::to_string(::getpid());
  fs_store::remove_all(dir);

  net::ServerConfig config = store_config(dir);
  config.spill_bytes = 1;  // everything resident is over budget
  config.detach_linger_ms = 50;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  const net::StreamResult run = stream_golden(port, "iceberg");
  ASSERT_TRUE(run.fin_received);
  EXPECT_FALSE(run.fin.degraded);

  // Once the producer detaches, the next spill pass evicts the tenant:
  // its image goes to the log and the monitor leaves RAM.
  ASSERT_TRUE(wait_counter(st.server, "net.tenants_spilled", 1));
  EXPECT_GT(st.server.counter_value("store.base_records"), 0U);
  EXPECT_TRUE(wait_until([&st] {
    return st.server.find_tenant("iceberg") == nullptr;
  }));
  // The spilled tenant still counts and still reports (from metadata).
  EXPECT_EQ(st.server.tenant_count(), 1U);
  const std::string healthz = st.server.healthz_json();
  EXPECT_NE(healthz.find("\"spilled\""), std::string::npos) << healthz;

  // Reconnect: the handshake reloads the image from the log and answers
  // with the terminal FIN immediately (the stream already completed), so
  // a bare connector is the whole producer here.
  {
    net::ConnectorConfig cc;
    cc.port = port;
    cc.tenant = "iceberg";
    cc.patterns = {golden_pattern()};
    net::Connector back(cc);
    ASSERT_EQ(back.ack().status, net::AckStatus::kResumed)
        << back.ack().message;
    ASSERT_TRUE(back.wait_fin(nullptr));
    EXPECT_FALSE(back.fin().degraded);
  }
  ASSERT_TRUE(wait_counter(st.server, "net.tenants_unspilled", 1));
  st.stop();

  // The tenant may have been re-evicted after the reconnect detached
  // (the budget is still one byte), so verify the terminal state through
  // a fresh boot on the same store — spilled or resident, the log holds
  // the whole image.
  ServerThread verify(store_config(dir));
  ASSERT_TRUE(wait_counter(verify.server, "net.tenants_restored", 1));
  verify.stop();
  net::Tenant* thawed = verify.server.find_tenant("iceberg");
  ASSERT_NE(thawed, nullptr);
  EXPECT_EQ(thawed->state(), net::TenantState::kComplete);
  EXPECT_EQ(thawed->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(thawed->monitor(), 0), golden_clean());
}

// Repartition recovery: a store written by a 1-shard daemon restores
// under 4 shards (each shard scans its siblings' logs and claims what it
// owns at a higher epoch), and a third boot proves the tombstoned
// leftovers in the old log stay dead.
TEST(NetStore, ReshardRestoreClaimsTenantsAcrossShardLogs) {
  const std::string dir = ::testing::TempDir() + "ocep_net_store_reshard_" +
                          std::to_string(::getpid());
  fs_store::remove_all(dir);
  const std::vector<std::string> tenants = {"re0", "re1", "re2"};

  {
    net::ServerConfig config = store_config(dir);
    config.shards = 1;
    ServerThread st(std::move(config));
    for (const std::string& name : tenants) {
      const net::StreamResult result = stream_golden(st.server.port(), name);
      ASSERT_TRUE(result.fin_received) << name;
      EXPECT_FALSE(result.fin.degraded) << name;
    }
    st.stop();
  }

  // 4-shard boot: all three tenants must come back whole, each claimed by
  // its affinity shard from the shard-0 log.
  for (int boot = 0; boot < 2; ++boot) {
    SCOPED_TRACE("boot " + std::to_string(boot));
    net::ServerConfig config = store_config(dir);
    config.shards = 4;
    ServerThread st(std::move(config));
    ASSERT_TRUE(wait_counter(st.server, "net.tenants_restored",
                             tenants.size()));
    st.stop();
    for (const std::string& name : tenants) {
      net::Tenant* restored = st.server.find_tenant(name);
      ASSERT_NE(restored, nullptr) << name;
      EXPECT_EQ(restored->monitor().events_seen(), 342U) << name;
      EXPECT_EQ(testing::match_signature(restored->monitor(), 0),
                golden_clean())
          << name;
      EXPECT_EQ(st.server.tenant_shard(name),
                static_cast<int>(net::shard_for(name, 4)))
          << name;
    }
  }
}

// Satellite regression for common/fd_stream.h: a short-write/EAGAIN storm
// through a tiny socket buffer must deliver every byte exactly once (the
// old sync() restarted from pbase() after a failure, resending bytes the
// kernel had already accepted).
TEST(NetFdStream, ShortWritesNeverResendBytes) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  // Non-blocking writer: forces the EAGAIN path in FdOutBuf::sync().
  ASSERT_NO_THROW(net::set_nonblocking(fds[0]));

  std::string sent(1U << 20U, '\0');
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>((i * 131) & 0xff);
  }

  std::string received;
  std::thread reader([&received, fd = fds[1]] {
    char chunk[8192];
    while (true) {
      const ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got > 0) {
        received.append(chunk, static_cast<std::size_t>(got));
        // A slow consumer keeps the kernel buffer full on purpose.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      if (got < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
  });

  {
    FdOStream out(fds[0]);
    out.get().write(sent.data(), static_cast<std::streamsize>(sent.size()));
    out.get().flush();
    ASSERT_TRUE(out.get().good());
    EXPECT_EQ(out.buf().offset(), sent.size());
    EXPECT_FALSE(out.buf().error());
  }
  ::close(fds[0]);
  reader.join();
  ::close(fds[1]);

  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);  // any resend or loss breaks this
}

TEST(NetFdStream, DistinguishesEofFromError) {
  ::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  {  // EOF: peer closes cleanly.
    FdIStream in(fds[0]);
    ::close(fds[1]);
    char c = 0;
    in.get().read(&c, 1);
    EXPECT_TRUE(in.get().eof());
    EXPECT_TRUE(in.buf().eof());
    EXPECT_FALSE(in.buf().error());
  }
  ::close(fds[0]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {  // Error: writing into a closed peer is EPIPE, not EOF.
    ::close(fds[1]);
    FdOutBuf out(fds[0]);
    std::ostream stream(&out);
    const std::string bytes(1U << 16U, 'x');
    stream.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    stream.flush();
    EXPECT_FALSE(stream.good());
    EXPECT_TRUE(out.error());
    EXPECT_EQ(out.last_errno(), EPIPE);
  }
  ::close(fds[0]);
}

}  // namespace
}  // namespace ocep
