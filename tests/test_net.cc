// Loopback tests for the serving layer (src/net): a real ocep_served
// reactor on its own thread, real TCP connections from producer threads,
// checked against the clean-channel golden match set
// (tools/zk962_golden.poet — 342 events, 4 traces, 1 representative
// match).  Labeled `net` in ctest; the multi-client cases also run under
// TSan in CI.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fd_stream.h"
#include "common/string_pool.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/shard.h"
#include "poet/dump.h"
#include "testing/chaos_harness.h"

namespace ocep {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string golden_bytes() {
  return read_file(std::string(OCEP_SOURCE_DIR) + "/tools/zk962_golden.poet");
}

std::string golden_pattern() {
  return read_file(std::string(OCEP_SOURCE_DIR) + "/tools/zk962.ocep");
}

EventStore golden_store(StringPool& pool) {
  std::istringstream in(golden_bytes());
  return reload_store(in, pool);
}

/// The clean-channel reference match signature set.
std::vector<std::string> golden_clean() {
  StringPool pool;
  const EventStore store = golden_store(pool);
  return testing::clean_matches(store, pool, golden_pattern());
}

/// Default server config honouring OCEP_TEST_SHARDS, so CI can run the
/// whole suite against a single-reactor and a 4-shard daemon without
/// duplicating every test.
net::ServerConfig base_config() {
  net::ServerConfig config;
  if (const char* env = std::getenv("OCEP_TEST_SHARDS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      config.shards = static_cast<std::size_t>(n);
    }
  }
  return config;
}

/// Runs a Server on its own thread; stop() is idempotent and joins.
class ServerThread {
 public:
  explicit ServerThread(net::ServerConfig config)
      : server(std::move(config)) {
    thread_ = std::thread([this] { server.run(); });
  }
  ~ServerThread() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server.request_shutdown();
      thread_.join();
    }
  }

  net::Server server;

 private:
  std::thread thread_;
};

/// Polls a registry counter until it reaches `at_least` (5 s timeout).
bool wait_counter(net::Server& server, const std::string& key,
                  std::uint64_t at_least) {
  for (int i = 0; i < 500; ++i) {
    if (server.counter_value(key) >= at_least) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

/// Streams the golden store as `tenant`, retrying while the server still
/// considers a predecessor connection attached (detach is asynchronous).
net::StreamResult stream_golden(std::uint16_t port, const std::string& tenant,
                                const net::StreamOptions& options = {}) {
  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig config;
  config.port = port;
  config.tenant = tenant;
  config.patterns = {golden_pattern()};
  for (int attempt = 0; attempt < 40; ++attempt) {
    const net::StreamResult result =
        net::stream_store(store, pool, config, options);
    if (result.ack.status != net::AckStatus::kRejected ||
        result.ack.message.find("attached") == std::string::npos) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ADD_FAILURE() << "tenant '" << tenant << "' never detached";
  return {};
}

TEST(NetProtocol, HandshakeRoundTripsIncrementally) {
  net::HandshakeRequest request;
  request.flags = net::kFlagResume;
  request.tenant = "tenant-a";
  request.patterns = {"p1", "p2"};
  const std::string wire = net::encode_handshake(request);

  net::HandshakeRequest decoded;
  std::string error;
  std::size_t pos = 0;
  // Byte-at-a-time: kNeedMore until the last byte, pos untouched.
  for (std::size_t cut = 0; cut + 1 < wire.size(); ++cut) {
    ASSERT_EQ(net::parse_handshake(wire.substr(0, cut), pos, decoded, error),
              net::ParseStatus::kNeedMore);
    ASSERT_EQ(pos, 0U);
  }
  ASSERT_EQ(net::parse_handshake(wire, pos, decoded, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(pos, wire.size());
  EXPECT_EQ(decoded.tenant, "tenant-a");
  EXPECT_EQ(decoded.patterns, request.patterns);
  EXPECT_TRUE(decoded.want_resume());
}

TEST(NetProtocol, CorruptHandshakeIsRejected) {
  net::HandshakeRequest request;
  request.tenant = "t";
  std::string wire = net::encode_handshake(request);
  wire[wire.size() - 1] = static_cast<char>(wire[wire.size() - 1] ^ 0x40);
  std::size_t pos = 0;
  net::HandshakeRequest decoded;
  std::string error;
  EXPECT_EQ(net::parse_handshake(wire, pos, decoded, error),
            net::ParseStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(NetProtocol, ReverseFramesRoundTrip) {
  ResyncRequest resync;
  resync.request_id = 7;
  resync.next_position = 123;
  const std::string wire = net::encode_resync_frame(resync) +
                           net::encode_fin_frame(true, "why") +
                           net::encode_notice_frame("note");
  std::size_t pos = 0;
  net::ReverseFrame frame;
  std::string error;
  ASSERT_EQ(net::parse_reverse_frame(wire, pos, frame, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(frame.type, net::kReverseResync);
  EXPECT_EQ(frame.resync.request_id, 7U);
  EXPECT_EQ(frame.resync.next_position, 123U);
  ASSERT_EQ(net::parse_reverse_frame(wire, pos, frame, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(frame.type, net::kReverseFin);
  EXPECT_TRUE(frame.degraded);
  EXPECT_EQ(frame.message, "why");
  ASSERT_EQ(net::parse_reverse_frame(wire, pos, frame, error),
            net::ParseStatus::kDone);
  EXPECT_EQ(frame.type, net::kReverseNotice);
  EXPECT_EQ(frame.message, "note");
  EXPECT_EQ(pos, wire.size());
}

TEST(NetServe, SingleClientMatchesGolden) {
  ServerThread st(base_config());
  const net::StreamResult result =
      stream_golden(st.server.port(), "solo");
  ASSERT_EQ(result.ack.status, net::AckStatus::kFresh);
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("solo");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// The acceptance bar: 8 concurrent clients, one tenant each, all equal to
// the clean-channel reference.  Runs under TSan in CI (-R MultiClient).
TEST(NetServe, MultiClientConcurrentGoldenEquivalence) {
  constexpr int kClients = 8;
  net::ServerConfig config = base_config();
  config.tenant.monitor.worker_threads = 2;  // parallel pipeline per tenant
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  std::vector<std::thread> producers;
  std::vector<net::StreamResult> results(kClients);
  producers.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    producers.emplace_back([&results, port, i] {
      results[static_cast<std::size_t>(i)] =
          stream_golden(port, "t" + std::to_string(i));
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  st.stop();

  const std::vector<std::string> clean = golden_clean();
  for (int i = 0; i < kClients; ++i) {
    SCOPED_TRACE("tenant t" + std::to_string(i));
    const net::StreamResult& result = results[static_cast<std::size_t>(i)];
    ASSERT_TRUE(result.fin_received);
    EXPECT_FALSE(result.fin.degraded);
    net::Tenant* tenant = st.server.find_tenant("t" + std::to_string(i));
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
    EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), clean);
  }
}

TEST(NetServe, ByteAtATimeTrickleReassembles) {
  ServerThread st(base_config());
  net::StreamOptions options;
  options.session.max_frame_payload = 1U << 12U;
  const std::uint16_t port = st.server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig config;
  config.port = port;
  config.tenant = "trickle";
  config.patterns = {golden_pattern()};
  config.write_chunk = 1;  // one byte per send()
  const net::StreamResult result =
      net::stream_store(store, pool, config, options);
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("trickle");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// Satellite regression: a client dying mid-frame must finalize its tenant
// through the session's degradation machinery — monitor retained and
// reporting, never leaked, never wedging the server.
TEST(NetServe, MidFrameDisconnectFinalizesDegraded) {
  net::ServerConfig config = base_config();
  config.detach_linger_ms = 100;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  {
    // Capture the session encoding, then send a prefix that ends inside a
    // frame (three bytes short of a frame boundary).
    class Capture final : public ByteSink {
     public:
      void write(std::string_view bytes) override { data.append(bytes); }
      std::string data;
    };
    Capture capture;
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(capture, pool, names);
    for (std::uint64_t pos = 0; pos < store.event_count() / 2; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    net::ConnectorConfig cc;
    cc.port = port;
    cc.tenant = "lossy";
    cc.patterns = {golden_pattern()};
    net::Connector connector(cc);
    ASSERT_NE(connector.ack().status, net::AckStatus::kRejected);
    connector.write(
        std::string_view(capture.data).substr(0, capture.data.size() - 3));
    connector.close();  // abrupt death, mid-frame
  }

  ASSERT_TRUE(wait_counter(st.server, "net.linger_finalized", 1));

  // The server must keep serving: a second tenant streams cleanly while
  // the first sits finalized.
  const net::StreamResult clean_run = stream_golden(port, "healthy");
  ASSERT_TRUE(clean_run.fin_received);
  EXPECT_FALSE(clean_run.fin.degraded);
  st.stop();

  net::Tenant* lossy = st.server.find_tenant("lossy");
  ASSERT_NE(lossy, nullptr);
  EXPECT_EQ(lossy->state(), net::TenantState::kDegraded);
  EXPECT_GT(lossy->monitor().events_seen(), 0U);
  EXPECT_LT(lossy->monitor().events_seen(), 342U);
  // Whatever it matched is consistent with (a prefix of) the clean run.
  EXPECT_TRUE(testing::is_subset_of(
      testing::match_signature(lossy->monitor(), 0), golden_clean()));

  net::Tenant* healthy = st.server.find_tenant("healthy");
  ASSERT_NE(healthy, nullptr);
  EXPECT_EQ(testing::match_signature(healthy->monitor(), 0), golden_clean());
}

// Kill a producer mid-stream, reconnect, and resume past a deliberate gap:
// the server-side session requests a resync over the reverse channel and
// the snapshot frames refill the hole over TCP.
TEST(NetServe, KillAndReconnectResumesViaSnapshotResync) {
  net::ServerConfig config = base_config();
  config.detach_linger_ms = 10000;  // survive the reconnect window
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  net::StreamOptions first_half;
  first_half.max_events = 150;
  const net::StreamResult first = stream_golden(port, "phoenix", first_half);
  ASSERT_EQ(first.ack.status, net::AckStatus::kFresh);
  EXPECT_FALSE(first.fin_received);  // killed before BYE

  // Reconnect, suppressing everything below position 200.  The server saw
  // at most 150 events, so the hole [watermark, 200) is real and only a
  // snapshot resync over the reverse channel can fill it.
  net::StreamOptions rest;
  rest.skip_below = 200;
  const net::StreamResult second = stream_golden(port, "phoenix", rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed);
  EXPECT_GT(second.ack.resume_position, 0U);
  ASSERT_TRUE(second.fin_received);
  // Recovered purely via resync: NOT degraded.
  EXPECT_FALSE(second.fin.degraded);
  EXPECT_GT(second.session.resyncs_served, 0U);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("phoenix");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// The shutdown/restart acceptance bar: SIGTERM (request_shutdown — same
// code path) mid-stream checkpoints the tenant; a restarted server
// restores it, the producer resumes at the watermark, and the final
// monitor state is byte-identical to an uninterrupted run.
TEST(NetServe, CheckpointOnShutdownThenRestartResumesByteIdentical) {
  const std::string dir =
      ::testing::TempDir() + "ocep_net_ckp_" + std::to_string(::getpid());
  constexpr std::uint64_t kHalf = 171;

  std::atomic<std::uint64_t> released{0};
  net::ServerConfig config = base_config();
  config.checkpoint_dir = dir;
  config.detach_linger_ms = 10000;
  config.observe_hook = [&released](std::string_view, std::uint64_t) {
    released.fetch_add(1, std::memory_order_relaxed);
  };
  auto st = std::make_unique<ServerThread>(std::move(config));
  const std::uint16_t port1 = st->server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = port1;
  cc.tenant = "durable";
  cc.patterns = {golden_pattern()};
  {
    // Keep the connection open while the server is terminated, as a real
    // daemon kill would.
    net::Connector connector(cc);
    ASSERT_EQ(connector.ack().status, net::AckStatus::kFresh);
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(connector, pool, names);
    for (std::uint64_t pos = 0; pos < kHalf; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    for (int i = 0; i < 500 && released.load() < kHalf; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(released.load(), kHalf);
    st->stop();  // graceful shutdown: drains + checkpoints mid-stream
  }

  // Restart against the same checkpoint directory and finish the stream
  // from the watermark on.
  net::ServerConfig config2 = base_config();
  config2.checkpoint_dir = dir;
  config2.detach_linger_ms = 10000;
  ServerThread st2(std::move(config2));
  net::StreamOptions rest;
  rest.skip_below = kHalf;
  const net::StreamResult second =
      stream_golden(st2.server.port(), "durable", rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed)
      << second.ack.message;
  ASSERT_EQ(second.ack.resume_position, kHalf);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  st2.stop();

  net::Tenant* resumed = st2.server.find_tenant("durable");
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->state(), net::TenantState::kComplete);
  EXPECT_EQ(resumed->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(resumed->monitor(), 0), golden_clean());

  // Byte-identity of the matching state against an uninterrupted run.
  ServerThread st3(base_config());
  const net::StreamResult uninterrupted =
      stream_golden(st3.server.port(), "durable");
  ASSERT_TRUE(uninterrupted.fin_received);
  st3.stop();
  net::Tenant* reference = st3.server.find_tenant("durable");
  ASSERT_NE(reference, nullptr);

  std::stringstream resumed_ckp;
  resumed->checkpoint(resumed_ckp);
  std::stringstream reference_ckp;
  reference->checkpoint(reference_ckp);
  const net::TenantCheckpoint a = net::read_tenant_checkpoint(resumed_ckp);
  const net::TenantCheckpoint b = net::read_tenant_checkpoint(reference_ckp);
  EXPECT_EQ(a.monitor_blob, b.monitor_blob);
}

TEST(NetServe, ByteBudgetShedsTenantAndRejectsReattach) {
  net::ServerConfig config = base_config();
  config.max_tenant_bytes = 2048;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  // The shed closes the connection while the producer may still be
  // writing; both a degraded FIN and a dropped connection are valid
  // producer-side observations.
  try {
    const net::StreamResult result = stream_golden(port, "greedy");
    if (result.fin_received) {
      EXPECT_TRUE(result.fin.degraded);
    }
  } catch (const net::NetError&) {
    // Producer lost the race to the close; the server-side state decides.
  }
  ASSERT_TRUE(wait_counter(st.server, "net.tenants_shed", 1));

  // Re-attaching a shed tenant is refused.
  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = port;
  cc.tenant = "greedy";
  cc.patterns = {golden_pattern()};
  const net::StreamResult retry = net::stream_store(store, pool, cc, {});
  EXPECT_EQ(retry.ack.status, net::AckStatus::kRejected);
  EXPECT_NE(retry.ack.message.find("shed"), std::string::npos);
  st.stop();

  net::Tenant* tenant = st.server.find_tenant("greedy");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kShed);
}

TEST(NetServe, AdminPlaneServesMetricsAndHealth) {
  ServerThread st(base_config());
  const net::StreamResult result = stream_golden(st.server.port(), "adm");
  ASSERT_TRUE(result.fin_received);

  const auto http_get = [&](const std::string& target) {
    net::OwnedFd fd = net::tcp_connect("127.0.0.1", st.server.admin_port());
    const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
    net::write_all(fd.get(), request, 5000);
    std::string response;
    char chunk[4096];
    while (true) {
      if (!net::wait_readable(fd.get(), 5000)) {
        break;
      }
      const net::IoResult got = net::read_some(fd.get(), chunk, sizeof(chunk));
      if (got.status == net::IoStatus::kOk) {
        response.append(chunk, got.bytes);
        continue;
      }
      break;
    }
    return response;
  };

  const std::string metrics = http_get("/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("net_accepted"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("tenant=\"adm\""), std::string::npos);

  const std::string health = http_get("/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("\"adm\""), std::string::npos);
  EXPECT_NE(health.find("\"state\":\"complete\""), std::string::npos);

  const std::string missing = http_get("/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  st.stop();
}

// The sharded acceptance bar: 8 concurrent clients against a 4-shard
// daemon, every tenant equal to the clean-channel reference and placed on
// its affinity shard.  Runs under TSan in CI (-R MultiClient).
TEST(NetShard, MultiClientShardedGoldenEquivalence) {
  constexpr int kClients = 8;
  constexpr std::size_t kShards = 4;
  net::ServerConfig config;
  config.shards = kShards;
  config.tenant.monitor.worker_threads = 2;  // parallel pipeline per tenant
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  std::vector<std::thread> producers;
  std::vector<net::StreamResult> results(kClients);
  producers.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    producers.emplace_back([&results, port, i] {
      results[static_cast<std::size_t>(i)] =
          stream_golden(port, "s" + std::to_string(i));
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  st.stop();

  const std::vector<std::string> clean = golden_clean();
  for (int i = 0; i < kClients; ++i) {
    const std::string name = "s" + std::to_string(i);
    SCOPED_TRACE("tenant " + name);
    const net::StreamResult& result = results[static_cast<std::size_t>(i)];
    ASSERT_TRUE(result.fin_received);
    EXPECT_FALSE(result.fin.degraded);
    net::Tenant* tenant = st.server.find_tenant(name);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
    EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), clean);
    EXPECT_EQ(st.server.tenant_shard(name),
              static_cast<int>(net::shard_for(name, kShards)));
  }
}

// With SO_REUSEPORT the kernel picks an arbitrary shard per connect, so
// across 24 tenants some handshakes must land on a non-owning shard and
// migrate (P(all 24 land on their owner) = 4^-24).  Every tenant must
// end up on its affinity shard regardless of where it connected.
TEST(NetShard, HandshakeMigratesTenantsToOwningShard) {
  constexpr int kTenants = 24;
  constexpr std::size_t kShards = 4;
  net::ServerConfig config;
  config.shards = kShards;
  ServerThread st(std::move(config));
  const std::uint16_t port = st.server.port();

  for (int i = 0; i < kTenants; ++i) {
    const net::StreamResult result =
        stream_golden(port, "mig" + std::to_string(i));
    ASSERT_TRUE(result.fin_received) << "tenant mig" << i;
    EXPECT_FALSE(result.fin.degraded);
  }
  EXPECT_GE(st.server.counter_value("net.conn_migrations"), 1U);
  st.stop();

  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "mig" + std::to_string(i);
    SCOPED_TRACE("tenant " + name);
    net::Tenant* tenant = st.server.find_tenant(name);
    ASSERT_NE(tenant, nullptr);
    EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
    EXPECT_EQ(st.server.tenant_shard(name),
              static_cast<int>(net::shard_for(name, kShards)));
  }
}

// Shard-affinity resume across a repartition: kill the producer
// mid-stream, SIGTERM a 3-shard daemon (checkpointing into the shared
// directory), restart with 2 shards, and the tenant must restore on its
// new affinity shard and finish byte-identical to an uninterrupted run.
TEST(NetShard, RestartWithDifferentShardCountResumesByteIdentical) {
  const std::string dir =
      ::testing::TempDir() + "ocep_net_reshard_" + std::to_string(::getpid());
  constexpr std::uint64_t kHalf = 171;
  const std::string name = "resharded";

  std::atomic<std::uint64_t> released{0};
  net::ServerConfig config;
  config.shards = 3;
  config.checkpoint_dir = dir;
  config.detach_linger_ms = 10000;
  config.observe_hook = [&released](std::string_view, std::uint64_t) {
    released.fetch_add(1, std::memory_order_relaxed);
  };
  auto st = std::make_unique<ServerThread>(std::move(config));
  const std::uint16_t port1 = st->server.port();

  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig cc;
  cc.port = port1;
  cc.tenant = name;
  cc.patterns = {golden_pattern()};
  {
    net::Connector connector(cc);
    ASSERT_EQ(connector.ack().status, net::AckStatus::kFresh);
    std::vector<Symbol> names;
    for (TraceId t = 0; t < store.trace_count(); ++t) {
      names.push_back(store.trace_name(t));
    }
    SessionServer session(connector, pool, names);
    for (std::uint64_t pos = 0; pos < kHalf; ++pos) {
      const EventId id = store.arrival(pos);
      session.write(store.event(id), store.clock(id));
    }
    for (int i = 0; i < 500 && released.load() < kHalf; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(released.load(), kHalf);
    st->stop();  // graceful shutdown: drains + checkpoints mid-stream
  }
  EXPECT_EQ(st->server.tenant_shard(name),
            static_cast<int>(net::shard_for(name, 3)));

  // Restart against the same checkpoint directory with a different shard
  // count; the tenant must restore on its new owner and resume exactly.
  net::ServerConfig config2;
  config2.shards = 2;
  config2.checkpoint_dir = dir;
  config2.detach_linger_ms = 10000;
  ServerThread st2(std::move(config2));
  net::StreamOptions rest;
  rest.skip_below = kHalf;
  const net::StreamResult second =
      stream_golden(st2.server.port(), name, rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed) << second.ack.message;
  ASSERT_EQ(second.ack.resume_position, kHalf);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  st2.stop();

  EXPECT_EQ(st2.server.tenant_shard(name),
            static_cast<int>(net::shard_for(name, 2)));
  net::Tenant* resumed = st2.server.find_tenant(name);
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->state(), net::TenantState::kComplete);
  EXPECT_EQ(resumed->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(resumed->monitor(), 0), golden_clean());

  // Byte-identity of the matching state against an uninterrupted run.
  ServerThread st3(base_config());
  const net::StreamResult uninterrupted =
      stream_golden(st3.server.port(), name);
  ASSERT_TRUE(uninterrupted.fin_received);
  st3.stop();
  net::Tenant* reference = st3.server.find_tenant(name);
  ASSERT_NE(reference, nullptr);

  std::stringstream resumed_ckp;
  resumed->checkpoint(resumed_ckp);
  std::stringstream reference_ckp;
  reference->checkpoint(reference_ckp);
  const net::TenantCheckpoint a = net::read_tenant_checkpoint(resumed_ckp);
  const net::TenantCheckpoint b = net::read_tenant_checkpoint(reference_ckp);
  EXPECT_EQ(a.monitor_blob, b.monitor_blob);
}

// Satellite regression for common/fd_stream.h: a short-write/EAGAIN storm
// through a tiny socket buffer must deliver every byte exactly once (the
// old sync() restarted from pbase() after a failure, resending bytes the
// kernel had already accepted).
TEST(NetFdStream, ShortWritesNeverResendBytes) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  // Non-blocking writer: forces the EAGAIN path in FdOutBuf::sync().
  ASSERT_NO_THROW(net::set_nonblocking(fds[0]));

  std::string sent(1U << 20U, '\0');
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>((i * 131) & 0xff);
  }

  std::string received;
  std::thread reader([&received, fd = fds[1]] {
    char chunk[8192];
    while (true) {
      const ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got > 0) {
        received.append(chunk, static_cast<std::size_t>(got));
        // A slow consumer keeps the kernel buffer full on purpose.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      if (got < 0 && errno == EINTR) {
        continue;
      }
      break;
    }
  });

  {
    FdOStream out(fds[0]);
    out.get().write(sent.data(), static_cast<std::streamsize>(sent.size()));
    out.get().flush();
    ASSERT_TRUE(out.get().good());
    EXPECT_EQ(out.buf().offset(), sent.size());
    EXPECT_FALSE(out.buf().error());
  }
  ::close(fds[0]);
  reader.join();
  ::close(fds[1]);

  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(received, sent);  // any resend or loss breaks this
}

TEST(NetFdStream, DistinguishesEofFromError) {
  ::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  {  // EOF: peer closes cleanly.
    FdIStream in(fds[0]);
    ::close(fds[1]);
    char c = 0;
    in.get().read(&c, 1);
    EXPECT_TRUE(in.get().eof());
    EXPECT_TRUE(in.buf().eof());
    EXPECT_FALSE(in.buf().error());
  }
  ::close(fds[0]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {  // Error: writing into a closed peer is EPIPE, not EOF.
    ::close(fds[1]);
    FdOutBuf out(fds[0]);
    std::ostream stream(&out);
    const std::string bytes(1U << 16U, 'x');
    stream.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    stream.flush();
    EXPECT_FALSE(stream.good());
    EXPECT_TRUE(out.error());
    EXPECT_EQ(out.last_errno(), EPIPE);
  }
  ::close(fds[0]);
}

}  // namespace
}  // namespace ocep
