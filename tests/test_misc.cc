// Edge cases across module boundaries: error propagation, event limits,
// sparse-backed monitoring, pattern diagnostics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "core/monitor.h"
#include "sim/sim.h"

namespace ocep {
namespace {

TEST(Monitor, AddPatternRejectsBadTextWithDiagnostics) {
  StringPool pool;
  Monitor monitor(pool);
  try {
    monitor.add_pattern("A := [x, y, z  pattern := A;");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("parse error"),
              std::string::npos);
  }
  EXPECT_THROW(monitor.add_pattern("A := ['', a, '']; pattern := A -> B;"),
               PatternError);
  EXPECT_EQ(monitor.pattern_count(), 0U);
}

TEST(Monitor, SparseBackedMonitorFindsTheSameViolations) {
  auto run_with = [](ClockStorage storage) {
    StringPool pool;
    sim::SimConfig config;
    config.seed = 71;
    sim::Sim sim(pool, config);
    apps::OrderingParams params;
    params.followers = 6;
    params.requests_each = 30;
    params.bug_percent = 4;
    apps::setup_leader_follower(sim, params);
    Monitor monitor(pool, storage);
    monitor.add_pattern(apps::ordering_pattern());
    sim.set_live_sink(&monitor);
    sim.run();
    std::vector<std::vector<EventId>> out;
    for (const Match& match : monitor.matcher(0).subset().matches()) {
      out.push_back(match.bindings);
    }
    return out;
  };
  const auto dense = run_with(ClockStorage::kDense);
  const auto sparse = run_with(ClockStorage::kSparse);
  EXPECT_FALSE(dense.empty());
  EXPECT_EQ(dense, sparse);
}

sim::ProcessBody throwing_body(sim::Proc& ctx) {
  co_await ctx.local(ctx.sym("about_to_fail"));
  throw std::runtime_error("application bug");
}

TEST(Sim, BodyExceptionsPropagateOutOfRun) {
  StringPool pool;
  sim::SimConfig config;
  config.seed = 73;
  sim::Sim sim(pool, config);
  sim.add_process("P", [](sim::Proc& ctx) { return throwing_body(ctx); });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Sim, EventLimitReportsAbandonedProcesses) {
  StringPool pool;
  sim::SimConfig config;
  config.seed = 79;
  config.max_events = 50;
  sim::Sim sim(pool, config);
  apps::AtomicityParams params;
  params.workers = 3;
  params.iterations = 1000;
  apps::setup_atomicity(sim, params);
  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, sim::EndReason::kEventLimit);
  EXPECT_FALSE(result.blocked.empty());  // workers were cut off mid-run
}

TEST(Matcher, SingleLeafPatternMatchesEveryOccurrenceOnce) {
  StringPool pool;
  sim::SimConfig config;
  config.seed = 83;
  sim::Sim sim(pool, config);
  apps::TrafficParams params;
  params.lights = 3;
  params.cycles = 40;
  params.bug_percent = 0;
  apps::setup_traffic_lights(sim, params);

  Monitor monitor(pool);
  std::uint64_t count = 0;
  monitor.add_pattern(R"(
      G := ['', green_on, ''];
      pattern := G;
  )", MatcherConfig{}, [&](const Match&, bool) { ++count; });
  sim.set_live_sink(&monitor);
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);
  EXPECT_EQ(count, params.cycles);
  // The subset keeps at most one occurrence per trace.
  EXPECT_LE(monitor.matcher(0).subset().matches().size(), 3U);
}

}  // namespace
}  // namespace ocep
