// Unit tests for the baseline detectors and matchers.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "baseline/conflict_graph.h"
#include "baseline/dependency_graph.h"
#include "baseline/naive_matcher.h"
#include "baseline/race_checker.h"
#include "baseline/window_matcher.h"
#include "computation_builder.h"
#include "pattern/compiled.h"
#include "random_computation.h"
#include "sim/sim.h"

namespace ocep {
namespace {

using testing::ComputationBuilder;

// --- NaiveMatcher -----------------------------------------------------------

TEST(NaiveMatcher, EnumeratesEveryMatchOnce) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  b.local(0, "a");
  b.local(0, "a");
  const std::uint64_t m = b.send(0, "x");
  b.recv(1, m, "y");
  b.local(1, "b");
  b.local(1, "b");

  const pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -> B;
  )", pool);
  const auto matches = baseline::enumerate_matches(b.store(), pattern);
  EXPECT_EQ(matches.size(), 4U);  // 2 a's x 2 b's
  for (const Match& match : matches) {
    EXPECT_TRUE(baseline::is_valid_match(b.store(), pattern, match));
  }
}

TEST(NaiveMatcher, MaxMatchesCapsEnumeration) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  for (int i = 0; i < 10; ++i) {
    b.local(0, "a");
    b.local(1, "b");
  }
  const pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A || B;
  )", pool);
  baseline::NaiveOptions options;
  options.max_matches = 7;
  const auto matches =
      baseline::enumerate_matches(b.store(), pattern, options);
  EXPECT_EQ(matches.size(), 7U);
}

TEST(NaiveMatcher, IsValidMatchRejectsBrokenBindings) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  const EventId a = b.local(0, "a");
  const std::uint64_t m = b.send(0, "x");
  b.recv(1, m, "y");
  const EventId bb = b.local(1, "b");

  const pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -> B;
  )", pool);
  Match good;
  good.bindings = {a, bb};
  EXPECT_TRUE(baseline::is_valid_match(b.store(), pattern, good));

  Match reversed;
  reversed.bindings = {bb, a};  // b is not of class A and b -/-> a
  EXPECT_FALSE(baseline::is_valid_match(b.store(), pattern, reversed));

  Match out_of_range;
  out_of_range.bindings = {EventId{0, 99}, bb};
  EXPECT_FALSE(baseline::is_valid_match(b.store(), pattern, out_of_range));
}

// --- WindowMatcher ----------------------------------------------------------

TEST(WindowMatcher, FindsMatchesInsideTheWindow) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  const std::uint64_t m = b.send(0, "x");
  b.local(0, "a");
  b.recv(1, m, "y");
  b.local(1, "b");

  baseline::WindowMatcher window(
      b.store(), pattern::compile(R"(
          A := ['', a, '']; B := ['', b, ''];
          pattern := A -> B;
      )", pool),
      10);
  for (const EventId id : b.store().arrival_order()) {
    window.observe(b.store().event(id));
  }
  // a -> b? a is after the send, so a || b... build causality: a happens
  // before nothing on P2.  Actually a (0,2) vs b (1,2): the message m was
  // sent before a, so a and b are concurrent: no match expected.
  EXPECT_TRUE(window.matches().empty());
}

TEST(WindowMatcher, OmitsMatchesSpanningBeyondTheWindow) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  const EventId a = b.local(0, "a");
  const std::uint64_t m = b.send(0, "x");
  // Push `a` and the send far out of the window.
  for (int i = 0; i < 30; ++i) {
    b.local(0, "z");
  }
  b.recv(1, m, "y");
  const EventId bb = b.local(1, "b");
  static_cast<void>(a);
  static_cast<void>(bb);

  auto compiled = [&pool] {
    return pattern::compile(R"(
        A := ['', a, '']; B := ['', b, ''];
        pattern := A -> B;
    )", pool);
  };

  baseline::WindowMatcher small_window(b.store(), compiled(), 4);
  baseline::WindowMatcher big_window(b.store(), compiled(), 1000);
  for (const EventId id : b.store().arrival_order()) {
    small_window.observe(b.store().event(id));
    big_window.observe(b.store().event(id));
  }
  EXPECT_TRUE(small_window.matches().empty()) << "omission expected";
  EXPECT_EQ(big_window.matches().size(), 1U);
}

// --- DependencyGraphDetector ------------------------------------------------

TEST(DependencyGraph, DetectsACycleOfBlockedSends) {
  StringPool pool;
  ComputationBuilder b(pool, {"A", "B", "C"});
  baseline::DependencyGraphDetector detector(b.store());

  auto feed = [&](EventId id) {
    return detector.observe(b.store().event(id));
  };

  EXPECT_FALSE(feed(b.blocked_send(0, "B")).has_value());
  EXPECT_FALSE(feed(b.blocked_send(1, "C")).has_value());
  const auto cycle = feed(b.blocked_send(2, "A"));
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->members.size(), 3U);
}

TEST(DependencyGraph, SendCompletionClearsTheEdge) {
  StringPool pool;
  ComputationBuilder b(pool, {"A", "B"});
  baseline::DependencyGraphDetector detector(b.store());

  detector.observe(b.store().event(b.blocked_send(0, "B")));
  // The blocked send completes: edge A -> B is removed...
  const std::uint64_t m = b.send(0, "x");
  detector.observe(b.store().event(EventId{0, 2}));
  static_cast<void>(m);
  // ...so B blocking toward A is no longer a cycle.
  const auto cycle = detector.observe(b.store().event(b.blocked_send(1, "A")));
  EXPECT_FALSE(cycle.has_value());
}

// --- ConflictGraphDetector --------------------------------------------------

TEST(ConflictGraph, FlagsConcurrentSectionsOnly) {
  StringPool pool;
  ComputationBuilder b(pool, {"W1", "W2"});
  const Symbol enter = pool.intern("cs_enter");
  const Symbol exit = pool.intern("cs_exit");

  // W1's section, then a message to W2, then W2's section: ordered.
  b.local(0, "cs_enter");
  b.local(0, "cs_exit");
  const std::uint64_t m = b.send(0, "sync");
  b.recv(1, m, "recv_sync");
  b.local(1, "cs_enter");
  b.local(1, "cs_exit");
  // A second W1 section concurrent with W2's.
  b.local(0, "cs_enter");
  b.local(0, "cs_exit");

  baseline::ConflictGraphDetector detector(b.store(), enter, exit);
  for (const EventId id : b.store().arrival_order()) {
    detector.observe(b.store().event(id));
  }
  EXPECT_EQ(detector.sections(), 3U);
  ASSERT_EQ(detector.violations(), 1U);
  // The violation pairs W2's section with W1's second section.
  EXPECT_EQ(detector.edges()[0].first_enter, EventId(1, 2));
  EXPECT_EQ(detector.edges()[0].second_enter, EventId(0, 4));
}

// --- RaceChecker -------------------------------------------------------------

TEST(RaceChecker, ConcurrentSendsToOneTraceRace) {
  StringPool pool;
  ComputationBuilder b(pool, {"R", "S1", "S2"});
  const std::uint64_t m1 = b.send(1, "msg");
  const std::uint64_t m2 = b.send(2, "msg");
  b.recv(0, m1, "recv");
  b.recv(0, m2, "recv");

  baseline::RaceChecker checker(b.store());
  for (const EventId id : b.store().arrival_order()) {
    checker.observe(b.store().event(id));
  }
  ASSERT_EQ(checker.races(), 1U);
  EXPECT_EQ(checker.found()[0].first_receive, EventId(0, 1));
  EXPECT_EQ(checker.found()[0].second_receive, EventId(0, 2));
}

TEST(RaceChecker, CausallyOrderedSendsDoNotRace) {
  StringPool pool;
  ComputationBuilder b(pool, {"R", "S1", "S2"});
  const std::uint64_t m1 = b.send(1, "msg");
  // S1 passes a token to S2, ordering S2's send after S1's.
  const std::uint64_t token = b.send(1, "token");
  b.recv(2, token, "recv_token");
  const std::uint64_t m2 = b.send(2, "msg");
  b.recv(0, m1, "recv");
  b.recv(0, m2, "recv");

  baseline::RaceChecker checker(b.store());
  for (const EventId id : b.store().arrival_order()) {
    checker.observe(b.store().event(id));
  }
  EXPECT_EQ(checker.races(), 0U);
}

// --- Cross-validation: RaceChecker against the race workload ---------------

TEST(RaceChecker, AgreesWithStoreRelationsOnTheWorkload) {
  StringPool pool;
  sim::SimConfig config;
  config.seed = 97;
  sim::Sim sim(pool, config);
  apps::RaceParams params;
  params.traces = 6;
  params.messages_each = 25;
  apps::setup_race_bench(sim, params);
  sim.run();
  const EventStore& store = sim.store();

  baseline::RaceChecker checker(store);
  for (const EventId id : store.arrival_order()) {
    checker.observe(store.event(id));
  }
  EXPECT_GT(checker.races(), 0U);
  for (const auto& race : checker.found()) {
    const Event& r1 = store.event(race.first_receive);
    const Event& r2 = store.event(race.second_receive);
    EXPECT_EQ(store.relate(store.send_of(r1.message),
                           store.send_of(r2.message)),
              Relation::kConcurrent);
  }
}

}  // namespace
}  // namespace ocep
