// Focused tests of the simulator's semaphore-as-a-trace mechanism
// (µC++-plugin behaviour, §V-C.3) and multi-pattern monitoring.
#include <gtest/gtest.h>

#include <vector>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "core/monitor.h"
#include "sim/sim.h"

namespace ocep {
namespace {

using sim::Sim;
using sim::SimConfig;

sim::ProcessBody cs_body(sim::Proc& ctx, sim::SemId sem, int rounds,
                         std::vector<TraceId>* order) {
  for (int i = 0; i < rounds; ++i) {
    co_await ctx.delay(1 + ctx.sim().rng().below(5));
    co_await ctx.acquire(sem);
    order->push_back(ctx.id());
    co_await ctx.local(ctx.sym("cs_enter"));
    co_await ctx.local(ctx.sym("cs_exit"));
    co_await ctx.release(sem);
  }
}

TEST(SimSemaphore, MutualExclusionHoldsCausally) {
  StringPool pool;
  SimConfig config;
  config.seed = 3;
  Sim sim(pool, config);
  const sim::SemId sem = sim.add_semaphore("S", 1);
  auto order = std::make_shared<std::vector<TraceId>>();
  for (int p = 0; p < 4; ++p) {
    sim.add_process("P" + std::to_string(p), [sem, order](sim::Proc& ctx) {
      return cs_body(ctx, sem, 6, order.get());
    });
  }
  const sim::RunResult result = sim.run();
  ASSERT_EQ(result.reason, sim::EndReason::kCompleted);
  EXPECT_EQ(order->size(), 24U);

  // Every pair of cs_enter events (across traces) must be causally
  // ordered: the grant chain through the semaphore trace serializes them.
  const EventStore& store = sim.store();
  const Symbol enter = pool.intern("cs_enter");
  std::vector<EventId> enters;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    for (EventIndex i = 1; i <= store.trace_size(t); ++i) {
      if (store.event(EventId{t, i}).type == enter) {
        enters.push_back(EventId{t, i});
      }
    }
  }
  ASSERT_EQ(enters.size(), 24U);
  for (std::size_t i = 0; i < enters.size(); ++i) {
    for (std::size_t j = i + 1; j < enters.size(); ++j) {
      if (enters[i].trace == enters[j].trace) {
        continue;
      }
      EXPECT_NE(store.relate(enters[i], enters[j]), Relation::kConcurrent);
    }
  }
}

TEST(SimSemaphore, CountingSemaphoreAllowsTwoHolders) {
  StringPool pool;
  SimConfig config;
  config.seed = 5;
  Sim sim(pool, config);
  const sim::SemId sem = sim.add_semaphore("S2", 2);
  auto order = std::make_shared<std::vector<TraceId>>();
  for (int p = 0; p < 4; ++p) {
    sim.add_process("P" + std::to_string(p), [sem, order](sim::Proc& ctx) {
      return cs_body(ctx, sem, 8, order.get());
    });
  }
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);

  // With two permits some pairs of sections MUST overlap (concurrent).
  const EventStore& store = sim.store();
  const Symbol enter = pool.intern("cs_enter");
  std::size_t concurrent_pairs = 0;
  std::vector<EventId> enters;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    for (EventIndex i = 1; i <= store.trace_size(t); ++i) {
      if (store.event(EventId{t, i}).type == enter) {
        enters.push_back(EventId{t, i});
      }
    }
  }
  for (std::size_t i = 0; i < enters.size(); ++i) {
    for (std::size_t j = i + 1; j < enters.size(); ++j) {
      if (enters[i].trace != enters[j].trace &&
          store.relate(enters[i], enters[j]) == Relation::kConcurrent) {
        ++concurrent_pairs;
      }
    }
  }
  EXPECT_GT(concurrent_pairs, 0U);
}

TEST(SimSemaphore, AcquireResultCarriesRequestAndGrantEvents) {
  StringPool pool;
  SimConfig config;
  config.seed = 7;
  Sim sim(pool, config);
  const sim::SemId sem = sim.add_semaphore("S", 1);
  struct Captured {
    sim::AcquireResult acquire;
    EventId release;
  };
  auto captured = std::make_shared<Captured>();
  sim.add_process("P", [sem, captured](sim::Proc& ctx) -> sim::ProcessBody {
    captured->acquire = co_await ctx.acquire(sem);
    captured->release = co_await ctx.release(sem);
  });
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);

  const EventStore& store = sim.store();
  // request (send) -> semaphore receive -> grant send -> grant receive.
  EXPECT_EQ(store.event(captured->acquire.request_event).kind,
            EventKind::kSend);
  EXPECT_EQ(store.event(captured->acquire.grant_event).kind,
            EventKind::kReceive);
  EXPECT_TRUE(store.happens_before(captured->acquire.request_event,
                                   captured->acquire.grant_event));
  EXPECT_TRUE(store.happens_before(captured->acquire.grant_event,
                                   captured->release));
  // The semaphore trace itself recorded three events (recv request, send
  // grant, recv release).
  EXPECT_EQ(store.trace_size(sim.semaphore_trace(sem)), 3U);
}

// One Monitor can track several patterns over one event stream.
TEST(Monitor, MultiplePatternsShareOneStream) {
  StringPool pool;
  sim::SimConfig config;
  config.seed = 11;
  Sim sim(pool, config);
  apps::AtomicityParams params;
  params.workers = 5;
  params.iterations = 60;
  params.skip_percent = 4;
  const apps::AtomicityApp app = apps::setup_atomicity(sim, params);

  Monitor monitor(pool);
  const std::size_t atomicity =
      monitor.add_pattern(apps::atomicity_pattern());
  const std::size_t chain = monitor.add_pattern(R"(
      Req   := ['', sem_request, ''];
      Grant := ['', sem_grant, ''];
      pattern := Req -> Grant;
  )");
  sim.set_live_sink(&monitor);
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);

  ASSERT_FALSE(app.injections->empty());
  EXPECT_FALSE(monitor.matcher(atomicity).subset().matches().empty());
  EXPECT_FALSE(monitor.matcher(chain).subset().matches().empty());
  EXPECT_EQ(monitor.events_seen(), sim.store().event_count());
}

}  // namespace
}  // namespace ocep
