// OCEP matcher tests on hand-built scenarios (paper §IV).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/naive_matcher.h"
#include "computation_builder.h"
#include "core/matcher.h"
#include "pattern/compiled.h"
#include "poet/replay.h"
#include "random_computation.h"

namespace ocep {
namespace {

using testing::ComputationBuilder;

/// Feeds every stored event to the matcher in arrival order.
void run_matcher(const EventStore& store, OcepMatcher& matcher) {
  for (const EventId id : store.arrival_order()) {
    matcher.observe(store.event(id));
  }
}

TEST(Matcher, SimpleHappensBeforeAcrossTraces) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  const EventId a = b.local(0, "a");
  const std::uint64_t m = b.send(0, "ping");
  b.recv(1, m, "recv_ping");
  const EventId bb = b.local(1, "b");

  pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -> B;
  )", pool);

  std::vector<Match> reported;
  OcepMatcher matcher(b.store(), std::move(pattern), {},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  run_matcher(b.store(), matcher);

  ASSERT_EQ(reported.size(), 1U);
  EXPECT_EQ(reported[0].bindings[0], a);
  EXPECT_EQ(reported[0].bindings[1], bb);
  EXPECT_EQ(matcher.subset().matches().size(), 1U);
}

TEST(Matcher, NoMatchWhenOnlyConcurrent) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  b.local(0, "a");
  b.local(1, "b");  // concurrent with a: no message between the traces

  pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -> B;
  )", pool);
  OcepMatcher matcher(b.store(), std::move(pattern));
  run_matcher(b.store(), matcher);
  EXPECT_TRUE(matcher.subset().matches().empty());
  EXPECT_EQ(matcher.stats().searches, 1U);  // anchored at b, found nothing
}

// The paper's Fig 3: representative subset for A -> B.  P1 holds a13, a14,
// a15 all before b25 (via a message); P2 holds a21 before b25 on the same
// trace; P3's events are concurrent with b25.  The desired subset is
// { a15 b25, a21 b25 }.
TEST(Matcher, Fig3RepresentativeSubset) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2", "P3"});
  // P1: c11 d12 a13 a14 a15, then the message that reaches P2 before b25.
  b.local(0, "c");
  b.local(0, "d");
  const EventId a13 = b.local(0, "a");
  const EventId a14 = b.local(0, "a");
  const EventId a15 = b.local(0, "a");
  const std::uint64_t m = b.send(0, "c");  // c17-ish communication
  // P3: d31 e32 a33 a34 — concurrent with everything relevant.
  b.local(2, "d");
  b.local(2, "e");
  b.local(2, "a");
  b.local(2, "a");
  // P2: a21 d22 e23, receive, then b25.
  const EventId a21 = b.local(1, "a");
  b.local(1, "d");
  b.local(1, "e");
  b.recv(1, m, "recv");
  const EventId b25 = b.local(1, "b");

  pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -> B;
  )", pool);
  // Merging must stay off: a13..a15 have no communication between them and
  // would otherwise collapse (which is fine for the subset but not for
  // checking the exact "latest match first" choice).
  MatcherConfig config;
  config.merge_redundant_history = false;
  OcepMatcher matcher(b.store(), std::move(pattern), config);
  run_matcher(b.store(), matcher);

  const std::vector<Match>& subset = matcher.subset().matches();
  ASSERT_EQ(subset.size(), 2U);
  // Free search takes the latest match on P1.
  EXPECT_EQ(subset[0].bindings[0], a15);
  EXPECT_EQ(subset[0].bindings[1], b25);
  // The pin on (A, P2) recovers the match the paper's sliding window loses.
  EXPECT_EQ(subset[1].bindings[0], a21);
  EXPECT_EQ(subset[1].bindings[1], b25);
  static_cast<void>(a13);
  static_cast<void>(a14);
}

TEST(Matcher, ConcurrencyPattern) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2", "P3"});
  const EventId e1 = b.local(0, "enter");
  const std::uint64_t m = b.send(0, "sync");
  b.recv(1, m, "recv_sync");
  b.local(1, "enter");                      // ordered after e1: no match
  const EventId e3 = b.local(2, "enter");   // concurrent with both

  pattern::CompiledPattern pattern = pattern::compile(R"(
      E1 := ['', enter, '']; E2 := ['', enter, ''];
      pattern := E1 || E2;
  )", pool);
  OcepMatcher matcher(b.store(), std::move(pattern));
  run_matcher(b.store(), matcher);

  // Every reported match must be genuinely concurrent; coverage must
  // include e3 with both e1 and e2.
  for (const Match& match : matcher.subset().matches()) {
    EXPECT_EQ(b.store().relate(match.bindings[0], match.bindings[1]),
              Relation::kConcurrent);
  }
  EXPECT_TRUE(matcher.subset().covered(0, e1.trace));
  EXPECT_TRUE(matcher.subset().covered(0, e3.trace));
}

TEST(Matcher, PartnerOperatorBindsTheExactMessage) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  const std::uint64_t m1 = b.send(0, "msg");
  const std::uint64_t m2 = b.send(0, "msg");
  const EventId r1 = b.recv(1, m1, "recv_msg");
  const EventId r2 = b.recv(1, m2, "recv_msg");

  pattern::CompiledPattern pattern = pattern::compile(R"(
      S := ['', msg, '']; R := ['', recv_msg, ''];
      pattern := S <-> R;
  )", pool);
  std::vector<Match> reported;
  OcepMatcher matcher(b.store(), std::move(pattern), {},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  run_matcher(b.store(), matcher);

  ASSERT_EQ(reported.size(), 2U);
  EXPECT_EQ(reported[0].bindings[0], EventId(0, 1));
  EXPECT_EQ(reported[0].bindings[1], r1);
  EXPECT_EQ(reported[1].bindings[0], EventId(0, 2));
  EXPECT_EQ(reported[1].bindings[1], r2);
}

TEST(Matcher, AttributeVariableEnforcesEquality) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  b.local(0, "req", "alpha");
  const std::uint64_t m = b.send(0, "x");
  b.recv(1, m, "y");
  b.local(1, "rsp", "beta");   // different tag: must not match
  const EventId rsp = b.local(1, "rsp", "alpha");

  pattern::CompiledPattern pattern = pattern::compile(R"(
      Q := ['', req, $t]; P := ['', rsp, $t];
      pattern := Q -> P;
  )", pool);
  std::vector<Match> reported;
  OcepMatcher matcher(b.store(), std::move(pattern), {},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  run_matcher(b.store(), matcher);

  ASSERT_EQ(reported.size(), 1U);
  EXPECT_EQ(reported[0].bindings[1], rsp);
}

TEST(Matcher, ProcessVariableIsolatesTheRelevantTrace) {
  StringPool pool;
  ComputationBuilder b(pool, {"P0", "P1", "P2", "P3"});
  // blocked_send events whose text names the destination trace.
  b.blocked_send(0, "P1");
  b.blocked_send(1, "P0");

  pattern::CompiledPattern pattern = pattern::compile(R"(
      W1 := [$1, blocked_send, $2];
      W2 := [$2, blocked_send, $1];
      pattern := W1 || W2;
  )", pool);
  std::vector<Match> reported;
  OcepMatcher matcher(b.store(), std::move(pattern), {},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  run_matcher(b.store(), matcher);

  // The mutual blocked pair is concurrent and closes the variable cycle.
  ASSERT_GE(reported.size(), 1U);
  for (const Match& match : reported) {
    const std::set<TraceId> traces{match.bindings[0].trace,
                                   match.bindings[1].trace};
    EXPECT_EQ(traces, (std::set<TraceId>{0, 1}));
  }
}

TEST(Matcher, EventVariableBindsOneEventEverywhere) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2", "P3"});
  const std::uint64_t m1 = b.send(0, "a");
  const std::uint64_t m2 = b.send(0, "a");
  b.recv(1, m1, "b");
  b.recv(2, m2, "c");

  // $X -> B and $X -> C with the same a: only a match where ONE a precedes
  // both a b and a c is allowed.
  pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];
      A $X;
      pattern := ($X -> B) && ($X -> C);
  )", pool);
  std::vector<Match> reported;
  OcepMatcher matcher(b.store(), std::move(pattern), {},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  run_matcher(b.store(), matcher);

  ASSERT_GE(reported.size(), 1U);
  for (const Match& match : reported) {
    // Leaf 0 is $X; it must precede both other bindings.
    EXPECT_TRUE(b.store().happens_before(match.bindings[0],
                                         match.bindings[1]));
    EXPECT_TRUE(b.store().happens_before(match.bindings[0],
                                         match.bindings[2]));
    // Only the first send precedes both receives.
    EXPECT_EQ(match.bindings[0], EventId(0, 1));
  }
}

// Fig 1's limited precedence: A -lim-> B only matches the last A-event
// before b, with no other A causally between.
TEST(Matcher, LimitedPrecedenceExcludesInterveningEvents) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  const EventId a1 = b.local(0, "a");
  const EventId a2 = b.local(0, "a");  // a1 -> a2: a1 can never be the limit
  const std::uint64_t m = b.send(0, "x");
  b.recv(1, m, "y");
  const EventId bb = b.local(1, "b");

  pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -lim-> B;
  )", pool);
  std::vector<Match> reported;
  MatcherConfig config;
  OcepMatcher matcher(b.store(), std::move(pattern), config,
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  run_matcher(b.store(), matcher);

  ASSERT_EQ(reported.size(), 1U);
  EXPECT_EQ(reported[0].bindings[0], a2) << "only the last A qualifies";
  EXPECT_EQ(reported[0].bindings[1], bb);
  static_cast<void>(a1);
}

// The intervening witness can live on a third trace.
TEST(Matcher, LimitedPrecedenceSeesCrossTraceWitnesses) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2", "P3"});
  const EventId a1 = b.local(0, "a");
  const std::uint64_t m1 = b.send(0, "x");
  b.recv(2, m1, "y");
  const EventId a3 = b.local(2, "a");  // a1 -> a3
  const std::uint64_t m2 = b.send(2, "x");
  b.recv(1, m2, "y");
  const EventId bb = b.local(1, "b");  // a1 -> a3 -> b

  pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -lim-> B;
  )", pool);
  std::vector<Match> reported;
  OcepMatcher matcher(b.store(), std::move(pattern), {},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  run_matcher(b.store(), matcher);

  // a1 is disqualified by the witness a3 on P3; a3 itself qualifies.
  ASSERT_EQ(reported.size(), 1U);
  EXPECT_EQ(reported[0].bindings[0], a3);
  EXPECT_EQ(reported[0].bindings[1], bb);
  static_cast<void>(a1);
}

TEST(Matcher, RedundancyEliminationBoundsHistory) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2"});
  for (int i = 0; i < 100; ++i) {
    b.local(0, "a");  // 100 causally identical events
  }
  const std::uint64_t m = b.send(0, "x");
  b.recv(1, m, "y");
  b.local(1, "b");

  pattern::CompiledPattern pattern = pattern::compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -> B;
  )", pool);
  OcepMatcher matcher(b.store(), std::move(pattern));  // merging on
  run_matcher(b.store(), matcher);

  // All 100 a's collapse into one history entry, and the match is still
  // found (identical cross-trace causality).
  EXPECT_EQ(matcher.stats().history_merged, 99U);
  ASSERT_EQ(matcher.subset().matches().size(), 1U);
  EXPECT_TRUE(matcher.subset().covered(0, 0));
}

TEST(Matcher, SubsetIsBoundedByKTimesN) {
  StringPool pool;
  ComputationBuilder b(pool, {"P1", "P2", "P3", "P4"});
  // A dense soup of concurrent events: every pair across traces matches.
  for (int round = 0; round < 10; ++round) {
    for (TraceId t = 0; t < 4; ++t) {
      b.local(t, "e");
    }
  }
  pattern::CompiledPattern pattern = pattern::compile(R"(
      E1 := ['', e, '']; E2 := ['', e, ''];
      pattern := E1 || E2;
  )", pool);
  OcepMatcher matcher(b.store(), std::move(pattern));
  run_matcher(b.store(), matcher);

  const std::size_t k = 2, n = 4;
  EXPECT_LE(matcher.subset().matches().size(), k * n);
  EXPECT_EQ(matcher.subset().coverage(), k * n);  // every pair is feasible
}

TEST(Matcher, ObserveIsDeterministic) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 77;
  options.traces = 4;
  options.events = 150;
  const EventStore store = testing::random_computation(pool, options);

  auto run_once = [&] {
    pattern::CompiledPattern pattern = pattern::compile(R"(
        A := ['', A, '']; B := ['', B, ''];
        pattern := A -> B;
    )", pool);
    std::vector<std::vector<EventId>> reported;
    OcepMatcher matcher(store, std::move(pattern), {},
                        [&](const Match& match, bool) {
                          reported.push_back(match.bindings);
                        });
    for (const EventId id : store.arrival_order()) {
      matcher.observe(store.event(id));
    }
    return reported;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ocep
