// Lexer, parser, and compiler tests for the pattern language (§III, §IV-A).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/string_pool.h"
#include "pattern/compiled.h"
#include "pattern/lexer.h"
#include "pattern/parser.h"

namespace ocep::pattern {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  const auto tokens = lex("A := [$1, Synch_Leader, 'x y']; # comment\n"
                          "pattern := A -> B && C || D <-> E;");
  std::vector<TokenKind> kinds;
  for (const Token& token : tokens) {
    kinds.push_back(token.kind);
  }
  const std::vector<TokenKind> expected{
      TokenKind::kIdent, TokenKind::kAssign, TokenKind::kLBracket,
      TokenKind::kVariable, TokenKind::kComma, TokenKind::kIdent,
      TokenKind::kComma, TokenKind::kString, TokenKind::kRBracket,
      TokenKind::kSemicolon, TokenKind::kIdent, TokenKind::kAssign,
      TokenKind::kIdent, TokenKind::kArrow, TokenKind::kIdent,
      TokenKind::kAnd, TokenKind::kIdent, TokenKind::kConcur,
      TokenKind::kIdent, TokenKind::kPartner, TokenKind::kIdent,
      TokenKind::kSemicolon, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ(tokens[7].text, "x y");
  EXPECT_EQ(tokens[3].text, "1");
}

TEST(Lexer, TracksPositionsAndRejectsGarbage) {
  try {
    static_cast<void>(lex("A := [a, b, c];\n  @"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 2);
    EXPECT_EQ(error.column(), 3);
  }
  EXPECT_THROW(static_cast<void>(lex("A := 'unterminated")), ParseError);
  EXPECT_THROW(static_cast<void>(lex("$")), ParseError);
}

TEST(Parser, ParsesThePaperOrderingPattern) {
  const AstProgram program = parse(R"(
      Synch    := [$1, Synch_Leader, $3];
      Snapshot := [$2, Take_Snapshot, $3];
      Update   := [$2, Make_Update, ''];
      Forward  := [$2, Forward_Snapshot, $3];
      Snapshot $Diff;
      Update $Write;
      pattern := (Synch -> $Diff) && ($Diff -> $Write) &&
                 ($Write -> Forward);
  )");
  EXPECT_EQ(program.classes.size(), 4U);
  EXPECT_EQ(program.variables.size(), 2U);
  EXPECT_EQ(program.variables[0].class_name, "Snapshot");
  EXPECT_EQ(program.variables[0].var_name, "Diff");
  ASSERT_NE(program.pattern, nullptr);
  const auto& conj = std::get<AstConj>(program.pattern->node);
  EXPECT_EQ(conj.terms.size(), 3U);
}

TEST(Parser, RejectsMalformedPrograms) {
  EXPECT_THROW(parse("A := [a, b];  pattern := A;"), ParseError);  // 2 attrs
  EXPECT_THROW(parse("A := [a, b, c];"), ParseError);          // no pattern
  EXPECT_THROW(parse("pattern := ;"), ParseError);
  EXPECT_THROW(parse("pattern := A -> ;"), ParseError);
  EXPECT_THROW(parse("pattern := (A -> B;"), ParseError);
}

TEST(Compile, EventVariablesShareOneLeaf) {
  StringPool pool;
  const CompiledPattern compiled = compile(R"(
      A := ['', a, ''];
      B := ['', b, ''];
      C := ['', c, ''];
      A $X;
      pattern := ($X -> B) && ($X -> C);
  )", pool);
  // $X appears twice but is one leaf; B and C are one each.
  EXPECT_EQ(compiled.size(), 3U);
  EXPECT_EQ(compiled.constraints.size(), 2U);
}

TEST(Compile, RepeatedClassNamesAreDistinctLeaves) {
  StringPool pool;
  const CompiledPattern compiled = compile(R"(
      A := ['', a, ''];
      B := ['', b, ''];
      pattern := (A -> B) && (A -> B);
  )", pool);
  EXPECT_EQ(compiled.size(), 4U);  // two As, two Bs (paper §III-C)
}

TEST(Compile, CompoundOperandsExpandPairwise) {
  StringPool pool;
  // The paper's Fig 2 pattern: P := (A -> B) || (C -> D).
  const CompiledPattern compiled = compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      C := ['', c, '']; D := ['', d, ''];
      pattern := (A -> B) || (C -> D);
  )", pool);
  EXPECT_EQ(compiled.size(), 4U);
  // a->b, c->d, and the 4 pairwise concurrency constraints of eq. (3).
  EXPECT_EQ(compiled.constraints.size(), 6U);
  std::size_t concurrent = 0;
  for (const Constraint& c : compiled.constraints) {
    concurrent += c.op == ConstraintOp::kConcurrent ? 1 : 0;
  }
  EXPECT_EQ(concurrent, 4U);
}

TEST(Compile, TerminatingLeavesHaveNoSuccessor) {
  StringPool pool;
  const CompiledPattern chain = compile(R"(
      A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];
      pattern := A -> B -> C;
  )", pool);
  ASSERT_EQ(chain.terminating.size(), 1U);
  EXPECT_EQ(chain.terminating[0], 2U);  // only C can finish a match

  const CompiledPattern concurrent = compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A || B;
  )", pool);
  EXPECT_EQ(concurrent.terminating.size(), 2U);  // either side can be last

  const CompiledPattern partner = compile(R"(
      S := ['', s, '']; R := ['', r, ''];
      pattern := S <-> R;
  )", pool);
  ASSERT_EQ(partner.terminating.size(), 1U);
  EXPECT_EQ(partner.terminating[0], 1U);  // the receive arrives last
}

TEST(Compile, ChainSharesAdjacentOperands) {
  StringPool pool;
  const CompiledPattern compiled = compile(R"(
      A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];
      pattern := A -> B || C;
  )", pool);
  EXPECT_EQ(compiled.size(), 3U);  // B shared between the two relations
  EXPECT_EQ(compiled.constraints.size(), 2U);
}

TEST(Compile, SemanticErrors) {
  StringPool pool;
  EXPECT_THROW(compile("pattern := A -> B;", pool), PatternError);  // unknown
  EXPECT_THROW(compile(R"(
      A := ['', a, ''];
      A $X;
      pattern := $X -> $X;
  )", pool), PatternError);  // self-relation via the shared leaf
  EXPECT_THROW(compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := (A && B) <-> A;
  )", pool), PatternError);  // partner needs single events
  EXPECT_THROW(compile(R"(
      A := ['', a, ''];
      A $X; A $Y;
      pattern := ($X -> $Y) && ($Y -> $X);
  )", pool), PatternError);  // no terminating leaf (cycle)
}

TEST(Compile, LimitedPrecedenceOperator) {
  StringPool pool;
  const CompiledPattern compiled = compile(R"(
      A := ['', a, '']; B := ['', b, ''];
      pattern := A -lim-> B;
  )", pool);
  ASSERT_EQ(compiled.constraints.size(), 1U);
  EXPECT_EQ(compiled.constraints[0].op, ConstraintOp::kBeforeLimited);
  // The limited-precedence source cannot terminate a match.
  ASSERT_EQ(compiled.terminating.size(), 1U);
  EXPECT_EQ(compiled.terminating[0], 1U);
}

TEST(Compile, AttributeVariablesGetStableIds) {
  StringPool pool;
  const CompiledPattern compiled = compile(R"(
      W1 := [$1, blocked_send, $2];
      W2 := [$2, blocked_send, $1];
      pattern := W1 || W2;
  )", pool);
  EXPECT_EQ(compiled.variable_count, 2U);
  EXPECT_EQ(compiled.leaves[0].process.variable,
            compiled.leaves[1].text.variable);
  EXPECT_EQ(compiled.leaves[0].text.variable,
            compiled.leaves[1].process.variable);
}

}  // namespace
}  // namespace ocep::pattern
