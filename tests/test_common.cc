// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/string_pool.h"

namespace ocep {
namespace {

// --- StringPool -------------------------------------------------------------

TEST(StringPool, EmptyStringIsSymbolZero) {
  StringPool pool;
  EXPECT_EQ(pool.intern(""), kEmptySymbol);
  EXPECT_EQ(pool.view(kEmptySymbol), "");
}

TEST(StringPool, InternIsIdempotent) {
  StringPool pool;
  const Symbol a1 = pool.intern("alpha");
  const Symbol b = pool.intern("beta");
  const Symbol a2 = pool.intern("alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(pool.view(a1), "alpha");
  EXPECT_EQ(pool.view(b), "beta");
}

TEST(StringPool, LookupDoesNotIntern) {
  StringPool pool;
  Symbol out;
  EXPECT_FALSE(pool.lookup("missing", out));
  const Symbol sym = pool.intern("present");
  ASSERT_TRUE(pool.lookup("present", out));
  EXPECT_EQ(out, sym);
  EXPECT_EQ(pool.size(), 2U);  // "" and "present"
}

TEST(StringPool, ViewsStayValidAsPoolGrows) {
  StringPool pool;
  const Symbol first = pool.intern("needle");
  const std::string_view view = pool.view(first);
  for (int i = 0; i < 5000; ++i) {
    pool.intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(view, "needle");
  EXPECT_EQ(pool.view(first), "needle");
  Symbol out;
  ASSERT_TRUE(pool.lookup("needle", out));
  EXPECT_EQ(out, first);
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99), c(100);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    all_equal = all_equal && (va == b());
    any_diff_seed_diff = any_diff_seed_diff || (va != c());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all residues hit over 1000 draws
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3U);
    EXPECT_LE(v, 5U);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
}

// --- Flags ------------------------------------------------------------------

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--traces=10", "--events", "5000",
                        "--verbose"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("traces", 0), 10);
  EXPECT_EQ(flags.get_int("events", 0), 5000);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  flags.check_unused();
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("traces", 42), 42);
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.5), 0.5);
  EXPECT_FALSE(flags.get_bool("verbose", false));
}

TEST(Flags, RejectsMalformedInput) {
  const char* bad_prefix[] = {"prog", "traces=10"};
  EXPECT_THROW(Flags(2, bad_prefix), Error);

  const char* dup[] = {"prog", "--x=1", "--x=2"};
  EXPECT_THROW(Flags(3, dup), Error);

  const char* argv[] = {"prog", "--n=abc"};
  Flags flags(2, argv);
  EXPECT_THROW(static_cast<void>(flags.get_int("n", 0)), Error);
}

TEST(Flags, CheckUnusedCatchesTypos) {
  const char* argv[] = {"prog", "--tracs=10"};
  Flags flags(2, argv);
  EXPECT_EQ(flags.get_int("traces", 3), 3);
  EXPECT_THROW(flags.check_unused(), Error);
}

}  // namespace
}  // namespace ocep
