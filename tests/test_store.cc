// Durability-store suite (ctest -L store): the segment log's crash
// contract, the recovery corpus (torn tails at every byte boundary,
// bit flips, manifest damage, missing segments), tenant-record
// semantics (base supersession, tombstones, orphan deltas, GC), and a
// fork-based crash-point exhaustion that kills a deterministic
// workload at every write/fsync/rename edge and proves the survivor
// is always a valid prefix.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/durable.h"
#include "common/error.h"
#include "store/segment_log.h"
#include "store/tenant_store.h"

namespace fs = std::filesystem;
using namespace ocep;
using namespace ocep::store;

namespace {

/// Fresh scratch directory per test; removed up front so a failed prior
/// run cannot leak state into this one.
std::string scratch_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ocep_store_" + tag + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

LogConfig log_config(const std::string& dir) {
  LogConfig config;
  config.dir = dir;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string seg_path(const std::string& dir, std::uint32_t id) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.log", id);
  return dir + "/" + name;
}

Record make_record(RecordType type, std::uint64_t epoch, std::string name,
                   std::string payload) {
  Record record;
  record.type = type;
  record.epoch = epoch;
  record.name = std::move(name);
  record.payload = std::move(payload);
  return record;
}

/// Opens a log and collects every scanned record in append order.
std::vector<Record> scan_all(LogConfig config) {
  std::vector<Record> seen;
  SegmentLog log(std::move(config),
                 [&seen](const Record& record, const RecordRef&) {
                   seen.push_back(record);
                 });
  return seen;
}

// --- segment log basics ------------------------------------------------

TEST(SegmentLog, AppendSyncReopenRoundTrip) {
  const std::string dir = scratch_dir("roundtrip");
  std::vector<Record> wrote;
  wrote.push_back(make_record(RecordType::kGenesis, 1, "alpha", "p0"));
  wrote.push_back(make_record(RecordType::kDelta, 1, "alpha", "d0"));
  wrote.push_back(
      make_record(RecordType::kBase, 2, "beta", std::string(100, 'B')));
  wrote.push_back(make_record(RecordType::kTombstone, 3, "alpha", ""));
  {
    SegmentLog log(log_config(dir), nullptr);
    for (const Record& record : wrote) {
      log.append(record);
    }
    EXPECT_TRUE(log.dirty());
    log.sync();
    EXPECT_FALSE(log.dirty());
    EXPECT_EQ(log.stats().appends, wrote.size());
    EXPECT_EQ(log.stats().syncs, 1U);
  }

  const std::vector<Record> seen = scan_all(log_config(dir));
  ASSERT_EQ(seen.size(), wrote.size());
  for (std::size_t i = 0; i < wrote.size(); ++i) {
    EXPECT_EQ(seen[i].type, wrote[i].type) << i;
    EXPECT_EQ(seen[i].epoch, wrote[i].epoch) << i;
    EXPECT_EQ(seen[i].name, wrote[i].name) << i;
    EXPECT_EQ(seen[i].payload, wrote[i].payload) << i;
  }
}

TEST(SegmentLog, RotationPreservesOrderAcrossSegments) {
  const std::string dir = scratch_dir("rotate");
  constexpr int kRecords = 40;
  {
    LogConfig config = log_config(dir);
    config.segment_bytes = 128;  // a few records per segment
    SegmentLog log(std::move(config), nullptr);
    for (int i = 0; i < kRecords; ++i) {
      log.append(make_record(RecordType::kDelta, 1, "t",
                             "payload-" + std::to_string(i)));
    }
    log.sync();
    EXPECT_GE(log.stats().rotations, 3U);
  }
  const std::vector<Record> seen = scan_all(log_config(dir));
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].payload,
              "payload-" + std::to_string(i));
  }
}

TEST(SegmentLog, ReadPayloadRechecksCrc) {
  const std::string dir = scratch_dir("reread");
  std::vector<RecordRef> refs;
  SegmentLog log(log_config(dir), nullptr);
  refs.push_back(
      log.append(make_record(RecordType::kBase, 1, "t", "the payload")));
  log.sync();
  EXPECT_EQ(log.read_payload(refs[0]), "the payload");

  // Flip a payload byte behind the log's back: the re-read must notice.
  std::string data = read_file(seg_path(dir, 1));
  data[data.size() - 3] ^= 0x40;
  write_file(seg_path(dir, 1), data);
  EXPECT_THROW((void)log.read_payload(refs[0]), StoreError);
}

TEST(SegmentLog, OrphanSegmentIsRemovedOnOpen) {
  const std::string dir = scratch_dir("orphan");
  { SegmentLog log(log_config(dir), nullptr); }
  // Simulate a crash after create_segment but before the manifest write
  // landed: a header-only segment the manifest does not name.
  const std::string orphan = seg_path(dir, 7);
  std::string header = read_file(seg_path(dir, 1)).substr(0, 16);
  write_file(orphan, header);
  { SegmentLog log(log_config(dir), nullptr); }
  EXPECT_FALSE(fs::exists(orphan));
}

TEST(SegmentLog, RecordBearingSegmentWithoutManifestIsFatal) {
  const std::string dir = scratch_dir("nomanifest");
  {
    SegmentLog log(log_config(dir), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", "x"));
    log.sync();
  }
  // Records must never vanish silently: losing the manifest while a
  // segment still holds data is corruption, not a fresh store.
  fs::remove(dir + "/manifest");
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);
}

// --- recovery corpus ---------------------------------------------------

/// Copies a closed log directory so each corpus case mutates a fresh
/// snapshot, never the original.
void clone_dir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

TEST(RecoveryCorpus, TornTailAtEveryByteBoundary) {
  const std::string dir = scratch_dir("torn_src");
  std::vector<std::string> payloads = {"first", "second-record",
                                       std::string(40, 'z')};
  std::vector<std::uint64_t> frame_ends;  // prefix byte offsets
  {
    SegmentLog log(log_config(dir), nullptr);
    for (const std::string& payload : payloads) {
      const RecordRef ref =
          log.append(make_record(RecordType::kDelta, 1, "t", payload));
      frame_ends.push_back(ref.offset + ref.frame_bytes);
    }
    log.sync();
  }
  const std::string segment = seg_path(dir, 1);
  const std::uint64_t full = fs::file_size(segment);
  ASSERT_EQ(full, frame_ends.back());

  const std::string work = scratch_dir("torn_case");
  for (std::uint64_t cut = kSegmentHeaderBytes; cut < full; ++cut) {
    clone_dir(dir, work);
    fs::resize_file(seg_path(work, 1), cut);

    // Expected survivors: every record whose frame ends at or before
    // the cut; everything past the last boundary is the torn tail.
    std::size_t survivors = 0;
    std::uint64_t valid_end = kSegmentHeaderBytes;
    while (survivors < frame_ends.size() && frame_ends[survivors] <= cut) {
      valid_end = frame_ends[survivors];
      ++survivors;
    }

    LogConfig config = log_config(work);
    std::vector<Record> seen;
    SegmentLog log(std::move(config),
                   [&seen](const Record& record, const RecordRef&) {
                     seen.push_back(record);
                   });
    ASSERT_EQ(seen.size(), survivors) << "cut at byte " << cut;
    for (std::size_t i = 0; i < survivors; ++i) {
      EXPECT_EQ(seen[i].payload, payloads[i]) << "cut at byte " << cut;
    }
    EXPECT_EQ(log.stats().torn_tail_bytes, cut - valid_end)
        << "cut at byte " << cut;

    // The truncated log must accept appends again, right where the
    // valid prefix ended.
    const RecordRef ref =
        log.append(make_record(RecordType::kDelta, 1, "t", "after"));
    EXPECT_EQ(ref.offset, valid_end) << "cut at byte " << cut;
    log.sync();
  }
}

TEST(RecoveryCorpus, TruncationToExactBoundaryIsNotTorn) {
  const std::string dir = scratch_dir("boundary");
  std::uint64_t first_end = 0;
  {
    SegmentLog log(log_config(dir), nullptr);
    const RecordRef ref =
        log.append(make_record(RecordType::kDelta, 1, "t", "keep"));
    first_end = ref.offset + ref.frame_bytes;
    log.append(make_record(RecordType::kDelta, 1, "t", "drop"));
    log.sync();
  }
  fs::resize_file(seg_path(dir, 1), first_end);
  LogConfig config = log_config(dir);
  std::vector<Record> seen;
  SegmentLog log(std::move(config),
                 [&seen](const Record& record, const RecordRef&) {
                   seen.push_back(record);
                 });
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_EQ(seen[0].payload, "keep");
  EXPECT_EQ(log.stats().torn_tail_bytes, 0U);
}

TEST(RecoveryCorpus, BitFlipInFinalRecordTruncatesAsTornTail) {
  const std::string dir = scratch_dir("flip_tail");
  {
    SegmentLog log(log_config(dir), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", "survivor"));
    log.append(make_record(RecordType::kDelta, 1, "t", "victim-record"));
    log.sync();
  }
  const std::string segment = seg_path(dir, 1);
  std::string data = read_file(segment);
  data[data.size() - 2] ^= 0x01;  // inside the last record's payload
  write_file(segment, data);

  LogConfig config = log_config(dir);
  std::vector<Record> seen;
  SegmentLog log(std::move(config),
                 [&seen](const Record& record, const RecordRef&) {
                   seen.push_back(record);
                 });
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_EQ(seen[0].payload, "survivor");
  EXPECT_GT(log.stats().torn_tail_bytes, 0U);

  // A second reopen sees a clean, truncated log — the corruption was
  // physically reclaimed, not just skipped.
  log.sync();
  const std::vector<Record> again = scan_all(log_config(dir));
  EXPECT_EQ(again.size(), 1U);
}

TEST(RecoveryCorpus, BitFlipMidRecordWithValidSuccessorIsFatal) {
  const std::string dir = scratch_dir("flip_mid");
  std::uint64_t first_offset = 0;
  {
    SegmentLog log(log_config(dir), nullptr);
    const RecordRef ref =
        log.append(make_record(RecordType::kDelta, 1, "t", "corrupt-me"));
    first_offset = ref.offset;
    log.append(make_record(RecordType::kDelta, 1, "t", "still-valid"));
    log.sync();
  }
  const std::string segment = seg_path(dir, 1);
  std::string data = read_file(segment);
  data[first_offset + 10] ^= 0x10;  // first record's body
  write_file(segment, data);

  try {
    scan_all(log_config(dir));
    FAIL() << "mid-log corruption must throw";
  } catch (const StoreError& error) {
    EXPECT_EQ(error.file(), segment);
    EXPECT_EQ(error.byte_offset(),
              static_cast<std::int64_t>(first_offset));
  }
}

TEST(RecoveryCorpus, BitFlipInSealedSegmentIsFatal) {
  const std::string dir = scratch_dir("flip_sealed");
  {
    LogConfig config = log_config(dir);
    config.segment_bytes = 64;  // every record seals its segment
    SegmentLog log(std::move(config), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'a')));
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'b')));
    log.sync();
  }
  std::string data = read_file(seg_path(dir, 1));
  data[40] ^= 0x04;  // mid-record in a sealed (non-final) segment
  write_file(seg_path(dir, 1), data);
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);
}

TEST(RecoveryCorpus, ManifestDamageIsFatal) {
  const std::string dir = scratch_dir("manifest");
  {
    SegmentLog log(log_config(dir), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", "x"));
    log.sync();
  }
  const std::string manifest = dir + "/manifest";
  const std::string original = read_file(manifest);

  // Bit flip in the CRC-covered body.
  std::string flipped = original;
  flipped[flipped.size() - 1] ^= 0x08;
  write_file(manifest, flipped);
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);

  // Truncation.
  write_file(manifest, original.substr(0, original.size() - 2));
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);

  // Restored byte-for-byte, the log opens again.
  write_file(manifest, original);
  EXPECT_EQ(scan_all(log_config(dir)).size(), 1U);
}

TEST(RecoveryCorpus, SegmentNamedByManifestMissingIsFatal) {
  const std::string dir = scratch_dir("missing_seg");
  {
    LogConfig config = log_config(dir);
    config.segment_bytes = 64;
    SegmentLog log(std::move(config), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'a')));
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'b')));
    log.sync();
  }
  fs::remove(seg_path(dir, 1));
  try {
    scan_all(log_config(dir));
    FAIL() << "a manifest-named segment must exist";
  } catch (const StoreError& error) {
    EXPECT_EQ(error.file(), seg_path(dir, 1));
  }
}

TEST(RecoveryCorpus, VerifyLogReportsWithoutThrowing) {
  const std::string dir = scratch_dir("verify");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_genesis("alpha", {"a; b"});
    tenants.append_delta("alpha", "wire-bytes");
    tenants.append_base("beta", std::string(80, 'B'));
    tenants.sync();
  }
  VerifyReport healthy = verify_log(dir);
  EXPECT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy.issues.empty());
  EXPECT_EQ(healthy.records, 3U);
  ASSERT_TRUE(healthy.tenants.contains("alpha"));
  ASSERT_TRUE(healthy.tenants.contains("beta"));
  EXPECT_EQ(healthy.tenants["alpha"].genesis, 1U);
  EXPECT_EQ(healthy.tenants["alpha"].deltas, 1U);
  EXPECT_EQ(healthy.tenants["beta"].bases, 1U);
  EXPECT_EQ(healthy.tenants["beta"].last_epoch, 1U);

  // Torn tail: a note, not a fatality.
  const std::string torn = scratch_dir("verify_torn");
  clone_dir(dir, torn);
  fs::resize_file(seg_path(torn, 1),
                  fs::file_size(seg_path(torn, 1)) - 3);
  VerifyReport torn_report = verify_log(torn);
  EXPECT_TRUE(torn_report.ok());
  EXPECT_GT(torn_report.torn_tail_bytes, 0U);

  // Mid-log corruption: positioned and fatal.
  const std::string bad = scratch_dir("verify_bad");
  clone_dir(dir, bad);
  std::string data = read_file(seg_path(bad, 1));
  data[20] ^= 0x20;
  write_file(seg_path(bad, 1), data);
  VerifyReport bad_report = verify_log(bad);
  EXPECT_FALSE(bad_report.ok());
  ASSERT_FALSE(bad_report.issues.empty());
  bool positioned = false;
  for (const VerifyIssue& issue : bad_report.issues) {
    positioned = positioned || (issue.fatal && issue.offset >= 0);
  }
  EXPECT_TRUE(positioned);
}

// --- tenant record semantics -------------------------------------------

TEST(TenantStoreSemantics, BaseSupersedesGenesisAndEarlierDeltas) {
  const std::string dir = scratch_dir("supersede");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_genesis("t", {"p"});
    tenants.append_delta("t", "old-1");
    tenants.append_delta("t", "old-2");
    tenants.append_base("t", "IMAGE-1");
    tenants.append_delta("t", "new-1");
    tenants.sync();
    EXPECT_EQ(tenants.epoch_of("t"), 2U);
  }
  TenantStore reopened(log_config(dir));
  ASSERT_TRUE(reopened.images().contains("t"));
  const TenantImage& image = reopened.images().at("t");
  EXPECT_TRUE(image.has_base);
  EXPECT_EQ(image.base, "IMAGE-1");
  ASSERT_EQ(image.deltas.size(), 1U);
  EXPECT_EQ(image.deltas[0], "new-1");
  // The pre-base deltas attach to the old epoch during the scan and are
  // then superseded wholesale by the base — they are not orphans.
  EXPECT_EQ(reopened.stats().orphan_deltas, 0U);
}

TEST(TenantStoreSemantics, DuplicateBaseLatestWins) {
  const std::string dir = scratch_dir("dup_base");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_base("t", "IMAGE-1");
    tenants.append_base("t", "IMAGE-2");
    tenants.sync();
  }
  TenantStore reopened(log_config(dir));
  const TenantImage& image = reopened.images().at("t");
  EXPECT_EQ(image.base, "IMAGE-2");
  EXPECT_EQ(image.epoch, 2U);
  EXPECT_TRUE(image.deltas.empty());
}

TEST(TenantStoreSemantics, TombstoneErasesUntilHigherEpochRebirth) {
  const std::string dir = scratch_dir("tombstone");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_base("t", "IMAGE");
    tenants.append_tombstone("t");
    tenants.sync();
  }
  {
    TenantStore reopened(log_config(dir));
    EXPECT_FALSE(reopened.images().contains("t"));
    EXPECT_FALSE(reopened.contains("t"));
    // Rebirth must outrank the tombstone's epoch.
    reopened.append_genesis("t", {"p"});
    EXPECT_GT(reopened.epoch_of("t"), 2U);
    reopened.sync();
  }
  TenantStore again(log_config(dir));
  ASSERT_TRUE(again.images().contains("t"));
  EXPECT_FALSE(again.images().at("t").has_base);
}

TEST(TenantStoreSemantics, MinEpochOutranksForeignCopy) {
  const std::string dir = scratch_dir("min_epoch");
  TenantStore tenants(log_config(dir));
  tenants.append_base("t", "ADOPTED", /*min_epoch=*/9);
  EXPECT_EQ(tenants.epoch_of("t"), 9U);
  tenants.append_genesis("u", {"p"}, /*min_epoch=*/5);
  EXPECT_EQ(tenants.epoch_of("u"), 5U);
  tenants.sync();
}

TEST(TenantStoreSemantics, ReadTenantAfterDropImages) {
  const std::string dir = scratch_dir("drop");
  TenantStore tenants(log_config(dir));
  tenants.append_base("t", std::string(200, 'X'));
  tenants.append_delta("t", "delta-1");
  tenants.append_delta("t", "delta-2");
  tenants.sync();
  tenants.drop_images();
  EXPECT_TRUE(tenants.images().empty());

  const TenantImage image = tenants.read_tenant("t");
  EXPECT_TRUE(image.has_base);
  EXPECT_EQ(image.base, std::string(200, 'X'));
  ASSERT_EQ(image.deltas.size(), 2U);
  EXPECT_EQ(image.deltas[0], "delta-1");
  EXPECT_EQ(image.deltas[1], "delta-2");
  EXPECT_THROW((void)tenants.read_tenant("nobody"), StoreError);
}

TEST(TenantStoreSemantics, RebaseCollectsFullyDeadSegments) {
  const std::string dir = scratch_dir("gc");
  LogConfig config = log_config(dir);
  config.segment_bytes = 128;
  TenantStore tenants(std::move(config));
  tenants.append_base("t", std::string(100, 'A'));
  for (int i = 0; i < 30; ++i) {
    tenants.append_delta("t", std::string(60, 'd'));
  }
  tenants.sync();
  const std::uint64_t before = tenants.log_stats().segments_deleted;
  // The re-base supersedes every earlier record; sealed segments whose
  // live bytes hit zero are unlinked from the manifest.
  tenants.append_base("t", std::string(100, 'B'));
  tenants.sync();
  EXPECT_GT(tenants.log_stats().segments_deleted, before);

  TenantStore reopened(log_config(dir));
  const TenantImage& image = reopened.images().at("t");
  EXPECT_EQ(image.base, std::string(100, 'B'));
  EXPECT_TRUE(image.deltas.empty());
  EXPECT_TRUE(verify_log(dir).ok());
}

TEST(TenantStoreSemantics, ReadImagesScansForeignDirReadOnly) {
  const std::string dir = scratch_dir("foreign");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_base("t", "IMAGE");
    tenants.append_delta("t", "d");
    tenants.sync();
  }
  const auto images = TenantStore::read_images(dir);
  ASSERT_TRUE(images.contains("t"));
  EXPECT_EQ(images.at("t").base, "IMAGE");
  ASSERT_EQ(images.at("t").deltas.size(), 1U);
  // A directory that does not exist is an empty store, not an error.
  EXPECT_TRUE(TenantStore::read_images(dir + "/nope").empty());
}

TEST(TenantStoreSemantics, PatternCodecRoundTrip) {
  const std::vector<std::string> patterns = {"a; b", "", "c -> d; e"};
  std::vector<std::string> out;
  ASSERT_TRUE(decode_patterns(encode_patterns(patterns), out));
  EXPECT_EQ(out, patterns);
  EXPECT_FALSE(decode_patterns("\xff\xff\xff\xff\xff", out));
}

// --- crash-point exhaustion --------------------------------------------

constexpr char kChildDone = 42;   ///< workload ran to completion
constexpr char kChildError = 7;   ///< workload threw — a real bug

/// The deterministic workload: enough appends, syncs, rotations and a
/// compaction to reach every durability edge the log has.
void crash_workload(const std::string& dir, int crash_at) {
  int edges = 0;
  LogConfig config = log_config(dir);
  config.segment_bytes = 160;  // force rotations mid-workload
  config.crash_hook = [&edges, crash_at](CrashEdge, std::string_view) {
    if (++edges == crash_at) {
      ::_Exit(0);  // the simulated kill -9, straight past destructors
    }
  };
  TenantStore tenants(std::move(config));
  tenants.append_genesis("t", {"a; b"});
  tenants.append_delta("t", "d1");
  tenants.sync();
  tenants.append_base("t", std::string(64, 'B'));
  tenants.append_delta("t", "d2");
  tenants.append_delta("t", std::string(64, 'D'));
  tenants.sync();
  tenants.append_base("t", std::string(64, 'C'));  // supersede + collect
  tenants.sync();
  ::_Exit(kChildDone);
}

/// After a crash at any edge, the surviving store must open cleanly and
/// hold exactly one of the workload's valid prefixes.
void check_crash_survivor(const std::string& dir, int crash_at) {
  ASSERT_TRUE(verify_log(dir).ok()) << "edge " << crash_at;

  TenantStore tenants(log_config(dir));
  if (tenants.contains("t")) {
    const TenantImage image = tenants.read_tenant("t");
    if (!image.has_base) {
      EXPECT_EQ(image.epoch, 1U) << "edge " << crash_at;
      EXPECT_EQ(image.patterns, std::vector<std::string>{"a; b"})
          << "edge " << crash_at;
      EXPECT_LE(image.deltas.size(), 1U) << "edge " << crash_at;
      if (!image.deltas.empty()) {
        EXPECT_EQ(image.deltas[0], "d1") << "edge " << crash_at;
      }
    } else if (image.base == std::string(64, 'B')) {
      EXPECT_EQ(image.epoch, 2U) << "edge " << crash_at;
      ASSERT_LE(image.deltas.size(), 2U) << "edge " << crash_at;
      const std::vector<std::string> expect = {"d2", std::string(64, 'D')};
      for (std::size_t i = 0; i < image.deltas.size(); ++i) {
        EXPECT_EQ(image.deltas[i], expect[i]) << "edge " << crash_at;
      }
    } else {
      EXPECT_EQ(image.base, std::string(64, 'C')) << "edge " << crash_at;
      EXPECT_EQ(image.epoch, 3U) << "edge " << crash_at;
      EXPECT_TRUE(image.deltas.empty()) << "edge " << crash_at;
    }
    // The survivor keeps working: append, sync, reopen.
    tenants.append_delta("t", "post-crash");
  } else {
    tenants.append_genesis("t", {"post"});
  }
  tenants.sync();

  TenantStore again(log_config(dir));
  EXPECT_TRUE(again.contains("t")) << "edge " << crash_at;
}

TEST(CrashExhaustion, KilledAtEveryEdgeRecoversToValidPrefix) {
  bool completed = false;
  int edges_exercised = 0;
  for (int crash_at = 1; crash_at <= 500; ++crash_at) {
    const std::string dir =
        scratch_dir("crash_" + std::to_string(crash_at));
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        crash_workload(dir, crash_at);
      } catch (...) {
        ::_Exit(kChildError);
      }
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "edge " << crash_at;
    ASSERT_NE(WEXITSTATUS(status), kChildError) << "edge " << crash_at;
    if (WEXITSTATUS(status) == kChildDone) {
      // Every edge before this one has been killed and checked.
      completed = true;
      edges_exercised = crash_at - 1;
      break;
    }
    check_crash_survivor(dir, crash_at);
    fs::remove_all(dir);
  }
  ASSERT_TRUE(completed) << "workload never ran out of edges to kill";
  // The workload must actually reach a healthy spread of edges (appends,
  // segment syncs, rotations, manifest writes, renames, compaction).
  EXPECT_GE(edges_exercised, 30);
}

// --- durable small-file helper (satellite 1) ---------------------------

TEST(DurableWrite, ReplacesFileAtomicallyAndCleansTmp) {
  const std::string dir = scratch_dir("durable");
  fs::create_directories(dir);
  const std::string path = dir + "/placement.map";
  ASSERT_TRUE(write_file_durable(path, "first contents"));
  EXPECT_EQ(read_file(path), "first contents");
  ASSERT_TRUE(write_file_durable(path, "second"));
  EXPECT_EQ(read_file(path), "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // A missing parent directory fails cleanly instead of throwing.
  EXPECT_FALSE(write_file_durable(dir + "/nope/file", "x"));
}

}  // namespace
