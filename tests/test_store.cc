// Durability-store suite (ctest -L store): the segment log's crash
// contract, the recovery corpus (torn tails at every byte boundary,
// bit flips, manifest damage, missing segments), tenant-record
// semantics (base supersession, tombstones, orphan deltas, GC), the
// span storage tier (span record semantics, buffer pool, compactor,
// spill-then-fault-back matcher equivalence), and fork-based
// crash-point exhaustions that kill deterministic workloads at every
// write/fsync/rename edge and prove the survivor is always a valid
// prefix.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/durable.h"
#include "common/error.h"
#include "common/string_pool.h"
#include "core/monitor.h"
#include "core/span_sink.h"
#include "random_computation.h"
#include "store/buffer_pool.h"
#include "store/compactor.h"
#include "store/segment_log.h"
#include "store/tenant_store.h"
#include "testing/chaos_harness.h"

namespace fs = std::filesystem;
using namespace ocep;
using namespace ocep::store;

namespace {

/// Fresh scratch directory per test; removed up front so a failed prior
/// run cannot leak state into this one.
std::string scratch_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ocep_store_" + tag + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

LogConfig log_config(const std::string& dir) {
  LogConfig config;
  config.dir = dir;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string seg_path(const std::string& dir, std::uint32_t id) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.log", id);
  return dir + "/" + name;
}

Record make_record(RecordType type, std::uint64_t epoch, std::string name,
                   std::string payload) {
  Record record;
  record.type = type;
  record.epoch = epoch;
  record.name = std::move(name);
  record.payload = std::move(payload);
  return record;
}

/// Opens a log and collects every scanned record in append order.
std::vector<Record> scan_all(LogConfig config) {
  std::vector<Record> seen;
  SegmentLog log(std::move(config),
                 [&seen](const Record& record, const RecordRef&) {
                   seen.push_back(record);
                 });
  return seen;
}

// --- segment log basics ------------------------------------------------

TEST(SegmentLog, AppendSyncReopenRoundTrip) {
  const std::string dir = scratch_dir("roundtrip");
  std::vector<Record> wrote;
  wrote.push_back(make_record(RecordType::kGenesis, 1, "alpha", "p0"));
  wrote.push_back(make_record(RecordType::kDelta, 1, "alpha", "d0"));
  wrote.push_back(
      make_record(RecordType::kBase, 2, "beta", std::string(100, 'B')));
  wrote.push_back(make_record(RecordType::kTombstone, 3, "alpha", ""));
  {
    SegmentLog log(log_config(dir), nullptr);
    for (const Record& record : wrote) {
      log.append(record);
    }
    EXPECT_TRUE(log.dirty());
    log.sync();
    EXPECT_FALSE(log.dirty());
    EXPECT_EQ(log.stats().appends, wrote.size());
    EXPECT_EQ(log.stats().syncs, 1U);
  }

  const std::vector<Record> seen = scan_all(log_config(dir));
  ASSERT_EQ(seen.size(), wrote.size());
  for (std::size_t i = 0; i < wrote.size(); ++i) {
    EXPECT_EQ(seen[i].type, wrote[i].type) << i;
    EXPECT_EQ(seen[i].epoch, wrote[i].epoch) << i;
    EXPECT_EQ(seen[i].name, wrote[i].name) << i;
    EXPECT_EQ(seen[i].payload, wrote[i].payload) << i;
  }
}

TEST(SegmentLog, RotationPreservesOrderAcrossSegments) {
  const std::string dir = scratch_dir("rotate");
  constexpr int kRecords = 40;
  {
    LogConfig config = log_config(dir);
    config.segment_bytes = 128;  // a few records per segment
    SegmentLog log(std::move(config), nullptr);
    for (int i = 0; i < kRecords; ++i) {
      log.append(make_record(RecordType::kDelta, 1, "t",
                             "payload-" + std::to_string(i)));
    }
    log.sync();
    EXPECT_GE(log.stats().rotations, 3U);
  }
  const std::vector<Record> seen = scan_all(log_config(dir));
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].payload,
              "payload-" + std::to_string(i));
  }
}

TEST(SegmentLog, ReadPayloadRechecksCrc) {
  const std::string dir = scratch_dir("reread");
  std::vector<RecordRef> refs;
  SegmentLog log(log_config(dir), nullptr);
  refs.push_back(
      log.append(make_record(RecordType::kBase, 1, "t", "the payload")));
  log.sync();
  EXPECT_EQ(log.read_payload(refs[0]), "the payload");

  // Flip a payload byte behind the log's back: the re-read must notice.
  std::string data = read_file(seg_path(dir, 1));
  data[data.size() - 3] ^= 0x40;
  write_file(seg_path(dir, 1), data);
  EXPECT_THROW((void)log.read_payload(refs[0]), StoreError);
}

TEST(SegmentLog, OrphanSegmentIsRemovedOnOpen) {
  const std::string dir = scratch_dir("orphan");
  { SegmentLog log(log_config(dir), nullptr); }
  // Simulate a crash after create_segment but before the manifest write
  // landed: a header-only segment the manifest does not name.
  const std::string orphan = seg_path(dir, 7);
  std::string header = read_file(seg_path(dir, 1)).substr(0, 16);
  write_file(orphan, header);
  { SegmentLog log(log_config(dir), nullptr); }
  EXPECT_FALSE(fs::exists(orphan));
}

TEST(SegmentLog, RecordBearingSegmentWithoutManifestIsFatal) {
  const std::string dir = scratch_dir("nomanifest");
  {
    SegmentLog log(log_config(dir), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", "x"));
    log.sync();
  }
  // Records must never vanish silently: losing the manifest while a
  // segment still holds data is corruption, not a fresh store.
  fs::remove(dir + "/manifest");
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);
}

// --- recovery corpus ---------------------------------------------------

/// Copies a closed log directory so each corpus case mutates a fresh
/// snapshot, never the original.
void clone_dir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

TEST(RecoveryCorpus, TornTailAtEveryByteBoundary) {
  const std::string dir = scratch_dir("torn_src");
  std::vector<std::string> payloads = {"first", "second-record",
                                       std::string(40, 'z')};
  std::vector<std::uint64_t> frame_ends;  // prefix byte offsets
  {
    SegmentLog log(log_config(dir), nullptr);
    for (const std::string& payload : payloads) {
      const RecordRef ref =
          log.append(make_record(RecordType::kDelta, 1, "t", payload));
      frame_ends.push_back(ref.offset + ref.frame_bytes);
    }
    log.sync();
  }
  const std::string segment = seg_path(dir, 1);
  const std::uint64_t full = fs::file_size(segment);
  ASSERT_EQ(full, frame_ends.back());

  const std::string work = scratch_dir("torn_case");
  for (std::uint64_t cut = kSegmentHeaderBytes; cut < full; ++cut) {
    clone_dir(dir, work);
    fs::resize_file(seg_path(work, 1), cut);

    // Expected survivors: every record whose frame ends at or before
    // the cut; everything past the last boundary is the torn tail.
    std::size_t survivors = 0;
    std::uint64_t valid_end = kSegmentHeaderBytes;
    while (survivors < frame_ends.size() && frame_ends[survivors] <= cut) {
      valid_end = frame_ends[survivors];
      ++survivors;
    }

    LogConfig config = log_config(work);
    std::vector<Record> seen;
    SegmentLog log(std::move(config),
                   [&seen](const Record& record, const RecordRef&) {
                     seen.push_back(record);
                   });
    ASSERT_EQ(seen.size(), survivors) << "cut at byte " << cut;
    for (std::size_t i = 0; i < survivors; ++i) {
      EXPECT_EQ(seen[i].payload, payloads[i]) << "cut at byte " << cut;
    }
    EXPECT_EQ(log.stats().torn_tail_bytes, cut - valid_end)
        << "cut at byte " << cut;

    // The truncated log must accept appends again, right where the
    // valid prefix ended.
    const RecordRef ref =
        log.append(make_record(RecordType::kDelta, 1, "t", "after"));
    EXPECT_EQ(ref.offset, valid_end) << "cut at byte " << cut;
    log.sync();
  }
}

TEST(RecoveryCorpus, TruncationToExactBoundaryIsNotTorn) {
  const std::string dir = scratch_dir("boundary");
  std::uint64_t first_end = 0;
  {
    SegmentLog log(log_config(dir), nullptr);
    const RecordRef ref =
        log.append(make_record(RecordType::kDelta, 1, "t", "keep"));
    first_end = ref.offset + ref.frame_bytes;
    log.append(make_record(RecordType::kDelta, 1, "t", "drop"));
    log.sync();
  }
  fs::resize_file(seg_path(dir, 1), first_end);
  LogConfig config = log_config(dir);
  std::vector<Record> seen;
  SegmentLog log(std::move(config),
                 [&seen](const Record& record, const RecordRef&) {
                   seen.push_back(record);
                 });
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_EQ(seen[0].payload, "keep");
  EXPECT_EQ(log.stats().torn_tail_bytes, 0U);
}

TEST(RecoveryCorpus, BitFlipInFinalRecordTruncatesAsTornTail) {
  const std::string dir = scratch_dir("flip_tail");
  {
    SegmentLog log(log_config(dir), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", "survivor"));
    log.append(make_record(RecordType::kDelta, 1, "t", "victim-record"));
    log.sync();
  }
  const std::string segment = seg_path(dir, 1);
  std::string data = read_file(segment);
  data[data.size() - 2] ^= 0x01;  // inside the last record's payload
  write_file(segment, data);

  LogConfig config = log_config(dir);
  std::vector<Record> seen;
  SegmentLog log(std::move(config),
                 [&seen](const Record& record, const RecordRef&) {
                   seen.push_back(record);
                 });
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_EQ(seen[0].payload, "survivor");
  EXPECT_GT(log.stats().torn_tail_bytes, 0U);

  // A second reopen sees a clean, truncated log — the corruption was
  // physically reclaimed, not just skipped.
  log.sync();
  const std::vector<Record> again = scan_all(log_config(dir));
  EXPECT_EQ(again.size(), 1U);
}

TEST(RecoveryCorpus, BitFlipMidRecordWithValidSuccessorIsFatal) {
  const std::string dir = scratch_dir("flip_mid");
  std::uint64_t first_offset = 0;
  {
    SegmentLog log(log_config(dir), nullptr);
    const RecordRef ref =
        log.append(make_record(RecordType::kDelta, 1, "t", "corrupt-me"));
    first_offset = ref.offset;
    log.append(make_record(RecordType::kDelta, 1, "t", "still-valid"));
    log.sync();
  }
  const std::string segment = seg_path(dir, 1);
  std::string data = read_file(segment);
  data[first_offset + 10] ^= 0x10;  // first record's body
  write_file(segment, data);

  try {
    scan_all(log_config(dir));
    FAIL() << "mid-log corruption must throw";
  } catch (const StoreError& error) {
    EXPECT_EQ(error.file(), segment);
    EXPECT_EQ(error.byte_offset(),
              static_cast<std::int64_t>(first_offset));
  }
}

TEST(RecoveryCorpus, BitFlipInSealedSegmentIsFatal) {
  const std::string dir = scratch_dir("flip_sealed");
  {
    LogConfig config = log_config(dir);
    config.segment_bytes = 64;  // every record seals its segment
    SegmentLog log(std::move(config), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'a')));
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'b')));
    log.sync();
  }
  std::string data = read_file(seg_path(dir, 1));
  data[40] ^= 0x04;  // mid-record in a sealed (non-final) segment
  write_file(seg_path(dir, 1), data);
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);
}

TEST(RecoveryCorpus, ManifestDamageIsFatal) {
  const std::string dir = scratch_dir("manifest");
  {
    SegmentLog log(log_config(dir), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", "x"));
    log.sync();
  }
  const std::string manifest = dir + "/manifest";
  const std::string original = read_file(manifest);

  // Bit flip in the CRC-covered body.
  std::string flipped = original;
  flipped[flipped.size() - 1] ^= 0x08;
  write_file(manifest, flipped);
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);

  // Truncation.
  write_file(manifest, original.substr(0, original.size() - 2));
  EXPECT_THROW(scan_all(log_config(dir)), StoreError);

  // Restored byte-for-byte, the log opens again.
  write_file(manifest, original);
  EXPECT_EQ(scan_all(log_config(dir)).size(), 1U);
}

TEST(RecoveryCorpus, SegmentNamedByManifestMissingIsFatal) {
  const std::string dir = scratch_dir("missing_seg");
  {
    LogConfig config = log_config(dir);
    config.segment_bytes = 64;
    SegmentLog log(std::move(config), nullptr);
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'a')));
    log.append(make_record(RecordType::kDelta, 1, "t", std::string(60, 'b')));
    log.sync();
  }
  fs::remove(seg_path(dir, 1));
  try {
    scan_all(log_config(dir));
    FAIL() << "a manifest-named segment must exist";
  } catch (const StoreError& error) {
    EXPECT_EQ(error.file(), seg_path(dir, 1));
  }
}

TEST(RecoveryCorpus, VerifyLogReportsWithoutThrowing) {
  const std::string dir = scratch_dir("verify");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_genesis("alpha", {"a; b"});
    tenants.append_delta("alpha", "wire-bytes");
    tenants.append_base("beta", std::string(80, 'B'));
    tenants.sync();
  }
  VerifyReport healthy = verify_log(dir);
  EXPECT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy.issues.empty());
  EXPECT_EQ(healthy.records, 3U);
  ASSERT_TRUE(healthy.tenants.contains("alpha"));
  ASSERT_TRUE(healthy.tenants.contains("beta"));
  EXPECT_EQ(healthy.tenants["alpha"].genesis, 1U);
  EXPECT_EQ(healthy.tenants["alpha"].deltas, 1U);
  EXPECT_EQ(healthy.tenants["beta"].bases, 1U);
  EXPECT_EQ(healthy.tenants["beta"].last_epoch, 1U);

  // Torn tail: a note, not a fatality.
  const std::string torn = scratch_dir("verify_torn");
  clone_dir(dir, torn);
  fs::resize_file(seg_path(torn, 1),
                  fs::file_size(seg_path(torn, 1)) - 3);
  VerifyReport torn_report = verify_log(torn);
  EXPECT_TRUE(torn_report.ok());
  EXPECT_GT(torn_report.torn_tail_bytes, 0U);

  // Mid-log corruption: positioned and fatal.
  const std::string bad = scratch_dir("verify_bad");
  clone_dir(dir, bad);
  std::string data = read_file(seg_path(bad, 1));
  data[20] ^= 0x20;
  write_file(seg_path(bad, 1), data);
  VerifyReport bad_report = verify_log(bad);
  EXPECT_FALSE(bad_report.ok());
  ASSERT_FALSE(bad_report.issues.empty());
  bool positioned = false;
  for (const VerifyIssue& issue : bad_report.issues) {
    positioned = positioned || (issue.fatal && issue.offset >= 0);
  }
  EXPECT_TRUE(positioned);
}

// --- tenant record semantics -------------------------------------------

TEST(TenantStoreSemantics, BaseSupersedesGenesisAndEarlierDeltas) {
  const std::string dir = scratch_dir("supersede");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_genesis("t", {"p"});
    tenants.append_delta("t", "old-1");
    tenants.append_delta("t", "old-2");
    tenants.append_base("t", "IMAGE-1");
    tenants.append_delta("t", "new-1");
    tenants.sync();
    EXPECT_EQ(tenants.epoch_of("t"), 2U);
  }
  TenantStore reopened(log_config(dir));
  ASSERT_TRUE(reopened.images().contains("t"));
  const TenantImage& image = reopened.images().at("t");
  EXPECT_TRUE(image.has_base);
  EXPECT_EQ(image.base, "IMAGE-1");
  ASSERT_EQ(image.deltas.size(), 1U);
  EXPECT_EQ(image.deltas[0], "new-1");
  // The pre-base deltas attach to the old epoch during the scan and are
  // then superseded wholesale by the base — they are not orphans.
  EXPECT_EQ(reopened.stats().orphan_deltas, 0U);
}

TEST(TenantStoreSemantics, DuplicateBaseLatestWins) {
  const std::string dir = scratch_dir("dup_base");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_base("t", "IMAGE-1");
    tenants.append_base("t", "IMAGE-2");
    tenants.sync();
  }
  TenantStore reopened(log_config(dir));
  const TenantImage& image = reopened.images().at("t");
  EXPECT_EQ(image.base, "IMAGE-2");
  EXPECT_EQ(image.epoch, 2U);
  EXPECT_TRUE(image.deltas.empty());
}

TEST(TenantStoreSemantics, TombstoneErasesUntilHigherEpochRebirth) {
  const std::string dir = scratch_dir("tombstone");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_base("t", "IMAGE");
    tenants.append_tombstone("t");
    tenants.sync();
  }
  {
    TenantStore reopened(log_config(dir));
    EXPECT_FALSE(reopened.images().contains("t"));
    EXPECT_FALSE(reopened.contains("t"));
    // Rebirth must outrank the tombstone's epoch.
    reopened.append_genesis("t", {"p"});
    EXPECT_GT(reopened.epoch_of("t"), 2U);
    reopened.sync();
  }
  TenantStore again(log_config(dir));
  ASSERT_TRUE(again.images().contains("t"));
  EXPECT_FALSE(again.images().at("t").has_base);
}

TEST(TenantStoreSemantics, MinEpochOutranksForeignCopy) {
  const std::string dir = scratch_dir("min_epoch");
  TenantStore tenants(log_config(dir));
  tenants.append_base("t", "ADOPTED", /*min_epoch=*/9);
  EXPECT_EQ(tenants.epoch_of("t"), 9U);
  tenants.append_genesis("u", {"p"}, /*min_epoch=*/5);
  EXPECT_EQ(tenants.epoch_of("u"), 5U);
  tenants.sync();
}

TEST(TenantStoreSemantics, ReadTenantAfterDropImages) {
  const std::string dir = scratch_dir("drop");
  TenantStore tenants(log_config(dir));
  tenants.append_base("t", std::string(200, 'X'));
  tenants.append_delta("t", "delta-1");
  tenants.append_delta("t", "delta-2");
  tenants.sync();
  tenants.drop_images();
  EXPECT_TRUE(tenants.images().empty());

  const TenantImage image = tenants.read_tenant("t");
  EXPECT_TRUE(image.has_base);
  EXPECT_EQ(image.base, std::string(200, 'X'));
  ASSERT_EQ(image.deltas.size(), 2U);
  EXPECT_EQ(image.deltas[0], "delta-1");
  EXPECT_EQ(image.deltas[1], "delta-2");
  EXPECT_THROW((void)tenants.read_tenant("nobody"), StoreError);
}

TEST(TenantStoreSemantics, RebaseCollectsFullyDeadSegments) {
  const std::string dir = scratch_dir("gc");
  LogConfig config = log_config(dir);
  config.segment_bytes = 128;
  TenantStore tenants(std::move(config));
  tenants.append_base("t", std::string(100, 'A'));
  for (int i = 0; i < 30; ++i) {
    tenants.append_delta("t", std::string(60, 'd'));
  }
  tenants.sync();
  const std::uint64_t before = tenants.log_stats().segments_deleted;
  // The re-base supersedes every earlier record; sealed segments whose
  // live bytes hit zero are unlinked from the manifest.
  tenants.append_base("t", std::string(100, 'B'));
  tenants.sync();
  EXPECT_GT(tenants.log_stats().segments_deleted, before);

  TenantStore reopened(log_config(dir));
  const TenantImage& image = reopened.images().at("t");
  EXPECT_EQ(image.base, std::string(100, 'B'));
  EXPECT_TRUE(image.deltas.empty());
  EXPECT_TRUE(verify_log(dir).ok());
}

TEST(TenantStoreSemantics, ReadImagesScansForeignDirReadOnly) {
  const std::string dir = scratch_dir("foreign");
  {
    TenantStore tenants(log_config(dir));
    tenants.append_base("t", "IMAGE");
    tenants.append_delta("t", "d");
    tenants.sync();
  }
  const auto images = TenantStore::read_images(dir);
  ASSERT_TRUE(images.contains("t"));
  EXPECT_EQ(images.at("t").base, "IMAGE");
  ASSERT_EQ(images.at("t").deltas.size(), 1U);
  // A directory that does not exist is an empty store, not an error.
  EXPECT_TRUE(TenantStore::read_images(dir + "/nope").empty());
}

TEST(TenantStoreSemantics, PatternCodecRoundTrip) {
  const std::vector<std::string> patterns = {"a; b", "", "c -> d; e"};
  std::vector<std::string> out;
  ASSERT_TRUE(decode_patterns(encode_patterns(patterns), out));
  EXPECT_EQ(out, patterns);
  EXPECT_FALSE(decode_patterns("\xff\xff\xff\xff\xff", out));
}

// --- span records (spilled leaf histories) -----------------------------

/// Deterministic span fixture keyed by seq; entries strictly ascending.
SpanPayload make_span(std::uint64_t seq, std::size_t entries = 6) {
  SpanPayload span;
  span.key.pattern = static_cast<std::uint32_t>(seq % 2);
  span.key.leaf = static_cast<std::uint32_t>(seq % 3);
  span.key.trace = 1 + seq % 5;
  span.key.seq = seq;
  std::uint64_t index = 1 + seq * 100;
  for (std::size_t i = 0; i < entries; ++i) {
    span.entries.emplace_back(index, index % 7);
    index += 1 + i % 4;
  }
  return span;
}

TEST(SpanRecords, CodecRoundTripAndMalformedReject) {
  const SpanPayload span = make_span(42, 17);
  const std::string encoded = encode_span_payload(span);

  SpanPayload decoded;
  ASSERT_TRUE(decode_span_payload(encoded, decoded));
  EXPECT_EQ(decoded.key, span.key);
  EXPECT_EQ(decoded.entries, span.entries);

  SpanKey key;
  ASSERT_TRUE(decode_span_key(encoded, key));
  EXPECT_EQ(key, span.key);

  // Truncations and garbage must fail cleanly, never crash.
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    SpanPayload out;
    EXPECT_FALSE(decode_span_payload(encoded.substr(0, cut), out))
        << "cut " << cut;
  }
  SpanPayload out;
  EXPECT_FALSE(decode_span_payload("\xff\xff\xff\xff\xff\xff\xff", out));
}

TEST(SpanRecords, SurviveBaseSupersedeDieWithTombstone) {
  const std::string dir = scratch_dir("span_lifecycle");
  const SpanPayload span = make_span(1);
  {
    TenantStore tenants(log_config(dir));
    tenants.append_base("t", "IMAGE-1");
    tenants.append_span("t", span);
    // A re-base references its spilled spans by key, so the base
    // supersede must NOT kill them.
    tenants.append_base("t", "IMAGE-2");
    EXPECT_TRUE(tenants.has_span("t", span.key));
    tenants.sync();
  }
  {
    TenantStore reopened(log_config(dir));
    ASSERT_TRUE(reopened.has_span("t", span.key));
    EXPECT_EQ(reopened.read_span("t", span.key).entries, span.entries);
    EXPECT_EQ(reopened.span_count("t"), 1U);
    // The tombstone kills the incarnation's spans with it.
    reopened.append_tombstone("t");
    EXPECT_FALSE(reopened.has_span("t", span.key));
    reopened.sync();
  }
  TenantStore again(log_config(dir));
  EXPECT_EQ(again.total_spans(), 0U);
  EXPECT_FALSE(again.has_span("t", span.key));
}

TEST(SpanRecords, ReappendIsLastWinsAndReleaseIsIdempotent) {
  const std::string dir = scratch_dir("span_dedup");
  SpanPayload original = make_span(3);
  SpanPayload replacement = original;
  replacement.entries.emplace_back(10000, 1);
  {
    TenantStore tenants(log_config(dir));
    tenants.append_genesis("t", {"p"});
    tenants.append_span("t", original);
    // Crash-replay re-spills the same seq: the re-append supersedes the
    // first copy instead of duplicating it.
    tenants.append_span("t", replacement);
    EXPECT_EQ(tenants.span_count("t"), 1U);
    tenants.sync();
  }
  TenantStore reopened(log_config(dir));
  EXPECT_EQ(reopened.span_count("t"), 1U);
  EXPECT_EQ(reopened.read_span("t", original.key).entries,
            replacement.entries);
  reopened.release_span("t", original.key);
  reopened.release_span("t", original.key);  // no-op, not an error
  EXPECT_EQ(reopened.span_count("t"), 0U);
  EXPECT_THROW((void)reopened.read_span("t", original.key), StoreError);
}

TEST(SpanRecords, RetainSpansDropsCrashOrphans) {
  const std::string dir = scratch_dir("span_retain");
  TenantStore tenants(log_config(dir));
  tenants.append_genesis("t", {"p"});
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    tenants.append_span("t", make_span(seq));
  }
  // The restored matcher only references seqs 1 and 4 — everything else
  // is a record nothing will ever fault, left by lost deltas.
  tenants.retain_spans("t", {make_span(1).key, make_span(4).key});
  EXPECT_EQ(tenants.span_count("t"), 2U);
  EXPECT_TRUE(tenants.has_span("t", make_span(1).key));
  EXPECT_FALSE(tenants.has_span("t", make_span(0).key));
  EXPECT_GE(tenants.stats().orphan_spans + tenants.stats().span_releases,
            3U);
  tenants.sync();
}

TEST(SpanRecords, RelocationPreservesPayloadAcrossCrashDuplicate) {
  const std::string dir = scratch_dir("span_reloc");
  const SpanPayload span = make_span(9, 20);
  {
    TenantStore tenants(log_config(dir));
    tenants.append_genesis("t", {"p"});
    tenants.append_span("t", span);
    // Append-then-kill: run the relocation twice to also cover the
    // crash shape where both copies land on disk before the kill.
    tenants.relocate_span("t", span.key);
    tenants.relocate_span("t", span.key);
    EXPECT_EQ(tenants.span_count("t"), 1U);
    EXPECT_EQ(tenants.read_span("t", span.key).entries, span.entries);
    EXPECT_EQ(tenants.stats().spans_relocated, 2U);
    tenants.sync();
  }
  TenantStore reopened(log_config(dir));
  EXPECT_EQ(reopened.span_count("t"), 1U);
  EXPECT_EQ(reopened.read_span("t", span.key).entries, span.entries);
}

// --- buffer pool -------------------------------------------------------

TEST(BufferPoolTier, HitsMissesAndClockEviction) {
  const std::string dir = scratch_dir("pool_clock");
  TenantStore tenants(log_config(dir));
  tenants.append_genesis("t", {"p"});
  constexpr std::uint64_t kSpans = 16;
  for (std::uint64_t seq = 0; seq < kSpans; ++seq) {
    tenants.append_span("t", make_span(seq, 32));
  }
  tenants.sync();

  // Budget for roughly four frames: a working set of sixteen must churn.
  BufferPool pool(4 * (32 * 16 + 128));
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t seq = 0; seq < kSpans; ++seq) {
      const SpanKey key = make_span(seq).key;
      const SpanPayload* payload = pool.acquire("t", key, tenants);
      ASSERT_NE(payload, nullptr) << "seq " << seq;
      EXPECT_EQ(payload->entries, make_span(seq, 32).entries);
      pool.unpin("t", key);
    }
  }
  EXPECT_GT(pool.stats().evictions, 0U);
  EXPECT_GT(pool.stats().misses, 0U);
  EXPECT_LE(pool.stats().frames, kSpans);

  // A repeatedly-touched key stays resident: all hits after the first.
  const SpanKey hot = make_span(0).key;
  const std::uint64_t miss_before = pool.stats().misses;
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(pool.acquire("t", hot, tenants), nullptr);
    pool.unpin("t", hot);
  }
  EXPECT_LE(pool.stats().misses, miss_before + 1);
  EXPECT_EQ(pool.stats().load_errors, 0U);
}

TEST(BufferPoolTier, PinnedFramesAreNeverEvicted) {
  const std::string dir = scratch_dir("pool_pin");
  TenantStore tenants(log_config(dir));
  tenants.append_genesis("t", {"p"});
  for (std::uint64_t seq = 0; seq < 12; ++seq) {
    tenants.append_span("t", make_span(seq, 32));
  }
  tenants.sync();

  BufferPool pool(2 * (32 * 16 + 128));  // about two frames
  const SpanKey pinned_key = make_span(0).key;
  const SpanPayload* pinned = pool.acquire("t", pinned_key, tenants);
  ASSERT_NE(pinned, nullptr);
  const auto expected = make_span(0, 32).entries;

  // Thrash far past the budget; the pinned frame must stay valid even
  // though the pool overshoots rather than evict it.
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t seq = 1; seq < 12; ++seq) {
      const SpanKey key = make_span(seq).key;
      ASSERT_NE(pool.acquire("t", key, tenants), nullptr);
      pool.unpin("t", key);
    }
  }
  EXPECT_EQ(pool.stats().pinned, 1U);
  EXPECT_EQ(pinned->entries, expected);
  pool.unpin("t", pinned_key);
  EXPECT_EQ(pool.stats().pinned, 0U);
}

TEST(BufferPoolTier, InvalidateAndLoadErrors) {
  const std::string dir = scratch_dir("pool_invalidate");
  TenantStore tenants(log_config(dir));
  tenants.append_genesis("t", {"p"});
  tenants.append_span("t", make_span(0));
  tenants.sync();

  BufferPool pool(1 << 20);
  ASSERT_NE(pool.acquire("t", make_span(0).key, tenants), nullptr);
  pool.unpin("t", make_span(0).key);
  pool.invalidate("t", make_span(0).key);
  EXPECT_EQ(pool.stats().frames, 0U);

  // A span the store never had: counted, not fatal.
  EXPECT_EQ(pool.acquire("t", make_span(99).key, tenants), nullptr);
  EXPECT_EQ(pool.stats().load_errors, 1U);

  ASSERT_NE(pool.acquire("t", make_span(0).key, tenants), nullptr);
  pool.unpin("t", make_span(0).key);
  pool.invalidate_tenant("t");
  EXPECT_EQ(pool.stats().frames, 0U);
  EXPECT_EQ(pool.stats().bytes, 0U);
}

// --- compaction scheduler ----------------------------------------------

TEST(CompactorTier, DrainsDeadSegmentsInBoundedQuanta) {
  const std::string dir = scratch_dir("compactor_drain");
  LogConfig config = log_config(dir);
  config.segment_bytes = 1 << 10;  // several sealed span-only segments
  TenantStore tenants(std::move(config));
  tenants.append_genesis("t", {"p"});
  std::vector<SpanKey> keys;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    keys.push_back(make_span(seq, 16).key);
    tenants.append_span("t", make_span(seq, 16));
  }
  tenants.sync();
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    if (seq % 4 != 0) {
      tenants.release_span("t", keys[seq]);
    }
  }

  CompactorConfig compactor_config;
  compactor_config.dead_ratio = 0.3;
  compactor_config.quantum_spans = 4;
  Compactor compactor(tenants, compactor_config);
  const std::uint64_t deleted_before = tenants.log_stats().segments_deleted;
  int productive = 0;
  for (int tick = 0; tick < 200; ++tick) {
    productive += compactor.tick() ? 1 : 0;
  }
  EXPECT_GT(compactor.stats().spans_moved, 0U);
  EXPECT_GT(compactor.stats().segments_planned, 0U);
  EXPECT_GT(tenants.log_stats().segments_deleted, deleted_before);
  // The quantum bounds each tick, so draining took several of them.
  EXPECT_GT(productive, 1);
  // Every surviving span reads back exactly, wherever its record moved.
  for (std::uint64_t seq = 0; seq < 64; seq += 4) {
    EXPECT_EQ(tenants.read_span("t", keys[seq]).entries,
              make_span(seq, 16).entries)
        << "seq " << seq;
  }
  tenants.sync();
  EXPECT_TRUE(verify_log(dir).ok());

  // Idle store: ticks settle to no-ops and the backlog empties.
  bool idle_work = false;
  for (int tick = 0; tick < 8; ++tick) {
    idle_work = idle_work || compactor.tick();
  }
  EXPECT_FALSE(idle_work);
  EXPECT_EQ(compactor.backlog(), 0U);
}

TEST(CompactorTier, RebaseQueueDedupsRetriesAndQuiesces) {
  const std::string dir = scratch_dir("compactor_rebase");
  TenantStore tenants(log_config(dir));
  tenants.append_genesis("t", {"p"});
  tenants.sync();

  Compactor compactor(tenants, CompactorConfig{});
  int attempts = 0;
  compactor.set_rebase_fn([&attempts](const std::string& tenant) {
    EXPECT_EQ(tenant, "t");
    return ++attempts >= 3;  // frozen for two ticks, then rebasable
  });
  compactor.schedule_rebase("t");
  compactor.schedule_rebase("t");  // dedup: still one queue entry
  EXPECT_EQ(compactor.backlog(), 1U);

  int ticks = 0;
  while (compactor.backlog() != 0 && ticks < 10) {
    compactor.tick();
    ++ticks;
  }
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(compactor.stats().rebases_run, 1U);
  EXPECT_EQ(compactor.stats().rebase_failures, 2U);
  EXPECT_EQ(compactor.backlog(), 0U);

  // quiesce abandons an in-flight segment plan without touching the log.
  compactor.quiesce();
  EXPECT_EQ(compactor.backlog(), 0U);
}

// --- spill-then-fault-back matcher equivalence -------------------------

/// The production sink shape (src/net/shard.cc) rebuilt on the test's
/// own store + pool: spills append span records, faults load through
/// the buffer pool, releases kill the record and drop the frame.
class StoreBackedSink final : public SpanSink {
 public:
  StoreBackedSink(TenantStore& store, BufferPool& pool, std::string tenant)
      : store_(store), pool_(pool), tenant_(std::move(tenant)) {}

  bool spill(std::uint32_t pattern, std::uint32_t leaf, TraceId trace,
             std::uint64_t seq,
             std::span<const HistoryEntry> entries) override {
    SpanPayload span;
    span.key = {pattern, leaf, trace, seq};
    span.entries.reserve(entries.size());
    for (const HistoryEntry& entry : entries) {
      span.entries.emplace_back(entry.index, entry.comm_before);
    }
    store_.append_span(tenant_, span);
    ++spills;
    return true;
  }

  bool fault(std::uint32_t pattern, std::uint32_t leaf, TraceId trace,
             std::uint64_t seq, std::vector<HistoryEntry>& out) override {
    const SpanKey key{pattern, leaf, trace, seq};
    const SpanPayload* payload = pool_.acquire(tenant_, key, store_);
    if (payload == nullptr) {
      return false;
    }
    out.clear();
    out.reserve(payload->entries.size());
    for (const auto& [index, comm_before] : payload->entries) {
      out.push_back({static_cast<EventIndex>(index),
                     static_cast<std::uint32_t>(comm_before)});
    }
    pool_.unpin(tenant_, key);
    ++faults;
    return true;
  }

  void release(std::uint32_t pattern, std::uint32_t leaf, TraceId trace,
               std::uint64_t seq) override {
    const SpanKey key{pattern, leaf, trace, seq};
    pool_.invalidate(tenant_, key);
    store_.release_span(tenant_, key);
  }

  std::uint64_t spills = 0;
  std::uint64_t faults = 0;

 private:
  TenantStore& store_;
  BufferPool& pool_;
  std::string tenant_;
};

constexpr const char* kSpillPattern =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

TEST(SpanSpillEquivalence, FaultBackMatchesUnboundedRamRun) {
  StringPool pool;
  ocep::testing::RandomComputationOptions options;
  options.traces = 8;
  options.events = 1200;
  options.seed = 17;
  const EventStore events = ocep::testing::random_computation(pool, options);
  std::vector<Symbol> traces;
  for (TraceId t = 0; t < events.trace_count(); ++t) {
    traces.push_back(events.trace_name(t));
  }
  const auto feed = [&events, &traces](Monitor& monitor) {
    monitor.on_traces(traces);
    for (std::uint64_t pos = 0; pos < events.event_count(); ++pos) {
      const EventId id = events.arrival(pos);
      monitor.on_event(events.event(id), events.clock(id));
    }
    monitor.drain();
  };

  Monitor unbounded(pool, events.storage());
  unbounded.add_pattern(kSpillPattern);
  feed(unbounded);
  const std::vector<std::string> full =
      ocep::testing::match_signature(unbounded, 0);
  ASSERT_GT(unbounded.matcher(0).history_bytes(), 4096U)
      << "workload too small to exercise the cap";

  // Same byte cap twice: plain eviction loses matches; the span sink
  // must spill instead and fault back to the exact unbounded result.
  MatcherConfig capped;
  capped.history_bytes_limit = 4096;

  Monitor evicting(pool, events.storage());
  evicting.add_pattern(kSpillPattern, capped);
  feed(evicting);
  const std::vector<std::string> lossy =
      ocep::testing::match_signature(evicting, 0);
  EXPECT_TRUE(ocep::testing::is_subset_of(lossy, full));

  const std::string dir = scratch_dir("spill_equiv");
  TenantStore tenants(log_config(dir));
  tenants.append_genesis("t", {kSpillPattern});
  BufferPool frames(8 * 1024);
  StoreBackedSink sink(tenants, frames, "t");
  Monitor spilling(pool, events.storage());
  spilling.add_pattern(kSpillPattern, capped);
  spilling.set_span_sink(&sink);
  feed(spilling);

  EXPECT_GT(sink.spills, 0U) << "cap never pressured the sink — vacuous";
  EXPECT_EQ(ocep::testing::match_signature(spilling, 0), full)
      << "spill-then-fault-back must be byte-identical to unbounded RAM";
  EXPECT_LE(spilling.matcher(0).history_bytes(),
            capped.history_bytes_limit);
  tenants.sync();
  EXPECT_TRUE(verify_log(dir).ok());
}

// --- crash-point exhaustion --------------------------------------------

constexpr char kChildDone = 42;   ///< workload ran to completion
constexpr char kChildError = 7;   ///< workload threw — a real bug

/// The deterministic workload: enough appends, syncs, rotations and a
/// compaction to reach every durability edge the log has.
void crash_workload(const std::string& dir, int crash_at) {
  int edges = 0;
  LogConfig config = log_config(dir);
  config.segment_bytes = 160;  // force rotations mid-workload
  config.crash_hook = [&edges, crash_at](CrashEdge, std::string_view) {
    if (++edges == crash_at) {
      ::_Exit(0);  // the simulated kill -9, straight past destructors
    }
  };
  TenantStore tenants(std::move(config));
  tenants.append_genesis("t", {"a; b"});
  tenants.append_delta("t", "d1");
  tenants.sync();
  tenants.append_base("t", std::string(64, 'B'));
  tenants.append_delta("t", "d2");
  tenants.append_delta("t", std::string(64, 'D'));
  tenants.sync();
  tenants.append_base("t", std::string(64, 'C'));  // supersede + collect
  tenants.sync();
  ::_Exit(kChildDone);
}

/// After a crash at any edge, the surviving store must open cleanly and
/// hold exactly one of the workload's valid prefixes.
void check_crash_survivor(const std::string& dir, int crash_at) {
  ASSERT_TRUE(verify_log(dir).ok()) << "edge " << crash_at;

  TenantStore tenants(log_config(dir));
  if (tenants.contains("t")) {
    const TenantImage image = tenants.read_tenant("t");
    if (!image.has_base) {
      EXPECT_EQ(image.epoch, 1U) << "edge " << crash_at;
      EXPECT_EQ(image.patterns, std::vector<std::string>{"a; b"})
          << "edge " << crash_at;
      EXPECT_LE(image.deltas.size(), 1U) << "edge " << crash_at;
      if (!image.deltas.empty()) {
        EXPECT_EQ(image.deltas[0], "d1") << "edge " << crash_at;
      }
    } else if (image.base == std::string(64, 'B')) {
      EXPECT_EQ(image.epoch, 2U) << "edge " << crash_at;
      ASSERT_LE(image.deltas.size(), 2U) << "edge " << crash_at;
      const std::vector<std::string> expect = {"d2", std::string(64, 'D')};
      for (std::size_t i = 0; i < image.deltas.size(); ++i) {
        EXPECT_EQ(image.deltas[i], expect[i]) << "edge " << crash_at;
      }
    } else {
      EXPECT_EQ(image.base, std::string(64, 'C')) << "edge " << crash_at;
      EXPECT_EQ(image.epoch, 3U) << "edge " << crash_at;
      EXPECT_TRUE(image.deltas.empty()) << "edge " << crash_at;
    }
    // The survivor keeps working: append, sync, reopen.
    tenants.append_delta("t", "post-crash");
  } else {
    tenants.append_genesis("t", {"post"});
  }
  tenants.sync();

  TenantStore again(log_config(dir));
  EXPECT_TRUE(again.contains("t")) << "edge " << crash_at;
}

TEST(CrashExhaustion, KilledAtEveryEdgeRecoversToValidPrefix) {
  bool completed = false;
  int edges_exercised = 0;
  for (int crash_at = 1; crash_at <= 500; ++crash_at) {
    const std::string dir =
        scratch_dir("crash_" + std::to_string(crash_at));
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        crash_workload(dir, crash_at);
      } catch (...) {
        ::_Exit(kChildError);
      }
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "edge " << crash_at;
    ASSERT_NE(WEXITSTATUS(status), kChildError) << "edge " << crash_at;
    if (WEXITSTATUS(status) == kChildDone) {
      // Every edge before this one has been killed and checked.
      completed = true;
      edges_exercised = crash_at - 1;
      break;
    }
    check_crash_survivor(dir, crash_at);
    fs::remove_all(dir);
  }
  ASSERT_TRUE(completed) << "workload never ran out of edges to kill";
  // The workload must actually reach a healthy spread of edges (appends,
  // segment syncs, rotations, manifest writes, renames, compaction).
  EXPECT_GE(edges_exercised, 30);
}

/// Span-tier crash workload: spans appended, released, re-appended
/// (the crash-replay dedup shape) and relocated by a ticking compactor,
/// then a re-base — every span-append and compaction edge gets killed.
void span_crash_workload(const std::string& dir, int crash_at) {
  int edges = 0;
  LogConfig config = log_config(dir);
  config.segment_bytes = 200;  // rotations mid-workload
  config.crash_hook = [&edges, crash_at](CrashEdge, std::string_view) {
    if (++edges == crash_at) {
      ::_Exit(0);
    }
  };
  TenantStore tenants(std::move(config));
  tenants.append_genesis("t", {"a; b"});
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    tenants.append_span("t", make_span(seq));
  }
  tenants.sync();
  for (std::uint64_t seq = 0; seq < 6; seq += 2) {
    tenants.release_span("t", make_span(seq).key);
  }
  tenants.append_span("t", make_span(1));  // idempotent re-spill
  tenants.sync();
  CompactorConfig compactor_config;
  compactor_config.dead_ratio = 0.2;
  compactor_config.quantum_spans = 2;
  Compactor compactor(tenants, compactor_config);
  for (int tick = 0; tick < 24; ++tick) {
    compactor.tick();
  }
  tenants.sync();
  tenants.append_base("t", std::string(64, 'B'));
  tenants.sync();
  ::_Exit(kChildDone);
}

/// Whatever edge the kill landed on, every surviving span must decode to
/// exactly what the workload wrote — relocation's append-then-kill may
/// leave two copies, never a wrong or torn-but-live one.
void check_span_crash_survivor(const std::string& dir, int crash_at) {
  ASSERT_TRUE(verify_log(dir).ok()) << "edge " << crash_at;

  TenantStore tenants(log_config(dir));
  if (tenants.contains("t")) {
    EXPECT_LE(tenants.span_count("t"), 6U) << "edge " << crash_at;
    for (std::uint64_t seq = 0; seq < 6; ++seq) {
      const SpanPayload expected = make_span(seq);
      if (!tenants.has_span("t", expected.key)) {
        continue;  // released, or the append never landed
      }
      EXPECT_EQ(tenants.read_span("t", expected.key).entries,
                expected.entries)
          << "edge " << crash_at << " seq " << seq;
    }
    // The survivor keeps working: spill, relocate, sync, reopen.
    tenants.append_span("t", make_span(7));
    tenants.relocate_span("t", make_span(7).key);
  } else {
    tenants.append_genesis("t", {"post"});
    tenants.append_span("t", make_span(7));
  }
  tenants.sync();

  TenantStore again(log_config(dir));
  ASSERT_TRUE(again.has_span("t", make_span(7).key)) << "edge " << crash_at;
  EXPECT_EQ(again.read_span("t", make_span(7).key).entries,
            make_span(7).entries)
      << "edge " << crash_at;
}

TEST(CrashExhaustion, SpanAndCompactionEdgesRecoverToValidPrefix) {
  bool completed = false;
  int edges_exercised = 0;
  for (int crash_at = 1; crash_at <= 800; ++crash_at) {
    const std::string dir =
        scratch_dir("span_crash_" + std::to_string(crash_at));
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        span_crash_workload(dir, crash_at);
      } catch (...) {
        ::_Exit(kChildError);
      }
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "edge " << crash_at;
    ASSERT_NE(WEXITSTATUS(status), kChildError) << "edge " << crash_at;
    if (WEXITSTATUS(status) == kChildDone) {
      completed = true;
      edges_exercised = crash_at - 1;
      break;
    }
    check_span_crash_survivor(dir, crash_at);
    fs::remove_all(dir);
  }
  ASSERT_TRUE(completed) << "workload never ran out of edges to kill";
  // Span appends, releases, the relocation appends + kills, and the
  // closing re-base must all contribute edges.
  EXPECT_GE(edges_exercised, 40);
}

// --- durable small-file helper (satellite 1) ---------------------------

TEST(DurableWrite, ReplacesFileAtomicallyAndCleansTmp) {
  const std::string dir = scratch_dir("durable");
  fs::create_directories(dir);
  const std::string path = dir + "/placement.map";
  ASSERT_TRUE(write_file_durable(path, "first contents"));
  EXPECT_EQ(read_file(path), "first contents");
  ASSERT_TRUE(write_file_durable(path, "second"));
  EXPECT_EQ(read_file(path), "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // A missing parent directory fails cleanly instead of throwing.
  EXPECT_FALSE(write_file_durable(dir + "/nope/file", "x"));
}

}  // namespace
