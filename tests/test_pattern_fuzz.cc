// Fuzz tests for the pattern-language front end (§IV grammar).
//
// Three properties, each over a deterministic seeded RNG:
//
//  1. Arbitrary byte soup never crashes the lexer/parser — malformed
//     input either parses or raises ocep::ParseError, nothing else.
//  2. Mutated well-formed programs (token-level edits) obey the same
//     contract, exercising error paths deep inside the parser.
//  3. Randomly generated well-formed programs parse, round-trip through
//     print (print(parse(print(parse(src)))) == print(parse(src))), and
//     compile without raising anything outside the ocep::Error family.
#include <gtest/gtest.h>

#include <exception>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/string_pool.h"
#include "pattern/compiled.h"
#include "pattern/parser.h"
#include "pattern/print.h"

namespace ocep::pattern {
namespace {

// Total iterations across the three fuzz tests ~ 10k; tuned to stay
// well under a second in tier-1.
constexpr int kGarbageIterations = 4000;
constexpr int kMutationIterations = 3000;
constexpr int kRoundTripIterations = 3000;

/// Parses `source`, asserting that the only exception that may escape is
/// ParseError.  Returns true when the parse succeeded.
bool parse_or_report(const std::string& source) {
  try {
    const AstProgram program = parse(source);
    EXPECT_NE(program.pattern, nullptr) << "input: " << source;
    return true;
  } catch (const ParseError& error) {
    // Errors must be reported with a position and a message, not thrown
    // raw: line/column are 1-based and what() is non-empty.
    EXPECT_GE(error.line(), 1) << "input: " << source;
    EXPECT_GE(error.column(), 1) << "input: " << source;
    EXPECT_NE(std::string_view(error.what()), "") << "input: " << source;
    return false;
  } catch (const std::exception& error) {
    ADD_FAILURE() << "non-ParseError escaped the parser: " << error.what()
                  << "\ninput: " << source;
    return false;
  }
}

TEST(PatternFuzz, GarbageInputNeverCrashes) {
  // A charset biased towards characters the lexer actually consumes so
  // the fuzz reaches past the first token.
  static constexpr std::string_view kChars =
      "abzAZ09_$'();:=[],#<>|-& \t\n\"\\%\x01\x7f";
  Rng rng(0xF022ED01);
  int parsed = 0;
  for (int i = 0; i < kGarbageIterations; ++i) {
    const std::size_t length = rng.below(48);
    std::string source;
    source.reserve(length);
    for (std::size_t c = 0; c < length; ++c) {
      source += kChars[rng.below(kChars.size())];
    }
    parsed += parse_or_report(source) ? 1 : 0;
  }
  // Pure byte soup almost never forms a program; what matters is that
  // every iteration terminated cleanly.
  EXPECT_LT(parsed, kGarbageIterations);
}

TEST(PatternFuzz, RandomTokenStreamsNeverCrash) {
  static const std::vector<std::string> kTokens = {
      "->",  "-lim->",  "||",      "<->",    "&&",     ":=",  ";",
      "(",   ")",       "[",       "]",      ",",      "$",   "pattern",
      "Acq", "Rel",     "$x",      "$y",     "''",     "'p'", "'lock'",
      "#c\n"};
  Rng rng(0xF022ED02);
  for (int i = 0; i < kMutationIterations; ++i) {
    const std::size_t length = rng.between(1, 24);
    std::string source;
    for (std::size_t t = 0; t < length; ++t) {
      source += kTokens[rng.below(kTokens.size())];
      if (rng.chance(3, 4)) {
        source += ' ';
      }
    }
    parse_or_report(source);
  }
}

// --- Well-formed program generator ---------------------------------------

struct Generated {
  std::string source;
  std::size_t leaf_budget = 0;
};

std::string random_ident(Rng& rng, const char* prefix) {
  return std::string(prefix) + std::to_string(rng.below(4));
}

std::string random_attr(Rng& rng, const std::vector<std::string>& variables) {
  const std::uint64_t pick = rng.below(4);
  if (pick == 0) {
    return "''";
  }
  if (pick == 1 && !variables.empty()) {
    return "$" + variables[rng.below(variables.size())];
  }
  return "'" + random_ident(rng, "v") + "'";
}

/// Emits a random expression over `classes` and `vars`, spending at most
/// `budget` leaves (the matcher caps patterns at 64 leaves; we stay far
/// below).  Returns the expression text.
std::string random_expr(Rng& rng, const std::vector<std::string>& classes,
                        const std::vector<std::string>& vars,
                        std::size_t budget, int depth) {
  if (budget <= 1 || depth >= 3 || rng.chance(1, 4)) {
    // Operand: class name or declared pattern variable.
    if (!vars.empty() && rng.chance(1, 3)) {
      return "$" + vars[rng.below(vars.size())];
    }
    return classes[rng.below(classes.size())];
  }
  const std::size_t terms = rng.between(2, 3);
  static constexpr const char* kOps[] = {" -> ", " -lim-> ", " || ", " <-> ",
                                         " && "};
  std::string out;
  std::size_t share = budget / terms;
  if (share == 0) {
    share = 1;
  }
  for (std::size_t t = 0; t < terms; ++t) {
    if (t > 0) {
      out += kOps[rng.below(5)];
    }
    std::string sub = random_expr(rng, classes, vars, share, depth + 1);
    // Parenthesize compound sub-expressions so the generated text is
    // unambiguous regardless of the surrounding operator.
    if (sub.find(' ') != std::string::npos) {
      sub = "(" + sub + ")";
    }
    out += sub;
  }
  return out;
}

Generated random_program(Rng& rng) {
  Generated gen;
  const std::size_t n_classes = rng.between(1, 4);
  std::vector<std::string> classes;
  std::vector<std::string> attr_vars;
  if (rng.chance(1, 2)) {
    attr_vars.push_back("a");
  }
  for (std::size_t c = 0; c < n_classes; ++c) {
    const std::string name = "C" + std::to_string(c);
    classes.push_back(name);
    gen.source += name + " := [" + random_attr(rng, attr_vars) + ", " +
                  random_attr(rng, attr_vars) + ", " +
                  random_attr(rng, attr_vars) + "];\n";
  }
  std::vector<std::string> vars;
  const std::size_t n_vars = rng.below(3);
  for (std::size_t v = 0; v < n_vars; ++v) {
    const std::string var = "V" + std::to_string(v);
    vars.push_back(var);
    gen.source += classes[rng.below(classes.size())] + " $" + var + ";\n";
  }
  gen.leaf_budget = rng.between(1, 10);
  gen.source += "pattern := " +
                random_expr(rng, classes, vars, gen.leaf_budget, 0) + ";\n";
  return gen;
}

TEST(PatternFuzz, WellFormedProgramsRoundTrip) {
  Rng rng(0xF022ED03);
  int compiled_ok = 0;
  for (int i = 0; i < kRoundTripIterations; ++i) {
    const Generated gen = random_program(rng);
    AstProgram first;
    try {
      first = parse(gen.source);
    } catch (const ParseError& error) {
      ADD_FAILURE() << "generated program failed to parse: " << error.what()
                    << "\ninput:\n" << gen.source;
      continue;
    }
    // print() is canonical: re-parsing its output and printing again must
    // be a fixed point.
    const std::string canon = print(first);
    const std::string again = print(parse(canon));
    EXPECT_EQ(canon, again) << "original:\n" << gen.source;

    // Compilation may legitimately reject the program (e.g. '<->'
    // between compound operands, a variable used as the whole pattern)
    // but must fail through the ocep::Error hierarchy.
    StringPool pool;
    try {
      const CompiledPattern compiled = compile(gen.source, pool);
      EXPECT_GT(compiled.size(), 0U);
      // The canonical print compiles to a same-sized pattern.
      StringPool pool2;
      EXPECT_EQ(compile(canon, pool2).size(), compiled.size());
      ++compiled_ok;
    } catch (const Error&) {
      // Reported, not raw -- acceptable.
    } catch (const std::exception& error) {
      ADD_FAILURE() << "non-ocep error escaped compile: " << error.what()
                    << "\ninput:\n" << gen.source;
    }
  }
  // The generator mostly emits compilable programs; guard against the
  // generator degrading into rejected-only output.
  EXPECT_GT(compiled_ok, kRoundTripIterations / 2);
}

TEST(PatternFuzz, ReportedErrorsCarryPosition) {
  // A few hand-picked malformed inputs verifying the error contract the
  // fuzz loops rely on.
  const std::vector<std::string> bad = {
      "pattern := ;",         "pattern := A ->",  "A := [;",
      "pattern := (A -> B;",  "pattern A -> B;",  "A := ['p', 't'];",
      "pattern := A -> B",    "$ := [,,];",       "pattern := -> A;",
  };
  for (const std::string& source : bad) {
    try {
      (void)parse(source);
      ADD_FAILURE() << "expected ParseError for: " << source;
    } catch (const ParseError& error) {
      EXPECT_GE(error.line(), 1);
      EXPECT_GE(error.column(), 1);
      EXPECT_NE(std::string_view(error.what()), "");
    }
  }
}

}  // namespace
}  // namespace ocep::pattern
