// Golden-file test for the dump format (poet/dump.cc).
//
// tools/zk962_golden.poet is a committed recording of the leader-follower
// (ZooKeeper-962) application: 342 events on 4 traces with two injected
// violations (`ocep_record --app ordering --traces 4 --events 400
// --seed 1`).  The test pins both the byte-level format and the match
// semantics: reload + re-dump must reproduce the file exactly, and the
// zk962 pattern must keep reporting the same matches.  If either fails,
// the wire format or the matcher drifted — regenerate the golden file
// only for a deliberate, documented format change.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/string_pool.h"
#include "core/monitor.h"
#include "poet/dump.h"

namespace ocep {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string golden_path() {
  return std::string(OCEP_SOURCE_DIR) + "/tools/zk962_golden.poet";
}

TEST(GoldenDump, RedumpIsByteIdentical) {
  const std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty());

  StringPool pool;
  std::istringstream in(golden);
  const EventStore store = reload_store(in, pool);
  EXPECT_EQ(store.trace_count(), 4U);
  EXPECT_EQ(store.event_count(), 342U);

  std::ostringstream out;
  dump(store, pool, out);
  const std::string redump = out.str();
  ASSERT_EQ(redump.size(), golden.size());
  EXPECT_EQ(redump, golden);

  // And the re-dump is itself a fixed point.
  StringPool pool2;
  std::istringstream in2(redump);
  const EventStore store2 = reload_store(in2, pool2);
  std::ostringstream out2;
  dump(store2, pool2, out2);
  EXPECT_EQ(out2.str(), golden);
}

TEST(GoldenDump, MatchResultsAreStableAfterReload) {
  const std::string pattern =
      read_file(std::string(OCEP_SOURCE_DIR) + "/tools/zk962.ocep");
  const std::string golden = read_file(golden_path());

  StringPool pool;
  Monitor monitor(pool);
  std::uint64_t reported = 0;
  monitor.add_pattern(pattern, MatcherConfig{},
                      [&](const Match&, bool) { ++reported; });

  std::istringstream in(golden);
  reload(in, pool, monitor);
  monitor.drain();

  // Frozen when the golden file was recorded: two reported matches, one
  // representative after subset reduction.
  EXPECT_EQ(reported, 2U);
  const MatcherStats& stats = monitor.matcher(0).stats();
  EXPECT_EQ(stats.events_observed, 342U);
  EXPECT_EQ(stats.matches_reported, 2U);
  EXPECT_EQ(monitor.matcher(0).subset().matches().size(), 1U);
}

}  // namespace
}  // namespace ocep
