// Random partial-order computation generator for property-based tests.
//
// Generates a valid distributed computation directly (no simulator): at
// every step a random trace performs a random feasible action — a local
// event, a send to a random peer, or a receive of some in-flight message —
// with correctly maintained Fidge/Mattern clocks.  Event types and texts
// are drawn from small alphabets so patterns over them have plenty of
// matches.  Deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_pool.h"
#include "poet/event_store.h"

namespace ocep::testing {

struct RandomComputationOptions {
  std::uint32_t traces = 4;
  std::uint32_t events = 200;
  std::uint64_t seed = 1;
  /// Relative weights of the three action kinds.
  std::uint32_t local_weight = 2;
  std::uint32_t send_weight = 2;
  std::uint32_t receive_weight = 2;
  /// Event types are drawn uniformly from {"A", "B", ...} of this size.
  std::uint32_t type_alphabet = 4;
  /// Timestamp backend of the produced store.
  ClockStorage storage = ClockStorage::kDense;
  /// Texts are drawn from {"", "x", "y", ...} of this size ("" = index 0).
  std::uint32_t text_alphabet = 3;
};

inline EventStore random_computation(StringPool& pool,
                                     const RandomComputationOptions& options) {
  Rng rng(options.seed);
  EventStore store(options.storage);
  std::vector<VectorClock> clocks;
  for (std::uint32_t t = 0; t < options.traces; ++t) {
    store.add_trace(pool.intern("T" + std::to_string(t)));
  }
  clocks.assign(options.traces, VectorClock(options.traces));

  std::vector<Symbol> types;
  for (std::uint32_t i = 0; i < options.type_alphabet; ++i) {
    types.push_back(pool.intern(std::string(1, static_cast<char>('A' + i))));
  }
  std::vector<Symbol> texts;
  texts.push_back(kEmptySymbol);
  for (std::uint32_t i = 1; i < options.text_alphabet; ++i) {
    texts.push_back(
        pool.intern(std::string(1, static_cast<char>('w' + i))));
  }

  struct InFlight {
    TraceId to = 0;
    std::uint64_t message = 0;
    VectorClock clock;
  };
  std::vector<InFlight> in_flight;
  std::uint64_t next_message = 1;

  auto emit = [&](TraceId t, EventKind kind, std::uint64_t message,
                  const VectorClock* merge) {
    VectorClock& clock = clocks[t];
    if (merge != nullptr) {
      clock.merge(*merge);
    }
    clock.tick(t);
    Event event;
    event.id = EventId{t, clock[t]};
    event.kind = kind;
    event.type = types[rng.below(types.size())];
    event.text = texts[rng.below(texts.size())];
    event.message = message;
    store.append(event, clock);
  };

  for (std::uint32_t i = 0; i < options.events; ++i) {
    const auto t = static_cast<TraceId>(rng.below(options.traces));
    const std::uint32_t total = options.local_weight + options.send_weight +
                                options.receive_weight;
    std::uint64_t roll = rng.below(total);
    if (roll < options.local_weight) {
      emit(t, EventKind::kLocal, kNoMessage, nullptr);
      continue;
    }
    roll -= options.local_weight;
    if (roll < options.send_weight || options.traces < 2) {
      TraceId to = t;
      while (to == t) {
        to = static_cast<TraceId>(rng.below(options.traces));
      }
      const std::uint64_t message = next_message++;
      emit(t, EventKind::kSend, message, nullptr);
      in_flight.push_back(InFlight{to, message, clocks[t]});
      continue;
    }
    // Receive: pick a random in-flight message to this trace, else fall
    // back to a local event.
    std::vector<std::size_t> candidates;
    for (std::size_t k = 0; k < in_flight.size(); ++k) {
      if (in_flight[k].to == t) {
        candidates.push_back(k);
      }
    }
    if (candidates.empty()) {
      emit(t, EventKind::kLocal, kNoMessage, nullptr);
      continue;
    }
    const std::size_t pick = candidates[rng.below(candidates.size())];
    emit(t, EventKind::kReceive, in_flight[pick].message,
         &in_flight[pick].clock);
    in_flight.erase(in_flight.begin() +
                    static_cast<std::ptrdiff_t>(pick));
  }
  return store;
}

}  // namespace ocep::testing
