// Unit tests for the observability layer (src/obs): histogram bucket
// arithmetic and quantile error bounds, registry lookup/export formats,
// and the death-tested access invariants on Monitor::metrics().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_pool.h"
#include "core/monitor.h"
#include "obs/metrics.h"
#include "poet/replay.h"
#include "random_computation.h"

namespace ocep::obs {
namespace {

TEST(Histogram, BucketArithmeticIsConsistent) {
  // Exhaustive below 4096, then random draws across the full range:
  // every value lands in a bucket whose [lo, hi] contains it, and bucket
  // indices are monotone in the value.
  std::size_t last = 0;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_LE(Histogram::bucket_lo(b), v);
    EXPECT_GE(Histogram::bucket_hi(b), v);
    EXPECT_GE(b, last);
    last = b;
  }
  Rng rng(0x0B5E01);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() >> rng.below(64);
    const std::size_t b = Histogram::bucket_of(v);
    ASSERT_LT(b, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lo(b), v);
    EXPECT_GE(Histogram::bucket_hi(b), v);
  }
  // The extremes stay inside the bucket table.
  EXPECT_LT(Histogram::bucket_of(~0ULL), Histogram::kBuckets);
  EXPECT_EQ(Histogram::bucket_of(0), 0U);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 8; ++v) {
    for (std::uint64_t r = 0; r <= v; ++r) {
      h.record(v);
    }
  }
  EXPECT_EQ(h.count(), 8U + 7 * 8 / 2);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 7U);
  // Values below 8 occupy exact buckets, so quantiles there are exact:
  // the median of {0, 1,1, 2,2,2, ...} (v appears v+1 times).
  EXPECT_EQ(h.quantile(1.0), 7.0);
  EXPECT_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, QuantilesWithinRelativeErrorBound) {
  Rng rng(0x0B5E02);
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.below(1'000'000);
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  std::uint64_t sum = 0;
  for (const std::uint64_t v : samples) {
    sum += v;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), samples.front());
  EXPECT_EQ(h.max(), samples.back());
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    const auto exact = static_cast<double>(samples[rank]);
    // Four sub-buckets per power of two => <= 25% relative error.
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.25) << "q=" << q;
  }
}

TEST(Histogram, EmptyIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.sum(), 0U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Registry, LookupIsIdempotent) {
  Registry registry;
  Counter& a = registry.counter("matcher.events", "pattern=\"0\"");
  Counter& b = registry.counter("matcher.events", "pattern=\"0\"");
  EXPECT_EQ(&a, &b);  // address-stable, created once
  Counter& other = registry.counter("matcher.events", "pattern=\"1\"");
  EXPECT_NE(&a, &other);

  a.add(3);
  b.add(2);
  EXPECT_EQ(registry.counter_value("matcher.events{pattern=\"0\"}"), 5U);
  EXPECT_EQ(registry.counter_value("matcher.events{pattern=\"1\"}"), 0U);
  EXPECT_EQ(registry.counter_value("no.such.counter"), 0U);
}

TEST(Registry, CounterValuesAreSortedByKey) {
  Registry registry;
  registry.counter("zebra").add(1);
  registry.counter("alpha").add(2);
  registry.counter("mid", "k=\"v\"").add(3);
  registry.gauge("a.gauge").set(-7);  // not a counter: excluded
  const auto values = registry.counter_values();
  ASSERT_EQ(values.size(), 3U);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[1].first, "mid{k=\"v\"}");
  EXPECT_EQ(values[2].first, "zebra");
  EXPECT_EQ(values[0].second, 2U);
}

TEST(Registry, ExportFormats) {
  Registry registry;
  registry.counter("matcher.events", "pattern=\"0\"", "events observed")
      .add(42);
  registry.gauge("store.bytes").set(1024);
  Histogram& h = registry.histogram("monitor.arrival_ns");
  h.record(5);
  h.record(5);

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("matcher.events{pattern=\"0\"} = 42"),
            std::string::npos);
  EXPECT_NE(text.find("store.bytes = 1024"), std::string::npos);
  EXPECT_NE(text.find("monitor.arrival_ns count=2 sum=10"),
            std::string::npos);

  const std::string json = registry.to_json();
  EXPECT_NE(
      json.find("\"counters\":{\"matcher.events{pattern=\\\"0\\\"}\":42}"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"store.bytes\":1024}"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\":2,\"sum\":10"), std::string::npos);

  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("# TYPE ocep_matcher_events counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ocep_matcher_events{pattern=\"0\"} 42"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP ocep_matcher_events events observed"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE ocep_store_bytes gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE ocep_monitor_arrival_ns summary"),
            std::string::npos);
  EXPECT_NE(prom.find("ocep_monitor_arrival_ns{quantile=\"0.5\"} 5"),
            std::string::npos);
  EXPECT_NE(prom.find("ocep_monitor_arrival_ns_count 2"),
            std::string::npos);
}

TEST(Histogram, MergePreservesDistributionAndExtremes) {
  Histogram a;
  Histogram b;
  for (std::uint64_t v = 0; v < 8; ++v) {
    a.record(v);
  }
  b.record(3);
  b.record(100000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 10U);
  EXPECT_EQ(a.sum(), 28U + 3U + 100000U);
  EXPECT_EQ(a.min(), 0U);
  EXPECT_EQ(a.max(), 100000U);
  // Exact buckets stay exact through a merge: two 3s out of ten samples.
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 0.0);
  EXPECT_NEAR(a.quantile(0.35), 3.0, 0.001);
  // Merging an empty histogram changes nothing (min untouched by ~0).
  const Histogram empty;
  a.merge_from(empty);
  EXPECT_EQ(a.count(), 10U);
  EXPECT_EQ(a.min(), 0U);
  EXPECT_EQ(a.max(), 100000U);
}

// The shard → admin-plane aggregation path: per-shard registries merge
// into a scratch per scrape.  Counters and gauges add; histograms fold
// bucket-wise; instruments missing in the target are created.
TEST(Registry, MergeAggregatesAcrossRegistries) {
  Registry shard0;
  Registry shard1;
  shard0.counter("net.accepted", "plane=\"ingest\"").add(3);
  shard1.counter("net.accepted", "plane=\"ingest\"").add(4);
  shard1.counter("net.conn_migrations").add(1);  // only shard 1 has it
  shard0.gauge("net.connections").add(2);
  shard1.gauge("net.connections").add(1);
  shard0.histogram("serve.latency_us").record(10);
  shard1.histogram("serve.latency_us").record(1000);

  Registry merged;
  merged.merge_from(shard0);
  merged.merge_from(shard1);
  EXPECT_EQ(merged.counter_value("net.accepted{plane=\"ingest\"}"), 7U);
  EXPECT_EQ(merged.counter_value("net.conn_migrations"), 1U);
  const std::string text = merged.to_text();
  EXPECT_NE(text.find("net.connections = 3"), std::string::npos) << text;
  EXPECT_NE(text.find("serve.latency_us count=2 sum=1010"),
            std::string::npos)
      << text;
  // Sources are untouched by the merge.
  EXPECT_EQ(shard0.counter_value("net.accepted{plane=\"ingest\"}"), 3U);
  EXPECT_EQ(shard1.counter_value("net.conn_migrations"), 1U);
}

TEST(RegistryDeathTest, KindMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Registry registry;
  registry.counter("dual.use");
  EXPECT_DEATH(registry.histogram("dual.use"), "different kind");
}

TEST(MonitorMetricsDeathTest, MetricsWhenDisabledAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StringPool pool;
  const Monitor monitor(pool);  // MonitorConfig::metrics defaults off
  EXPECT_FALSE(monitor.metrics_enabled());
  EXPECT_DEATH(static_cast<void>(monitor.metrics()),
               "enable MonitorConfig::metrics");
}

TEST(MonitorMetricsDeathTest, ReadingMetricsWithoutDrainAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StringPool pool;
  ocep::testing::RandomComputationOptions options;
  options.seed = 31;
  options.traces = 3;
  options.events = 120;
  const EventStore source = ocep::testing::random_computation(pool, options);

  MonitorConfig config;
  config.metrics = true;
  config.worker_threads = 1;
  config.batch_size = 8;
  Monitor monitor(pool, config, source.storage());
  monitor.add_pattern(
      "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n");
  replay(source, monitor);
  // Workers may still be recording into the histograms: reading the
  // registry mid-flight is the same race as reading matcher state.
  EXPECT_DEATH(static_cast<void>(monitor.metrics()),
               "drain\\(\\) the pipeline");
  monitor.drain();
  EXPECT_GT(monitor.metrics().counter_value("matcher.events{pattern=\"0\"}"),
            0U);
}

}  // namespace
}  // namespace ocep::obs
