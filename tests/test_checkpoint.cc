// Checkpoint/resume equivalence: a monitor restored from a checkpoint and
// fed the remaining suffix must end in *byte-identical* state to an
// uninterrupted run — same store dump, same matcher stats, same
// representative subset, hence identical match reports.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/monitor.h"
#include "poet/dump.h"
#include "poet/session.h"
#include "random_computation.h"
#include "testing/chaos_harness.h"

namespace ocep {
namespace {

constexpr const char* kPattern =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

std::string checkpoint_bytes(Monitor& monitor) {
  std::ostringstream out;
  monitor.checkpoint(out);
  return out.str();
}

std::vector<Symbol> trace_names(const EventStore& store) {
  std::vector<Symbol> names;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    names.push_back(store.trace_name(t));
  }
  return names;
}

void feed_range(Monitor& monitor, const EventStore& store,
                std::uint64_t begin, std::uint64_t end) {
  for (std::uint64_t pos = begin; pos < end; ++pos) {
    const EventId id = store.arrival(pos);
    monitor.on_event(store.event(id), store.clock(id));
  }
}

/// Runs the uninterrupted reference and, for each split, the
/// checkpoint-at-split / restore / finish run; both must produce the same
/// checkpoint bytes at the end.
void check_splits(const EventStore& store, StringPool& pool,
                  const std::string& pattern,
                  const std::vector<std::uint64_t>& splits,
                  const MonitorConfig& resume_config = {}) {
  const std::uint64_t total = store.event_count();
  Monitor reference(pool, store.storage());
  reference.add_pattern(pattern);
  reference.on_traces(trace_names(store));
  feed_range(reference, store, 0, total);
  const std::string expected = checkpoint_bytes(reference);
  const std::vector<std::string> expected_matches =
      testing::match_signature(reference, 0);

  for (const std::uint64_t split : splits) {
    ASSERT_LE(split, total);
    Monitor first(pool, store.storage());
    first.add_pattern(pattern);
    first.on_traces(trace_names(store));
    feed_range(first, store, 0, split);
    std::istringstream saved(checkpoint_bytes(first));

    Monitor resumed(pool, resume_config, store.storage());
    resumed.add_pattern(pattern);
    resumed.restore(saved);
    EXPECT_EQ(resumed.events_seen(), split);
    feed_range(resumed, store, split, total);
    resumed.drain();

    EXPECT_EQ(checkpoint_bytes(resumed), expected)
        << "resume at " << split << "/" << total
        << " diverged from the uninterrupted run";
    EXPECT_EQ(testing::match_signature(resumed, 0), expected_matches);
  }
}

TEST(Checkpoint, ResumeAtRandomPrefixesIsByteIdentical) {
  for (const std::uint64_t seed : {101ULL, 102ULL, 103ULL}) {
    StringPool pool;
    testing::RandomComputationOptions options;
    options.seed = seed;
    options.traces = 4;
    options.events = 250;
    const EventStore store = testing::random_computation(pool, options);
    Rng rng(seed * 77 + 1);
    std::vector<std::uint64_t> splits{0, store.event_count()};
    for (int i = 0; i < 4; ++i) {
      splits.push_back(rng.below(store.event_count() + 1));
    }
    check_splits(store, pool, kPattern, splits);
  }
}

TEST(Checkpoint, GoldenDumpResumesAtArbitraryInterruptionPoints) {
  const std::string root(OCEP_SOURCE_DIR);
  std::ifstream dump_in(root + "/tools/zk962_golden.poet",
                        std::ios::binary);
  ASSERT_TRUE(dump_in) << "golden dump fixture missing";
  std::ifstream pattern_in(root + "/tools/zk962.ocep");
  ASSERT_TRUE(pattern_in) << "golden pattern fixture missing";
  std::stringstream pattern_text;
  pattern_text << pattern_in.rdbuf();

  StringPool pool;
  const EventStore store = reload_store(dump_in, pool);
  const std::uint64_t n = store.event_count();
  check_splits(store, pool, pattern_text.str(),
               {0, 1, n / 3, n / 2, n - 1, n});
}

TEST(Checkpoint, RestoredPipelineMatchesSynchronousRun) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 311;
  options.events = 300;
  const EventStore store = testing::random_computation(pool, options);
  MonitorConfig pipelined;
  pipelined.worker_threads = 2;
  pipelined.batch_size = 16;
  check_splits(store, pool, kPattern,
               {store.event_count() / 2}, pipelined);
}

TEST(Checkpoint, CorruptionIsDetectedNotTrusted) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 7;
  options.events = 120;
  const EventStore store = testing::random_computation(pool, options);
  Monitor monitor(pool, store.storage());
  monitor.add_pattern(kPattern);
  monitor.on_traces(trace_names(store));
  feed_range(monitor, store, 0, store.event_count());
  const std::string bytes = checkpoint_bytes(monitor);

  const auto restore_from = [&](std::string data) {
    Monitor fresh(pool, store.storage());
    fresh.add_pattern(kPattern);
    std::istringstream in(std::move(data));
    fresh.restore(in);
  };

  // Bit flip inside the body: caught by the CRC.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] = static_cast<char>(
      static_cast<unsigned char>(flipped[flipped.size() / 2]) ^ 0x04U);
  EXPECT_THROW(restore_from(flipped), SerializationError);

  // Torn write: caught before anything is replayed.
  EXPECT_THROW(restore_from(bytes.substr(0, bytes.size() - 5)),
               SerializationError);

  // Not a checkpoint at all.
  EXPECT_THROW(restore_from("OCEPDMP1 definitely not a checkpoint"),
               SerializationError);

  // The pristine bytes still restore fine after all that.
  restore_from(bytes);
}

TEST(Checkpoint, PatternCountMismatchIsRejected) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 9;
  options.events = 60;
  const EventStore store = testing::random_computation(pool, options);
  Monitor monitor(pool, store.storage());
  monitor.add_pattern(kPattern);
  monitor.on_traces(trace_names(store));
  feed_range(monitor, store, 0, store.event_count());
  const std::string bytes = checkpoint_bytes(monitor);

  Monitor two_patterns(pool, store.storage());
  two_patterns.add_pattern(kPattern);
  two_patterns.add_pattern(kPattern);
  std::istringstream in(bytes);
  EXPECT_THROW(two_patterns.restore(in), SerializationError);
}

// A full process restart mid-session: monitor AND session client are
// checkpointed at an arbitrary *byte* offset of the forward stream (the
// partial frame in the receive buffer is deliberately lost, as it would be
// in a crash), restored into fresh objects, and the rest of the stream is
// delivered.  The seq discontinuity is healed by a resync; the final state
// must be byte-identical to a never-interrupted run.
TEST(Checkpoint, SessionClientAndMonitorResumeAcrossRestart) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 41;
  options.events = 200;
  const EventStore store = testing::random_computation(pool, options);
  const std::vector<Symbol> names = trace_names(store);

  // Reference: clean monitor over the raw computation.
  Monitor reference(pool, store.storage());
  reference.add_pattern(kPattern);
  reference.on_traces(names);
  feed_range(reference, store, 0, store.event_count());
  const std::string expected = checkpoint_bytes(reference);

  // Capture the whole session stream as frames.
  class FrameCapture final : public ByteSink {
   public:
    void write(std::string_view bytes) override {
      frames.emplace_back(bytes);
    }
    std::vector<std::string> frames;
  } capture;
  class QueueTransport final : public ResyncTransport {
   public:
    void request_resync(const ResyncRequest& request) override {
      requests.push_back(request);
    }
    std::vector<ResyncRequest> requests;
  } transport;
  SessionServer server(capture, pool, names, SessionConfig{});
  for (std::uint64_t pos = 0; pos < store.event_count(); ++pos) {
    const EventId id = store.arrival(pos);
    server.write(store.event(id), store.clock(id));
  }
  server.finish();
  std::string stream;
  for (const std::string& frame : capture.frames) {
    stream += frame;
  }

  // First life: feed an arbitrary byte prefix (mid-frame), then checkpoint.
  const std::size_t cut = stream.size() / 2 + 13;
  Monitor first(pool, store.storage());
  first.add_pattern(kPattern);
  SessionClient client_a(first, pool, transport, SessionConfig{});
  client_a.feed(std::string_view(stream).substr(0, cut));
  std::ostringstream saved_monitor;
  first.checkpoint(saved_monitor);
  std::ostringstream saved_client;
  client_a.checkpoint(saved_client);

  // Second life: restore monitor + client, deliver the rest of the stream.
  Monitor resumed(pool, store.storage());
  resumed.add_pattern(kPattern);
  std::istringstream monitor_in(saved_monitor.str());
  resumed.restore(monitor_in);
  SessionClient client_b(resumed, pool, transport, SessionConfig{});
  std::istringstream client_in(saved_client.str());
  client_b.restore(client_in);
  EXPECT_EQ(client_b.next_position(), client_a.next_position());

  std::size_t served_frames = capture.frames.size();
  client_b.feed(std::string_view(stream).substr(cut));
  client_b.finish_input();
  for (std::uint64_t tick = 0; tick < 4096 && !client_b.done(); ++tick) {
    while (!transport.requests.empty()) {
      const ResyncRequest request = transport.requests.front();
      transport.requests.erase(transport.requests.begin());
      server.handle_resync(request);
    }
    while (served_frames < capture.frames.size()) {
      client_b.feed(capture.frames[served_frames++]);
    }
    client_b.tick();
  }

  EXPECT_TRUE(client_b.done());
  EXPECT_FALSE(client_b.degraded())
      << "a restart healed by resync is not degradation";
  resumed.drain();
  EXPECT_EQ(resumed.events_seen(), store.event_count());
  EXPECT_EQ(checkpoint_bytes(resumed), expected)
      << "restarted session diverged from the uninterrupted run";
}

// Governance state must ride the checkpoint (format v2): a breaker that
// tripped before the split must still be open/cooling in the restored
// process, giving the same shed/probe schedule — and hence byte-identical
// final state — as the uninterrupted run.
TEST(Checkpoint, GovernedRunSplitsAreByteIdenticalMidQuarantine) {
  constexpr const char* kHostile = R"(
      E1 := ['', A, '']; E2 := ['', A, ''];
      E3 := ['', A, '']; E4 := ['', A, ''];
      pattern := (E1 || E2) && (E1 || E3) && (E1 || E4) &&
                 (E2 || E3) && (E2 || E4) && (E3 || E4);
  )";
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 19;
  options.traces = 8;
  options.events = 500;
  const EventStore store = testing::random_computation(pool, options);

  MatcherConfig tight;
  tight.budget.max_steps = 16;
  tight.breaker.trip_failures = 2;
  tight.breaker.window_observes = 64;
  tight.breaker.cooldown_observes = 48;

  const std::uint64_t total = store.event_count();
  Monitor reference(pool, store.storage());
  reference.add_pattern(kHostile, tight);
  reference.on_traces(trace_names(store));
  feed_range(reference, store, 0, total);
  const std::string expected = checkpoint_bytes(reference);
  ASSERT_GT(reference.health().patterns[0].breaker_trips, 0U)
      << "the breaker never engaged — the split test is vacuous";

  for (const std::uint64_t split : {total / 4, total / 2, total - 3}) {
    Monitor first(pool, store.storage());
    first.add_pattern(kHostile, tight);
    first.on_traces(trace_names(store));
    feed_range(first, store, 0, split);
    std::istringstream saved(checkpoint_bytes(first));

    Monitor resumed(pool, store.storage());
    resumed.add_pattern(kHostile, tight);
    resumed.restore(saved);
    feed_range(resumed, store, split, total);

    EXPECT_EQ(checkpoint_bytes(resumed), expected)
        << "governed resume at " << split << "/" << total
        << " diverged (breaker state not carried across the checkpoint?)";
  }
}

// The committed OCEPCKP1 fixture (written by the previous checkpoint
// format, before governance existed) must keep restoring: the governance
// state then starts from its defaults and the match state is exactly what
// a fresh full replay of the golden dump produces.
TEST(Checkpoint, LegacyV1CheckpointRestores) {
  const std::string root(OCEP_SOURCE_DIR);
  std::ifstream ckpt_in(root + "/tools/zk962_v1.ckpt", std::ios::binary);
  ASSERT_TRUE(ckpt_in) << "v1 checkpoint fixture missing";
  std::ifstream pattern_in(root + "/tools/zk962.ocep");
  ASSERT_TRUE(pattern_in) << "golden pattern fixture missing";
  std::stringstream pattern_text;
  pattern_text << pattern_in.rdbuf();
  std::ifstream dump_in(root + "/tools/zk962_golden.poet",
                        std::ios::binary);
  ASSERT_TRUE(dump_in) << "golden dump fixture missing";

  StringPool pool;
  const EventStore store = reload_store(dump_in, pool);
  Monitor reference(pool, store.storage());
  reference.add_pattern(pattern_text.str());
  reference.on_traces(trace_names(store));
  feed_range(reference, store, 0, store.event_count());

  Monitor restored(pool, store.storage());
  restored.add_pattern(pattern_text.str());
  restored.restore(ckpt_in);
  EXPECT_EQ(restored.events_seen(), store.event_count());
  EXPECT_EQ(testing::match_signature(restored, 0),
            testing::match_signature(reference, 0));
  const HealthReport health = restored.health();
  EXPECT_EQ(health.patterns[0].state, BreakerState::kClosed);
  EXPECT_FALSE(health.degraded())
      << "a clean v1 checkpoint must restore to a clean health report";
}

}  // namespace
}  // namespace ocep
