// Chaos matrix (ctest label: chaos): every fault family x fixed seeds,
// replayed through the full SessionServer -> FaultyChannel ->
// SessionClient -> Monitor stack.  The contract under fire:
//
//  * the client always reaches a terminal state (no crash, no livelock),
//  * a run that recovered via resync reports the exact clean match set,
//  * a degraded run says so AND reports a subset of the clean set —
//    silent divergence is the one outcome that is never acceptable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "random_computation.h"
#include "testing/chaos_harness.h"

namespace ocep {
namespace {

constexpr const char* kPattern =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

const std::string kFaultKinds[] = {
    "drop", "duplicate", "reorder", "bitflip",
    "truncate", "disconnect", "soup",
};

testing::FaultSpec make_spec(const std::string& kind, std::uint64_t seed) {
  testing::FaultSpec spec;
  spec.seed = seed;
  if (kind == "drop") {
    spec.drop_per_1000 = 30;
  } else if (kind == "duplicate") {
    spec.duplicate_per_1000 = 30;
  } else if (kind == "reorder") {
    spec.reorder_per_1000 = 30;
  } else if (kind == "bitflip") {
    spec.bitflip_per_1000 = 30;
  } else if (kind == "truncate") {
    spec.truncate_per_1000 = 30;
  } else if (kind == "disconnect") {
    spec.disconnect_every = 200;
    spec.disconnect_burst = 16;
  } else if (kind == "soup") {
    spec.drop_per_1000 = 10;
    spec.duplicate_per_1000 = 10;
    spec.reorder_per_1000 = 10;
    spec.bitflip_per_1000 = 10;
    spec.truncate_per_1000 = 5;
    spec.disconnect_every = 400;
  }
  return spec;
}

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ChaosMatrix, RecoversOrDegradesLoudly) {
  const auto& [kind, seed] = GetParam();

  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 424200 + seed;
  options.traces = 4;
  options.events = 1200;
  const EventStore store = testing::random_computation(pool, options);
  const std::vector<std::string> clean =
      testing::clean_matches(store, pool, kPattern);

  testing::ChaosOptions chaos;
  chaos.faults = make_spec(kind, seed);
  const testing::ChaosResult result =
      testing::run_chaos(store, pool, kPattern, chaos);

  EXPECT_GT(result.faults.faults(), 0U)
      << "fault spec for '" << kind << "' injected nothing";
  ASSERT_TRUE(result.done)
      << "client livelocked: " << result.events_delivered << "/"
      << store.event_count() << " events delivered";
  if (result.degraded) {
    EXPECT_TRUE(testing::is_subset_of(result.matches, clean))
        << "degraded run reported matches outside the clean set";
  } else {
    EXPECT_EQ(result.matches, clean)
        << "recovered run must reproduce the clean match set exactly";
    EXPECT_EQ(result.events_delivered, store.event_count());
    EXPECT_EQ(result.ingest.sheds, 0U);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Faults, ChaosMatrix,
    ::testing::Combine(::testing::ValuesIn(kFaultKinds),
                       ::testing::Values(std::uint64_t{11}, std::uint64_t{22},
                                         std::uint64_t{33})),
    [](const auto& param_info) {
      return std::get<0>(param_info.param) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// The soup, but delivered one byte at a time: partial-frame reassembly and
// fault handling must compose.
TEST(Chaos, SurvivesByteAtATimeFeed) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 77;
  options.events = 400;
  const EventStore store = testing::random_computation(pool, options);
  const std::vector<std::string> clean =
      testing::clean_matches(store, pool, kPattern);

  testing::ChaosOptions chaos;
  chaos.faults = make_spec("soup", 5);
  chaos.feed_chunk = 1;
  const testing::ChaosResult result =
      testing::run_chaos(store, pool, kPattern, chaos);
  ASSERT_TRUE(result.done);
  if (result.degraded) {
    EXPECT_TRUE(testing::is_subset_of(result.matches, clean));
  } else {
    EXPECT_EQ(result.matches, clean);
  }
}

// Faulty wire in front of a pipelined (multi-threaded) monitor: resync
// refills must stay ordered through the batch hand-off.
TEST(Chaos, SurvivesWithPipelinedMonitor) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 88;
  options.events = 1200;
  const EventStore store = testing::random_computation(pool, options);
  const std::vector<std::string> clean =
      testing::clean_matches(store, pool, kPattern);

  testing::ChaosOptions chaos;
  chaos.faults = make_spec("drop", 9);
  chaos.monitor.worker_threads = 2;
  chaos.monitor.batch_size = 16;
  const testing::ChaosResult result =
      testing::run_chaos(store, pool, kPattern, chaos);
  ASSERT_TRUE(result.done);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.matches, clean);
}

}  // namespace
}  // namespace ocep
