// End-to-end integration: simulated case-study applications monitored live
// through the full stack (sim -> Monitor(EventSink) -> store -> matcher),
// checked against ground truth and the baseline detectors — the paper's
// §V-D completeness result: all injected violations found, no false
// positives.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "baseline/conflict_graph.h"
#include "baseline/naive_matcher.h"
#include "baseline/race_checker.h"
#include "core/monitor.h"
#include "poet/dump.h"
#include "poet/replay.h"
#include "sim/sim.h"

namespace ocep {
namespace {

sim::SimConfig config_with(std::uint64_t seed) {
  sim::SimConfig config;
  config.seed = seed;
  config.channel_capacity = 2;
  return config;
}

TEST(Integration, DeadlockCycleIsDetectedOnline) {
  StringPool pool;
  sim::Sim sim(pool, config_with(501));
  apps::RandomWalkParams params;
  params.processes = 10;
  params.cycle_length = 4;
  params.steps = 80;
  const apps::RandomWalkApp app = setup_random_walk(sim, params);

  Monitor monitor(pool);
  monitor.add_pattern(apps::deadlock_pattern(params.cycle_length));
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  ASSERT_EQ(result.reason, sim::EndReason::kQuiescent);

  const auto& matches = monitor.matcher(0).subset().matches();
  ASSERT_FALSE(matches.empty()) << "the injected deadlock was not detected";
  const std::set<TraceId> cycle(app.cycle.begin(), app.cycle.end());
  for (const Match& match : matches) {
    std::set<TraceId> traces;
    for (const EventId id : match.bindings) {
      traces.insert(id.trace);
      EXPECT_EQ(monitor.store().event(id).kind, EventKind::kBlockedSend);
    }
    EXPECT_EQ(traces, cycle) << "a match outside the injected cycle: a "
                                "false positive";
  }
}

TEST(Integration, NoDeadlockMeansNoMatches) {
  StringPool pool;
  sim::Sim sim(pool, config_with(503));
  apps::RandomWalkParams params;
  params.processes = 10;
  params.cycle_length = 4;
  params.steps = 80;
  params.inject_deadlock = false;
  setup_random_walk(sim, params);

  Monitor monitor(pool);
  monitor.add_pattern(apps::deadlock_pattern(params.cycle_length));
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  EXPECT_EQ(result.reason, sim::EndReason::kCompleted);
  EXPECT_TRUE(monitor.matcher(0).subset().matches().empty())
      << "false positive: no deadlock was injected";
}

TEST(Integration, MessageRacesMatchTheRaceCheckerOracle) {
  StringPool pool;
  sim::Sim sim(pool, config_with(507));
  apps::RaceParams params;
  params.traces = 8;
  params.messages_each = 40;
  const apps::RaceApp app = setup_race_bench(sim, params);

  Monitor monitor(pool);
  std::vector<Match> reported;
  monitor.add_pattern(apps::race_pattern(), MatcherConfig{},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  ASSERT_EQ(result.reason, sim::EndReason::kCompleted);

  // Oracle: MPIRace-Check-style timestamp comparison over the same store.
  baseline::RaceChecker checker(monitor.store());
  for (const EventId id : monitor.store().arrival_order()) {
    checker.observe(monitor.store().event(id));
  }
  ASSERT_GT(checker.races(), 0U);

  // Soundness: every reported match's sends are concurrent and partner its
  // receives (leaf order: S1, S2, R1, R2).
  const pattern::CompiledPattern reference =
      pattern::compile(apps::race_pattern(), pool);
  std::set<EventIndex> reported_later_receives;
  for (const Match& match : reported) {
    EXPECT_TRUE(baseline::is_valid_match(monitor.store(), reference, match));
    const EventId r1 = match.bindings[2];
    const EventId r2 = match.bindings[3];
    EXPECT_EQ(r1.trace, app.receiver);
    EXPECT_EQ(r2.trace, app.receiver);
    reported_later_receives.insert(std::max(r1.index, r2.index));
  }

  // Completeness: every receive that races with an *earlier* receive (the
  // oracle's second element) reported at least one match on its arrival.
  std::set<EventIndex> oracle_later_receives;
  for (const baseline::RaceChecker::Race& race : checker.found()) {
    oracle_later_receives.insert(race.second_receive.index);
  }
  EXPECT_EQ(reported_later_receives, oracle_later_receives);
}

TEST(Integration, AtomicityInjectionsAreAllDetected) {
  StringPool pool;
  sim::Sim sim(pool, config_with(511));
  apps::AtomicityParams params;
  params.workers = 8;
  params.iterations = 120;
  params.skip_percent = 3;
  const apps::AtomicityApp app = setup_atomicity(sim, params);

  Monitor monitor(pool);
  std::vector<Match> reported;
  monitor.add_pattern(apps::atomicity_pattern(), MatcherConfig{},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  ASSERT_EQ(result.reason, sim::EndReason::kCompleted);
  ASSERT_FALSE(app.injections->empty());

  // Soundness: every match is a pair of genuinely concurrent entries, and
  // at least one side is a skipped (unprotected) section — two protected
  // sections are always ordered through the semaphore.
  std::set<EventId> injected_enters;
  for (const apps::AtomicityInjection& injection : *app.injections) {
    injected_enters.insert(injection.enter_event);
  }
  std::set<EventId> enters_in_matches;
  for (const Match& match : reported) {
    EXPECT_EQ(monitor.store().relate(match.bindings[0], match.bindings[1]),
              Relation::kConcurrent);
    EXPECT_TRUE(injected_enters.contains(match.bindings[0]) ||
                injected_enters.contains(match.bindings[1]))
        << "two semaphore-protected sections were reported concurrent";
    enters_in_matches.insert(match.bindings[0]);
    enters_in_matches.insert(match.bindings[1]);
  }

  // Completeness: every injected unprotected entry appears in a report.
  for (const EventId enter : injected_enters) {
    EXPECT_TRUE(enters_in_matches.contains(enter))
        << "injection on trace " << enter.trace << " missed";
  }
}

TEST(Integration, ProtectedSectionsProduceNoFalsePositives) {
  StringPool pool;
  sim::Sim sim(pool, config_with(513));
  apps::AtomicityParams params;
  params.workers = 6;
  params.iterations = 60;
  params.skip_percent = 0;  // no bug
  setup_atomicity(sim, params);

  Monitor monitor(pool);
  monitor.add_pattern(apps::atomicity_pattern());
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  ASSERT_EQ(result.reason, sim::EndReason::kCompleted);
  EXPECT_TRUE(monitor.matcher(0).subset().matches().empty());
}

TEST(Integration, OrderingBugMatchesAreExactlyTheInjections) {
  StringPool pool;
  sim::Sim sim(pool, config_with(517));
  apps::OrderingParams params;
  params.followers = 12;
  params.requests_each = 40;
  params.bug_percent = 3;
  const apps::OrderingApp app = setup_leader_follower(sim, params);

  Monitor monitor(pool);
  std::vector<Match> reported;
  monitor.add_pattern(apps::ordering_pattern(), MatcherConfig{},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  ASSERT_EQ(result.reason, sim::EndReason::kCompleted);
  ASSERT_FALSE(app.injections->empty());

  // Leaf order in the compiled pattern: Synch, $Diff (snapshot),
  // $Write (update), Forward.
  using Triple = std::tuple<EventId, EventId, EventId>;
  std::set<Triple> reported_triples;
  for (const Match& match : reported) {
    reported_triples.emplace(match.bindings[1], match.bindings[2],
                             match.bindings[3]);
  }
  std::set<Triple> injected_triples;
  for (const apps::OrderingInjection& injection : *app.injections) {
    injected_triples.emplace(injection.snapshot_event,
                             injection.update_event,
                             injection.forward_event);
  }
  EXPECT_EQ(reported_triples, injected_triples);
}

TEST(Integration, OrderingWithoutBugIsSilent) {
  StringPool pool;
  sim::Sim sim(pool, config_with(519));
  apps::OrderingParams params;
  params.followers = 8;
  params.requests_each = 30;
  params.bug_percent = 0;
  setup_leader_follower(sim, params);

  Monitor monitor(pool);
  monitor.add_pattern(apps::ordering_pattern());
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  ASSERT_EQ(result.reason, sim::EndReason::kCompleted);
  EXPECT_TRUE(monitor.matcher(0).subset().matches().empty());
}

// The §I motivating example: two concurrent greens are exactly the
// injected early grants; a correct controller never triggers the pattern.
TEST(Integration, TrafficLightsUnsafeStatesMatchInjections) {
  StringPool pool;
  sim::Sim sim(pool, config_with(541));
  apps::TrafficParams params;
  params.lights = 5;
  params.cycles = 300;
  params.bug_percent = 4;
  const apps::TrafficApp app = setup_traffic_lights(sim, params);

  Monitor monitor(pool);
  std::set<std::pair<EventId, EventId>> pairs;
  monitor.add_pattern(apps::traffic_pattern(), MatcherConfig{},
                      [&](const Match& match, bool) {
                        EventId a = match.bindings[0];
                        EventId b = match.bindings[1];
                        if (b < a) {
                          std::swap(a, b);
                        }
                        pairs.emplace(a, b);
                      });
  sim.set_live_sink(&monitor);
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);
  ASSERT_FALSE(app.injections->empty());

  // One concurrent green pair per injection, all genuinely concurrent.
  EXPECT_EQ(pairs.size(), app.injections->size());
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(monitor.store().relate(a, b), Relation::kConcurrent);
    EXPECT_EQ(pool.view(monitor.store().event(a).type), "green_on");
    EXPECT_EQ(pool.view(monitor.store().event(b).type), "green_on");
  }
}

TEST(Integration, CorrectTrafficControllerIsSilent) {
  StringPool pool;
  sim::Sim sim(pool, config_with(543));
  apps::TrafficParams params;
  params.lights = 4;
  params.cycles = 120;
  params.bug_percent = 0;
  setup_traffic_lights(sim, params);
  Monitor monitor(pool);
  monitor.add_pattern(apps::traffic_pattern());
  sim.set_live_sink(&monitor);
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);
  EXPECT_TRUE(monitor.matcher(0).subset().matches().empty());
}

// §VI future work: history retention bounds the monitor's memory on long
// runs while still detecting every injected violation (violations bind
// recent events, and a pair's coverage slot persists once set).
TEST(Integration, HistoryRetentionBoundsMemoryAndKeepsDetecting) {
  StringPool pool;
  sim::Sim sim(pool, config_with(531));
  apps::OrderingParams params;
  params.followers = 8;
  params.requests_each = 120;
  params.bug_percent = 2;
  const apps::OrderingApp app = setup_leader_follower(sim, params);

  Monitor monitor(pool);
  MatcherConfig config;
  config.history_retention = 32;
  std::vector<Match> reported;
  monitor.add_pattern(apps::ordering_pattern(), config,
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  sim.set_live_sink(&monitor);
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);
  ASSERT_FALSE(app.injections->empty());

  const MatcherStats& stats = monitor.matcher(0).stats();
  EXPECT_GT(stats.history_pruned, 0U) << "retention never kicked in";
  // Bounded: every (leaf, trace) pair holds at most 2x the budget.
  EXPECT_LE(stats.history_entries,
            4U * (params.followers + 1) * 2 * config.history_retention);

  // Detection is still exact: matches == injections.
  std::set<std::tuple<EventId, EventId, EventId>> reported_triples;
  for (const Match& match : reported) {
    reported_triples.emplace(match.bindings[1], match.bindings[2],
                             match.bindings[3]);
  }
  EXPECT_EQ(reported_triples.size(), app.injections->size());
}

// Live monitoring, replay of the recorded store, and reload of a dump must
// all produce the identical representative subset — the full §V-B
// methodology loop.
TEST(Integration, LiveReplayAndReloadAgree) {
  StringPool pool;

  // 1. Live.
  sim::Sim sim(pool, config_with(523));
  apps::OrderingParams params;
  params.followers = 6;
  params.requests_each = 30;
  params.bug_percent = 5;
  setup_leader_follower(sim, params);
  Monitor live(pool);
  live.add_pattern(apps::ordering_pattern());
  sim.set_live_sink(&live);
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);

  auto subset_of = [](const Monitor& monitor) {
    std::vector<std::vector<EventId>> out;
    for (const Match& match : monitor.matcher(0).subset().matches()) {
      out.push_back(match.bindings);
    }
    return out;
  };

  // 2. Replay of the simulator's own store.
  Monitor replayed(pool);
  replayed.add_pattern(apps::ordering_pattern());
  replay(sim.store(), replayed);
  EXPECT_EQ(subset_of(live), subset_of(replayed));

  // 3. Dump to bytes, reload into a third monitor.
  std::stringstream buffer;
  dump(sim.store(), pool, buffer);
  Monitor reloaded(pool);
  reloaded.add_pattern(apps::ordering_pattern());
  reload(buffer, pool, reloaded);
  EXPECT_EQ(subset_of(live), subset_of(reloaded));
  EXPECT_EQ(reloaded.events_seen(), sim.store().event_count());
}

}  // namespace
}  // namespace ocep
