// Unit tests for the boxplot statistics used by every figure bench.
#include <gtest/gtest.h>

#include "metrics/boxplot.h"
#include "metrics/stopwatch.h"

namespace ocep::metrics {
namespace {

TEST(Boxplot, EmptyInput) {
  std::vector<double> samples;
  const Boxplot box = boxplot(samples);
  EXPECT_EQ(box.count, 0U);
}

TEST(Boxplot, SingleSample) {
  std::vector<double> samples{7.5};
  const Boxplot box = boxplot(samples);
  EXPECT_EQ(box.count, 1U);
  EXPECT_DOUBLE_EQ(box.min, 7.5);
  EXPECT_DOUBLE_EQ(box.q1, 7.5);
  EXPECT_DOUBLE_EQ(box.median, 7.5);
  EXPECT_DOUBLE_EQ(box.q3, 7.5);
  EXPECT_DOUBLE_EQ(box.max, 7.5);
  EXPECT_EQ(box.outliers, 0U);
}

TEST(Boxplot, KnownQuartiles) {
  // 1..9: Q1 = 3, median = 5, Q3 = 7 with type-7 interpolation.
  std::vector<double> samples{9, 8, 7, 6, 5, 4, 3, 2, 1};
  const Boxplot box = boxplot(samples);
  EXPECT_DOUBLE_EQ(box.q1, 3.0);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.q3, 7.0);
  EXPECT_DOUBLE_EQ(box.mean, 5.0);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 9.0);
  // IQR = 4, fences at -3 and 13: whiskers are the extremes, no outliers.
  EXPECT_DOUBLE_EQ(box.top_whisker, 9.0);
  EXPECT_DOUBLE_EQ(box.bottom_whisker, 1.0);
  EXPECT_EQ(box.outliers, 0U);
}

TEST(Boxplot, OutliersBeyondTheWhisker) {
  // Bulk at 1..8 plus an extreme value: the whisker stops at the last
  // sample within Q3 + 1.5 IQR, the extreme is an outlier (the paper's
  // crosses in Figs 6-9).
  std::vector<double> samples{1, 2, 3, 4, 5, 6, 7, 8, 100};
  const Boxplot box = boxplot(samples);
  EXPECT_DOUBLE_EQ(box.max, 100.0);
  EXPECT_LT(box.top_whisker, 100.0);
  EXPECT_EQ(box.outliers, 1U);
}

TEST(Boxplot, InterpolatesBetweenSamples) {
  std::vector<double> samples{1, 2, 3, 4};
  const Boxplot box = boxplot(samples);
  EXPECT_DOUBLE_EQ(box.median, 2.5);
  EXPECT_DOUBLE_EQ(box.q1, 1.75);
  EXPECT_DOUBLE_EQ(box.q3, 3.25);
}

TEST(LatencyRecorder, AccumulatesAndSummarizes) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) {
    recorder.add(static_cast<double>(i));
  }
  EXPECT_EQ(recorder.count(), 100U);
  const Boxplot box = recorder.summarize();
  EXPECT_DOUBLE_EQ(box.median, 50.5);
  recorder.clear();
  EXPECT_EQ(recorder.count(), 0U);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  double spin = 1.0;
  for (int i = 0; i < 100000; ++i) {
    spin = spin * 1.0000001 + 0.1;
  }
  const double us = watch.elapsed_us();
  EXPECT_GT(spin, 0.0);
  EXPECT_GT(us, 0.0);
  EXPECT_LT(us, 1e6);  // under a second
}

}  // namespace
}  // namespace ocep::metrics
