// Wire protocol tests: incremental streaming of instrumented events from a
// producer to a monitor (the POET server -> client link, §V-A).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "core/monitor.h"
#include "poet/wire.h"
#include "random_computation.h"
#include "sim/sim.h"

namespace ocep {
namespace {

std::vector<Symbol> names_of(const EventStore& store) {
  std::vector<Symbol> names;
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    names.push_back(store.trace_name(t));
  }
  return names;
}

class CollectingSink final : public EventSink {
 public:
  void on_traces(const std::vector<Symbol>& names) override {
    trace_names = names;
  }
  void on_event(const Event& event, const VectorClock& clock) override {
    events.push_back(event);
    clocks.push_back(clock);
  }

  std::vector<Symbol> trace_names;
  std::vector<Event> events;
  std::vector<VectorClock> clocks;
};

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, PreservesEventsAndClocks) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 5;
  options.events = 300;
  const EventStore store = testing::random_computation(pool, options);

  std::stringstream channel;
  WireWriter writer(channel, pool, names_of(store));
  for (const EventId id : store.arrival_order()) {
    writer.write(store.event(id), store.clock(id));
  }
  writer.finish();
  EXPECT_EQ(writer.events_written(), store.event_count());

  StringPool fresh;  // the reader interns into its own pool
  CollectingSink sink;
  WireReader reader(channel, fresh, sink);
  EXPECT_EQ(reader.read_all(), store.event_count());
  ASSERT_EQ(sink.events.size(), store.event_count());

  std::size_t i = 0;
  for (const EventId id : store.arrival_order()) {
    const Event& original = store.event(id);
    const Event& received = sink.events[i];
    EXPECT_EQ(received.id, original.id);
    EXPECT_EQ(received.kind, original.kind);
    EXPECT_EQ(received.message, original.message);
    EXPECT_EQ(fresh.view(received.type), pool.view(original.type));
    EXPECT_EQ(fresh.view(received.text), pool.view(original.text));
    EXPECT_EQ(sink.clocks[i], store.clock(id));
    ++i;
  }
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    EXPECT_EQ(fresh.view(sink.trace_names[t]), pool.view(store.trace_name(t)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip,
                         ::testing::Values(81, 82, 83, 84));

TEST(Wire, MonitorOverTheWireMatchesLiveMonitoring) {
  // Live monitor.
  StringPool pool;
  sim::SimConfig config;
  config.seed = 91;
  sim::Sim sim(pool, config);
  apps::OrderingParams params;
  params.followers = 6;
  params.requests_each = 25;
  params.bug_percent = 4;
  apps::setup_leader_follower(sim, params);
  Monitor live(pool);
  live.add_pattern(apps::ordering_pattern());
  sim.set_live_sink(&live);
  ASSERT_EQ(sim.run().reason, sim::EndReason::kCompleted);

  // Same computation through the wire into a second monitor with its own
  // string pool (a genuinely separate process's view).
  std::stringstream channel;
  WireWriter writer(channel, pool, names_of(sim.store()));
  for (const EventId id : sim.store().arrival_order()) {
    writer.write(sim.store().event(id), sim.store().clock(id));
  }
  writer.finish();

  StringPool remote_pool;
  Monitor remote(remote_pool);
  remote.add_pattern(apps::ordering_pattern());
  WireReader reader(channel, remote_pool, remote);
  reader.read_all();

  ASSERT_EQ(remote.events_seen(), sim.store().event_count());
  const auto& live_subset = live.matcher(0).subset().matches();
  const auto& remote_subset = remote.matcher(0).subset().matches();
  ASSERT_EQ(live_subset.size(), remote_subset.size());
  for (std::size_t i = 0; i < live_subset.size(); ++i) {
    EXPECT_EQ(live_subset[i].bindings, remote_subset[i].bindings);
  }
}

TEST(Wire, ReadOneDeliversIncrementally) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 85;
  options.traces = 3;
  options.events = 20;
  const EventStore store = testing::random_computation(pool, options);

  std::stringstream channel;
  WireWriter writer(channel, pool, names_of(store));
  for (const EventId id : store.arrival_order()) {
    writer.write(store.event(id), store.clock(id));
  }
  writer.finish();

  StringPool fresh;
  CollectingSink sink;
  WireReader reader(channel, fresh, sink);
  EXPECT_TRUE(reader.read_one());
  EXPECT_EQ(sink.events.size(), 1U);
  EXPECT_TRUE(reader.read_one());
  EXPECT_EQ(sink.events.size(), 2U);
  std::uint64_t rest = 0;
  while (reader.read_one()) {
    ++rest;
  }
  EXPECT_EQ(rest + 2, store.event_count());
  EXPECT_FALSE(reader.read_one());  // after BYE: stays done
}

TEST(Wire, RejectsGarbageAndTruncation) {
  StringPool pool;
  {
    std::stringstream garbage("not a wire stream at all");
    CollectingSink sink;
    EXPECT_THROW(WireReader(garbage, pool, sink), SerializationError);
  }
  {
    // Valid header, then cut mid-event.
    StringPool source;
    testing::RandomComputationOptions options;
    options.seed = 86;
    options.traces = 3;
    options.events = 30;
    const EventStore store = testing::random_computation(source, options);
    std::stringstream channel;
    WireWriter writer(channel, source, names_of(store));
    for (const EventId id : store.arrival_order()) {
      writer.write(store.event(id), store.clock(id));
    }
    // No finish(): simulate a dead producer, then truncate.
    std::string bytes = channel.str();
    bytes.resize(bytes.size() - 3);
    std::stringstream cut(bytes);
    CollectingSink sink;
    WireReader reader(cut, pool, sink);
    EXPECT_THROW(
        {
          while (reader.read_one()) {
          }
        },
        SerializationError);
  }
}

}  // namespace
}  // namespace ocep
