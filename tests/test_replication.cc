// Warm-standby replication tests (src/net/replicator, src/net/standby,
// src/store/replication): a real primary Server streaming its segment
// logs to a real Standby over loopback TCP, checked with the offline
// byte-prefix divergence report (the same code behind
// `ocep_inspect --store A --compare B`).  Labeled `net` in ctest, so the
// whole file runs under ASan in CI.
//
// The failover case forks the actual ocep_served binary (path injected
// via OCEP_SERVED_BIN) so the primary can be SIGKILLed mid-flight like a
// real daemon — promoting an in-process Standby over the replicated
// store must then serve the tenant to golden equivalence with zero
// acknowledged-durable bytes lost.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/string_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/standby.h"
#include "poet/dump.h"
#include "store/replication.h"
#include "testing/chaos_harness.h"
#include "testing/faulty_channel.h"

namespace ocep {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string golden_bytes() {
  return read_file(std::string(OCEP_SOURCE_DIR) + "/tools/zk962_golden.poet");
}

std::string golden_pattern() {
  return read_file(std::string(OCEP_SOURCE_DIR) + "/tools/zk962.ocep");
}

EventStore golden_store(StringPool& pool) {
  std::istringstream in(golden_bytes());
  return reload_store(in, pool);
}

std::vector<std::string> golden_clean() {
  StringPool pool;
  const EventStore store = golden_store(pool);
  return testing::clean_matches(store, pool, golden_pattern());
}

net::ServerConfig base_config() {
  net::ServerConfig config;
  if (const char* env = std::getenv("OCEP_TEST_SHARDS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      config.shards = static_cast<std::size_t>(n);
    }
  }
  return config;
}

net::ServerConfig store_config(const std::string& dir) {
  net::ServerConfig config = base_config();
  config.store_dir = dir;
  config.flush_interval_ms = 10;
  return config;
}

std::string temp_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ocep_repl_" + tag + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

class ServerThread {
 public:
  explicit ServerThread(net::ServerConfig config)
      : server(std::move(config)) {
    thread_ = std::thread([this] { server.run(); });
  }
  ~ServerThread() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server.request_shutdown();
      thread_.join();
    }
  }

  net::Server server;

 private:
  std::thread thread_;
};

/// Runs a Standby event loop on its own thread.  promote() makes run()
/// return and hands back the exit reason; stop() is the shutdown path.
class StandbyThread {
 public:
  explicit StandbyThread(net::StandbyConfig config)
      : standby(std::move(config)) {
    thread_ = std::thread([this] { exit_ = standby.run(); });
  }
  ~StandbyThread() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      standby.request_shutdown();
      thread_.join();
    }
  }

  [[nodiscard]] net::StandbyExit promote() {
    standby.request_promote();
    thread_.join();
    return exit_;
  }

  net::Standby standby;

 private:
  net::StandbyExit exit_ = net::StandbyExit::kShutdown;
  std::thread thread_;
};

bool wait_until(const std::function<bool()>& condition,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(5000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= until) {
      return condition();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

bool wait_counter(net::Server& server, const std::string& key,
                  std::uint64_t at_least) {
  return wait_until([&server, &key, at_least] {
    return server.counter_value(key) >= at_least;
  });
}

net::StreamResult stream_golden(std::uint16_t port, const std::string& tenant,
                                const net::StreamOptions& options = {}) {
  StringPool pool;
  const EventStore store = golden_store(pool);
  net::ConnectorConfig config;
  config.port = port;
  config.tenant = tenant;
  config.patterns = {golden_pattern()};
  for (int attempt = 0; attempt < 200; ++attempt) {
    const net::StreamResult result =
        net::stream_store(store, pool, config, options);
    if (result.ack.status != net::AckStatus::kRejected ||
        (result.ack.message.find("attached") == std::string::npos &&
         result.ack.message.find("migrating") == std::string::npos)) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "tenant '" << tenant << "' never detached";
  return {};
}

std::uintmax_t dir_bytes(const std::string& dir) {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      total += entry.file_size();
    }
  }
  return total;
}

/// Steady-state convergence: the replica is a non-empty byte prefix of
/// the primary AND holds exactly as many bytes — i.e. the two store
/// roots are byte-identical.  Safe to poll while the primary is live
/// (an in-flight replica can only lag, never diverge).
bool stores_converged(const std::string& primary, const std::string& replica) {
  try {
    const store::CompareReport report =
        store::compare_store_dirs(primary, replica);
    return report.ok() && report.bytes_compared > 0 &&
           dir_bytes(primary) == dir_bytes(replica);
  } catch (const std::exception&) {
    // A live compactor can collect a segment between the directory
    // scan and its stat; a torn snapshot just means "poll again".
    return false;
  }
}

/// Minimal HTTP/1.0 GET against an admin port; empty string on any
/// connection failure (the caller polls).
std::string http_get(std::uint16_t port, const std::string& path) {
  try {
    net::OwnedFd fd = net::tcp_connect("127.0.0.1", port);
    net::write_all(fd.get(), "GET " + path + " HTTP/1.0\r\n\r\n", 2000);
    std::string out;
    char buf[4096];
    while (net::wait_readable(fd.get(), 2000)) {
      const ssize_t n = ::read(fd.get(), buf, sizeof buf);
      if (n <= 0) {
        break;
      }
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  } catch (const Error&) {
    return {};
  }
}

// ===================================================================
// Codec: the replication wire grammar round-trips and rejects damage.
// ===================================================================

TEST(ReplCodec, HelloAndStateRoundTripIncrementally) {
  store::ReplHello hello;
  hello.shard_index = 3;
  hello.shard_count = 4;
  const std::string wire = store::encode_repl_hello(hello);

  store::ReplHello decoded;
  // Byte-at-a-time: 0 (need more) until the whole preface is buffered.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    ASSERT_EQ(store::try_decode_repl_hello(wire.substr(0, cut), decoded), 0)
        << "cut " << cut;
  }
  ASSERT_EQ(store::try_decode_repl_hello(wire, decoded),
            static_cast<std::int64_t>(wire.size()));
  EXPECT_EQ(decoded.proto, store::kReplProtoVersion);
  EXPECT_EQ(decoded.shard_index, 3U);
  EXPECT_EQ(decoded.shard_count, 4U);

  std::vector<store::ReplSegmentState> segments(2);
  segments[0] = {1, 16, 0xDEADBEEF};
  segments[1] = {7, 4096, 42};
  const std::string state = store::encode_repl_state(segments);
  std::vector<store::ReplSegmentState> back;
  ASSERT_EQ(store::try_decode_repl_state(state, back),
            static_cast<std::int64_t>(state.size()));
  ASSERT_EQ(back.size(), 2U);
  EXPECT_EQ(back[0].id, 1U);
  EXPECT_EQ(back[0].bytes, 16U);
  EXPECT_EQ(back[0].crc, 0xDEADBEEFU);
  EXPECT_EQ(back[1].id, 7U);
  EXPECT_EQ(back[1].bytes, 4096U);

  // One flipped body byte must read as corruption, not a frame.
  std::string bad = wire;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x01);
  EXPECT_EQ(store::try_decode_repl_hello(bad, decoded), -1);
}

TEST(ReplCodec, StreamFramesRoundTripAndRejectCorruption) {
  const std::string raw = "raw segment bytes \x00\x01\x02 with binary";
  const std::string wire = store::encode_repl_open(9) +
                           store::encode_repl_append(9, 16, raw) +
                           store::encode_repl_commit(77) +
                           store::encode_repl_drop(4) +
                           store::encode_repl_ack({77, 9, 16 + raw.size(), 5});

  std::string_view rest = wire;
  store::ReplFrameType type{};
  std::string payload;

  auto next = [&rest, &type, &payload] {
    const std::int64_t used = store::try_decode_repl_frame(rest, type, payload);
    ASSERT_GT(used, 0);
    rest.remove_prefix(static_cast<std::size_t>(used));
  };

  next();
  ASSERT_EQ(type, store::ReplFrameType::kOpenSegment);
  std::uint32_t id = 0;
  ASSERT_TRUE(store::decode_repl_open(payload, id));
  EXPECT_EQ(id, 9U);

  next();
  ASSERT_EQ(type, store::ReplFrameType::kAppend);
  std::uint64_t offset = 0;
  std::string_view bytes;
  ASSERT_TRUE(store::decode_repl_append(payload, id, offset, bytes));
  EXPECT_EQ(id, 9U);
  EXPECT_EQ(offset, 16U);
  EXPECT_EQ(bytes, raw);

  next();
  ASSERT_EQ(type, store::ReplFrameType::kCommit);
  std::uint64_t seq = 0;
  ASSERT_TRUE(store::decode_repl_commit(payload, seq));
  EXPECT_EQ(seq, 77U);

  next();
  ASSERT_EQ(type, store::ReplFrameType::kDrop);
  ASSERT_TRUE(store::decode_repl_drop(payload, id));
  EXPECT_EQ(id, 4U);

  next();
  ASSERT_EQ(type, store::ReplFrameType::kAck);
  store::ReplAck ack;
  ASSERT_TRUE(store::decode_repl_ack(payload, ack));
  EXPECT_EQ(ack.seq, 77U);
  EXPECT_EQ(ack.segment, 9U);
  EXPECT_EQ(ack.offset, 16U + raw.size());
  EXPECT_EQ(ack.records, 5U);
  EXPECT_TRUE(rest.empty());

  // A truncated buffer is need-more, a flipped payload byte is corrupt.
  const std::string one = store::encode_repl_commit(1);
  EXPECT_EQ(store::try_decode_repl_frame(
                std::string_view(one).substr(0, one.size() - 1), type,
                payload),
            0);
  std::string bad = one;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x10);
  EXPECT_EQ(store::try_decode_repl_frame(bad, type, payload), -1);
}

TEST(ReplCodec, RecordFrameCountCarriesSplitFrames) {
  // Two segment-log record frames (u32 len | u32 crc | body), shipped in
  // chunks that split both headers and bodies — the carry buffer must
  // keep the count exact.
  auto frame = [](const std::string& body) {
    std::string out;
    const std::uint32_t len = static_cast<std::uint32_t>(body.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
    }
    out.append(4, '\0');  // count_record_frames walks lengths, not CRCs
    out += body;
    return out;
  };
  const std::string stream = frame("hello") + frame("second record body");

  std::string pending;
  std::uint64_t count = 0;
  // Feed in 3-byte chunks: every header and body gets split.
  for (std::size_t pos = 0; pos < stream.size(); pos += 3) {
    count += store::count_record_frames(
        pending, std::string_view(stream).substr(pos, 3));
  }
  EXPECT_EQ(count, 2U);
  EXPECT_TRUE(pending.empty());

  // An implausible length (zero) stops the walk instead of buffering
  // garbage forever.
  std::string zeros(8, '\0');
  EXPECT_EQ(store::count_record_frames(pending, zeros), 0U);
}

// ===================================================================
// Live replication: primary Server -> Standby over loopback TCP.
// ===================================================================

TEST(ReplStandby, GoldenStreamReplicatesByteIdentical) {
  const std::string primary_dir = temp_dir("basic_p");
  const std::string replica_dir = temp_dir("basic_f");

  net::StandbyConfig sc;
  sc.store_dir = replica_dir;
  StandbyThread sb(std::move(sc));

  net::ServerConfig config = store_config(primary_dir);
  config.replicate_host = "127.0.0.1";
  config.replicate_port = sb.standby.port();
  ServerThread st(std::move(config));

  const net::StreamResult result = stream_golden(st.server.port(), "repl");
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);

  // The disk log is the replication buffer: the follower must converge
  // to a byte-identical copy of every shard's store.
  ASSERT_TRUE(wait_until(
      [&] { return stores_converged(primary_dir, replica_dir); },
      std::chrono::milliseconds(15000)));

  // Lag is visible (and zero at steady state) through /healthz.
  ASSERT_TRUE(wait_until([&st] {
    const std::string health = st.server.healthz_json();
    return health.find("\"connected\":true") != std::string::npos &&
           health.find("\"lag_bytes\":0") != std::string::npos &&
           health.find("\"lag_records\":0") != std::string::npos;
  }));
  EXPECT_GE(st.server.counter_value("repl.connects"), 1U);
  EXPECT_GT(st.server.counter_value("repl.bytes_shipped"), 0U);
  EXPECT_GT(st.server.counter_value("repl.acks"), 0U);

  st.stop();
  sb.stop();

  const store::CompareReport report =
      store::compare_store_dirs(primary_dir, replica_dir);
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().message);
  EXPECT_GT(report.bytes_compared, 0U);
}

// An unreachable follower must never degrade the serving path: the
// primary retries with bounded backoff while tenants stream normally,
// and a follower that appears later catches up from offset zero.
TEST(ReplStandby, UnreachableFollowerThenLateJoinCatchesUp) {
  const std::string primary_dir = temp_dir("late_p");
  const std::string replica_dir = temp_dir("late_f");

  // Reserve a port the standby will occupy later: bind ephemeral, note
  // the number, release it.
  std::uint16_t standby_port = 0;
  {
    net::OwnedFd probe = net::tcp_listen("127.0.0.1", standby_port);
  }

  net::ServerConfig config = store_config(primary_dir);
  config.replicate_host = "127.0.0.1";
  config.replicate_port = standby_port;
  ServerThread st(std::move(config));

  // Full golden stream with nobody listening on the replication target.
  const net::StreamResult result = stream_golden(st.server.port(), "lonely");
  ASSERT_TRUE(result.fin_received);
  EXPECT_FALSE(result.fin.degraded);
  {
    const std::string health = st.server.healthz_json();
    EXPECT_NE(health.find("\"connected\":false"), std::string::npos);
  }

  // Start the follower on the advertised port: the primary's retry loop
  // finds it (backoff caps at 2 s) and replays the whole log.
  net::StandbyConfig sc;
  sc.port = standby_port;
  sc.store_dir = replica_dir;
  StandbyThread sb(std::move(sc));
  ASSERT_TRUE(wait_until(
      [&] { return stores_converged(primary_dir, replica_dir); },
      std::chrono::milliseconds(15000)));
  ASSERT_TRUE(wait_until([&st] {
    return st.server.healthz_json().find("\"connected\":true") !=
           std::string::npos;
  }));

  st.stop();
  sb.stop();
  EXPECT_TRUE(store::compare_store_dirs(primary_dir, replica_dir).ok());
}

// The span storage tier on the primary — spills through the buffer pool,
// rebases offloaded to the compactor, span relocation out of dead
// segments, fully-dead segment collection — all happens as ordinary log
// appends plus segment drops, which is exactly what the replication
// stream carries.  A follower mirroring a compacting primary must
// therefore converge byte-identically, and the tenant must still match
// to golden equivalence (spill-then-fault-back loses nothing).
TEST(ReplStandby, CompactingPrimaryStaysDivergenceFree) {
  const std::string primary_dir = temp_dir("compact_p");
  const std::string replica_dir = temp_dir("compact_f");

  net::StandbyConfig sc;
  sc.store_dir = replica_dir;
  StandbyThread sb(std::move(sc));

  net::ServerConfig config = store_config(primary_dir);
  config.replicate_host = "127.0.0.1";
  config.replicate_port = sb.standby.port();
  // Aggressive span tier: tiny history cap so leaf histories spill,
  // small segments and rebase threshold so the compactor has dead
  // segments to rewrite and rebases to run while replication is live.
  config.pool_bytes = 64 << 10;
  config.compact_ratio = 0.2;
  config.store_segment_bytes = 16 << 10;
  config.store_rebase_bytes = 2048;
  config.tenant.matcher.history_bytes_limit = 512;
  config.detach_linger_ms = 10000;
  ServerThread st(std::move(config));

  const net::StreamResult first = stream_golden(st.server.port(), "compact1");
  ASSERT_TRUE(first.fin_received);
  EXPECT_FALSE(first.fin.degraded);

  // The tier actually engaged: spans were spilled to the log and the
  // compactor ran rebases off the flush tick.
  ASSERT_TRUE(wait_counter(st.server, "store.span_records", 1));
  ASSERT_TRUE(wait_counter(st.server, "store.compaction_rebases", 1));
  ASSERT_TRUE(wait_counter(st.server, "store.compaction_ticks", 1));
  // Lag is fine mid-flight; divergence never is.  A segment the
  // compactor collects can vanish between the compare's directory scan
  // and its stat — a torn snapshot retries, a clean one must be ok.
  ASSERT_TRUE(wait_until([&] {
    try {
      return store::compare_store_dirs(primary_dir, replica_dir).ok();
    } catch (const std::exception&) {
      return false;
    }
  }));

  // A second tenant keeps appends (and relocations) flowing, then the
  // follower must converge to a byte-identical mirror of the compacted
  // store — including any segments compaction collected.
  const net::StreamResult second = stream_golden(st.server.port(), "compact2");
  ASSERT_TRUE(second.fin_received);
  ASSERT_TRUE(wait_until(
      [&] { return stores_converged(primary_dir, replica_dir); },
      std::chrono::milliseconds(30000)))
      << "repl.resyncs=" << st.server.counter_value("repl.resyncs")
      << " store.spans_relocated="
      << st.server.counter_value("store.spans_relocated");

  st.stop();
  sb.stop();

  const store::CompareReport report =
      store::compare_store_dirs(primary_dir, replica_dir);
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().message);
  EXPECT_GT(report.bytes_compared, 0U);

  // Spill-then-fault-back under replication lost no matches.
  net::Tenant* tenant = st.server.find_tenant("compact1");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// ===================================================================
// Chaos: the replication link through a fault-injecting TCP proxy.
// ===================================================================

/// Loopback TCP proxy that forwards primary->follower bytes through a
/// testing::FaultyChannel for the first kFaultChunks read chunks
/// (bit flips, truncations, drops, stalls), then verbatim.  The reverse
/// (ack) direction is forwarded untouched.  Reconnects keep being
/// accepted, so the primary's retry/resync loop can converge once the
/// fault window is spent.
class FaultyProxy {
 public:
  static constexpr std::uint64_t kFaultChunks = 48;

  FaultyProxy(std::uint16_t target_port)
      : target_port_(target_port),
        listener_(net::tcp_listen("127.0.0.1", port_)) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~FaultyProxy() { stop(); }

  void stop() {
    stop_.store(true);
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    for (Session& session : sessions_) {
      session.close();
    }
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t faults() const noexcept {
    return faults_.load();
  }
  [[nodiscard]] std::uint64_t connections() const noexcept {
    return connections_.load();
  }

 private:
  /// ByteSink over a socket; a dead peer just marks the session done.
  struct FdSink final : ByteSink {
    int fd;
    bool dead = false;
    explicit FdSink(int fd_in) : fd(fd_in) {}
    void write(std::string_view bytes) override {
      if (dead) {
        return;
      }
      try {
        net::write_all(fd, bytes, 2000);
      } catch (const Error&) {
        dead = true;
      }
    }
  };

  struct Session {
    net::OwnedFd client;    ///< accepted from the primary
    net::OwnedFd upstream;  ///< connected to the standby
    std::thread forward;
    std::thread reverse;

    void close() {
      // Shut both directions down so whichever pump is mid-read exits.
      if (client.valid()) {
        ::shutdown(client.get(), SHUT_RDWR);
      }
      if (upstream.valid()) {
        ::shutdown(upstream.get(), SHUT_RDWR);
      }
      if (forward.joinable()) {
        forward.join();
      }
      if (reverse.joinable()) {
        reverse.join();
      }
      client.reset();
      upstream.reset();
    }
  };

  void accept_loop() {
    while (!stop_.load()) {
      bool readable = false;
      try {
        readable = net::wait_readable(listener_.get(), 50);
      } catch (const Error&) {
        return;
      }
      if (!readable) {
        continue;
      }
      const int fd = ::accept(listener_.get(), nullptr, nullptr);
      if (fd < 0) {
        continue;
      }
      connections_.fetch_add(1);
      Session session;
      session.client.reset(fd);
      try {
        session.upstream = net::tcp_connect("127.0.0.1", target_port_);
      } catch (const Error&) {
        continue;  // standby gone; primary will retry
      }
      const int client_fd = session.client.get();
      const int upstream_fd = session.upstream.get();
      session.forward = std::thread(
          [this, client_fd, upstream_fd] { pump(client_fd, upstream_fd, true); });
      session.reverse = std::thread(
          [this, client_fd, upstream_fd] { pump(upstream_fd, client_fd, false); });
      sessions_.push_back(std::move(session));
    }
  }

  void pump(int src, int dst, bool mangle) {
    testing::FaultSpec spec;
    spec.seed = 0xC0FFEE;
    spec.drop_per_1000 = 60;
    spec.bitflip_per_1000 = 150;
    spec.truncate_per_1000 = 80;
    FdSink sink(dst);
    testing::FaultyChannel channel(sink, spec);
    char buf[4096];
    while (!stop_.load()) {
      bool readable = false;
      try {
        readable = net::wait_readable(src, 50);
      } catch (const Error&) {
        break;
      }
      if (!readable) {
        continue;
      }
      const ssize_t n = ::read(src, buf, sizeof buf);
      if (n <= 0) {
        break;
      }
      const std::string_view chunk(buf, static_cast<std::size_t>(n));
      const std::uint64_t index =
          mangle ? chunk_counter_.fetch_add(1) : kFaultChunks;
      if (index < kFaultChunks) {
        if (index % 16 == 15) {
          // A stalled link, not just a lossy one.
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        const std::uint64_t before = channel.stats().faults();
        channel.write(chunk);
        faults_.fetch_add(channel.stats().faults() - before);
      } else {
        sink.write(chunk);
      }
      if (sink.dead) {
        break;
      }
    }
    // Propagate the teardown so the paired pump and both endpoints see
    // EOF instead of a half-open socket.
    ::shutdown(src, SHUT_RDWR);
    ::shutdown(dst, SHUT_RDWR);
  }

  std::uint16_t target_port_;
  std::uint16_t port_ = 0;
  net::OwnedFd listener_;
  std::thread accept_thread_;
  std::vector<Session> sessions_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> chunk_counter_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> connections_{0};
};

// Truncations, bit flips, drops, and stalls on the replication link must
// only ever produce reconnects or resyncs — never a divergent follower
// store.  Framing CRCs reject mangled bytes before they touch disk, so
// the replica stays a byte prefix of the primary throughout.
TEST(ReplChaos, FaultyLinkReconnectsOrResyncsNeverDiverges) {
  const std::string primary_dir = temp_dir("chaos_p");
  const std::string replica_dir = temp_dir("chaos_f");

  net::StandbyConfig sc;
  sc.store_dir = replica_dir;
  StandbyThread sb(std::move(sc));
  FaultyProxy proxy(sb.standby.port());

  net::ServerConfig config = store_config(primary_dir);
  config.replicate_host = "127.0.0.1";
  config.replicate_port = proxy.port();
  ServerThread st(std::move(config));

  // First tenant streams while the link is being mangled...
  const net::StreamResult first = stream_golden(st.server.port(), "chaos1");
  ASSERT_TRUE(first.fin_received);
  EXPECT_FALSE(first.fin.degraded);

  // ...and at no point may the replica diverge (lag is fine).
  EXPECT_TRUE(store::compare_store_dirs(primary_dir, replica_dir).ok());

  // A second tenant keeps bytes flowing after the fault window closes,
  // flushing any mangled tail out of the follower's decoder.
  const net::StreamResult second = stream_golden(st.server.port(), "chaos2");
  ASSERT_TRUE(second.fin_received);

  ASSERT_TRUE(wait_until(
      [&] { return stores_converged(primary_dir, replica_dir); },
      std::chrono::milliseconds(30000)))
      << "proxy faults=" << proxy.faults()
      << " reconnects=" << proxy.connections()
      << " repl.resyncs=" << st.server.counter_value("repl.resyncs")
      << " repl.disconnects=" << st.server.counter_value("repl.disconnects");

  // The fault window actually bit: injected faults forced the link to
  // recover at least once (reconnect or resync).
  EXPECT_GT(proxy.faults(), 0U);
  EXPECT_GE(proxy.connections(), 2U);

  st.stop();
  proxy.stop();
  sb.stop();

  const store::CompareReport report =
      store::compare_store_dirs(primary_dir, replica_dir);
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().message);
  EXPECT_GT(report.bytes_compared, 0U);
}

// ===================================================================
// Failover: SIGKILL the real primary daemon, promote the follower.
// ===================================================================

struct ChildDaemon {
  pid_t pid = -1;
  int out = -1;  ///< read end of the child's stdout

  ~ChildDaemon() {
    if (out >= 0) {
      ::close(out);
    }
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  void kill_hard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }

  /// Reads stdout until a line containing `needle` arrives.
  std::string read_line_containing(const std::string& needle) {
    std::string buffer;
    while (net::wait_readable(out, 10000)) {
      char byte = 0;
      const ssize_t n = ::read(out, &byte, 1);
      if (n <= 0) {
        break;
      }
      if (byte == '\n') {
        if (buffer.find(needle) != std::string::npos) {
          return buffer;
        }
        buffer.clear();
      } else {
        buffer.push_back(byte);
      }
    }
    return {};
  }
};

/// fork+exec the real ocep_served binary with stdout piped back.  The
/// argv vector is fully built before fork so the child only performs
/// async-signal-safe calls (dup2/execv/_exit).
ChildDaemon spawn_served(const std::vector<std::string>& args) {
  static const std::string binary = OCEP_SERVED_BIN;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  int fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  ChildDaemon child;
  child.pid = pid;
  child.out = fds[0];
  return child;
}

// The acceptance bar: a live primary process is SIGKILLed mid-stream,
// the in-process follower is promoted, and the promoted store (a) passes
// the offline byte-prefix comparison against the dead primary's
// directory and (b) serves the tenant back to golden equivalence when
// the producer reconnects — zero acknowledged-durable bytes lost.
TEST(ReplFailover, KillPrimaryPromoteFollowerClientsResume) {
  const std::string primary_dir = temp_dir("fail_p");
  const std::string replica_dir = temp_dir("fail_f");
  constexpr std::uint64_t kHalf = 171;

  net::StandbyConfig sc;
  sc.store_dir = replica_dir;
  StandbyThread sb(std::move(sc));

  ChildDaemon primary = spawn_served({
      "--port", "0", "--admin-port", "0",
      "--store-dir", primary_dir,
      "--flush-interval-ms", "10",
      "--linger-ms", "10000",
      "--replicate-to",
      "127.0.0.1:" + std::to_string(sb.standby.port()),
  });
  ASSERT_GT(primary.pid, 0);
  const std::string banner = primary.read_line_containing("ingest port");
  ASSERT_FALSE(banner.empty()) << "primary never announced its ports";
  unsigned ingest_port = 0;
  unsigned admin_port = 0;
  ASSERT_EQ(std::sscanf(banner.c_str(),
                        "ocep_served: ingest port %u admin port %u",
                        &ingest_port, &admin_port),
            2)
      << banner;

  // Stream half the golden store, then vanish (no BYE, no FIN) — the
  // shape of a producer alive across a primary crash.
  net::StreamOptions half;
  half.max_events = kHalf;
  const net::StreamResult first = stream_golden(
      static_cast<std::uint16_t>(ingest_port), "failover", half);
  ASSERT_EQ(first.ack.status, net::AckStatus::kFresh) << first.ack.message;

  // Wait until everything the primary made durable is acked by the
  // follower: /healthz lag zero AND byte-identical store roots.
  ASSERT_TRUE(wait_until(
      [&] {
        const std::string health = http_get(
            static_cast<std::uint16_t>(admin_port), "/healthz");
        return health.find("\"connected\":true") != std::string::npos &&
               health.find("\"lag_bytes\":0") != std::string::npos &&
               health.find("\"lag_records\":0") != std::string::npos &&
               stores_converged(primary_dir, replica_dir);
      },
      std::chrono::milliseconds(15000)));

  primary.kill_hard();  // SIGKILL: no drain, no flush, no goodbye

  // Promote: the standby commits its replicas, releases its ports, and
  // run() reports kPromote — the daemon would now construct a Server
  // over the same store, which this test does in-process.
  ASSERT_EQ(sb.promote(), net::StandbyExit::kPromote);

  // Offline divergence check, exactly `ocep_inspect --store A --compare B`.
  const store::CompareReport report =
      store::compare_store_dirs(primary_dir, replica_dir);
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().message);
  EXPECT_GT(report.bytes_compared, 0U);

  net::ServerConfig promoted_config = store_config(replica_dir);
  promoted_config.detach_linger_ms = 10000;
  ServerThread promoted(std::move(promoted_config));
  ASSERT_TRUE(wait_counter(promoted.server, "net.tenants_restored", 1));

  // The producer reconnects to the promoted follower and finishes from
  // its watermark; any flush-window hole heals via snapshot resync.
  net::StreamOptions rest;
  rest.skip_below = kHalf;
  const net::StreamResult second = stream_golden(
      promoted.server.port(), "failover", rest);
  ASSERT_EQ(second.ack.status, net::AckStatus::kResumed)
      << second.ack.message;
  EXPECT_GT(second.ack.resume_position, 0U);
  EXPECT_LE(second.ack.resume_position, kHalf);
  ASSERT_TRUE(second.fin_received);
  EXPECT_FALSE(second.fin.degraded);
  promoted.stop();

  net::Tenant* tenant = promoted.server.find_tenant("failover");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

// ===================================================================
// Disk-fault degradation: flush failures must not kill the daemon.
// ===================================================================

// An ENOSPC/EIO-shaped fault on the flush tick keeps the daemon serving
// from RAM: appends fail and are retried with backoff, store.append_errors
// counts them, /healthz flags the shard degraded — and once the disk
// heals, the queued deltas land and a restart proves nothing was lost.
TEST(ReplDegraded, FlushFaultKeepsServingThenHealsWithoutLoss) {
  const std::string dir = temp_dir("degraded");

  std::atomic<bool> fail{false};
  net::ServerConfig config = store_config(dir);
  config.detach_linger_ms = 10000;
  config.store_crash_hook = [&fail](store::CrashEdge edge,
                                    std::string_view detail) {
    if (fail.load(std::memory_order_relaxed) &&
        edge == store::CrashEdge::kWrite && detail.rfind("pre:", 0) == 0) {
      throw StoreError("injected EIO on append");
    }
  };
  auto st = std::make_unique<ServerThread>(std::move(config));
  const std::uint16_t port = st->server.port();

  // A first tenant lands cleanly so the store has healthy content.
  const net::StreamResult before = stream_golden(port, "steady");
  ASSERT_TRUE(before.fin_received);
  ASSERT_TRUE(wait_counter(st->server, "store.delta_records", 1));

  // Disk goes bad: every flush-tick append now throws.  The daemon must
  // keep accepting and matching — only durability degrades.
  fail.store(true);
  const net::StreamResult during = stream_golden(port, "ironclad");
  ASSERT_TRUE(during.fin_received);
  EXPECT_FALSE(during.fin.degraded);
  ASSERT_TRUE(wait_counter(st->server, "store.append_errors", 1));
  ASSERT_TRUE(wait_until([&st] {
    return st->server.healthz_json().find("\"degraded\":true") !=
           std::string::npos;
  }));

  // Disk heals: the retry loop (capped backoff) lands the queued deltas
  // and the degraded flag clears.
  fail.store(false);
  ASSERT_TRUE(wait_until(
      [&st] {
        return st->server.healthz_json().find("\"degraded\":true") ==
               std::string::npos;
      },
      std::chrono::milliseconds(15000)));
  st->stop();  // graceful drain flushes whatever remains

  // Nothing streamed during the outage was lost: a restart replays the
  // log and rebuilds the tenant complete at the full watermark, without
  // any producer help (it finished during the outage).
  net::ServerConfig config2 = store_config(dir);
  config2.detach_linger_ms = 10000;
  ServerThread st2(std::move(config2));
  ASSERT_TRUE(wait_counter(st2.server, "net.tenants_restored", 1));
  ASSERT_TRUE(wait_until([&st2] {
    const std::string health = st2.server.healthz_json();
    const std::size_t at = health.find("\"name\":\"ironclad\"");
    return at != std::string::npos &&
           health.find("\"state\":\"complete\"", at) != std::string::npos &&
           health.find("\"events\":342", at) != std::string::npos;
  }));
  st2.stop();

  net::Tenant* tenant = st2.server.find_tenant("ironclad");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), net::TenantState::kComplete);
  EXPECT_EQ(tenant->monitor().events_seen(), 342U);
  EXPECT_EQ(testing::match_signature(tenant->monitor(), 0), golden_clean());
}

}  // namespace
}  // namespace ocep
