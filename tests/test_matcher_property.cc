// Property-based validation of the OCEP matcher against the exhaustive
// reference matcher, over random computations and randomly generated
// patterns.
//
// Checked properties:
//   1. Soundness — every match OCEP reports satisfies every constraint and
//      attribute of the pattern.
//   2. Representative coverage (§IV-B) — over the whole run, the set of
//      (leaf, trace) pairs covered by OCEP's subset equals the coverage of
//      the set of ALL matches computed by brute force (with redundancy
//      merging off, which can legitimately drop same-trace pairs).
//   3. Bound — the retained subset never exceeds k * n matches.
//   4. Config equivalence — domain pruning and backjumping are pure
//      optimizations: coverage is identical with them on or off.
#include <gtest/gtest.h>

#include <string>

#include "baseline/naive_matcher.h"
#include "common/rng.h"
#include "core/matcher.h"
#include "pattern/compiled.h"
#include "random_computation.h"

namespace ocep {
namespace {

/// Generates a random pattern over the random computation's type alphabet
/// {A..D} / text alphabet {'', 'x', 'y'}: a chain of 2-4 operands with
/// random operators, random literal/wildcard/variable attributes.
std::string random_pattern_text(Rng& rng) {
  const std::size_t k = 2 + rng.below(3);
  std::string classes;
  std::string chain;
  for (std::size_t i = 0; i < k; ++i) {
    const std::string name = "C" + std::to_string(i);
    // type: mostly a literal letter, sometimes wild-card
    std::string type;
    if (rng.below(5) != 0) {
      type = std::string(1, static_cast<char>('A' + rng.below(4)));
    } else {
      type = "''";
    }
    // text: wild-card, a literal, or a shared variable
    std::string text = "''";
    const std::uint64_t text_roll = rng.below(6);
    if (text_roll == 0) {
      text = "'x'";
    } else if (text_roll == 1) {
      text = "$tag";
    }
    // process: mostly wild-card, sometimes a shared variable
    std::string process = "''";
    if (rng.below(6) == 0) {
      process = "$proc";
    }
    classes += name + " := [" + process + ", " + type + ", " + text + "];\n";
    if (i > 0) {
      const std::uint64_t op = rng.below(6);
      // Include the partner operator (singleton domains, conflict
      // attribution) and limited precedence (history-quantified checks).
      if (op == 0) {
        chain += " <-> ";
      } else if (op == 1) {
        chain += " -lim-> ";
      } else if (op <= 3) {
        chain += " -> ";
      } else {
        chain += " || ";
      }
    }
    chain += name;
  }
  return classes + "pattern := " + chain + ";\n";
}

struct RunResult {
  std::vector<bool> covered;
  std::size_t subset_size = 0;
  std::size_t reported = 0;
  bool all_valid = true;
};

RunResult run_ocep(const EventStore& store, StringPool& pool,
                   const std::string& pattern_text, MatcherConfig config) {
  pattern::CompiledPattern pattern = pattern::compile(pattern_text, pool);
  const pattern::CompiledPattern reference =
      pattern::compile(pattern_text, pool);
  RunResult out;
  OcepMatcher matcher(
      store, std::move(pattern), config,
      [&](const Match& match, bool) {
        ++out.reported;
        out.all_valid =
            out.all_valid && baseline::is_valid_match(store, reference, match);
      });
  for (const EventId id : store.arrival_order()) {
    matcher.observe(store.event(id));
  }
  const std::size_t traces = store.trace_count();
  out.covered.assign(reference.size() * traces, false);
  for (std::size_t leaf = 0; leaf < reference.size(); ++leaf) {
    for (TraceId t = 0; t < traces; ++t) {
      out.covered[leaf * traces + t] =
          matcher.subset().covered(static_cast<std::uint32_t>(leaf), t);
    }
  }
  out.subset_size = matcher.subset().matches().size();
  return out;
}

class MatcherVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherVsBruteForce, SoundAndCoverageComplete) {
  const std::uint64_t seed = GetParam();
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = seed;
  options.traces = static_cast<std::uint32_t>(3 + seed % 3);
  options.events = 60;
  const EventStore store = testing::random_computation(pool, options);

  Rng rng(seed * 1000 + 17);
  for (int round = 0; round < 6; ++round) {
    const std::string pattern_text = random_pattern_text(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + " pattern:\n" +
                 pattern_text);

    MatcherConfig config;
    config.merge_redundant_history = false;  // exact coverage expected
    const RunResult ocep = run_ocep(store, pool, pattern_text, config);
    EXPECT_TRUE(ocep.all_valid) << "OCEP reported an invalid match";

    const pattern::CompiledPattern reference =
        pattern::compile(pattern_text, pool);
    const std::vector<bool> expected = baseline::coverage(store, reference);
    EXPECT_EQ(ocep.covered, expected) << "coverage mismatch vs brute force";
    EXPECT_LE(ocep.subset_size, reference.size() * store.trace_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherVsBruteForce,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110));

class ConfigEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

// Domain pruning (Fig 4) and backjumping (Fig 5) must not change WHAT is
// found, only how fast: coverage is identical across all four combinations.
TEST_P(ConfigEquivalence, OptimizationsPreserveCoverage) {
  const std::uint64_t seed = GetParam();
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = seed;
  options.traces = 4;
  options.events = 80;
  const EventStore store = testing::random_computation(pool, options);

  Rng rng(seed * 99 + 3);
  for (int round = 0; round < 4; ++round) {
    const std::string pattern_text = random_pattern_text(rng);
    SCOPED_TRACE(pattern_text);
    std::vector<RunResult> results;
    for (const bool pruning : {true, false}) {
      for (const bool backjumping : {true, false}) {
        MatcherConfig config;
        config.merge_redundant_history = false;
        config.domain_pruning = pruning;
        config.backjumping = backjumping;
        results.push_back(run_ocep(store, pool, pattern_text, config));
      }
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0].covered, results[i].covered)
          << "config combination " << i << " diverged in coverage";
      // The optimizations must not change what the free searches find
      // either: the per-anchor report counts are identical.
      EXPECT_EQ(results[0].reported, results[i].reported)
          << "config combination " << i << " diverged in report count";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigEquivalence,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

// With merging ON coverage may only shrink relative to brute force, and
// only on same-trace pairs; cross-trace coverage must be preserved (two
// merged events have identical cross-trace causality).
class MergeSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeSafety, MergingPreservesSoundnessAndSubsetBound) {
  const std::uint64_t seed = GetParam();
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = seed;
  options.traces = 4;
  options.events = 80;
  const EventStore store = testing::random_computation(pool, options);

  Rng rng(seed * 7 + 5);
  for (int round = 0; round < 4; ++round) {
    const std::string pattern_text = random_pattern_text(rng);
    SCOPED_TRACE(pattern_text);
    MatcherConfig merged;
    merged.merge_redundant_history = true;
    const RunResult with_merge = run_ocep(store, pool, pattern_text, merged);
    EXPECT_TRUE(with_merge.all_valid);

    MatcherConfig full;
    full.merge_redundant_history = false;
    const RunResult without = run_ocep(store, pool, pattern_text, full);
    // Merged coverage is a subset of exact coverage.
    ASSERT_EQ(with_merge.covered.size(), without.covered.size());
    for (std::size_t i = 0; i < with_merge.covered.size(); ++i) {
      EXPECT_LE(with_merge.covered[i], without.covered[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeSafety,
                         ::testing::Values(301, 302, 303, 304));

// The matcher must behave identically on the sparse clock backend.
class SparseBackend : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseBackend, MatcherResultsMatchDense) {
  const std::uint64_t seed = GetParam();
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = seed;
  options.traces = 4;
  options.events = 80;
  const EventStore dense = testing::random_computation(pool, options);
  options.storage = ClockStorage::kSparse;
  const EventStore sparse = testing::random_computation(pool, options);

  Rng rng(seed * 31 + 11);
  for (int round = 0; round < 4; ++round) {
    const std::string pattern_text = random_pattern_text(rng);
    SCOPED_TRACE(pattern_text);
    MatcherConfig config;
    config.merge_redundant_history = false;
    const RunResult on_dense = run_ocep(dense, pool, pattern_text, config);
    const RunResult on_sparse = run_ocep(sparse, pool, pattern_text, config);
    EXPECT_EQ(on_dense.covered, on_sparse.covered);
    EXPECT_EQ(on_dense.reported, on_sparse.reported);
    EXPECT_TRUE(on_sparse.all_valid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBackend,
                         ::testing::Values(401, 402, 403, 404));

}  // namespace
}  // namespace ocep
