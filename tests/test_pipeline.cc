// The parallel matching pipeline must be a pure performance feature:
//
//   1. Equivalence — the same stream through worker_threads = 0 and
//      worker_threads > 0 yields identical representative subsets (exact
//      matches, in order) and identical report counts per pattern, on
//      both timestamp backends.  This is what licenses the "store may run
//      ahead of the observation point" design (core/pipeline.h).
//   2. Backpressure — a tiny ring with many events must stall the
//      producer (bounded memory) and still produce identical results.
//   3. Drain barrier — reading matcher state without drain() aborts;
//      after drain() every counter is exact.
//   4. add_pattern after the first event fails loudly (regression for the
//      documented-but-once-unenforced contract).
//
// Plus unit coverage for the two new concurrency substrates
// (StableVector, SpscRing).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/spsc_ring.h"
#include "common/stable_vector.h"
#include "core/monitor.h"
#include "poet/replay.h"
#include "random_computation.h"

namespace ocep {
namespace {

// Eight patterns over the random computation's alphabets (types A..D,
// texts ''/x/y, traces T0..), exercising every operator the matcher
// implements plus attribute variables.
const std::vector<std::string>& pattern_set() {
  static const std::vector<std::string> patterns = {
      "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n",
      "P := ['', B, '']; Q := ['', C, ''];\npattern := P || Q;\n",
      "S := ['', '', '']; R := ['', '', ''];\npattern := S <-> R;\n",
      "P := ['', D, '']; Q := ['', A, ''];\npattern := P -lim-> Q;\n",
      "P := ['', C, '$t']; Q := ['', '', '$t'];\npattern := P -> Q;\n",
      "P := ['', A, '']; Q := ['', B, '']; R := ['', C, ''];\n"
      "pattern := P -> Q -> R;\n",
      "P := ['', A, '']; Q := ['', D, ''];\npattern := P || Q;\n",
      "P := ['$p', B, '']; Q := ['$p', C, ''];\npattern := P -> Q;\n",
  };
  return patterns;
}

struct PatternOutcome {
  std::vector<std::vector<EventId>> matches;  // subset, in report order
  std::uint64_t reported = 0;
  std::uint64_t observed = 0;
};

std::vector<PatternOutcome> run_with(const EventStore& source,
                                     StringPool& pool,
                                     const MonitorConfig& config) {
  Monitor monitor(pool, config, source.storage());
  for (const std::string& pattern : pattern_set()) {
    monitor.add_pattern(pattern);
  }
  replay(source, monitor);
  monitor.drain();
  std::vector<PatternOutcome> out(monitor.pattern_count());
  for (std::size_t i = 0; i < monitor.pattern_count(); ++i) {
    const OcepMatcher& matcher = monitor.matcher(i);
    for (const Match& match : matcher.subset().matches()) {
      out[i].matches.push_back(match.bindings);
    }
    out[i].reported = matcher.stats().matches_reported;
    out[i].observed = matcher.stats().events_observed;
  }
  return out;
}

void expect_same(const std::vector<PatternOutcome>& sequential,
                 const std::vector<PatternOutcome>& parallel) {
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE("pattern " + std::to_string(i));
    EXPECT_EQ(sequential[i].matches, parallel[i].matches)
        << "representative subset diverged";
    EXPECT_EQ(sequential[i].reported, parallel[i].reported);
    EXPECT_EQ(sequential[i].observed, parallel[i].observed);
  }
}

class PipelineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineEquivalence, ParallelSubsetsMatchSequential) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = GetParam();
  options.traces = 4;
  options.events = 160;
  // Odd seeds also cover the sparse timestamp backend.
  if (GetParam() % 2 == 1) {
    options.storage = ClockStorage::kSparse;
  }
  const EventStore source = testing::random_computation(pool, options);

  const std::vector<PatternOutcome> sequential =
      run_with(source, pool, MonitorConfig{});

  // Several shard shapes: more workers than needed, uneven sharding, and
  // a batch size that leaves a partial batch for drain() to flush.
  for (const std::size_t workers : {1U, 3U, 4U}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    MonitorConfig config;
    config.worker_threads = workers;
    config.batch_size = 7;
    config.ring_batches = 4;
    expect_same(sequential, run_with(source, pool, config));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineEquivalence,
                         ::testing::Values(11, 12, 13, 14));

TEST(Pipeline, TinyRingBackpressuresWithoutChangingResults) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 21;
  options.traces = 4;
  options.events = 800;
  const EventStore source = testing::random_computation(pool, options);

  const std::vector<PatternOutcome> sequential =
      run_with(source, pool, MonitorConfig{});

  MonitorConfig config;
  config.worker_threads = 2;
  // One event per descriptor, and ring room for only two of them.
  config.batch_size = 1;
  config.ring_batches = 2;
  Monitor monitor(pool, config, source.storage());
  for (const std::string& pattern : pattern_set()) {
    monitor.add_pattern(pattern);
  }
  replay(source, monitor);
  monitor.drain();

  std::vector<PatternOutcome> parallel(monitor.pattern_count());
  for (std::size_t i = 0; i < monitor.pattern_count(); ++i) {
    const OcepMatcher& matcher = monitor.matcher(i);
    for (const Match& match : matcher.subset().matches()) {
      parallel[i].matches.push_back(match.bindings);
    }
    parallel[i].reported = matcher.stats().matches_reported;
    parallel[i].observed = matcher.stats().events_observed;
  }
  expect_same(sequential, parallel);

  // 800 events through a 2-slot ring on finite hardware: the producer
  // must have hit a full ring at least once.
  const PipelineStats stats = monitor.stats();
  std::uint64_t stalls = 0;
  for (const PipelineWorkerStats& worker : stats.workers) {
    stalls += worker.ring_full_stalls;
  }
  EXPECT_GT(stalls, 0U) << "tiny ring never backpressured the producer";
}

TEST(Pipeline, DrainMakesEveryCounterExact) {
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 22;
  options.traces = 3;
  options.events = 200;
  const EventStore source = testing::random_computation(pool, options);

  MonitorConfig config;
  config.worker_threads = 2;
  config.batch_size = 16;
  Monitor monitor(pool, config, source.storage());
  for (const std::string& pattern : pattern_set()) {
    monitor.add_pattern(pattern);
  }
  replay(source, monitor);
  monitor.drain();

  EXPECT_EQ(monitor.events_seen(), source.event_count());
  const PipelineStats stats = monitor.stats();
  EXPECT_EQ(stats.events_dispatched, monitor.events_seen());
  ASSERT_EQ(stats.workers.size(), 2U);
  ASSERT_EQ(stats.patterns.size(), pattern_set().size());
  for (std::size_t i = 0; i < stats.patterns.size(); ++i) {
    EXPECT_EQ(stats.patterns[i].events_observed, monitor.events_seen());
    EXPECT_LT(stats.patterns[i].worker, stats.workers.size());
    EXPECT_EQ(monitor.matcher(i).stats().events_observed,
              monitor.events_seen());
  }
  std::uint64_t worker_events = 0;
  for (const PipelineWorkerStats& worker : stats.workers) {
    worker_events += worker.events;
  }
  // Every worker observed every event once per pattern it owns.
  EXPECT_EQ(worker_events, monitor.events_seen() * pattern_set().size());
}

TEST(Pipeline, MetricsCountersMatchAcrossWorkerCounts) {
  // The stream-deterministic registry counters (events, leaf hits,
  // searches, matches, pins) must be identical whether matching runs
  // synchronously or sharded across 2 or 4 workers.  Search-shape
  // counters (domain_prunes, nodes, backjumps) are excluded by design:
  // the candidate domain's upper bound is the store's live trace size
  // (matcher.cc domain scan), and in pipeline mode the store runs ahead
  // of the observation point, so how much got pruned depends on
  // scheduling even though what matched never does (that invariance is
  // PipelineEquivalence's job).
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 29;
  options.traces = 4;
  options.events = 200;
  const EventStore source = testing::random_computation(pool, options);

  const auto matcher_counters = [&](std::uint32_t workers) {
    MonitorConfig config;
    config.metrics = true;
    config.worker_threads = workers;
    config.batch_size = 16;
    Monitor monitor(pool, config, source.storage());
    for (const std::string& pattern : pattern_set()) {
      monitor.add_pattern(pattern);
    }
    replay(source, monitor);
    monitor.drain();
    static constexpr const char* kDeterministic[] = {
        "matcher.events",  "matcher.leaf_hits",    "matcher.searches",
        "matcher.matches", "matcher.pins_run",     "matcher.pins_skipped",
    };
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto& [key, value] : monitor.metrics().counter_values()) {
      for (const char* name : kDeterministic) {
        // Exact instrument name: the key is "name{labels}", and a bare
        // prefix test would also sweep up e.g. matcher.searches_aborted.
        const std::string prefix = std::string(name) + "{";
        if (key.rfind(prefix, 0) == 0) {
          out.emplace_back(key, value);
          break;
        }
      }
    }
    return out;
  };

  const auto sequential = matcher_counters(0);
  // 6 deterministic counters per pattern; all patterns present.
  EXPECT_EQ(sequential.size(), 6 * pattern_set().size());
  std::uint64_t events_total = 0;
  for (const auto& [key, value] : sequential) {
    if (key.rfind("matcher.events", 0) == 0) {
      events_total += value;
    }
  }
  EXPECT_EQ(events_total, source.event_count() * pattern_set().size());
  EXPECT_EQ(sequential, matcher_counters(2));
  EXPECT_EQ(sequential, matcher_counters(4));
}

TEST(PipelineDeathTest, ReadingMatcherStateWithoutDrainAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StringPool pool;
  testing::RandomComputationOptions options;
  options.seed = 23;
  options.traces = 3;
  options.events = 120;
  const EventStore source = testing::random_computation(pool, options);

  MonitorConfig config;
  config.worker_threads = 1;
  config.batch_size = 8;
  Monitor monitor(pool, config, source.storage());
  monitor.add_pattern(pattern_set()[0]);
  replay(source, monitor);
  // No drain(): the subset may still be mid-update on the worker.
  EXPECT_DEATH(static_cast<void>(monitor.matcher(0)),
               "drain\\(\\) the pipeline");
  monitor.drain();
  EXPECT_NO_FATAL_FAILURE(static_cast<void>(monitor.matcher(0)));
}

TEST(MonitorDeathTest, AddPatternAfterFirstEventAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StringPool pool;
  Monitor monitor(pool);
  monitor.on_traces({pool.intern("T0")});
  VectorClock clock(1);
  clock.tick(0);
  Event event;
  event.id = EventId{0, 1};
  event.type = pool.intern("A");
  monitor.on_event(event, clock);
  // The documented contract ("patterns must be added before the first
  // event") must be enforced, not just stated.
  EXPECT_DEATH(
      monitor.add_pattern(
          "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n"),
      "before the first event");
}

TEST(StableVector, AddressesStayStableAcrossGrowth) {
  StableVector<std::uint32_t, 4> vector;  // 16-element first chunk
  vector.push_back(7);
  const std::uint32_t* first = &vector[0];
  for (std::uint32_t i = 1; i < 10000; ++i) {
    vector.push_back(i);
  }
  EXPECT_EQ(first, &vector[0]) << "growth moved an element";
  EXPECT_EQ(vector.size(), 10000U);
  EXPECT_EQ(vector.visible_size(), 10000U);
  EXPECT_EQ(vector[0], 7U);
  for (std::uint32_t i = 1; i < 10000; ++i) {
    ASSERT_EQ(vector[i], i);
  }
  EXPECT_GE(vector.capacity(), vector.size());
}

TEST(SpscRing, FifoOrderAndBoundedCapacity) {
  SpscRing<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4U);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(i));
  }
  EXPECT_FALSE(ring.try_push(99)) << "ring exceeded its bound";
  int value = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(ring.try_pop(value));
  // Wrap-around keeps FIFO order.
  for (int round = 0; round < 9; ++round) {
    ASSERT_TRUE(ring.try_push(100 + round));
    ASSERT_TRUE(ring.try_pop(value));
    EXPECT_EQ(value, 100 + round);
  }
}

}  // namespace
}  // namespace ocep
