// Fig 10 — Detailed runtime for the four test cases (microseconds):
// Q1 / Median / Q3 / Top-Whisker / Max per terminating event, matching the
// paper's table.  Trace counts use each figure's largest setting
// (deadlock / races / atomicity at 50; ordering at 500) unless overridden.
#include <cinttypes>
#include <cstdio>

#include "apps/patterns.h"
#include "bench_util.h"
#include "common/error.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

void run_case(const char* name, Workload (*make)(std::uint32_t,
                                                 std::uint64_t,
                                                 std::uint64_t),
              const std::string& pattern_text, std::uint32_t traces,
              const BenchParams& params, JsonReport& report) {
  Populations populations;
  MatchTotals totals;
  for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
    Workload w = make(traces, params.events, params.seed + rep);
    time_pattern(w.sim->store(), *w.pool, pattern_text, MatcherConfig{},
                 populations, totals);
  }
  const metrics::Boxplot box = populations.searched.summarize();
  std::printf("%-10s %8" PRIu64 " %10.0f %10.0f %10.0f %14.0f %10.0f\n",
              name, totals.events / params.reps, box.q1, box.median, box.q3,
              box.top_whisker, box.max);
  report.begin_row(name);
  report.add("traces", static_cast<std::uint64_t>(traces));
  report.add_totals(totals);
  report.add_latency("searched", populations.searched);
  report.add_latency("all", populations.all);
}

Workload make_deadlock_50(std::uint32_t traces, std::uint64_t events,
                          std::uint64_t seed) {
  return make_deadlock_workload(traces, 4, events, seed);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto small = static_cast<std::uint32_t>(
        flags.get_int("traces", 50));
    const auto large = static_cast<std::uint32_t>(
        flags.get_int("ordering-traces", 500));
    flags.check_unused();

    std::printf("# Fig 10: detailed runtime for the test cases "
                "(microseconds per terminating event)\n");
    std::printf("# deadlock/races/atomicity at %u traces, ordering at %u; "
                "reps=%u, target events/run=%" PRIu64 "\n",
                small, large, params.reps, params.events);
    std::printf("%-10s %8s %10s %10s %10s %14s %10s\n", "case", "events",
                "Q1", "Med", "Q3", "TopWhisker", "Max");
    JsonReport report("fig10_table", params);
    run_case("Deadlock", make_deadlock_50, apps::deadlock_pattern(4), small,
             params, report);
    run_case("Races", make_race_workload, apps::race_pattern(), small,
             params, report);
    run_case("Atomicity", make_atomicity_workload, apps::atomicity_pattern(),
             small, params, report);
    run_case("Ordering", make_ordering_workload, apps::ordering_pattern(),
             large, params, report);
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "fig10_table: %s\n", error.what());
    return 1;
  }
}
