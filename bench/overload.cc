// Overload governance — pathological-pattern latency with budgets off/on.
//
// The adversarial case for the backtracking matcher is a wide concurrent
// pattern: six '||' pairs over same-type leaves (twelve backtracking
// levels) over a computation with high genuine concurrency.  Every
// terminating event then anchors a search whose candidate cross-product
// grows with the history, so unbudgeted per-observe latency keeps climbing
// while the governed configurations (docs/GOVERNANCE.md) cut each search
// off at the step budget and, once the breaker trips, shed whole observes.
//
// Rows: budgets off, a per-observe step budget, and budget + circuit
// breaker.  Cells report the per-observe boxplot plus p99 and the
// governance counters (aborted searches, shed observes, breaker trips).
//
// --golden flips the bench into the CI smoke: a benign two-leaf pattern
// under a generous budget must finish with zero aborts, sheds, and trips
// (and at least one match), otherwise the process exits non-zero — the
// regression guard that governance stays invisible on healthy workloads.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/error.h"
#include "core/matcher.h"
#include "metrics/stopwatch.h"
#include "random_computation.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

/// Every leaf reference instantiates a fresh leaf, so this compiles to
/// six independent same-type concurrent pairs — twelve backtracking
/// levels whose candidate cross-product no precedence edge prunes.
constexpr const char* kPathological = R"(
    E1 := ['', A, '']; E2 := ['', A, ''];
    E3 := ['', A, '']; E4 := ['', A, ''];
    pattern := (E1 || E2) && (E1 || E3) && (E1 || E4) &&
               (E2 || E3) && (E2 || E4) && (E3 || E4);
)";

/// The golden-smoke pattern: a plain precedence pair, cheap to search.
constexpr const char* kBenign = R"(
    P := ['', A, '']; Q := ['', B, ''];
    pattern := P -> Q;
)";

struct RunResult {
  metrics::LatencyRecorder latency;  ///< per-observe, microseconds
  MatcherStats stats;
};

RunResult run_config(const EventStore& store, StringPool& pool,
                     const char* pattern_text, const MatcherConfig& config,
                     std::uint32_t reps) {
  RunResult result;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    pattern::CompiledPattern compiled = pattern::compile(pattern_text, pool);
    OcepMatcher matcher(store, std::move(compiled), config);
    metrics::Stopwatch watch;
    for (const EventId id : store.arrival_order()) {
      const Event& event = store.event(id);
      watch.restart();
      matcher.observe(event);
      result.latency.add(watch.elapsed_us());
    }
    result.stats = matcher.stats();
  }
  return result;
}

/// p99 over the recorder's samples; summarize() must have sorted them.
double p99(const metrics::LatencyRecorder& recorder) {
  const std::vector<double>& sorted = recorder.samples();
  if (sorted.empty()) {
    return 0;
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size())));
  return sorted[rank > 0 ? rank - 1 : 0];
}

void report_row(JsonReport& report, const std::string& label,
                RunResult& result) {
  const metrics::Boxplot box = result.latency.summarize();
  std::printf("%-10s %10zu %10.2f %10.2f %10.2f %10.2f %8" PRIu64
              " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "\n",
              label.c_str(), box.count, box.median, box.q3,
              p99(result.latency), box.max, result.stats.matches_reported,
              result.stats.searches_aborted, result.stats.observes_shed,
              result.stats.breaker_trips);
  report.begin_row(label);
  report.add("matches", result.stats.matches_reported);
  report.add("searches", result.stats.searches);
  report.add("searches_aborted", result.stats.searches_aborted);
  report.add("observes_shed", result.stats.observes_shed);
  report.add("breaker_trips", result.stats.breaker_trips);
  report.add("history_evicted", result.stats.history_evicted);
  report.add_latency("observe", result.latency);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto traces =
        static_cast<std::uint32_t>(flags.get_int("traces", 12));
    const auto steps =
        static_cast<std::uint64_t>(flags.get_int("steps", 64));
    // CI smoke: benign pattern, generous budget, zero tolerance for any
    // governance intervention.
    const bool golden = flags.get_bool("golden", false);
    flags.check_unused();
    if (traces < 2) {
      std::fprintf(stderr, "overload: --traces must be >= 2\n");
      return 1;
    }
    // The unbudgeted search is polynomial in the history per observe;
    // cap the event count so the "off" row finishes in CI-friendly time.
    const std::uint64_t events =
        golden ? params.events
               : (params.events < 4000 ? params.events : 4000);

    StringPool pool;
    testing::RandomComputationOptions options;
    options.traces = traces;
    options.events = static_cast<std::uint32_t>(events);
    options.seed = params.seed;
    const EventStore store = testing::random_computation(pool, options);

    if (golden) {
      MatcherConfig config;
      config.budget.max_steps = 1U << 20U;
      config.breaker.trip_failures = 3;
      RunResult result = run_config(store, pool, kBenign, config, 1);
      const bool clean = result.stats.searches_aborted == 0 &&
                         result.stats.observes_shed == 0 &&
                         result.stats.breaker_trips == 0 &&
                         result.stats.matches_reported > 0;
      std::printf("overload --golden: %" PRIu64 " events, %" PRIu64
                  " matches, %" PRIu64 " aborted, %" PRIu64 " shed, %" PRIu64
                  " trips -> %s\n",
                  result.stats.events_observed,
                  result.stats.matches_reported,
                  result.stats.searches_aborted, result.stats.observes_shed,
                  result.stats.breaker_trips, clean ? "ok" : "DEGRADED");
      return clean ? 0 : 1;
    }

    std::printf("# Overload governance (concurrent pairs, %u traces, "
                "%" PRIu64 " events, %u reps, budget=%" PRIu64 " steps)\n",
                traces, events, params.reps, steps);
    std::printf("# cells: per-observe latency (us) over every arrival\n");
    std::printf("%-10s %10s %10s %10s %10s %10s %8s %8s %8s %8s\n", "config",
                "samples", "median_us", "Q3_us", "p99_us", "max_us",
                "matches", "aborted", "shed", "trips");

    JsonReport report("overload", params);

    MatcherConfig off;  // governance disabled: the baseline
    RunResult off_result = run_config(store, pool, kPathological, off,
                                      params.reps);
    report_row(report, "off", off_result);

    MatcherConfig budget;
    budget.budget.max_steps = steps;
    RunResult budget_result = run_config(store, pool, kPathological, budget,
                                         params.reps);
    report_row(report, "budget", budget_result);

    MatcherConfig breaker = budget;
    breaker.breaker.trip_failures = 3;
    breaker.breaker.window_observes = 256;
    breaker.breaker.cooldown_observes = 128;
    RunResult breaker_result = run_config(store, pool, kPathological,
                                          breaker, params.reps);
    report_row(report, "breaker", breaker_result);

    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "overload: %s\n", error.what());
    return 1;
  }
}
