#include "bench_util.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "apps/patterns.h"
#include "common/assert.h"
#include "common/error.h"
#include "metrics/stopwatch.h"

namespace ocep::bench {

BenchParams parse_params(Flags& flags) {
  BenchParams params;
  if (flags.get_bool("full", false)) {
    params.events = 1000000;  // the paper's methodology
    params.reps = 5;
  }
  params.events = static_cast<std::uint64_t>(
      flags.get_int("events", static_cast<std::int64_t>(params.events)));
  params.reps = static_cast<std::uint32_t>(
      flags.get_int("reps", params.reps));
  params.seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  params.verbose = flags.get_bool("verbose", false);
  params.json_path = flags.get_string("json", "");
  return params;
}

namespace {

sim::SimConfig sim_config(std::uint64_t seed, std::uint64_t max_events) {
  sim::SimConfig config;
  config.seed = seed;
  config.channel_capacity = 2;
  // Cap well above the target so runs normally end by themselves; the cap
  // only backstops mis-sized workloads.
  config.max_events = max_events * 2;
  return config;
}

}  // namespace

Workload make_deadlock_workload(std::uint32_t traces,
                                std::uint32_t cycle_length,
                                std::uint64_t target_events,
                                std::uint64_t seed) {
  Workload w;
  w.pool = std::make_unique<StringPool>();
  w.sim = std::make_unique<sim::Sim>(*w.pool,
                                     sim_config(seed, target_events));
  apps::RandomWalkParams params;
  params.processes = traces;
  params.cycle_length = cycle_length;
  // ~9 events per process per step; the run quiesces shortly after the
  // cycle group deadlocks at steps / 2.
  params.steps = std::max<std::uint64_t>(
      8, 2 * target_events / (static_cast<std::uint64_t>(traces) * 9));
  w.walk = apps::setup_random_walk(*w.sim, params);
  w.run = w.sim->run();
  return w;
}

Workload make_race_workload(std::uint32_t traces,
                            std::uint64_t target_events, std::uint64_t seed) {
  Workload w;
  w.pool = std::make_unique<StringPool>();
  w.sim = std::make_unique<sim::Sim>(*w.pool,
                                     sim_config(seed, target_events));
  apps::RaceParams params;
  params.traces = traces;
  // ~2.3 events per message (send + receive + occasional token pair).
  params.messages_each = std::max<std::uint64_t>(
      4, (10 * target_events) / (23 * (traces - 1)));
  w.race = apps::setup_race_bench(*w.sim, params);
  w.run = w.sim->run();
  return w;
}

Workload make_atomicity_workload(std::uint32_t traces,
                                 std::uint64_t target_events,
                                 std::uint64_t seed) {
  Workload w;
  w.pool = std::make_unique<StringPool>();
  w.sim = std::make_unique<sim::Sim>(*w.pool,
                                     sim_config(seed, target_events));
  apps::AtomicityParams params;
  params.workers = traces - 1;  // the semaphore is its own trace
  // ~8.3 events per iteration: enter/exit + 6 semaphore events + pings.
  params.iterations = std::max<std::uint64_t>(
      4, (10 * target_events) / (83 * params.workers));
  w.atomicity = apps::setup_atomicity(*w.sim, params);
  w.run = w.sim->run();
  return w;
}

Workload make_ordering_workload(std::uint32_t traces,
                                std::uint64_t target_events,
                                std::uint64_t seed) {
  Workload w;
  w.pool = std::make_unique<StringPool>();
  w.sim = std::make_unique<sim::Sim>(*w.pool,
                                     sim_config(seed, target_events));
  apps::OrderingParams params;
  params.followers = traces - 1;  // plus the leader
  // ~6.3 events per request (synch send/recv, snapshot, occasional
  // updates, forward send/recv).
  params.requests_each = std::max<std::uint64_t>(
      2, (10 * target_events) / (63 * params.followers));
  w.ordering = apps::setup_leader_follower(*w.sim, params);
  w.run = w.sim->run();
  return w;
}

void time_pattern(const EventStore& store, StringPool& pool,
                  const std::string& pattern_text, MatcherConfig config,
                  Populations& populations, MatchTotals& totals) {
  pattern::CompiledPattern compiled = pattern::compile(pattern_text, pool);
  OcepMatcher matcher(store, std::move(compiled), config);

  std::uint64_t last_hits = 0;
  std::uint64_t last_searches = 0;
  metrics::Stopwatch watch;
  for (const EventId id : store.arrival_order()) {
    const Event& event = store.event(id);
    watch.restart();
    matcher.observe(event);
    const double us = watch.elapsed_us();
    populations.all.add(us);
    const MatcherStats& stats = matcher.stats();
    if (stats.leaf_hits != last_hits) {
      last_hits = stats.leaf_hits;
      populations.hits.add(us);
    }
    if (stats.searches != last_searches) {
      last_searches = stats.searches;
      populations.searched.add(us);
    }
  }
  const MatcherStats& stats = matcher.stats();
  totals.events += stats.events_observed;
  totals.matches_reported += stats.matches_reported;
  totals.subset_size += matcher.subset().matches().size();
  totals.searches += stats.searches;
  totals.nodes_explored += stats.nodes_explored;
  totals.backjumps += stats.backjumps;
  totals.history_entries += stats.history_entries;
  totals.history_merged += stats.history_merged;
  totals.history_pruned += stats.history_pruned;
}

void print_header(const std::string& title, const std::string& label_name,
                  const BenchParams& params) {
  std::printf("# %s\n", title.c_str());
  std::printf("# population: terminating (pattern-relevant) events; "
              "reps=%u, target events/run=%" PRIu64 "\n",
              params.reps, params.events);
  std::printf("%-10s %12s %10s %10s %10s %10s %12s %10s %10s\n",
              label_name.c_str(), "events", "samples", "Q1_us", "median_us",
              "Q3_us", "topwhisk_us", "max_us", "matches");
}

void print_row(const std::string& label, std::uint64_t events,
               metrics::LatencyRecorder& recorder, std::uint64_t matches) {
  const metrics::Boxplot box = recorder.summarize();
  std::printf("%-10s %12" PRIu64 " %10zu %10.2f %10.2f %10.2f %12.2f "
              "%10.2f %10" PRIu64 "\n",
              label.c_str(), events, box.count, box.q1, box.median, box.q3,
              box.top_whisker, box.max, matches);
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string json_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

/// Nearest-rank quantile over an ascending-sorted sample vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[rank < sorted.size() ? rank : sorted.size() - 1];
}

}  // namespace

JsonReport::JsonReport(std::string bench, const BenchParams& params)
    : bench_(std::move(bench)), path_(params.json_path) {
  params_json_ = "{\"events\": " + std::to_string(params.events) +
                 ", \"reps\": " + std::to_string(params.reps) +
                 ", \"seed\": " + std::to_string(params.seed) + "}";
}

void JsonReport::begin_row(const std::string& label) {
  if (path_.empty()) {
    return;
  }
  if (row_open_) {
    rows_.push_back(current_ + "}");
  }
  current_ = "{\"label\": \"" + json_escape(label) + "\"";
  row_open_ = true;
}

void JsonReport::field_sep() { current_ += ", "; }

void JsonReport::add(const std::string& key, std::uint64_t value) {
  if (!row_open_) {
    return;
  }
  field_sep();
  current_ += "\"" + json_escape(key) + "\": " + std::to_string(value);
}

void JsonReport::add(const std::string& key, std::int64_t value) {
  if (!row_open_) {
    return;
  }
  field_sep();
  current_ += "\"" + json_escape(key) + "\": " + std::to_string(value);
}

void JsonReport::add(const std::string& key, double value) {
  if (!row_open_) {
    return;
  }
  field_sep();
  current_ += "\"" + json_escape(key) + "\": " + json_double(value);
}

void JsonReport::add(const std::string& key, const std::string& value) {
  if (!row_open_) {
    return;
  }
  field_sep();
  current_ +=
      "\"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
}

void JsonReport::add_latency(const std::string& prefix,
                             metrics::LatencyRecorder& recorder) {
  if (!row_open_) {
    return;
  }
  const metrics::Boxplot box = recorder.summarize();  // sorts in place
  const std::vector<double>& sorted = recorder.samples();
  add(prefix + "_samples", static_cast<std::uint64_t>(box.count));
  add(prefix + "_p50_us", box.median);
  add(prefix + "_p95_us", sorted_quantile(sorted, 0.95));
  add(prefix + "_p99_us", sorted_quantile(sorted, 0.99));
  add(prefix + "_q1_us", box.q1);
  add(prefix + "_q3_us", box.q3);
  add(prefix + "_top_whisker_us", box.top_whisker);
  add(prefix + "_mean_us", box.mean);
  add(prefix + "_max_us", box.max);
}

void JsonReport::add_totals(const MatchTotals& totals) {
  if (!row_open_) {
    return;
  }
  add("events", totals.events);
  add("matches", totals.matches_reported);
  add("subset_size", totals.subset_size);
  add("searches", totals.searches);
  add("nodes_explored", totals.nodes_explored);
  add("backjumps", totals.backjumps);
  add("history_entries", totals.history_entries);
  add("history_merged", totals.history_merged);
  add("history_pruned", totals.history_pruned);
}

bool JsonReport::write() {
  if (path_.empty()) {
    return false;
  }
  if (row_open_) {
    rows_.push_back(current_ + "}");
    row_open_ = false;
    current_.clear();
  }
  // Schema header first, so trajectory tooling can detect format drift
  // before interpreting any row.  The git revision comes from the
  // environment (CI exports OCEP_GIT_SHA); local runs record "unknown".
  const char* sha = std::getenv("OCEP_GIT_SHA");
  std::string doc = "{\n  \"schema\": \"ocep-bench-v1\",\n  \"bench\": \"" +
                    json_escape(bench_) + "\",\n  \"git\": \"" +
                    json_escape(sha != nullptr ? sha : "unknown") + "\",\n" +
                    "  \"params\": " + params_json_ + ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    doc += i == 0 ? "\n    " : ",\n    ";
    doc += rows_[i];
  }
  doc += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) {
    throw Error("cannot write '" + path_ + "'");
  }
  std::fwrite(doc.data(), 1, doc.size(), out);
  std::fclose(out);
  return true;
}

}  // namespace ocep::bench
