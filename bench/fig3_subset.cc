// Fig 3 — Choosing a representative subset: the sliding-window omission
// problem vs OCEP's representative subset, for the pattern A -> B.
//
// Part 1 reproduces the paper's literal process-time diagram: on arrival of
// b25 there are four matches; the n^2-event window reports a13/a14/a15 x
// b25 and misses a21 b25, so the window's answer is not representative.
// Part 2 scales the effect: matches that span more than one window are
// lost entirely by the window matcher while OCEP still covers every
// (event-class, trace) pair.
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/naive_matcher.h"
#include "baseline/window_matcher.h"
#include "bench_util.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/string_pool.h"
#include "core/matcher.h"
#include "poet/event_store.h"

using namespace ocep;

namespace {

const char* kPattern = R"(
    A := ['', a, ''];
    B := ['', b, ''];
    pattern := A -> B;
)";

struct Clocked {
  EventStore store;
  std::vector<VectorClock> clocks;
  std::vector<VectorClock> send_clocks;
  std::uint64_t next_message = 1;

  explicit Clocked(StringPool& pool, std::uint32_t traces) {
    for (std::uint32_t t = 0; t < traces; ++t) {
      store.add_trace(pool.intern("P" + std::to_string(t + 1)));
    }
    clocks.assign(traces, VectorClock(traces));
  }

  EventId emit(StringPool& pool, TraceId t, EventKind kind,
               std::string_view type, std::uint64_t message,
               const VectorClock* merge) {
    VectorClock& clock = clocks[t];
    if (merge != nullptr) {
      clock.merge(*merge);
    }
    clock.tick(t);
    Event event;
    event.id = EventId{t, clock[t]};
    event.kind = kind;
    event.type = pool.intern(type);
    event.message = message;
    store.append(event, clock);
    return event.id;
  }

  void local(StringPool& pool, TraceId t, std::string_view type) {
    emit(pool, t, EventKind::kLocal, type, kNoMessage, nullptr);
  }
  std::uint64_t send(StringPool& pool, TraceId t, std::string_view type) {
    const std::uint64_t m = next_message++;
    emit(pool, t, EventKind::kSend, type, m, nullptr);
    send_clocks.push_back(clocks[t]);
    return m;
  }
  void recv(StringPool& pool, TraceId t, std::uint64_t m,
            std::string_view type) {
    emit(pool, t, EventKind::kReceive, type, m, &send_clocks[m - 1]);
  }
};

struct Report {
  std::size_t all_matches = 0;
  std::size_t window_matches = 0;
  std::size_t ocep_subset = 0;
  std::size_t all_pairs = 0;
  std::size_t window_pairs = 0;
  std::size_t ocep_pairs = 0;
};

Report compare(const EventStore& store, StringPool& pool,
               std::size_t window_size) {
  Report out;
  const std::size_t traces = store.trace_count();

  // Ground truth: every match, and its (leaf, trace) coverage.
  const pattern::CompiledPattern reference = pattern::compile(kPattern, pool);
  const std::vector<Match> all = baseline::enumerate_matches(store, reference);
  out.all_matches = all.size();
  std::vector<bool> all_cov(reference.size() * traces, false);
  for (const Match& match : all) {
    for (std::size_t leaf = 0; leaf < reference.size(); ++leaf) {
      all_cov[leaf * traces + match.bindings[leaf].trace] = true;
    }
  }
  for (const bool c : all_cov) {
    out.all_pairs += c ? 1 : 0;
  }

  // Sliding window (n^2 events by default).
  baseline::WindowMatcher window(store, pattern::compile(kPattern, pool),
                                 window_size);
  for (const EventId id : store.arrival_order()) {
    window.observe(store.event(id));
  }
  out.window_matches = window.matches().size();
  std::vector<bool> win_cov(reference.size() * traces, false);
  for (const Match& match : window.matches()) {
    for (std::size_t leaf = 0; leaf < reference.size(); ++leaf) {
      win_cov[leaf * traces + match.bindings[leaf].trace] = true;
    }
  }
  for (const bool c : win_cov) {
    out.window_pairs += c ? 1 : 0;
  }

  // OCEP.
  OcepMatcher ocep(store, pattern::compile(kPattern, pool));
  for (const EventId id : store.arrival_order()) {
    ocep.observe(store.event(id));
  }
  out.ocep_subset = ocep.subset().matches().size();
  out.ocep_pairs = ocep.subset().coverage();
  return out;
}

void print_report(const char* name, const Report& r,
                  bench::JsonReport& report) {
  std::printf("%-22s %10zu %10zu %10zu %10zu %10zu %10zu\n", name,
              r.all_matches, r.all_pairs, r.window_matches, r.window_pairs,
              r.ocep_subset, r.ocep_pairs);
  report.begin_row(name);
  report.add("all_matches", static_cast<std::uint64_t>(r.all_matches));
  report.add("all_pairs", static_cast<std::uint64_t>(r.all_pairs));
  report.add("window_matches", static_cast<std::uint64_t>(r.window_matches));
  report.add("window_pairs", static_cast<std::uint64_t>(r.window_pairs));
  report.add("ocep_subset", static_cast<std::uint64_t>(r.ocep_subset));
  report.add("ocep_pairs", static_cast<std::uint64_t>(r.ocep_pairs));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const auto traces = static_cast<std::uint32_t>(
        flags.get_int("traces", 6));
    const auto groups = static_cast<std::uint32_t>(
        flags.get_int("groups", 4));
    bench::BenchParams params;
    params.json_path = flags.get_string("json", "");
    flags.check_unused();
    bench::JsonReport json_report("fig3_subset", params);

    std::printf("# Fig 3: representative subset vs sliding window "
                "(pattern A -> B; window = n^2 events)\n");
    std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "scenario",
                "all_match", "all_pairs", "win_match", "win_pairs",
                "ocep_sub", "ocep_pairs");

    StringPool pool;
    {
      // Part 1: the paper's literal diagram (3 traces, window 9).
      Clocked c(pool, 3);
      c.local(pool, 0, "c");
      c.local(pool, 0, "d");
      c.local(pool, 0, "a");  // a13
      c.local(pool, 0, "a");  // a14
      c.local(pool, 0, "a");  // a15
      const std::uint64_t m = c.send(pool, 0, "c");  // c17
      c.local(pool, 2, "d");
      c.local(pool, 2, "e");
      c.local(pool, 2, "a");
      c.local(pool, 2, "a");
      c.local(pool, 1, "a");  // a21
      c.local(pool, 1, "d");
      c.local(pool, 1, "e");
      c.recv(pool, 1, m, "recv");
      c.local(pool, 1, "b");  // b25
      print_report("paper-diagram", compare(c.store, pool, 9), json_report);
    }
    {
      // Part 2: matches span far beyond any window.  Each trace t >= 1
      // emits an 'a' and messages trace 0; a long run of filler events
      // pushes them all out of the window before the 'b' arrives.
      Clocked c(pool, traces);
      const std::size_t window = static_cast<std::size_t>(traces) * traces;
      for (std::uint32_t g = 0; g < groups; ++g) {
        std::vector<std::uint64_t> messages;
        for (TraceId t = 1; t < traces; ++t) {
          c.local(pool, t, "a");
          messages.push_back(c.send(pool, t, "m"));
        }
        for (const std::uint64_t m : messages) {
          c.recv(pool, 0, m, "recv");
        }
        for (std::size_t filler = 0; filler < 2 * window; ++filler) {
          c.local(pool, 0, "z");
        }
        c.local(pool, 0, "b");
      }
      print_report("window-spanning", compare(c.store, pool, window),
                   json_report);
    }
    std::printf("# win_pairs < all_pairs shows the omission problem; "
                "ocep_pairs == all_pairs shows representativeness.\n");
    json_report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "fig3_subset: %s\n", error.what());
    return 1;
  }
}
