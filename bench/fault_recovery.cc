// Fault recovery — cost and fidelity of the lossy-session stack under
// each fault family.
//
// Each row replays the same random computation through SessionServer ->
// FaultyChannel -> SessionClient -> Monitor with one fault family enabled
// (plus a clean baseline and an "everything" soup), and reports wall
// clock, throughput, the resync/recovery counters, and whether the run
// ended identical to the clean-channel match set or degraded to a subset.
// The clean row doubles as the sequencing+CRC overhead measurement: its
// events/sec against the dump-replay path is the price of the envelope.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "core/monitor.h"
#include "metrics/stopwatch.h"
#include "random_computation.h"
#include "testing/chaos_harness.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

constexpr const char* kPattern =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

struct FaultCase {
  const char* label;
  testing::FaultSpec spec;
};

std::vector<FaultCase> make_cases(std::uint64_t seed) {
  std::vector<FaultCase> cases;
  const auto with = [&](const char* label, auto&& tweak) {
    testing::FaultSpec spec;
    spec.seed = seed;
    tweak(spec);
    cases.push_back(FaultCase{label, spec});
  };
  with("clean", [](testing::FaultSpec&) {});
  with("drop", [](testing::FaultSpec& s) { s.drop_per_1000 = 20; });
  with("duplicate",
       [](testing::FaultSpec& s) { s.duplicate_per_1000 = 20; });
  with("reorder", [](testing::FaultSpec& s) { s.reorder_per_1000 = 20; });
  with("bitflip", [](testing::FaultSpec& s) { s.bitflip_per_1000 = 20; });
  with("truncate", [](testing::FaultSpec& s) { s.truncate_per_1000 = 20; });
  with("disconnect", [](testing::FaultSpec& s) {
    s.disconnect_every = 500;
    s.disconnect_burst = 16;
  });
  with("soup", [](testing::FaultSpec& s) {
    s.drop_per_1000 = 10;
    s.duplicate_per_1000 = 10;
    s.reorder_per_1000 = 10;
    s.bitflip_per_1000 = 10;
    s.truncate_per_1000 = 5;
  });
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto traces =
        static_cast<std::uint32_t>(flags.get_int("traces", 4));
    flags.check_unused();
    if (traces < 2) {
      std::fprintf(stderr, "fault_recovery: --traces must be >= 2\n");
      return 1;
    }

    StringPool pool;
    ocep::testing::RandomComputationOptions options;
    options.traces = traces;
    options.events = static_cast<std::uint32_t>(params.events);
    options.seed = params.seed;
    const EventStore source = ocep::testing::random_computation(pool, options);
    const std::vector<std::string> clean =
        ocep::testing::clean_matches(source, pool, kPattern);

    std::printf("# Fault recovery (random computation, %u traces, %" PRIu64
                " events, %u reps)\n",
                traces, static_cast<std::uint64_t>(options.events),
                params.reps);
    std::printf("%-11s %10s %9s %8s %8s %7s %6s %9s\n", "fault", "events/s",
                "resyncs", "recov", "sheds", "corrupt", "degr", "fidelity");

    JsonReport report("fault_recovery", params);
    bool consistent = true;
    for (const FaultCase& fault_case : make_cases(params.seed)) {
      ocep::testing::ChaosOptions chaos;
      chaos.faults = fault_case.spec;
      double seconds = 0;
      ocep::testing::ChaosResult result;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        // A fresh pool per rep: run_chaos interns into it and the chaos
        // client re-interns the session's inline strings.
        StringPool rep_pool;
        ocep::testing::RandomComputationOptions rep_options = options;
        const EventStore rep_source =
            ocep::testing::random_computation(rep_pool, rep_options);
        metrics::Stopwatch watch;
        result = ocep::testing::run_chaos(rep_source, rep_pool, kPattern,
                                          chaos);
        seconds += watch.elapsed_us() / 1e6;
      }
      const double events_per_sec =
          seconds > 0 ? static_cast<double>(options.events) * params.reps /
                            seconds
                      : 0;
      const bool identical = result.matches == clean;
      const bool subset =
          ocep::testing::is_subset_of(result.matches, clean);
      const char* fidelity = identical ? "identical"
                             : (result.degraded && subset) ? "subset"
                                                           : "DIVERGED";
      if (!result.done || (!identical && !(result.degraded && subset))) {
        consistent = false;
      }
      std::printf("%-11s %10.0f %9" PRIu64 " %8" PRIu64 " %8" PRIu64
                  " %7" PRIu64 " %6s %9s\n",
                  fault_case.label, events_per_sec, result.ingest.resyncs,
                  result.ingest.recoveries, result.ingest.sheds,
                  result.ingest.frames_corrupt,
                  result.degraded ? "yes" : "no", fidelity);

      report.begin_row(fault_case.label);
      report.add("events_per_sec", events_per_sec);
      report.add("seconds", seconds);
      report.add("resyncs", result.ingest.resyncs);
      report.add("resync_failures", result.ingest.resync_failures);
      report.add("recoveries", result.ingest.recoveries);
      report.add("recovery_ticks", result.ingest.recovery_ticks);
      report.add("sheds", result.ingest.sheds);
      report.add("duplicates", result.ingest.duplicates);
      report.add("frames_corrupt", result.ingest.frames_corrupt);
      report.add("frames_gap", result.ingest.frames_gap);
      report.add("bytes_skipped", result.ingest.bytes_skipped);
      report.add("faults_injected", result.faults.faults());
      report.add("degraded", std::string(result.degraded ? "yes" : "no"));
      report.add("fidelity", std::string(fidelity));
      report.add("matches", static_cast<std::uint64_t>(
                                result.matches.size()));
      report.add("matches_clean",
                 static_cast<std::uint64_t>(clean.size()));
    }
    report.write();
    if (!consistent) {
      std::printf("FAIL: at least one fault family diverged\n");
      return 2;
    }
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "fault_recovery: %s\n", error.what());
    return 1;
  }
}
