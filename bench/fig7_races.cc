// Fig 7 — Execution time for message-race detection vs number of traces.
//
// All processes but one send to the remaining process, which accepts them
// with a blocking MPI_ANY_SOURCE receive (§V-C.2).  The pattern matches two
// concurrent sends whose partner receives land on the receiver.
#include <cstdio>
#include <vector>

#include "apps/patterns.h"
#include "bench_util.h"
#include "common/error.h"

using namespace ocep;
using namespace ocep::bench;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    std::vector<std::uint32_t> trace_counts;
    for (const std::int64_t t : {flags.get_int("traces1", 10),
                                 flags.get_int("traces2", 20),
                                 flags.get_int("traces3", 50)}) {
      trace_counts.push_back(static_cast<std::uint32_t>(t));
    }
    flags.check_unused();

    print_header("Fig 7: message-race detection time (many-to-one with "
                 "ANY_SOURCE)", "traces", params);
    JsonReport report("fig7_races", params);
    for (const std::uint32_t traces : trace_counts) {
      Populations populations;
      MatchTotals totals;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w =
            make_race_workload(traces, params.events, params.seed + rep);
        time_pattern(w.sim->store(), *w.pool, apps::race_pattern(),
                     MatcherConfig{}, populations, totals);
      }
      print_row(std::to_string(traces), totals.events, populations.searched,
                totals.matches_reported);
      report.begin_row(std::to_string(traces));
      report.add("traces", static_cast<std::uint64_t>(traces));
      report.add_totals(totals);
      report.add_latency("searched", populations.searched);
      report.add_latency("all", populations.all);
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "fig7_races: %s\n", error.what());
    return 1;
  }
}
