// Durability-store bench — append/group-commit throughput and recovery
// scan rate of the segment log (src/store, docs/ROBUSTNESS.md).
//
// The store's cost model has two knobs: payload size (wire-delta bytes
// per record) and group size (records per fsync — the daemon's
// --flush-interval-ms translates to exactly this).  For each pair the
// bench appends a fixed record count into a fresh log, fsyncing every
// `group` records, then reopens the directory and times the full
// recovery scan.  Reported: append throughput (records/s and MiB/s),
// per-sync latency quantiles, rotation count, and recovery MiB/s —
// the numbers behind the "loss is bounded by the group-commit
// interval" trade-off.
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "store/segment_log.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

namespace fs = std::filesystem;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double append_seconds = 0;
  double sync_seconds = 0;  ///< inside append_seconds; the fsync share
  double scan_seconds = 0;
  std::uint64_t rotations = 0;
  std::uint64_t segments = 0;
  std::uint64_t scanned = 0;
};

RunResult run_once(const std::string& dir, std::uint64_t records,
                   std::size_t payload_bytes, std::uint64_t group,
                   std::uint64_t segment_bytes,
                   metrics::LatencyRecorder& sync_latency) {
  fs::remove_all(dir);
  RunResult result;
  {
    store::LogConfig config;
    config.dir = dir;
    config.segment_bytes = segment_bytes;
    store::SegmentLog log(std::move(config), nullptr);
    store::Record record;
    record.type = store::RecordType::kDelta;
    record.epoch = 1;
    record.name = "bench";
    record.payload.assign(payload_bytes, 'x');
    const double start = now_seconds();
    for (std::uint64_t i = 0; i < records; ++i) {
      log.append(record);
      if ((i + 1) % group == 0) {
        const double sync_start = now_seconds();
        log.sync();
        const double sync_end = now_seconds();
        result.sync_seconds += sync_end - sync_start;
        sync_latency.add((sync_end - sync_start) * 1e6);
      }
    }
    log.sync();
    result.append_seconds = now_seconds() - start;
    result.rotations = log.stats().rotations;
    result.segments = log.stats().segments;
  }
  {
    const double start = now_seconds();
    store::LogConfig config;
    config.dir = dir;
    config.segment_bytes = segment_bytes;
    std::uint64_t scanned = 0;
    store::SegmentLog log(
        std::move(config),
        [&scanned](const store::Record&, const store::RecordRef&) {
          ++scanned;
        });
    result.scan_seconds = now_seconds() - start;
    result.scanned = scanned;
  }
  fs::remove_all(dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const std::uint64_t records =
        static_cast<std::uint64_t>(flags.get_int("records", 20000));
    const std::uint64_t segment_bytes = static_cast<std::uint64_t>(
        flags.get_int("segment-bytes", 4 << 20));
    std::vector<std::size_t> payloads;
    for (const std::int64_t p : {flags.get_int("payload1", 64),
                                 flags.get_int("payload2", 1024),
                                 flags.get_int("payload3", 16384)}) {
      payloads.push_back(static_cast<std::size_t>(p));
    }
    std::vector<std::uint64_t> groups;
    for (const std::int64_t g : {flags.get_int("group1", 1),
                                 flags.get_int("group2", 64),
                                 flags.get_int("group3", 1024)}) {
      groups.push_back(static_cast<std::uint64_t>(g));
    }
    flags.check_unused();

    const std::string dir =
        (fs::temp_directory_path() /
         ("ocep_store_bench_" + std::to_string(::getpid())))
            .string();

    std::printf("# Segment-log durability: append/group-commit/recovery "
                "(%" PRIu64 " records per cell)\n",
                records);
    std::printf("%-8s %-6s | %12s %10s %9s | %10s %8s | %10s\n", "payload",
                "group", "records/s", "MiB/s", "sync_ms", "recover/s",
                "segs", "rec_MiB/s");
    JsonReport report("store_log", params);
    for (const std::size_t payload : payloads) {
      for (const std::uint64_t group : groups) {
        double append_s = 0, sync_s = 0, scan_s = 0;
        std::uint64_t segments = 0, scanned = 0;
        metrics::LatencyRecorder sync_latency;
        for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
          const RunResult r = run_once(dir, records, payload, group,
                                       segment_bytes, sync_latency);
          if (r.scanned != records) {
            throw Error("recovery scan lost records: " +
                        std::to_string(r.scanned));
          }
          append_s += r.append_seconds;
          sync_s += r.sync_seconds;
          scan_s += r.scan_seconds;
          segments = r.segments;
          scanned += r.scanned;
        }
        const double total_records =
            static_cast<double>(records) * params.reps;
        const double total_mib = total_records *
                                 static_cast<double>(payload) /
                                 (1024.0 * 1024.0);
        const metrics::Boxplot sync_box = sync_latency.summarize();
        std::printf("%-8zu %-6" PRIu64 " | %12.0f %10.1f %9.3f | %10.0f "
                    "%8" PRIu64 " | %10.1f\n",
                    payload, group, total_records / append_s,
                    total_mib / append_s, sync_box.median / 1000.0,
                    static_cast<double>(scanned) / scan_s, segments,
                    total_mib / scan_s);
        report.begin_row(std::to_string(payload) + "/" +
                         std::to_string(group));
        report.add("payload_bytes", static_cast<std::uint64_t>(payload));
        report.add("group", group);
        report.add("records", records);
        report.add("append_records_per_s", total_records / append_s);
        report.add("append_mib_per_s", total_mib / append_s);
        report.add("sync_share", sync_s / append_s);
        report.add("segments", segments);
        report.add_latency("sync", sync_latency);
        report.add("recover_records_per_s",
                   static_cast<double>(scanned) / scan_s);
        report.add("recover_mib_per_s", total_mib / scan_s);
      }
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "store_log: %s\n", error.what());
    return 1;
  }
}
