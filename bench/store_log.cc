// Durability-store bench — append/group-commit throughput and recovery
// scan rate of the segment log (src/store, docs/ROBUSTNESS.md).
//
// The store's cost model has two knobs: payload size (wire-delta bytes
// per record) and group size (records per fsync — the daemon's
// --flush-interval-ms translates to exactly this).  For each pair the
// bench appends a fixed record count into a fresh log, fsyncing every
// `group` records, then reopens the directory and times the full
// recovery scan.  Reported: append throughput (records/s and MiB/s),
// per-sync latency quantiles, rotation count, and recovery MiB/s —
// the numbers behind the "loss is bounded by the group-commit
// interval" trade-off.
// The span-tier rows (docs/ROBUSTNESS.md "Durability") extend the same
// cost model to the storage tier added for spilled leaf-history spans:
// buffer-pool hit rate under a skewed fault workload, and group-commit
// latency while the background compactor relocates live spans out of
// dead segments between appends.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "store/buffer_pool.h"
#include "store/compactor.h"
#include "store/segment_log.h"
#include "store/tenant_store.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

namespace fs = std::filesystem;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double append_seconds = 0;
  double sync_seconds = 0;  ///< inside append_seconds; the fsync share
  double scan_seconds = 0;
  std::uint64_t rotations = 0;
  std::uint64_t segments = 0;
  std::uint64_t scanned = 0;
};

RunResult run_once(const std::string& dir, std::uint64_t records,
                   std::size_t payload_bytes, std::uint64_t group,
                   std::uint64_t segment_bytes,
                   metrics::LatencyRecorder& sync_latency) {
  fs::remove_all(dir);
  RunResult result;
  {
    store::LogConfig config;
    config.dir = dir;
    config.segment_bytes = segment_bytes;
    store::SegmentLog log(std::move(config), nullptr);
    store::Record record;
    record.type = store::RecordType::kDelta;
    record.epoch = 1;
    record.name = "bench";
    record.payload.assign(payload_bytes, 'x');
    const double start = now_seconds();
    for (std::uint64_t i = 0; i < records; ++i) {
      log.append(record);
      if ((i + 1) % group == 0) {
        const double sync_start = now_seconds();
        log.sync();
        const double sync_end = now_seconds();
        result.sync_seconds += sync_end - sync_start;
        sync_latency.add((sync_end - sync_start) * 1e6);
      }
    }
    log.sync();
    result.append_seconds = now_seconds() - start;
    result.rotations = log.stats().rotations;
    result.segments = log.stats().segments;
  }
  {
    const double start = now_seconds();
    store::LogConfig config;
    config.dir = dir;
    config.segment_bytes = segment_bytes;
    std::uint64_t scanned = 0;
    store::SegmentLog log(
        std::move(config),
        [&scanned](const store::Record&, const store::RecordRef&) {
          ++scanned;
        });
    result.scan_seconds = now_seconds() - start;
    result.scanned = scanned;
  }
  fs::remove_all(dir);
  return result;
}

/// Deterministic span fixture: the seq spreads keys across four leaves
/// and seven traces, entries are strictly-ascending (index, comm) pairs.
store::SpanPayload make_span(std::uint64_t seq, std::size_t entries) {
  store::SpanPayload span;
  span.key.pattern = 0;
  span.key.leaf = static_cast<std::uint32_t>(seq % 4);
  span.key.trace = 1 + seq % 7;
  span.key.seq = seq;
  std::uint64_t index = 1 + seq * 1000;
  for (std::size_t i = 0; i < entries; ++i) {
    span.entries.emplace_back(index, index % 13);
    index += 1 + i % 3;
  }
  return span;
}

struct PoolRun {
  double fault_seconds = 0;
  std::uint64_t accesses = 0;
  store::BufferPoolStats pool;
};

/// Appends `spans` span records, then drives `accesses` faults through a
/// budgeted BufferPool with a skewed pattern: three of four touches hit
/// the hot eighth of the span set (which the pool should keep resident);
/// the fourth walks the cold tail and forces CLOCK evictions.
PoolRun run_pool(const std::string& dir, std::uint64_t spans,
                 std::size_t entries, std::uint64_t pool_bytes,
                 std::uint64_t accesses,
                 metrics::LatencyRecorder& fault_latency) {
  fs::remove_all(dir);
  PoolRun result;
  {
    store::LogConfig config;
    config.dir = dir;
    config.segment_bytes = 256 << 10;
    store::TenantStore store(std::move(config));
    store.append_genesis("bench", {"pattern"});
    std::vector<store::SpanKey> keys;
    keys.reserve(spans);
    for (std::uint64_t s = 0; s < spans; ++s) {
      const store::SpanPayload span = make_span(s, entries);
      keys.push_back(span.key);
      store.append_span("bench", span);
    }
    store.sync();
    store::BufferPool pool(pool_bytes);
    const std::uint64_t hot = std::max<std::uint64_t>(1, spans / 8);
    const std::uint64_t cold = std::max<std::uint64_t>(1, spans - hot);
    const double start = now_seconds();
    for (std::uint64_t i = 0; i < accesses; ++i) {
      const store::SpanKey& key =
          (i % 4 != 3) ? keys[i % hot] : keys[hot + (i / 4) % cold];
      const double fault_start = now_seconds();
      const store::SpanPayload* payload = pool.acquire("bench", key, store);
      const double fault_end = now_seconds();
      if (payload == nullptr || payload->entries.size() != entries) {
        throw Error("span fault failed at access " + std::to_string(i));
      }
      pool.unpin("bench", key);
      fault_latency.add((fault_end - fault_start) * 1e6);
    }
    result.fault_seconds = now_seconds() - start;
    result.accesses = accesses;
    result.pool = pool.stats();
  }
  fs::remove_all(dir);
  return result;
}

/// Dead bytes on the sealed segments (the compactor's trigger metric —
/// absolute, because sealed all-live delta segments dilute the ratio).
std::uint64_t sealed_dead_bytes(const store::SegmentLog& log) {
  std::uint64_t dead = 0;
  for (const store::SegmentUsage& segment : log.segment_usage()) {
    if (!segment.sealed) {
      continue;
    }
    dead += segment.bytes - std::min(segment.live_bytes, segment.bytes);
  }
  return dead;
}

struct CommitRun {
  double append_seconds = 0;
  std::uint64_t dead_bytes_before = 0;
  std::uint64_t dead_bytes_after = 0;
  std::uint64_t spans_moved = 0;
  std::uint64_t segments_deleted = 0;
};

/// Group-commit latency with the store tier active: seed span records,
/// release three quarters (sealed segments cross the dead-byte trigger),
/// then append `records` deltas fsyncing every `group` — with the
/// compactor ticking between appends when `compact` is set, exactly as
/// the reactor interleaves it between poll waits.
CommitRun run_commit(const std::string& dir, std::uint64_t records,
                     std::size_t payload_bytes, std::uint64_t group,
                     std::uint64_t spans, std::size_t entries, bool compact,
                     metrics::LatencyRecorder& sync_latency) {
  fs::remove_all(dir);
  CommitRun result;
  {
    store::LogConfig config;
    config.dir = dir;
    // Small segments so the span seed seals several of them — releasing
    // spans must push sealed segments over the dead-byte trigger.
    config.segment_bytes = 32 << 10;
    store::TenantStore store(std::move(config));
    store.append_genesis("bench", {"pattern"});
    std::vector<store::SpanKey> keys;
    keys.reserve(spans);
    for (std::uint64_t s = 0; s < spans; ++s) {
      const store::SpanPayload span = make_span(s, entries);
      keys.push_back(span.key);
      store.append_span("bench", span);
    }
    store.sync();
    for (std::uint64_t s = 0; s < spans; ++s) {
      if (s % 4 != 0) {
        store.release_span("bench", keys[s]);
      }
    }
    result.dead_bytes_before = sealed_dead_bytes(store.log());
    store::CompactorConfig compactor_config;
    compactor_config.dead_ratio = 0.3;
    store::Compactor compactor(store, compactor_config);
    const std::string delta(payload_bytes, 'x');
    const double start = now_seconds();
    for (std::uint64_t i = 0; i < records; ++i) {
      store.append_delta("bench", delta);
      if (compact) {
        compactor.tick();
      }
      if ((i + 1) % group == 0) {
        const double sync_start = now_seconds();
        store.sync();
        sync_latency.add((now_seconds() - sync_start) * 1e6);
      }
    }
    store.sync();
    result.append_seconds = now_seconds() - start;
    result.dead_bytes_after = sealed_dead_bytes(store.log());
    result.spans_moved = compactor.stats().spans_moved;
    result.segments_deleted = store.log_stats().segments_deleted;
  }
  fs::remove_all(dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const std::uint64_t records =
        static_cast<std::uint64_t>(flags.get_int("records", 20000));
    const std::uint64_t segment_bytes = static_cast<std::uint64_t>(
        flags.get_int("segment-bytes", 4 << 20));
    std::vector<std::size_t> payloads;
    for (const std::int64_t p : {flags.get_int("payload1", 64),
                                 flags.get_int("payload2", 1024),
                                 flags.get_int("payload3", 16384)}) {
      payloads.push_back(static_cast<std::size_t>(p));
    }
    std::vector<std::uint64_t> groups;
    for (const std::int64_t g : {flags.get_int("group1", 1),
                                 flags.get_int("group2", 64),
                                 flags.get_int("group3", 1024)}) {
      groups.push_back(static_cast<std::uint64_t>(g));
    }
    const std::uint64_t spans =
        static_cast<std::uint64_t>(flags.get_int("spans", 1024));
    const std::size_t span_entries =
        static_cast<std::size_t>(flags.get_int("span-entries", 48));
    const std::uint64_t pool_bytes = static_cast<std::uint64_t>(
        flags.get_int("pool-kib", 160)) << 10U;
    const std::uint64_t pool_accesses =
        static_cast<std::uint64_t>(flags.get_int("pool-accesses", 12000));
    flags.check_unused();

    const std::string dir =
        (fs::temp_directory_path() /
         ("ocep_store_bench_" + std::to_string(::getpid())))
            .string();

    std::printf("# Segment-log durability: append/group-commit/recovery "
                "(%" PRIu64 " records per cell)\n",
                records);
    std::printf("%-8s %-6s | %12s %10s %9s | %10s %8s | %10s\n", "payload",
                "group", "records/s", "MiB/s", "sync_ms", "recover/s",
                "segs", "rec_MiB/s");
    JsonReport report("store_log", params);
    for (const std::size_t payload : payloads) {
      for (const std::uint64_t group : groups) {
        double append_s = 0, sync_s = 0, scan_s = 0;
        std::uint64_t segments = 0, scanned = 0;
        metrics::LatencyRecorder sync_latency;
        for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
          const RunResult r = run_once(dir, records, payload, group,
                                       segment_bytes, sync_latency);
          if (r.scanned != records) {
            throw Error("recovery scan lost records: " +
                        std::to_string(r.scanned));
          }
          append_s += r.append_seconds;
          sync_s += r.sync_seconds;
          scan_s += r.scan_seconds;
          segments = r.segments;
          scanned += r.scanned;
        }
        const double total_records =
            static_cast<double>(records) * params.reps;
        const double total_mib = total_records *
                                 static_cast<double>(payload) /
                                 (1024.0 * 1024.0);
        const metrics::Boxplot sync_box = sync_latency.summarize();
        std::printf("%-8zu %-6" PRIu64 " | %12.0f %10.1f %9.3f | %10.0f "
                    "%8" PRIu64 " | %10.1f\n",
                    payload, group, total_records / append_s,
                    total_mib / append_s, sync_box.median / 1000.0,
                    static_cast<double>(scanned) / scan_s, segments,
                    total_mib / scan_s);
        report.begin_row(std::to_string(payload) + "/" +
                         std::to_string(group));
        report.add("payload_bytes", static_cast<std::uint64_t>(payload));
        report.add("group", group);
        report.add("records", records);
        report.add("append_records_per_s", total_records / append_s);
        report.add("append_mib_per_s", total_mib / append_s);
        report.add("sync_share", sync_s / append_s);
        report.add("segments", segments);
        report.add_latency("sync", sync_latency);
        report.add("recover_records_per_s",
                   static_cast<double>(scanned) / scan_s);
        report.add("recover_mib_per_s", total_mib / scan_s);
      }
    }
    // --- span tier: buffer-pool hit rate under skewed faults ----------
    metrics::LatencyRecorder fault_latency;
    PoolRun pool_run;
    double fault_seconds = 0;
    for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
      pool_run = run_pool(dir, spans, span_entries, pool_bytes,
                          pool_accesses, fault_latency);
      fault_seconds += pool_run.fault_seconds;
    }
    const double pool_total = static_cast<double>(pool_run.pool.hits) +
                              static_cast<double>(pool_run.pool.misses);
    const double hit_rate =
        pool_total == 0 ? 0.0
                        : static_cast<double>(pool_run.pool.hits) / pool_total;
    const double total_faults =
        static_cast<double>(pool_accesses) * params.reps;
    std::printf("\n# Span tier: %" PRIu64 " spans x %zu entries, pool %"
                PRIu64 " KiB, %" PRIu64 " skewed faults\n",
                spans, span_entries, pool_bytes >> 10U, pool_accesses);
    std::printf("pool hit rate %.3f | faults/s %.0f | evictions %" PRIu64
                " | load errors %" PRIu64 "\n",
                hit_rate, total_faults / fault_seconds,
                pool_run.pool.evictions, pool_run.pool.load_errors);
    report.begin_row("span/pool");
    report.add("spans", spans);
    report.add("span_entries", static_cast<std::uint64_t>(span_entries));
    report.add("pool_bytes", pool_bytes);
    report.add("accesses", pool_accesses);
    report.add("pool_hit_rate", hit_rate);
    report.add("faults_per_s", total_faults / fault_seconds);
    report.add("pool_evictions", pool_run.pool.evictions);
    report.add("pool_load_errors", pool_run.pool.load_errors);
    report.add_latency("fault", fault_latency);

    // --- span tier: group commit while the compactor relocates -------
    const std::size_t commit_payload = payloads.front();
    const std::uint64_t commit_group =
        groups.size() > 1 ? groups[1] : groups.front();
    std::printf("\n# Group commit vs concurrent compaction (%" PRIu64
                " records, payload %zu, group %" PRIu64 ")\n",
                records, commit_payload, commit_group);
    for (const bool compact : {false, true}) {
      metrics::LatencyRecorder commit_latency;
      CommitRun commit_run;
      double append_seconds = 0;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        commit_run = run_commit(dir, records, commit_payload, commit_group,
                                spans, span_entries, compact,
                                commit_latency);
        append_seconds += commit_run.append_seconds;
      }
      const double total_records =
          static_cast<double>(records) * params.reps;
      const metrics::Boxplot commit_box = commit_latency.summarize();
      std::printf("%-14s | %12.0f records/s | sync_ms %7.3f | dead_KiB "
                  "%5" PRIu64 " -> %5" PRIu64 " | moved %" PRIu64
                  " | segs freed %" PRIu64 "\n",
                  compact ? "compacting" : "baseline",
                  total_records / append_seconds,
                  commit_box.median / 1000.0,
                  commit_run.dead_bytes_before >> 10U,
                  commit_run.dead_bytes_after >> 10U, commit_run.spans_moved,
                  commit_run.segments_deleted);
      report.begin_row(compact ? "commit/compact" : "commit/baseline");
      report.add("records", records);
      report.add("payload_bytes",
                 static_cast<std::uint64_t>(commit_payload));
      report.add("group", commit_group);
      report.add("append_records_per_s", total_records / append_seconds);
      report.add("dead_bytes_before", commit_run.dead_bytes_before);
      report.add("dead_bytes_after", commit_run.dead_bytes_after);
      report.add("spans_moved", commit_run.spans_moved);
      report.add("segments_deleted", commit_run.segments_deleted);
      report.add_latency("sync", commit_latency);
    }

    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "store_log: %s\n", error.what());
    return 1;
  }
}
