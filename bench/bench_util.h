// Shared harness support for the figure/table reproduction benches.
//
// Methodology (paper §V-B): each test case is executed until the event
// target is reached (the paper uses one million events); the collected
// trace-event data is saved and replayed through the client interface; the
// metric is the wall-clock time the monitor takes to find the set of
// matches on arrival of an event.  Events split into the paper's three
// categories: (i) not matching the pattern, (ii) matching but not
// completing, (iii) terminating events that can complete a match.  The
// boxplots are computed over the terminating-event population.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "common/flags.h"
#include "common/string_pool.h"
#include "core/matcher.h"
#include "metrics/boxplot.h"
#include "sim/sim.h"

namespace ocep::bench {

/// Common command-line parameters of the figure benches.
struct BenchParams {
  std::uint64_t events = 100000;  ///< event target per run (paper: 1e6)
  std::uint32_t reps = 3;         ///< runs per configuration (paper: 5)
  std::uint64_t seed = 1;
  bool verbose = false;
  std::string json_path;          ///< --json FILE: machine-readable record
};

/// Parses --events/--reps/--seed/--full/--verbose/--json; --full selects
/// the paper-scale methodology (1e6 events, 5 reps).
[[nodiscard]] BenchParams parse_params(Flags& flags);

/// A generated workload: the simulator is kept alive because it owns the
/// recorded store.
struct Workload {
  std::unique_ptr<StringPool> pool;
  std::unique_ptr<sim::Sim> sim;
  sim::RunResult run;
  // Ground truth handles (whichever the case study fills).
  apps::RandomWalkApp walk;
  apps::RaceApp race;
  apps::AtomicityApp atomicity;
  apps::OrderingApp ordering;
};

/// Builders size the application so the run produces roughly
/// `target_events` events, then run the simulation to completion.
[[nodiscard]] Workload make_deadlock_workload(std::uint32_t traces,
                                              std::uint32_t cycle_length,
                                              std::uint64_t target_events,
                                              std::uint64_t seed);
[[nodiscard]] Workload make_race_workload(std::uint32_t traces,
                                          std::uint64_t target_events,
                                          std::uint64_t seed);
[[nodiscard]] Workload make_atomicity_workload(std::uint32_t traces,
                                               std::uint64_t target_events,
                                               std::uint64_t seed);
[[nodiscard]] Workload make_ordering_workload(std::uint32_t traces,
                                              std::uint64_t target_events,
                                              std::uint64_t seed);

/// Per-event timing populations (paper's event categories).
struct Populations {
  metrics::LatencyRecorder all;       ///< every event
  metrics::LatencyRecorder hits;      ///< category (ii)+(iii): leaf matches
  metrics::LatencyRecorder searched;  ///< category (iii): terminating
};

struct MatchTotals {
  std::uint64_t events = 0;
  std::uint64_t matches_reported = 0;
  std::uint64_t subset_size = 0;
  std::uint64_t searches = 0;
  std::uint64_t nodes_explored = 0;
  std::uint64_t backjumps = 0;
  std::uint64_t history_entries = 0;
  std::uint64_t history_merged = 0;
  std::uint64_t history_pruned = 0;
};

/// Replays the workload's store through an OcepMatcher, timing every
/// observe() call; appends samples (microseconds) into `populations`.
void time_pattern(const EventStore& store, StringPool& pool,
                  const std::string& pattern_text, MatcherConfig config,
                  Populations& populations, MatchTotals& totals);

/// Prints one boxplot table row:
/// label events samples Q1 median Q3 top_whisker max matches
void print_row(const std::string& label, std::uint64_t events,
               metrics::LatencyRecorder& recorder, std::uint64_t matches);

/// Prints the standard table header.
void print_header(const std::string& title, const std::string& label_name,
                  const BenchParams& params);

/// Machine-readable bench record (the BENCH_*.json trajectory files).
///
/// Accumulates one JSON object per result row and, when the bench was
/// invoked with --json FILE, writes
///   {"schema": "ocep-bench-v1", "bench": ..., "git": <sha>,
///    "params": {...}, "rows": [{...}, ...]}
/// The schema field lets trajectory tooling (scripts/bench_trajectory.py)
/// detect format drift; the git revision is read from the OCEP_GIT_SHA
/// environment variable ("unknown" when unset).  Without --json every
/// call is a cheap no-op, so benches can emit rows unconditionally.
/// Latency fields are microseconds, matching the printed tables.
class JsonReport {
 public:
  JsonReport(std::string bench, const BenchParams& params);

  /// Starts a new row; subsequent add_* calls attach fields to it.
  void begin_row(const std::string& label);
  void add(const std::string& key, std::uint64_t value);
  void add(const std::string& key, std::int64_t value);
  void add(const std::string& key, double value);
  void add(const std::string& key, const std::string& value);
  /// Per-arrival latency quantiles (count, p50/p95/p99, boxplot marks).
  /// Sorts the recorder's samples in place.
  void add_latency(const std::string& prefix,
                   metrics::LatencyRecorder& recorder);
  /// The matcher search counters.
  void add_totals(const MatchTotals& totals);

  /// Writes the document; returns false (silently) when --json was not
  /// given.  Throws ocep::Error when the file cannot be written.
  bool write();

 private:
  void field_sep();

  std::string bench_;
  std::string path_;
  std::string params_json_;
  std::vector<std::string> rows_;
  std::string current_;
  bool row_open_ = false;
};

}  // namespace ocep::bench
