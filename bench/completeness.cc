// §V-D completeness — OCEP must report every injected violation and no
// false positives, across all four case studies.
//
// Ground truth comes from the applications' injection logs (atomicity,
// ordering), the simulator's blocked-state report (deadlock), and the
// timestamp-comparison oracle (races).
#include <cinttypes>
#include <cstdio>
#include <set>
#include <tuple>

#include "apps/patterns.h"
#include "baseline/naive_matcher.h"
#include "baseline/race_checker.h"
#include "bench_util.h"
#include "common/error.h"
#include "core/matcher.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

struct Row {
  std::uint64_t injected = 0;
  std::uint64_t detected = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t events = 0;
};

void print(const char* name, const Row& row, JsonReport& report) {
  const bool pass =
      row.detected == row.injected && row.false_positives == 0;
  std::printf("%-10s %12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %16" PRIu64
              " %10s\n",
              name, row.events, row.injected, row.detected,
              row.false_positives, pass ? "PASS" : "FAIL");
  report.begin_row(name);
  report.add("events", row.events);
  report.add("injected", row.injected);
  report.add("detected", row.detected);
  report.add("false_positives", row.false_positives);
  report.add("verdict", std::string(pass ? "PASS" : "FAIL"));
}

std::vector<Match> run_matcher(const EventStore& store, StringPool& pool,
                               const std::string& pattern_text) {
  std::vector<Match> reported;
  pattern::CompiledPattern compiled = pattern::compile(pattern_text, pool);
  OcepMatcher matcher(store, std::move(compiled), MatcherConfig{},
                      [&](const Match& match, bool) {
                        reported.push_back(match);
                      });
  for (const EventId id : store.arrival_order()) {
    matcher.observe(store.event(id));
  }
  return reported;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto traces = static_cast<std::uint32_t>(
        flags.get_int("traces", 20));
    flags.check_unused();

    std::printf("# Completeness (§V-D): injected violations vs detected, "
                "false positives (%u traces)\n", traces);
    std::printf("%-10s %12s %10s %10s %16s %10s\n", "case", "events",
                "injected", "detected", "false_positives", "verdict");
    JsonReport report("completeness", params);

    // --- Deadlock: one injected cycle per run -------------------------
    {
      Row row;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w = make_deadlock_workload(traces, 4, params.events,
                                            params.seed + rep);
        row.events += w.sim->store().event_count();
        row.injected += 1;
        const auto reported =
            run_matcher(w.sim->store(), *w.pool, apps::deadlock_pattern(4));
        const std::set<TraceId> cycle(w.walk.cycle.begin(),
                                      w.walk.cycle.end());
        bool found = false;
        for (const Match& match : reported) {
          std::set<TraceId> members;
          for (const EventId id : match.bindings) {
            members.insert(id.trace);
          }
          if (members == cycle) {
            found = true;
          } else {
            ++row.false_positives;
          }
        }
        row.detected += found ? 1 : 0;
      }
      print("Deadlock", row, report);
    }

    // --- Races: oracle = timestamp comparison --------------------------
    {
      Row row;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w =
            make_race_workload(traces, params.events, params.seed + rep);
        const EventStore& store = w.sim->store();
        row.events += store.event_count();

        // One "violation" per receive that races an earlier receive; the
        // pair list itself is quadratic on this workload, so only collect
        // the later receives through the callback.
        std::set<EventIndex> oracle;
        baseline::RaceChecker checker(
            store,
            [&oracle](const baseline::RaceChecker::Race& race) {
              oracle.insert(race.second_receive.index);
            },
            /*keep_pairs=*/false);
        for (const EventId id : store.arrival_order()) {
          checker.observe(store.event(id));
        }
        row.injected += oracle.size();

        const auto reported =
            run_matcher(store, *w.pool, apps::race_pattern());
        const pattern::CompiledPattern reference =
            pattern::compile(apps::race_pattern(), *w.pool);
        std::set<EventIndex> detected;
        for (const Match& match : reported) {
          if (!baseline::is_valid_match(store, reference, match)) {
            ++row.false_positives;
            continue;
          }
          detected.insert(std::max(match.bindings[2].index,
                                   match.bindings[3].index));
        }
        for (const EventIndex r : detected) {
          row.detected += oracle.contains(r) ? 1U : 0U;
          row.false_positives += oracle.contains(r) ? 0U : 1U;
        }
      }
      print("Races", row, report);
    }

    // --- Atomicity: injection log --------------------------------------
    {
      Row row;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w = make_atomicity_workload(traces, params.events,
                                             params.seed + rep);
        const EventStore& store = w.sim->store();
        row.events += store.event_count();
        std::set<EventId> injected;
        for (const auto& injection : *w.atomicity.injections) {
          injected.insert(injection.enter_event);
        }
        row.injected += injected.size();

        const auto reported =
            run_matcher(store, *w.pool, apps::atomicity_pattern());
        std::set<EventId> matched_enters;
        for (const Match& match : reported) {
          if (store.relate(match.bindings[0], match.bindings[1]) !=
              Relation::kConcurrent) {
            ++row.false_positives;
            continue;
          }
          if (!injected.contains(match.bindings[0]) &&
              !injected.contains(match.bindings[1])) {
            ++row.false_positives;  // two protected sections "concurrent"
            continue;
          }
          matched_enters.insert(match.bindings[0]);
          matched_enters.insert(match.bindings[1]);
        }
        for (const EventId enter : injected) {
          row.detected += matched_enters.contains(enter) ? 1U : 0U;
        }
      }
      print("Atomicity", row, report);
    }

    // --- Ordering: injection log ---------------------------------------
    {
      Row row;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w = make_ordering_workload(traces, params.events,
                                            params.seed + rep);
        const EventStore& store = w.sim->store();
        row.events += store.event_count();
        using Triple = std::tuple<EventId, EventId, EventId>;
        std::set<Triple> injected;
        for (const auto& injection : *w.ordering.injections) {
          injected.emplace(injection.snapshot_event, injection.update_event,
                           injection.forward_event);
        }
        row.injected += injected.size();

        const auto reported =
            run_matcher(store, *w.pool, apps::ordering_pattern());
        std::set<Triple> detected;
        for (const Match& match : reported) {
          const Triple triple{match.bindings[1], match.bindings[2],
                              match.bindings[3]};
          if (injected.contains(triple)) {
            detected.insert(triple);
          } else {
            ++row.false_positives;
          }
        }
        row.detected += detected.size();
      }
      print("Ordering", row, report);
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "completeness: %s\n", error.what());
    return 1;
  }
}
