// Fig 6 — Execution time for deadlock detection vs number of traces.
//
// Parallel random walk with an injected send-receive cycle (§V-C.1); the
// monitor matches a cycle of pairwise-concurrent blocked sends of the
// configured length.  The paper sweeps 10 / 20 / 50 traces and observes
// millisecond-scale, heavy-tailed detection times — the backtracking is
// exponential in the pattern length, and the trace sweep grows with n.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "apps/patterns.h"
#include "bench_util.h"
#include "common/error.h"

using namespace ocep;
using namespace ocep::bench;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto cycle = static_cast<std::uint32_t>(
        flags.get_int("cycle", 4));
    std::vector<std::uint32_t> trace_counts;
    for (const std::int64_t t : {flags.get_int("traces1", 10),
                                 flags.get_int("traces2", 20),
                                 flags.get_int("traces3", 50)}) {
      trace_counts.push_back(static_cast<std::uint32_t>(t));
    }
    flags.check_unused();

    print_header("Fig 6: deadlock detection time (random walk, cycle "
                 "length " + std::to_string(cycle) + ")",
                 "traces", params);
    JsonReport report("fig6_deadlock", params);
    for (const std::uint32_t traces : trace_counts) {
      Populations populations;
      MatchTotals totals;
      std::uint64_t deadlocks_found = 0;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w = make_deadlock_workload(traces, cycle, params.events,
                                            params.seed + rep);
        MatchTotals rep_totals;
        time_pattern(w.sim->store(), *w.pool, apps::deadlock_pattern(cycle),
                     MatcherConfig{}, populations, rep_totals);
        if (rep_totals.subset_size > 0) {
          ++deadlocks_found;
        }
        totals.events += rep_totals.events;
        totals.matches_reported += rep_totals.matches_reported;
        totals.searches += rep_totals.searches;
        totals.nodes_explored += rep_totals.nodes_explored;
        if (params.verbose) {
          std::printf("#   rep %u: events=%" PRIu64 " searches=%" PRIu64
                      " nodes=%" PRIu64 " matches=%" PRIu64 "\n",
                      rep, rep_totals.events, rep_totals.searches,
                      rep_totals.nodes_explored,
                      rep_totals.matches_reported);
        }
      }
      print_row(std::to_string(traces), totals.events, populations.searched,
                totals.matches_reported);
      report.begin_row(std::to_string(traces));
      report.add("traces", static_cast<std::uint64_t>(traces));
      report.add("cycle", static_cast<std::uint64_t>(cycle));
      report.add("deadlocks_found", deadlocks_found);
      report.add_totals(totals);
      report.add_latency("searched", populations.searched);
      report.add_latency("all", populations.all);
      if (deadlocks_found != params.reps) {
        std::printf("# WARNING: deadlock detected in %" PRIu64 "/%u runs\n",
                    deadlocks_found, params.reps);
      }
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "fig6_deadlock: %s\n", error.what());
    return 1;
  }
}
