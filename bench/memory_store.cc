// Memory ablation — dense vs sparse timestamp storage (DESIGN.md §5).
//
// The dense backend costs events x traces x 4 bytes; the sparse backend
// stores only per-column changes, so it scales with communication volume.
// Reported per configuration: store bytes and the matcher's median
// per-terminating-event cost over the same stream (the sparse backend's
// O(log) clock reads are the price of the memory bound).
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "apps/patterns.h"
#include "bench_util.h"
#include "common/error.h"
#include "poet/replay.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

/// Copies a workload's computation into a store with the given backend.
EventStore copy_store(const EventStore& source, ClockStorage storage) {
  EventStore out(storage);
  for (TraceId t = 0; t < source.trace_count(); ++t) {
    out.add_trace(source.trace_name(t));
  }
  for (const EventId id : source.arrival_order()) {
    out.append(source.event(id), source.clock(id));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    std::vector<std::uint32_t> trace_counts;
    for (const std::int64_t t : {flags.get_int("traces1", 50),
                                 flags.get_int("traces2", 100),
                                 flags.get_int("traces3", 500)}) {
      trace_counts.push_back(static_cast<std::uint32_t>(t));
    }
    flags.check_unused();

    std::printf("# Store memory: dense vs sparse timestamps "
                "(ordering workload)\n");
    std::printf("%-6s %12s | %14s %12s | %14s %12s | %8s\n", "traces",
                "events", "dense_MiB", "dense_med", "sparse_MiB",
                "sparse_med", "ratio");
    JsonReport report("memory_store", params);
    for (const std::uint32_t traces : trace_counts) {
      double dense_bytes = 0, sparse_bytes = 0;
      Populations dense_pop, sparse_pop;
      MatchTotals dense_totals, sparse_totals;
      std::uint64_t events = 0;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w = make_ordering_workload(traces, params.events,
                                            params.seed + rep);
        events += w.sim->store().event_count();
        dense_bytes += static_cast<double>(w.sim->store().approx_bytes());
        time_pattern(w.sim->store(), *w.pool, apps::ordering_pattern(),
                     MatcherConfig{}, dense_pop, dense_totals);

        const EventStore sparse =
            copy_store(w.sim->store(), ClockStorage::kSparse);
        sparse_bytes += static_cast<double>(sparse.approx_bytes());
        time_pattern(sparse, *w.pool, apps::ordering_pattern(),
                     MatcherConfig{}, sparse_pop, sparse_totals);
      }
      const metrics::Boxplot dense_box = dense_pop.searched.summarize();
      const metrics::Boxplot sparse_box = sparse_pop.searched.summarize();
      std::printf("%-6u %12" PRIu64 " | %14.1f %12.2f | %14.1f %12.2f | "
                  "%7.1fx\n",
                  traces, events, dense_bytes / (1024 * 1024),
                  dense_box.median, sparse_bytes / (1024 * 1024),
                  sparse_box.median, dense_bytes / sparse_bytes);
      report.begin_row(std::to_string(traces));
      report.add("traces", static_cast<std::uint64_t>(traces));
      report.add("events", events);
      report.add("dense_bytes", dense_bytes);
      report.add("sparse_bytes", sparse_bytes);
      report.add("dense_median_us", dense_box.median);
      report.add("sparse_median_us", sparse_box.median);
    }
    report.write();
    std::printf("# ratio = dense bytes / sparse bytes; medians are "
                "per-terminating-event microseconds.\n");
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "memory_store: %s\n", error.what());
    return 1;
  }
}
