// Fig 9 — Execution time for ordering-bug detection vs number of traces.
//
// Leader/follower replicated service with the ZooKeeper-#962 bug injected
// at 1% (§III-D, §V-C.4).  The paper sweeps 50 / 100 / 500 traces and
// observes near-linear growth: the pattern's variable binding isolates the
// two relevant traces.
#include <cstdio>
#include <vector>

#include "apps/patterns.h"
#include "bench_util.h"
#include "common/error.h"

using namespace ocep;
using namespace ocep::bench;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    std::vector<std::uint32_t> trace_counts;
    for (const std::int64_t t : {flags.get_int("traces1", 50),
                                 flags.get_int("traces2", 100),
                                 flags.get_int("traces3", 500)}) {
      trace_counts.push_back(static_cast<std::uint32_t>(t));
    }
    flags.check_unused();

    print_header("Fig 9: ordering-bug detection time (leader/follower, "
                 "1% update-after-snapshot)", "traces", params);
    JsonReport report("fig9_ordering", params);
    for (const std::uint32_t traces : trace_counts) {
      Populations populations;
      MatchTotals totals;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w =
            make_ordering_workload(traces, params.events, params.seed + rep);
        time_pattern(w.sim->store(), *w.pool, apps::ordering_pattern(),
                     MatcherConfig{}, populations, totals);
      }
      print_row(std::to_string(traces), totals.events, populations.searched,
                totals.matches_reported);
      report.begin_row(std::to_string(traces));
      report.add("traces", static_cast<std::uint64_t>(traces));
      report.add_totals(totals);
      report.add_latency("searched", populations.searched);
      report.add_latency("all", populations.all);
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "fig9_ordering: %s\n", error.what());
    return 1;
  }
}
