// §V-C.3 comparison — OCEP vs a conflict-graph atomicity detector.
//
// The conflict-graph approach compares every completed critical section
// against all earlier sections, so its per-section cost grows linearly
// with the execution (the paper quotes 0.4-40 s for similar violations);
// OCEP's domain-restricted search stays flat.  Both run over the same
// recorded streams; the table splits the conflict-graph cost into the
// first and last quarter of sections to show the growth.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "apps/patterns.h"
#include "baseline/conflict_graph.h"
#include "bench_util.h"
#include "common/error.h"
#include "metrics/stopwatch.h"

using namespace ocep;
using namespace ocep::bench;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    std::vector<std::uint32_t> trace_counts;
    for (const std::int64_t t : {flags.get_int("traces1", 10),
                                 flags.get_int("traces2", 20),
                                 flags.get_int("traces3", 50)}) {
      trace_counts.push_back(static_cast<std::uint32_t>(t));
    }
    flags.check_unused();

    std::printf("# OCEP vs conflict-graph atomicity detection "
                "(per-check microseconds)\n");
    std::printf("%-6s %12s | %10s %10s | %12s %12s %12s %12s\n", "traces",
                "events", "ocep_med", "ocep_max", "graph_q1med",
                "graph_q4med", "graph_max", "violations");
    JsonReport report("baseline_conflictgraph", params);
    for (const std::uint32_t traces : trace_counts) {
      Populations ocep_pop;
      MatchTotals ocep_totals;
      std::vector<double> early, late;
      double graph_max = 0;
      std::uint64_t violations = 0;
      std::uint64_t events = 0;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w = make_atomicity_workload(traces, params.events,
                                             params.seed + rep);
        events += w.sim->store().event_count();
        time_pattern(w.sim->store(), *w.pool, apps::atomicity_pattern(),
                     MatcherConfig{}, ocep_pop, ocep_totals);

        baseline::ConflictGraphDetector detector(
            w.sim->store(), w.pool->intern("cs_enter"),
            w.pool->intern("cs_exit"));
        std::vector<double> section_costs;
        metrics::Stopwatch watch;
        const Symbol exit_type = w.pool->intern("cs_exit");
        for (const EventId id : w.sim->store().arrival_order()) {
          const Event& event = w.sim->store().event(id);
          const bool check = event.type == exit_type;
          watch.restart();
          detector.observe(event);
          const double us = watch.elapsed_us();
          if (check) {
            section_costs.push_back(us);
            graph_max = std::max(graph_max, us);
          }
        }
        violations += detector.violations();
        const std::size_t quarter = section_costs.size() / 4;
        early.insert(early.end(), section_costs.begin(),
                     section_costs.begin() +
                         static_cast<std::ptrdiff_t>(quarter));
        late.insert(late.end(),
                    section_costs.end() -
                        static_cast<std::ptrdiff_t>(quarter),
                    section_costs.end());
      }
      const metrics::Boxplot ocep_box = ocep_pop.searched.summarize();
      const metrics::Boxplot early_box = metrics::boxplot(early);
      const metrics::Boxplot late_box = metrics::boxplot(late);
      std::printf("%-6u %12" PRIu64 " | %10.2f %10.2f | %12.2f %12.2f "
                  "%12.2f %12" PRIu64 "\n",
                  traces, events, ocep_box.median, ocep_box.max,
                  early_box.median, late_box.median, graph_max, violations);
      report.begin_row(std::to_string(traces));
      report.add("traces", static_cast<std::uint64_t>(traces));
      report.add("graph_q1_median_us", early_box.median);
      report.add("graph_q4_median_us", late_box.median);
      report.add("graph_max_us", graph_max);
      report.add("violations", violations);
      report.add_totals(ocep_totals);
      report.add_latency("searched", ocep_pop.searched);
    }
    report.write();
    std::printf("# graph_q4med >> graph_q1med: the conflict graph slows "
                "down as sections accumulate; OCEP stays flat.\n");
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "baseline_conflictgraph: %s\n", error.what());
    return 1;
  }
}
