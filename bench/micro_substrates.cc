// Micro-benchmarks of the substrates (google-benchmark): vector-clock
// operations, the O(1)/O(log) store queries the matcher's domain
// restriction is built from, linearizer delivery, leaf-history bookkeeping,
// and pattern compilation.
#include <benchmark/benchmark.h>

#include <sstream>

#include "apps/patterns.h"
#include "causality/vector_clock.h"
#include "common/rng.h"
#include "common/string_pool.h"
#include "core/history.h"
#include "pattern/compiled.h"
#include "poet/dump.h"
#include "poet/event_store.h"
#include "poet/linearizer.h"

namespace ocep {
namespace {

/// Random message-passing computation (same construction as the test
/// generator, inlined so the bench tree has no test dependencies).
EventStore make_computation(StringPool& pool, std::uint32_t traces,
                            std::uint32_t events, std::uint64_t seed) {
  Rng rng(seed);
  EventStore store;
  for (std::uint32_t t = 0; t < traces; ++t) {
    store.add_trace(pool.intern("T" + std::to_string(t)));
  }
  std::vector<VectorClock> clocks(traces, VectorClock(traces));
  struct InFlight {
    TraceId to;
    std::uint64_t message;
    VectorClock clock;
  };
  std::vector<InFlight> in_flight;
  std::uint64_t next_message = 1;
  const Symbol type = pool.intern("e");
  for (std::uint32_t i = 0; i < events; ++i) {
    const auto t = static_cast<TraceId>(rng.below(traces));
    const std::uint64_t roll = rng.below(3);
    Event event;
    event.type = type;
    if (roll == 0 || traces < 2) {
      clocks[t].tick(t);
      event.id = EventId{t, clocks[t][t]};
      store.append(event, clocks[t]);
    } else if (roll == 1) {
      clocks[t].tick(t);
      event.id = EventId{t, clocks[t][t]};
      event.kind = EventKind::kSend;
      event.message = next_message++;
      store.append(event, clocks[t]);
      TraceId to = t;
      while (to == t) {
        to = static_cast<TraceId>(rng.below(traces));
      }
      in_flight.push_back(InFlight{to, event.message, clocks[t]});
    } else if (!in_flight.empty()) {
      // Deliver the oldest in-flight message to its recorded destination.
      const TraceId to = in_flight.front().to;
      clocks[to].merge(in_flight.front().clock);
      clocks[to].tick(to);
      event.id = EventId{to, clocks[to][to]};
      event.kind = EventKind::kReceive;
      event.message = in_flight.front().message;
      store.append(event, clocks[to]);
      in_flight.erase(in_flight.begin());
    } else {
      clocks[t].tick(t);
      event.id = EventId{t, clocks[t][t]};
      store.append(event, clocks[t]);
    }
  }
  return store;
}

void BM_VectorClockMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorClock a(n), b(n);
  for (TraceId t = 0; t < n; ++t) {
    if (t % 2 == 0) {
      a.tick(t);
    } else {
      b.tick(t);
    }
  }
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorClockMerge)->Arg(10)->Arg(50)->Arg(500);

void BM_HappensBefore(benchmark::State& state) {
  StringPool pool;
  EventStore store = make_computation(pool, 16, 20000, 42);
  Rng rng(7);
  for (auto _ : state) {
    const auto t1 = static_cast<TraceId>(rng.below(16));
    const auto t2 = static_cast<TraceId>(rng.below(16));
    const EventId a{t1, static_cast<EventIndex>(
                            1 + rng.below(store.trace_size(t1)))};
    const EventId b{t2, static_cast<EventIndex>(
                            1 + rng.below(store.trace_size(t2)))};
    benchmark::DoNotOptimize(store.relate(a, b));
  }
}
BENCHMARK(BM_HappensBefore);

void BM_GreatestPredecessor(benchmark::State& state) {
  StringPool pool;
  EventStore store = make_computation(pool, 16, 20000, 43);
  Rng rng(8);
  for (auto _ : state) {
    const auto t = static_cast<TraceId>(rng.below(16));
    const auto s = static_cast<TraceId>(rng.below(16));
    const EventId e{t, static_cast<EventIndex>(
                           1 + rng.below(store.trace_size(t)))};
    benchmark::DoNotOptimize(store.greatest_predecessor(e, s));
  }
}
BENCHMARK(BM_GreatestPredecessor);

void BM_LeastSuccessor(benchmark::State& state) {
  StringPool pool;
  EventStore store = make_computation(
      pool, 16, static_cast<std::uint32_t>(state.range(0)), 44);
  Rng rng(9);
  for (auto _ : state) {
    const auto t = static_cast<TraceId>(rng.below(16));
    const auto s = static_cast<TraceId>(rng.below(16));
    const EventId e{t, static_cast<EventIndex>(
                           1 + rng.below(store.trace_size(t)))};
    benchmark::DoNotOptimize(store.least_successor(e, s));
  }
}
BENCHMARK(BM_LeastSuccessor)->Arg(2000)->Arg(20000)->Arg(200000);

void BM_LinearizerInOrder(benchmark::State& state) {
  StringPool pool;
  EventStore store = make_computation(pool, 8, 10000, 45);
  struct NullSink final : EventSink {
    void on_event(const Event&, const VectorClock&) override {}
  } sink;
  for (auto _ : state) {
    Linearizer linearizer(store.trace_count(), sink);
    for (const EventId id : store.arrival_order()) {
      linearizer.offer(store.event(id), store.clock(id));
    }
    benchmark::DoNotOptimize(linearizer.delivered());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.event_count()));
}
BENCHMARK(BM_LinearizerInOrder);

void BM_HistoryAppend(benchmark::State& state) {
  LeafHistory history;
  for (auto _ : state) {
    state.PauseTiming();
    history.reset(8);
    state.ResumeTiming();
    for (EventIndex i = 1; i <= 10000; ++i) {
      history.append(i % 8, i, i / 3, (i % 5) == 0, true);
    }
    benchmark::DoNotOptimize(history.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_HistoryAppend);

void BM_CompileOrderingPattern(benchmark::State& state) {
  for (auto _ : state) {
    StringPool pool;
    benchmark::DoNotOptimize(
        pattern::compile(apps::ordering_pattern(), pool));
  }
}
BENCHMARK(BM_CompileOrderingPattern);

void BM_DumpReload(benchmark::State& state) {
  StringPool pool;
  EventStore store = make_computation(pool, 8, 20000, 46);
  for (auto _ : state) {
    std::stringstream buffer;
    dump(store, pool, buffer);
    StringPool fresh;
    EventStore reloaded = reload_store(buffer, fresh);
    benchmark::DoNotOptimize(reloaded.event_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(store.event_count()));
}
BENCHMARK(BM_DumpReload);

}  // namespace
}  // namespace ocep

BENCHMARK_MAIN();
