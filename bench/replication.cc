// Warm-standby replication bench — steady-state lag and failover time.
//
// One in-process primary Server (segment-log store, --replicate-to wired
// to an in-process Standby) ingests a random computation over real TCP.
// While the producer streams, the main thread samples the merged
// `repl.lag_bytes` / `repl.lag_records` gauges (streamed-but-unacked
// work) every millisecond: the peak is the steady-state lag the follower
// carries under load, and the time from last-event-sent to lag zero is
// the drain.  Then the primary is torn down mid-tenant (no BYE, no FIN —
// the shape of a crash), the standby is promoted, and a Server is
// constructed over the replica store; `failover_first_observe_ms` is
// kill-to-first-monitor-observation on the promoted node (restore replay
// included) and `failover_resume_ms` is kill-to-producer-FIN after the
// client reconnects and finishes from its watermark.  `--shards N` sizes
// both reactors; `--json FILE` records rows for trend tracking.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "net/client.h"
#include "net/server.h"
#include "net/standby.h"
#include "obs/metrics.h"
#include "random_computation.h"

using namespace ocep;
using namespace ocep::bench;

namespace fs = std::filesystem;

namespace {

constexpr const char* kPattern =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::string scratch_dir(const char* tag, std::uint32_t rep) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("ocep_bench_repl_" + std::to_string(::getpid()) + "_" +
       std::to_string(rep) + "_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Sum of the replication lag gauges across all shards of `server`.
struct LagSample {
  std::int64_t bytes = 0;
  std::int64_t records = 0;
  bool connected = false;
};

[[nodiscard]] LagSample sample_lag(const net::Server& server) {
  obs::Registry scratch;
  server.merge_metrics(scratch);
  LagSample sample;
  sample.bytes = scratch.gauge("repl.lag_bytes").value();
  sample.records = scratch.gauge("repl.lag_records").value();
  sample.connected = scratch.gauge("repl.connected").value() > 0;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto traces = static_cast<std::uint32_t>(flags.get_int("traces", 4));
    const auto shards = static_cast<std::size_t>(flags.get_int("shards", 1));
    flags.check_unused();

    StringPool pool;
    ocep::testing::RandomComputationOptions options;
    options.traces = traces;
    options.events = static_cast<std::uint32_t>(params.events);
    options.seed = params.seed;
    const EventStore source = ocep::testing::random_computation(pool, options);
    const std::uint64_t total = source.event_count();
    const std::uint64_t half = total / 2;

    std::printf("# replication (random computation, %u traces, %" PRIu64
                " events, %zu shards, %u reps)\n",
                traces, total, shards, params.reps);
    std::printf("%-6s %10s %12s %10s %10s %12s %10s\n", "rep", "lag_max_B",
                "lag_max_rec", "drain_ms", "acks", "observe_ms", "resume_ms");

    JsonReport report("replication", params);
    for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
      const std::string primary_dir = scratch_dir("primary", rep);
      const std::string replica_dir = scratch_dir("replica", rep);

      net::StandbyConfig standby_config;
      standby_config.store_dir = replica_dir;
      net::Standby standby(std::move(standby_config));
      net::StandbyExit standby_exit = net::StandbyExit::kShutdown;
      std::thread standby_thread(
          [&] { standby_exit = standby.run(); });

      net::ServerConfig config;
      config.shards = shards;
      config.store_dir = primary_dir;
      config.flush_interval_ms = 5;
      config.detach_linger_ms = 10000;
      config.replicate_host = "127.0.0.1";
      config.replicate_port = standby.port();
      net::Server server(std::move(config));
      std::thread reactor([&server] { server.run(); });

      // Phase 1: stream half the computation (producer stays attached —
      // it will "die" with the primary) while sampling replication lag.
      std::atomic<bool> producing{true};
      net::StreamResult first;
      std::string stream_error;
      std::thread producer([&] {
        try {
          net::ConnectorConfig cc;
          cc.port = server.port();
          cc.tenant = "repl";
          cc.patterns = {kPattern};
          net::StreamOptions so;
          so.max_events = half;
          first = net::stream_store(source, pool, cc, so);
        } catch (const Error& error) {
          stream_error = error.what();
        }
        producing.store(false, std::memory_order_release);
      });

      std::int64_t lag_max_bytes = 0;
      std::int64_t lag_max_records = 0;
      std::int64_t drained_at = 0;
      std::int64_t produced_at = 0;
      const std::int64_t phase1_start = now_ns();
      while (true) {
        const LagSample lag = sample_lag(server);
        lag_max_bytes = std::max(lag_max_bytes, lag.bytes);
        lag_max_records = std::max(lag_max_records, lag.records);
        const bool busy = producing.load(std::memory_order_acquire);
        if (!busy && produced_at == 0) {
          produced_at = now_ns();
        }
        if (!busy && lag.connected && lag.bytes == 0 && lag.records == 0) {
          drained_at = now_ns();
          break;
        }
        if (now_ns() - phase1_start > 30'000'000'000LL) {
          std::fprintf(stderr,
                       "replication: lag never drained (bytes=%" PRId64
                       " records=%" PRId64 ")\n",
                       lag.bytes, lag.records);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      producer.join();
      if (!stream_error.empty()) {
        std::fprintf(stderr, "replication: producer failed: %s\n",
                     stream_error.c_str());
        return 1;
      }
      const double drain_ms =
          static_cast<double>(drained_at - produced_at) / 1e6;
      const std::uint64_t acks = server.counter_value("repl.acks");
      const std::uint64_t bytes_shipped =
          server.counter_value("repl.bytes_shipped");
      const std::uint64_t resyncs = server.counter_value("repl.resyncs");

      // Phase 2: the primary vanishes mid-tenant; promote the follower
      // and bring a Server up over the replica store.
      std::atomic<std::int64_t> first_observe{0};
      const std::int64_t kill_at = now_ns();
      server.request_shutdown();
      reactor.join();

      standby.request_promote();
      standby_thread.join();
      if (standby_exit != net::StandbyExit::kPromote) {
        std::fprintf(stderr, "replication: standby did not promote\n");
        return 1;
      }

      net::ServerConfig promoted_config;
      promoted_config.shards = shards;
      promoted_config.store_dir = replica_dir;
      promoted_config.flush_interval_ms = 5;
      promoted_config.detach_linger_ms = 10000;
      promoted_config.observe_hook = [&first_observe](std::string_view,
                                                      std::uint64_t) {
        std::int64_t expected = 0;
        first_observe.compare_exchange_strong(expected, now_ns(),
                                              std::memory_order_acq_rel);
      };
      net::Server promoted(std::move(promoted_config));
      std::thread promoted_reactor([&promoted] { promoted.run(); });

      // The producer reconnects and finishes from its watermark.
      net::ConnectorConfig cc;
      cc.port = promoted.port();
      cc.tenant = "repl";
      cc.patterns = {kPattern};
      net::StreamOptions rest;
      rest.skip_below = half;
      const net::StreamResult second = net::stream_store(source, pool, cc,
                                                         rest);
      const std::int64_t fin_at = now_ns();
      promoted.request_shutdown();
      promoted_reactor.join();

      if (!second.fin_received || second.fin.degraded) {
        std::fprintf(stderr,
                     "replication: resumed stream did not finish cleanly "
                     "(ack: %s)\n",
                     second.ack.message.c_str());
        return 1;
      }
      const std::int64_t observed_at =
          first_observe.load(std::memory_order_acquire);
      const double observe_ms =
          observed_at == 0
              ? 0.0
              : static_cast<double>(observed_at - kill_at) / 1e6;
      const double resume_ms = static_cast<double>(fin_at - kill_at) / 1e6;

      std::printf("%-6u %10" PRId64 " %12" PRId64 " %10.2f %10" PRIu64
                  " %12.2f %10.2f\n",
                  rep, lag_max_bytes, lag_max_records, drain_ms, acks,
                  observe_ms, resume_ms);

      report.begin_row("rep" + std::to_string(rep));
      report.add("shards", static_cast<std::uint64_t>(shards));
      report.add("events_total", total);
      report.add("events_before_kill", half);
      report.add("lag_max_bytes", static_cast<std::int64_t>(lag_max_bytes));
      report.add("lag_max_records",
                 static_cast<std::int64_t>(lag_max_records));
      report.add("drain_ms", drain_ms);
      report.add("bytes_shipped", bytes_shipped);
      report.add("acks", acks);
      report.add("resyncs", resyncs);
      report.add("failover_first_observe_ms", observe_ms);
      report.add("failover_resume_ms", resume_ms);

      fs::remove_all(primary_dir);
      fs::remove_all(replica_dir);
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "replication: %s\n", error.what());
    return 1;
  }
}
