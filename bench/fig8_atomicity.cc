// Fig 8 — Execution time for atomicity-violation detection vs traces.
//
// Workers execute a semaphore-protected method; with a small probability
// the acquire is skipped (§V-C.3).  The semaphore is instrumented as its
// own trace, so a violation is simply two concurrent section entries.
#include <cstdio>
#include <vector>

#include "apps/patterns.h"
#include "bench_util.h"
#include "common/error.h"

using namespace ocep;
using namespace ocep::bench;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    std::vector<std::uint32_t> trace_counts;
    for (const std::int64_t t : {flags.get_int("traces1", 10),
                                 flags.get_int("traces2", 20),
                                 flags.get_int("traces3", 50)}) {
      trace_counts.push_back(static_cast<std::uint32_t>(t));
    }
    flags.check_unused();

    print_header("Fig 8: atomicity-violation detection time "
                 "(semaphore-protected method, 1% skipped acquires)",
                 "traces", params);
    JsonReport report("fig8_atomicity", params);
    for (const std::uint32_t traces : trace_counts) {
      Populations populations;
      MatchTotals totals;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w =
            make_atomicity_workload(traces, params.events, params.seed + rep);
        time_pattern(w.sim->store(), *w.pool, apps::atomicity_pattern(),
                     MatcherConfig{}, populations, totals);
      }
      print_row(std::to_string(traces), totals.events, populations.searched,
                totals.matches_reported);
      report.begin_row(std::to_string(traces));
      report.add("traces", static_cast<std::uint64_t>(traces));
      report.add_totals(totals);
      report.add_latency("searched", populations.searched);
      report.add_latency("all", populations.all);
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "fig8_atomicity: %s\n", error.what());
    return 1;
  }
}
