// Ablation — what each design choice buys (DESIGN.md §4).
//
//   full        GP/LS domain pruning + backjumping + history merging
//   no-prune    chronological candidate scans with post-hoc checks (the
//               paper's "not very efficient in practice" strawman)
//   no-jump     domain pruning but plain chronological backtracking
//   no-merge    pruning + jumping, but every occurrence kept in history
//
// Reported per configuration: per-terminating-event median/max, search
// nodes explored, and history size.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/patterns.h"
#include "bench_util.h"
#include "common/error.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

struct Config {
  const char* name;
  MatcherConfig config;
};

std::vector<Config> configurations() {
  std::vector<Config> out;
  out.push_back({"full", MatcherConfig{}});
  MatcherConfig retain;
  retain.history_retention = 64;
  out.push_back({"retain-64", retain});
  MatcherConfig no_prune;
  no_prune.domain_pruning = false;
  out.push_back({"no-prune", no_prune});
  MatcherConfig no_jump;
  no_jump.backjumping = false;
  out.push_back({"no-jump", no_jump});
  MatcherConfig no_merge;
  no_merge.merge_redundant_history = false;
  out.push_back({"no-merge", no_merge});
  MatcherConfig neither;
  neither.domain_pruning = false;
  neither.backjumping = false;
  out.push_back({"no-prune-no-jump", neither});
  return out;
}

void run_case(const char* case_name,
              const std::vector<Workload>& workloads,
              const std::string& pattern_text, JsonReport& report) {
  for (const Config& config : configurations()) {
    Populations populations;
    MatchTotals totals;
    for (const Workload& w : workloads) {
      time_pattern(w.sim->store(), *w.pool, pattern_text, config.config,
                   populations, totals);
    }
    const metrics::Boxplot box = populations.searched.summarize();
    std::printf("%-10s %-18s %10.2f %10.2f %12" PRIu64 " %12" PRIu64
                " %12" PRIu64 " %12" PRIu64 "\n",
                case_name, config.name, box.median, box.max,
                totals.nodes_explored, totals.history_entries,
                totals.history_pruned, totals.matches_reported);
    report.begin_row(std::string(case_name) + "/" + config.name);
    report.add("case", std::string(case_name));
    report.add("config", std::string(config.name));
    report.add_totals(totals);
    report.add_latency("searched", populations.searched);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto traces = static_cast<std::uint32_t>(
        flags.get_int("traces", 20));
    flags.check_unused();

    std::printf("# Ablation: per-terminating-event cost by matcher "
                "configuration (%u traces)\n", traces);
    std::printf("%-10s %-18s %10s %10s %12s %12s %12s %12s\n", "case",
                "config", "med_us", "max_us", "nodes", "history", "pruned",
                "matches");

    JsonReport report("ablation", params);
    {
      std::vector<Workload> workloads;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        workloads.push_back(make_ordering_workload(traces, params.events,
                                                   params.seed + rep));
      }
      run_case("ordering", workloads, apps::ordering_pattern(), report);
    }
    {
      std::vector<Workload> workloads;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        workloads.push_back(make_atomicity_workload(traces, params.events,
                                                    params.seed + rep));
      }
      run_case("atomicity", workloads, apps::atomicity_pattern(), report);
    }
    {
      std::vector<Workload> workloads;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        workloads.push_back(make_deadlock_workload(traces, 4, params.events,
                                                   params.seed + rep));
      }
      run_case("deadlock", workloads, apps::deadlock_pattern(4), report);
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "ablation: %s\n", error.what());
    return 1;
  }
}
