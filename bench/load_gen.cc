// Open-loop load generator for the sharded serving daemon (docs/SERVER.md,
// docs/BENCHMARKS.md).
//
// Spawns --producers concurrent producer threads against an in-process
// Server, each streaming a private random computation as its own tenant.
// Three properties distinguish this from bench/net_serve:
//
//  * Zipf-skewed tenant sizes: producer i carries ~1/(i+1)^zipf of the
//    event volume, so a few hot tenants dominate while a long tail of
//    small ones churns — the placement hash has to spread both.
//  * Connect/disconnect churn: every producer tears its connection down
//    --churn times mid-stream (no BYE — an abrupt death) and reconnects,
//    resuming from its last position.  Reconnects retry while the server
//    still holds the dead connection, and must land on the tenant's
//    owning shard via migration.
//  * Open-loop pacing: with --rate R each producer stamps event k with
//    its *scheduled* send time (producer start + k/R) and sleeps until
//    that instant before writing.  A stalled server cannot slow the
//    schedule down, so queueing delay is charged to latency instead of
//    being silently absorbed — the coordinated-omission correction.
//    --rate 0 (default) stamps actual send times and runs flat out.
//
// --shards takes a comma list ("1,4") and emits one row per shard count
// per rep, which is how CI derives the shard-scaling ratio.  Latency is
// send-to-observe: ServerConfig::observe_hook fires per released event on
// the owning shard's thread (serial per tenant, so per-producer recorders
// stay single-writer).  `--json FILE` writes an ocep-bench-v1 document.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "net/client.h"
#include "net/server.h"
#include "random_computation.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

constexpr const char* kPattern =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One producer's pre-generated workload, reused across shard counts.
struct ProducerPlan {
  std::unique_ptr<StringPool> pool;
  EventStore store;
};

/// Parses "1,4" into shard counts.
std::vector<std::size_t> parse_shard_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string item = text.substr(begin, end - begin);
    if (!item.empty()) {
      const long value = std::strtol(item.c_str(), nullptr, 10);
      if (value < 1) {
        throw Error("load_gen: bad --shards entry '" + item + "'");
      }
      out.push_back(static_cast<std::size_t>(value));
    }
    begin = end + 1;
  }
  if (out.empty()) {
    throw Error("load_gen: --shards must name at least one shard count");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto producers =
        static_cast<std::uint32_t>(flags.get_int("producers", 64));
    const auto churn = static_cast<std::uint32_t>(flags.get_int("churn", 3));
    const double rate = flags.get_double("rate", 0.0);
    const double zipf = flags.get_double("zipf", 0.8);
    const auto traces = static_cast<std::uint32_t>(flags.get_int("traces", 4));
    const std::vector<std::size_t> shard_counts =
        parse_shard_list(flags.get_string("shards", "1"));
    const bool rebalance = flags.get_bool("rebalance", false);
    const auto rebalance_interval_ms = static_cast<std::uint64_t>(
        flags.get_int("rebalance-interval-ms", 100));
    flags.check_unused();
    if (producers == 0 || churn == 0) {
      std::fprintf(stderr, "load_gen: --producers and --churn must be >= 1\n");
      return 1;
    }

    // Zipf-skewed per-producer event targets with mean params.events.
    std::vector<double> weights(producers);
    double weight_sum = 0.0;
    for (std::uint32_t i = 0; i < producers; ++i) {
      weights[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, zipf);
      weight_sum += weights[i];
    }
    const double scale =
        static_cast<double>(params.events) *
        static_cast<double>(producers) / weight_sum;
    std::vector<ProducerPlan> plans;
    plans.reserve(producers);
    std::uint64_t events_total = 0;
    for (std::uint32_t i = 0; i < producers; ++i) {
      ProducerPlan plan;
      plan.pool = std::make_unique<StringPool>();
      ocep::testing::RandomComputationOptions options;
      options.traces = traces;
      options.events = static_cast<std::uint32_t>(
          std::max(16.0, weights[i] * scale));
      // Each producer's stream derives from the global seed and its own
      // index through a splitmix64 finalizer: adjacent producers get
      // decorrelated workloads, and `--seed S` reproduces the exact fleet
      // (seed+i would alias producer j of run S with producer j-1 of
      // run S+1).
      std::uint64_t derived = params.seed + 0x9e3779b97f4a7c15ULL * (i + 1ULL);
      derived = (derived ^ (derived >> 30U)) * 0xbf58476d1ce4e5b9ULL;
      derived = (derived ^ (derived >> 27U)) * 0x94d049bb133111ebULL;
      options.seed = derived ^ (derived >> 31U);
      plan.store = ocep::testing::random_computation(*plan.pool, options);
      events_total += plan.store.event_count();
      plans.push_back(std::move(plan));
    }

    std::printf("# load_gen (%u producers, zipf %.2f, %" PRIu64
                " events total, churn %u, rate %.0f ev/s/producer, %u reps)\n",
                producers, zipf, events_total, churn, rate, params.reps);
    std::printf("%-12s %12s %11s %9s %9s %9s %8s %8s %8s %6s %7s\n", "config",
                "events/s", "wall_ms", "p50_us", "p99_us", "max_us", "resync",
                "retry", "migrate", "tmigr", "spread");

    JsonReport report("load_gen", params);
    for (const std::size_t shards : shard_counts) {
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        // Per-(tenant, position) scheduled-send timestamps: written by the
        // producer threads, read by the owning shard's observe hook.
        std::vector<std::unique_ptr<std::atomic<std::int64_t>[]>> sent;
        sent.reserve(producers);
        for (std::uint32_t i = 0; i < producers; ++i) {
          const std::uint64_t n = plans[i].store.event_count();
          auto stamps = std::make_unique<std::atomic<std::int64_t>[]>(n);
          for (std::uint64_t p = 0; p < n; ++p) {
            stamps[p].store(0, std::memory_order_relaxed);
          }
          sent.push_back(std::move(stamps));
        }
        std::vector<metrics::LatencyRecorder> latencies(producers);
        std::atomic<std::uint64_t> observed{0};

        net::ServerConfig config;
        config.shards = shards;
        config.max_tenants = static_cast<std::size_t>(producers) * 2;
        config.max_connections = static_cast<std::size_t>(producers) * 2;
        config.rebalance = rebalance;
        config.rebalance_interval_ms = rebalance_interval_ms;
        // Benches run seconds, not minutes: act on smaller gaps and let a
        // hot tenant move again within the run.
        config.rebalance_min_rate = 4096;
        config.rebalance_cooldown_ms = 4 * rebalance_interval_ms;
        config.observe_hook = [&](std::string_view tenant,
                                  std::uint64_t position) {
          // Tenant names are "p<index>".
          const std::size_t idx = static_cast<std::size_t>(
              std::stoul(std::string(tenant.substr(1))));
          if (idx < latencies.size() &&
              position < plans[idx].store.event_count()) {
            const std::int64_t at =
                sent[idx][position].load(std::memory_order_acquire);
            if (at != 0) {
              latencies[idx].add(static_cast<double>(now_ns() - at) / 1000.0);
            }
          }
          observed.fetch_add(1, std::memory_order_relaxed);
        };
        net::Server server(std::move(config));
        std::thread reactor([&server] { server.run(); });

        std::atomic<std::uint32_t> failures{0};
        std::atomic<std::uint64_t> resyncs{0};
        std::atomic<std::uint64_t> retries{0};
        const std::int64_t start_ns = now_ns();
        std::vector<std::thread> threads;
        threads.reserve(producers);
        for (std::uint32_t i = 0; i < producers; ++i) {
          threads.emplace_back([&, i] {
            try {
              const EventStore& store = plans[i].store;
              const std::uint64_t total = store.event_count();
              const std::int64_t schedule_start = now_ns();
              const double interval_ns =
                  rate > 0.0 ? 1e9 / rate : 0.0;
              net::ConnectorConfig cc;
              cc.port = server.port();
              cc.tenant = "p" + std::to_string(i);
              cc.patterns = {kPattern};
              bool ok = true;
              for (std::uint32_t seg = 0; seg < churn && ok; ++seg) {
                const std::uint64_t lo = total * seg / churn;
                const bool last = seg + 1 == churn;
                const std::uint64_t hi = last ? 0 : total * (seg + 1) / churn;
                net::StreamOptions so;
                so.skip_below = lo;
                so.max_events = hi;
                so.before_write = [&, lo](std::uint64_t pos) {
                  if (pos < lo) {
                    return;  // suppressed replay prefix: not sent now
                  }
                  std::int64_t stamp = now_ns();
                  if (interval_ns > 0.0) {
                    // Open loop: the schedule is fixed at producer start;
                    // server stalls surface as latency, not lower rate.
                    const std::int64_t scheduled =
                        schedule_start +
                        static_cast<std::int64_t>(
                            static_cast<double>(pos) * interval_ns);
                    while (now_ns() < scheduled) {
                      std::this_thread::sleep_for(
                          std::chrono::microseconds(50));
                    }
                    stamp = scheduled;
                  }
                  sent[i][pos].store(stamp, std::memory_order_release);
                };
                // The previous segment died abruptly; the server may not
                // have reaped that socket yet, so retry while it still
                // counts the tenant as attached.
                for (int attempt = 0;; ++attempt) {
                  const net::StreamResult result =
                      net::stream_store(store, *plans[i].pool, cc, so);
                  if (result.ack.status == net::AckStatus::kRejected) {
                    // "attached": the abrupt previous segment not reaped
                    // yet; "migrating": the tenant is mid-flight between
                    // shards.  Both clear in milliseconds.
                    if ((result.ack.message.find("attached") !=
                             std::string::npos ||
                         result.ack.message.find("migrating") !=
                             std::string::npos) &&
                        attempt < 2000) {
                      retries.fetch_add(1, std::memory_order_relaxed);
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(2));
                      continue;
                    }
                    ok = false;
                  } else {
                    resyncs.fetch_add(result.session.resyncs_served,
                                      std::memory_order_relaxed);
                    if (last &&
                        (!result.fin_received || result.fin.degraded)) {
                      ok = false;
                    }
                  }
                  break;
                }
              }
              if (!ok) {
                failures.fetch_add(1, std::memory_order_relaxed);
              }
            } catch (const Error&) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
        for (std::thread& t : threads) {
          t.join();
        }
        const double wall_s = static_cast<double>(now_ns() - start_ns) / 1e9;
        server.request_shutdown();
        reactor.join();

        if (failures.load() != 0) {
          std::fprintf(stderr,
                       "load_gen: %u of %u producers failed to stream "
                       "cleanly (shards=%zu)\n",
                       failures.load(), producers, shards);
          return 1;
        }
        const std::uint64_t migrations =
            server.counter_value("net.conn_migrations");
        const std::uint64_t tenant_migrations =
            server.counter_value("net.tenant_migrations");
        // Per-shard utilization spread: each shard registry keeps the
        // events it observed (a migrated tenant's history stays with the
        // shard that served it), so max/mean over shards is 1.0 for a
        // perfectly even daemon and `shards` when one shard did all the
        // work.
        double util_spread = 0.0;
        {
          std::vector<double> shard_events(shards, 0.0);
          for (std::size_t s = 0; s < shards; ++s) {
            for (const auto& [key, value] :
                 server.shard_metrics(s).counter_values()) {
              if (key.rfind("net.tenant.events{", 0) == 0) {
                shard_events[s] += static_cast<double>(value);
              }
            }
          }
          double total = 0.0;
          double hottest = 0.0;
          for (const double e : shard_events) {
            total += e;
            hottest = std::max(hottest, e);
          }
          if (total > 0.0) {
            util_spread = hottest / (total / static_cast<double>(shards));
          }
        }
        const double throughput =
            static_cast<double>(observed.load()) / wall_s;
        metrics::LatencyRecorder latency;
        for (const metrics::LatencyRecorder& r : latencies) {
          for (const double sample : r.samples()) {
            latency.add(sample);
          }
        }
        const metrics::Boxplot box = latency.summarize();
        const std::vector<double>& samples = latency.samples();
        const auto quantile = [&samples](double q) {
          if (samples.empty()) {
            return 0.0;
          }
          const auto idx = static_cast<std::size_t>(
              q * static_cast<double>(samples.size() - 1));
          return samples[idx];
        };
        const std::string label = "s" + std::to_string(shards) +
                                  (rebalance ? "_rb" : "") + "_rep" +
                                  std::to_string(rep);
        std::printf("%-12s %12.0f %11.1f %9.1f %9.1f %9.1f %8" PRIu64
                    " %8" PRIu64 " %8" PRIu64 " %6" PRIu64 " %7.2f\n",
                    label.c_str(), throughput, wall_s * 1e3, quantile(0.50),
                    quantile(0.99), box.max, resyncs.load(), retries.load(),
                    migrations, tenant_migrations, util_spread);

        report.begin_row(label);
        report.add("shards", static_cast<std::uint64_t>(shards));
        report.add("producers", static_cast<std::uint64_t>(producers));
        report.add("churn_segments", static_cast<std::uint64_t>(churn));
        report.add("rate_eps", rate);
        report.add("zipf", zipf);
        report.add("events_total", events_total);
        report.add("events_observed", observed.load());
        report.add("wall_ms", wall_s * 1e3);
        report.add("throughput_eps", throughput);
        report.add("latency_p50_us", quantile(0.50));
        report.add("latency_p99_us", quantile(0.99));
        report.add("latency_max_us", box.max);
        report.add("resyncs", resyncs.load());
        report.add("reconnect_retries", retries.load());
        report.add("migrations", migrations);
        report.add("rebalance", static_cast<std::uint64_t>(rebalance ? 1 : 0));
        report.add("tenant_migrations", tenant_migrations);
        report.add("util_spread", util_spread);
      }
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "load_gen: %s\n", error.what());
    return 1;
  }
}
