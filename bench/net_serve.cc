// Serving-layer bench — throughput and send-to-observe latency of a live
// ocep_served reactor under N concurrent loopback producers.
//
// One in-process Server (ephemeral ports) is hammered by --clients
// producer threads, each streaming the same random computation as its own
// tenant over real TCP.  Every event is timestamped just before it is
// encoded (StreamOptions::before_write) and again when the tenant monitor
// observes it (ServerConfig::observe_hook, on the reactor thread); the
// difference is the full pipe — session encode, socket, epoll wakeup,
// frame reassembly, linearization — reported as a per-event latency
// population.  Throughput is aggregate released events over the wall
// clock of the whole fan-in.  `--shards N` sizes the reactor pool
// (latency samples are recorded per client — each tenant's hook runs
// serially on its owning shard, so per-client recorders stay
// single-writer — and merged before reporting).  `--json FILE` records
// rows for trend tracking; CI floors the reported throughput.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "net/client.h"
#include "net/server.h"
#include "random_computation.h"
#include "testing/chaos_harness.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

constexpr const char* kPattern =
    "P := ['', A, '']; Q := ['', B, ''];\npattern := P -> Q;\n";

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto clients =
        static_cast<std::uint32_t>(flags.get_int("clients", 8));
    const auto traces = static_cast<std::uint32_t>(flags.get_int("traces", 4));
    const auto workers =
        static_cast<std::size_t>(flags.get_int("workers", 0));
    const auto shards =
        static_cast<std::size_t>(flags.get_int("shards", 1));
    flags.check_unused();
    if (clients == 0) {
      std::fprintf(stderr, "net_serve: --clients must be >= 1\n");
      return 1;
    }

    StringPool pool;
    ocep::testing::RandomComputationOptions options;
    options.traces = traces;
    options.events = static_cast<std::uint32_t>(params.events);
    options.seed = params.seed;
    const EventStore source = ocep::testing::random_computation(pool, options);
    const std::uint64_t per_client = source.event_count();

    std::printf("# net_serve (random computation, %u traces, %" PRIu64
                " events/client, %u clients, %zu shards, %u reps)\n",
                traces, per_client, clients, shards, params.reps);
    std::printf("%-6s %12s %11s %9s %9s %9s %8s\n", "rep", "events/s",
                "wall_ms", "p50_us", "p99_us", "max_us", "resyncs");

    JsonReport report("net_serve", params);
    for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
      // Per-(tenant, position) send timestamps, written by the producer
      // threads and read by the reactor's observe hook.
      std::vector<std::unique_ptr<std::atomic<std::int64_t>[]>> sent;
      sent.reserve(clients);
      for (std::uint32_t c = 0; c < clients; ++c) {
        auto stamps =
            std::make_unique<std::atomic<std::int64_t>[]>(per_client);
        for (std::uint64_t i = 0; i < per_client; ++i) {
          stamps[i].store(0, std::memory_order_relaxed);
        }
        sent.push_back(std::move(stamps));
      }
      // With --shards the hook fires concurrently from shard threads,
      // but always serially per tenant — so one recorder per client is
      // single-writer.  Merged after the server stopped.
      std::vector<metrics::LatencyRecorder> latencies(clients);
      std::atomic<std::uint64_t> observed{0};

      net::ServerConfig config;
      config.shards = shards;
      config.tenant.monitor.worker_threads = workers;
      config.observe_hook = [&](std::string_view tenant,
                                std::uint64_t position) {
        // Tenant names are "c<index>".
        const std::size_t idx =
            static_cast<std::size_t>(std::stoul(std::string(tenant.substr(1))));
        if (idx < latencies.size() && position < per_client) {
          const std::int64_t at =
              sent[idx][position].load(std::memory_order_acquire);
          if (at != 0) {
            latencies[idx].add(static_cast<double>(now_ns() - at) / 1000.0);
          }
        }
        observed.fetch_add(1, std::memory_order_relaxed);
      };
      net::Server server(std::move(config));
      std::thread reactor([&server] { server.run(); });

      const std::int64_t start_ns = now_ns();
      std::vector<std::thread> producers;
      std::vector<net::StreamResult> results(clients);
      std::atomic<std::uint32_t> failures{0};
      producers.reserve(clients);
      for (std::uint32_t c = 0; c < clients; ++c) {
        producers.emplace_back([&, c] {
          try {
            StringPool client_pool;
            ocep::testing::RandomComputationOptions copy = options;
            const EventStore client_source =
                ocep::testing::random_computation(client_pool, copy);
            net::ConnectorConfig cc;
            cc.port = server.port();
            cc.tenant = "c" + std::to_string(c);
            cc.patterns = {kPattern};
            net::StreamOptions so;
            so.before_write = [&sent, c](std::uint64_t pos) {
              sent[c][pos].store(now_ns(), std::memory_order_release);
            };
            results[c] = net::stream_store(client_source, client_pool, cc, so);
            if (!results[c].fin_received || results[c].fin.degraded) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const Error&) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (std::thread& t : producers) {
        t.join();
      }
      const double wall_s =
          static_cast<double>(now_ns() - start_ns) / 1e9;
      server.request_shutdown();
      reactor.join();

      if (failures.load() != 0) {
        std::fprintf(stderr,
                     "net_serve: %u of %u clients failed to stream cleanly\n",
                     failures.load(), clients);
        return 1;
      }
      std::uint64_t resyncs = 0;
      for (const net::StreamResult& result : results) {
        resyncs += result.session.resyncs_served;
      }
      const double throughput =
          static_cast<double>(observed.load()) / wall_s;
      metrics::LatencyRecorder latency;
      for (const metrics::LatencyRecorder& r : latencies) {
        for (const double sample : r.samples()) {
          latency.add(sample);
        }
      }
      const metrics::Boxplot box = latency.summarize();
      // summarize() sorted the samples; index quantiles directly.
      const std::vector<double>& samples = latency.samples();
      const auto quantile = [&samples](double q) {
        if (samples.empty()) {
          return 0.0;
        }
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(samples.size() - 1));
        return samples[idx];
      };
      std::printf("%-6u %12.0f %11.1f %9.1f %9.1f %9.1f %8" PRIu64 "\n", rep,
                  throughput, wall_s * 1e3, quantile(0.50), quantile(0.99),
                  box.max, resyncs);

      report.begin_row("rep" + std::to_string(rep));
      report.add("clients", static_cast<std::uint64_t>(clients));
      report.add("shards", static_cast<std::uint64_t>(shards));
      report.add("events_per_client", per_client);
      report.add("events_observed", observed.load());
      report.add("wall_ms", wall_s * 1e3);
      report.add("throughput_eps", throughput);
      report.add("latency_p50_us", quantile(0.50));
      report.add("latency_p99_us", quantile(0.99));
      report.add("latency_max_us", box.max);
      report.add("resyncs", resyncs);
    }
    report.write();
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "net_serve: %s\n", error.what());
    return 1;
  }
}
