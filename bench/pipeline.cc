// Pipeline scaling — multi-pattern throughput vs worker threads.
//
// Patterns shard across workers (core/pipeline.h), so the win grows with
// the number of registered patterns: one pattern cannot go faster than
// one worker, sixteen patterns on eight workers should.  Each cell replays
// the same random computation through a Monitor configured with the given
// worker count, times replay + drain, and reports events/second.  The
// speedup column is against worker_threads = 0 (the exact synchronous
// path) at the same pattern count.  Results are identical across the row
// by construction (tests/test_pipeline.cc checks exactly that); this
// bench measures only the cost.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "core/monitor.h"
#include "metrics/stopwatch.h"
#include "poet/replay.h"
#include "random_computation.h"

using namespace ocep;
using namespace ocep::bench;

namespace {

/// Sixteen two-leaf precedence patterns over the type alphabet A..D —
/// enough to keep eight workers busy with distinct shards.
std::vector<std::string> make_patterns() {
  std::vector<std::string> patterns;
  for (char x = 'A'; x <= 'D'; ++x) {
    for (char y = 'A'; y <= 'D'; ++y) {
      std::string text;
      text += "P := ['', ";
      text += x;
      text += ", '']; Q := ['', ";
      text += y;
      text += ", ''];\npattern := P -> Q;\n";
      patterns.push_back(text);
    }
  }
  return patterns;
}

struct Cell {
  double seconds = 0;
  std::uint64_t stalls = 0;
};

Cell run_config(const EventStore& source, StringPool& pool,
                const std::vector<std::string>& patterns,
                std::size_t pattern_count, std::size_t workers,
                std::uint32_t reps, bool metrics) {
  Cell cell;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    MonitorConfig config;
    config.worker_threads = workers;
    config.metrics = metrics;
    Monitor monitor(pool, config, source.storage());
    for (std::size_t i = 0; i < pattern_count; ++i) {
      monitor.add_pattern(patterns[i]);
    }
    metrics::Stopwatch watch;
    replay(source, monitor);
    monitor.drain();
    cell.seconds += watch.elapsed_us() / 1e6;
    for (const PipelineWorkerStats& worker : monitor.stats().workers) {
      cell.stalls += worker.ring_full_stalls;
    }
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto traces =
        static_cast<std::uint32_t>(flags.get_int("traces", 8));
    // Measure the telemetry layer's own cost (off by default, like
    // MonitorConfig::metrics).
    const bool metrics = flags.get_bool("metrics", false);
    flags.check_unused();
    if (traces < 2) {
      // The generator needs a send peer; one trace would spin forever.
      std::fprintf(stderr, "pipeline: --traces must be >= 2\n");
      return 1;
    }

    StringPool pool;
    testing::RandomComputationOptions options;
    options.traces = traces;
    options.events = static_cast<std::uint32_t>(params.events);
    options.seed = params.seed;
    const EventStore source = testing::random_computation(pool, options);
    const std::vector<std::string> patterns = make_patterns();

    const std::vector<std::size_t> pattern_counts = {1, 2, 4, 8, 16};
    const std::vector<std::size_t> worker_counts = {0, 1, 2, 4, 8};

    std::printf("# Pipeline scaling (random computation, %u traces, "
                "%" PRIu64 " events, %u reps, %u hardware threads)\n",
                traces, static_cast<std::uint64_t>(options.events),
                params.reps, std::thread::hardware_concurrency());
    std::printf("# cells: events/sec over replay+drain; (xN.NN) speedup vs "
                "workers=0 at the same pattern count\n");
    std::printf("%-9s", "patterns");
    for (const std::size_t workers : worker_counts) {
      std::printf(" %17s%zu", "workers=", workers);
    }
    std::printf("\n");

    JsonReport report("pipeline", params);
    for (const std::size_t pattern_count : pattern_counts) {
      std::printf("%-9zu", pattern_count);
      double base_seconds = 0;
      for (const std::size_t workers : worker_counts) {
        const Cell cell = run_config(source, pool, patterns, pattern_count,
                                     workers, params.reps, metrics);
        const double events_total =
            static_cast<double>(options.events) * params.reps;
        const double rate = events_total / cell.seconds;
        if (workers == 0) {
          base_seconds = cell.seconds;
          std::printf(" %12.0f ev/s  -  ", rate);
        } else {
          std::printf(" %12.0f (x%4.2f)", rate, base_seconds / cell.seconds);
        }
        report.begin_row("patterns=" + std::to_string(pattern_count) +
                         "/workers=" + std::to_string(workers));
        report.add("patterns", static_cast<std::uint64_t>(pattern_count));
        report.add("workers", static_cast<std::uint64_t>(workers));
        report.add("events_per_sec", rate);
        report.add("seconds", cell.seconds);
        report.add("speedup",
                   workers == 0 ? 1.0 : base_seconds / cell.seconds);
        report.add("ring_stalls", cell.stalls);
        if (params.verbose && cell.stalls > 0) {
          std::fprintf(stderr, "# patterns=%zu workers=%zu stalls=%" PRIu64
                       "\n", pattern_count, workers, cell.stalls);
        }
      }
      std::printf("\n");
    }
    report.write();
    std::printf("# speedup requires real cores: with %u hardware threads, "
                "workers beyond that only add hand-off cost.\n",
                std::thread::hardware_concurrency());
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "pipeline: %s\n", error.what());
    return 1;
  }
}
