// §V-C.1 comparison — OCEP vs a dependency-graph deadlock detector.
//
// The paper cites graph-based detection at tens of seconds (35 s for a
// cycle of length 30) because the dependency structure grows with the
// execution; OCEP detects the same deadlock orders of magnitude faster.
// This bench runs both detectors over the same recorded streams and
// reports the per-check cost and the cost of the detecting check itself,
// sweeping the injected cycle length.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "apps/patterns.h"
#include "baseline/dependency_graph.h"
#include "bench_util.h"
#include "common/error.h"
#include "metrics/stopwatch.h"

using namespace ocep;
using namespace ocep::bench;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    BenchParams params = parse_params(flags);
    const auto traces = static_cast<std::uint32_t>(
        flags.get_int("traces", 20));
    std::vector<std::uint32_t> cycles;
    for (const std::int64_t c : {flags.get_int("cycle1", 2),
                                 flags.get_int("cycle2", 4),
                                 flags.get_int("cycle3", 8)}) {
      cycles.push_back(static_cast<std::uint32_t>(c));
    }
    flags.check_unused();

    std::printf("# OCEP vs dependency-graph deadlock detection "
                "(%u traces, per-check microseconds)\n", traces);
    std::printf("%-6s %12s | %10s %10s %12s | %10s %10s %12s %12s\n",
                "cycle", "events", "ocep_med", "ocep_max", "ocep_found",
                "graph_med", "graph_max", "graph_found", "graph_edges");
    JsonReport report("baseline_depgraph", params);
    for (const std::uint32_t cycle : cycles) {
      Populations ocep_pop;
      MatchTotals ocep_totals;
      metrics::LatencyRecorder graph_checks;
      std::uint64_t graph_found = 0;
      std::uint64_t graph_edges = 0;
      std::uint64_t events = 0;
      for (std::uint32_t rep = 0; rep < params.reps; ++rep) {
        Workload w = make_deadlock_workload(traces, cycle, params.events,
                                            params.seed + rep);
        events += w.sim->store().event_count();
        time_pattern(w.sim->store(), *w.pool, apps::deadlock_pattern(cycle),
                     MatcherConfig{}, ocep_pop, ocep_totals);

        baseline::DependencyGraphDetector detector(w.sim->store());
        metrics::Stopwatch watch;
        for (const EventId id : w.sim->store().arrival_order()) {
          const Event& event = w.sim->store().event(id);
          const bool check = event.kind == EventKind::kBlockedSend;
          watch.restart();
          const auto result = detector.observe(event);
          const double us = watch.elapsed_us();
          if (check) {
            graph_checks.add(us);
          }
          if (result.has_value() &&
              result->members.size() == cycle) {
            ++graph_found;
          }
        }
        graph_edges += detector.dependency_edges();
      }
      const metrics::Boxplot ocep_box = ocep_pop.searched.summarize();
      const metrics::Boxplot graph_box = graph_checks.summarize();
      std::printf("%-6u %12" PRIu64 " | %10.2f %10.2f %12" PRIu64
                  " | %10.2f %10.2f %12" PRIu64 " %12" PRIu64 "\n",
                  cycle, events, ocep_box.median, ocep_box.max,
                  ocep_totals.matches_reported, graph_box.median,
                  graph_box.max, graph_found, graph_edges);
      report.begin_row(std::to_string(cycle));
      report.add("cycle", static_cast<std::uint64_t>(cycle));
      report.add("traces", static_cast<std::uint64_t>(traces));
      report.add("graph_median_us", graph_box.median);
      report.add("graph_max_us", graph_box.max);
      report.add("graph_found", graph_found);
      report.add("graph_edges", graph_edges);
      report.add_totals(ocep_totals);
      report.add_latency("searched", ocep_pop.searched);
    }
    report.write();
    std::printf("# graph per-check cost grows with the dependency history; "
                "OCEP's domain pruning keeps checks flat.\n");
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "baseline_depgraph: %s\n", error.what());
    return 1;
  }
}
