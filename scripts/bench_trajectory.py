#!/usr/bin/env python3
"""Maintain the BENCH_*.json performance-trajectory files (docs/BENCHMARKS.md).

Each tracked bench has one pinned scenario — small enough for CI, large
enough to exercise the machinery — whose --json output is normalized into
a canonical file at the repo root:

    BENCH_net.json        bench/net_serve   (serving reactor fan-in)
    BENCH_pipeline.json   bench/pipeline    (monitor pipeline scaling)
    BENCH_overload.json   bench/overload    (governed degradation)
    BENCH_rebalance.json  bench/load_gen    (hot-shard live rebalancing)
    BENCH_store.json      bench/store_log   (span-tier durability store)

Committed files form a per-PR trajectory of measured performance; CI does
not compare the *numbers* (runners are noisy) but does fail when a
committed file is structurally stale — missing, unparsable, wrong schema
version, wrong pinned parameters, or with row labels / field names that no
longer match what the bench binary emits today.  Whoever changes a bench's
JSON surface regenerates in the same PR:

    python3 scripts/bench_trajectory.py generate --build-dir build

Subcommands:
    generate [names...]   run pinned scenarios, rewrite BENCH_*.json
    check    [names...]   run pinned scenarios, structural diff vs committed
    plot     [names...]   render the committed trajectory (git log over the
                          BENCH_*.json files) into EXPERIMENTS.md between
                          the bench-trajectory markers
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "ocep-bench-v1"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# name -> (binary, pinned args, output file).  The pinned args must pin
# --events/--reps/--seed: they are recorded in the params block and
# byte-compared by `check`.  `metric` names the headline field the `plot`
# subcommand charts (mean over the scenario's rows); `better` says which
# direction is an improvement, purely for the chart legend.
SCENARIOS = {
    "net": {
        "binary": "bench/net_serve",
        "args": ["--events", "2000", "--reps", "2", "--seed", "7",
                 "--clients", "8", "--shards", "2"],
        "file": "BENCH_net.json",
        "metric": "throughput_eps",
        "better": "higher",
    },
    "pipeline": {
        "binary": "bench/pipeline",
        "args": ["--events", "8000", "--reps", "1", "--seed", "7"],
        "file": "BENCH_pipeline.json",
        "metric": "events_per_sec",
        "better": "higher",
    },
    "overload": {
        "binary": "bench/overload",
        "args": ["--events", "4000", "--reps", "2", "--seed", "7"],
        "file": "BENCH_overload.json",
        "metric": "observe_p99_us",
        "better": "lower",
    },
    # Zipf-skewed producers pile onto one hash bucket; the rebalancer must
    # spread them live.  Records tenant_migrations and util_spread next to
    # the latency columns so the trajectory shows migration activity.
    "rebalance": {
        "binary": "bench/load_gen",
        "args": ["--events", "1500", "--reps", "1", "--seed", "7",
                 "--producers", "16", "--zipf", "1.0", "--shards", "4",
                 "--rebalance", "true", "--rebalance-interval-ms", "50"],
        "file": "BENCH_rebalance.json",
        "metric": "throughput_eps",
        "better": "higher",
    },
    # Span-level storage tier: segment-log append/group-commit/recovery
    # matrix plus the buffer-pool hit rate under skewed span faults and
    # group-commit latency while the compactor relocates concurrently.
    "store": {
        "binary": "bench/store_log",
        "args": ["--events", "2000", "--reps", "1", "--seed", "7",
                 "--records", "3000", "--spans", "1024",
                 "--pool-accesses", "6000"],
        "file": "BENCH_store.json",
        "metric": "pool_hit_rate",
        "better": "higher",
    },
    # Warm-standby replication: peak streamed-but-unacked lag under load,
    # drain time, and the kill -> promote -> producer-FIN failover window.
    "replication": {
        "binary": "bench/replication",
        "args": ["--events", "1500", "--reps", "2", "--seed", "7",
                 "--shards", "2"],
        "file": "BENCH_replication.json",
        "metric": "failover_resume_ms",
        "better": "lower",
    },
}

PLOT_BEGIN = "<!-- bench-trajectory:begin -->"
PLOT_END = "<!-- bench-trajectory:end -->"
EXPERIMENTS = os.path.join(REPO_ROOT, "EXPERIMENTS.md")


def run_scenario(name, build_dir):
    """Runs one pinned scenario; returns the parsed --json document."""
    scenario = SCENARIOS[name]
    binary = os.path.join(build_dir, scenario["binary"])
    if not os.path.exists(binary):
        raise SystemExit(f"bench_trajectory: missing binary {binary} "
                         "(build the repo first)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        cmd = [binary, *scenario["args"], "--json", out_path]
        result = subprocess.run(cmd, stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)
        if result.returncode != 0:
            sys.stderr.write(result.stdout)
            raise SystemExit(f"bench_trajectory: {name} exited "
                             f"{result.returncode}")
        with open(out_path, encoding="utf-8") as handle:
            return json.load(handle)
    finally:
        os.unlink(out_path)


def normalize(doc):
    """Canonical form: sorted keys, stable layout; values untouched."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def structure(doc):
    """The schema-relevant surface: everything except measured values."""
    return {
        "schema": doc.get("schema"),
        "bench": doc.get("bench"),
        "params": doc.get("params"),
        "rows": [
            {"label": row.get("label"), "fields": sorted(row.keys())}
            for row in doc.get("rows", [])
        ],
    }


def validate(name, doc, source):
    scenario = SCENARIOS[name]
    if doc.get("schema") != SCHEMA:
        raise SystemExit(f"bench_trajectory: {source}: schema "
                         f"{doc.get('schema')!r}, expected {SCHEMA!r} "
                         "(regenerate with scripts/bench_trajectory.py)")
    expected_bench = os.path.basename(scenario["binary"])
    if doc.get("bench") != expected_bench:
        raise SystemExit(f"bench_trajectory: {source}: bench "
                         f"{doc.get('bench')!r}, expected "
                         f"{expected_bench!r}")
    args = scenario["args"]
    pinned = {key: int(args[args.index(f"--{key}") + 1])
              for key in ("events", "reps", "seed")}
    if doc.get("params") != pinned:
        raise SystemExit(f"bench_trajectory: {source}: params "
                         f"{doc.get('params')!r} do not match the pinned "
                         f"scenario {pinned!r}")
    if not doc.get("rows"):
        raise SystemExit(f"bench_trajectory: {source}: no rows")


def cmd_generate(names, build_dir):
    for name in names:
        doc = run_scenario(name, build_dir)
        validate(name, doc, f"fresh {name} output")
        path = os.path.join(REPO_ROOT, SCENARIOS[name]["file"])
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(normalize(doc))
        print(f"bench_trajectory: wrote {SCENARIOS[name]['file']} "
              f"({len(doc['rows'])} rows)")


def cmd_check(names, build_dir):
    failed = False
    for name in names:
        committed_path = os.path.join(REPO_ROOT, SCENARIOS[name]["file"])
        if not os.path.exists(committed_path):
            print(f"bench_trajectory: FAIL {name}: "
                  f"{SCENARIOS[name]['file']} is not committed")
            failed = True
            continue
        with open(committed_path, encoding="utf-8") as handle:
            try:
                committed = json.load(handle)
            except json.JSONDecodeError as err:
                print(f"bench_trajectory: FAIL {name}: "
                      f"{SCENARIOS[name]['file']}: {err}")
                failed = True
                continue
        validate(name, committed, SCENARIOS[name]["file"])
        fresh = run_scenario(name, build_dir)
        validate(name, fresh, f"fresh {name} output")
        if structure(committed) != structure(fresh):
            print(f"bench_trajectory: FAIL {name}: committed "
                  f"{SCENARIOS[name]['file']} is stale — the bench now "
                  "emits a different row/field structure; regenerate with "
                  "scripts/bench_trajectory.py generate")
            print(f"  committed: {json.dumps(structure(committed))}")
            print(f"  fresh:     {json.dumps(structure(fresh))}")
            failed = True
        else:
            print(f"bench_trajectory: OK {name} "
                  f"({len(committed['rows'])} rows, structure current)")
    if failed:
        raise SystemExit(1)


def git_trajectory(name):
    """(short_sha, date, subject, mean-metric) per commit touching the
    scenario's file, oldest first; the value is None when that revision
    of the file cannot be parsed or predates the metric."""
    scenario = SCENARIOS[name]
    log = subprocess.run(
        ["git", "log", "--reverse", "--format=%h%x00%cs%x00%s",
         "--", scenario["file"]],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, text=True, check=True)
    points = []
    for line in log.stdout.splitlines():
        sha, date, subject = line.split("\0", 2)
        show = subprocess.run(
            ["git", "show", f"{sha}:{scenario['file']}"],
            cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True)
        value = None
        if show.returncode == 0:
            try:
                doc = json.loads(show.stdout)
                samples = [row[scenario["metric"]]
                           for row in doc.get("rows", [])
                           if scenario["metric"] in row]
                if samples:
                    value = sum(samples) / len(samples)
            except (json.JSONDecodeError, TypeError):
                value = None
        points.append((sha, date, subject, value))
    return points


def render_plot(names):
    """The markdown block that goes between the trajectory markers."""
    lines = [
        "Generated by `python3 scripts/bench_trajectory.py plot` from the",
        "committed `BENCH_*.json` history (`git log`, oldest first).  Each",
        "value is the mean of the scenario's headline metric over its rows",
        "*as measured on the machine that committed it* — read the bars as",
        "trends, not absolute numbers.",
    ]
    width = 32
    for name in names:
        scenario = SCENARIOS[name]
        points = git_trajectory(name)
        lines.append("")
        lines.append(f"### {name} — `{scenario['metric']}` "
                     f"({scenario['better']} is better, "
                     f"`{scenario['file']}`)")
        lines.append("")
        if not any(value is not None for _, _, _, value in points):
            lines.append("_No committed history yet._")
            continue
        peak = max(value for _, _, _, value in points if value is not None)
        lines.append("```")
        for sha, date, subject, value in points:
            if value is None:
                bar, shown = "", "(unparsable)"
            else:
                bar = "#" * max(1, round(width * value / peak)) if peak > 0 \
                    else ""
                shown = f"{value:,.1f}"
            title = subject if len(subject) <= 44 else subject[:41] + "..."
            lines.append(f"{sha:>9}  {date}  {shown:>14}  {bar:<{width}}  "
                         f"{title}")
        lines.append("```")
    return "\n".join(lines)


def cmd_plot(names):
    block = render_plot(names)
    with open(EXPERIMENTS, encoding="utf-8") as handle:
        text = handle.read()
    begin = text.find(PLOT_BEGIN)
    end = text.find(PLOT_END)
    if begin != -1 and end != -1 and end > begin:
        text = (text[:begin + len(PLOT_BEGIN)] + "\n" + block + "\n" +
                text[end:])
    else:
        text = (text.rstrip("\n") +
                "\n\n---\n\n## Performance trajectory\n\n" +
                PLOT_BEGIN + "\n" + block + "\n" + PLOT_END + "\n")
    with open(EXPERIMENTS, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"bench_trajectory: plotted {', '.join(names)} into "
          "EXPERIMENTS.md")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["generate", "check", "plot"])
    parser.add_argument("names", nargs="*", default=None,
                        help="scenario subset (default: all)")
    parser.add_argument("--build-dir", default="build")
    args = parser.parse_args()
    names = args.names or sorted(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise SystemExit(f"bench_trajectory: unknown scenario {name!r} "
                             f"(known: {', '.join(sorted(SCENARIOS))})")
    if args.command == "generate":
        cmd_generate(names, args.build_dir)
    elif args.command == "plot":
        cmd_plot(names)
    else:
        cmd_check(names, args.build_dir)


if __name__ == "__main__":
    main()
