// Deadlock monitor (paper §V-C.1): watch a parallel random-walk
// application for a send-receive cycle of blocked sends.
//
//   ./build/examples/deadlock_monitor [--traces N] [--cycle L] [--steps S]
//
// The application deliberately exchanges walkers with blocking sends before
// receiving; a group of `cycle` processes eventually bursts past the
// channel capacity simultaneously and deadlocks.  The monitor's pattern is
// a cycle of pairwise-concurrent blocked_send events whose process/text
// variables close the loop — when it matches, the system is deadlocked
// even though every process is still formally "running".
#include <cstdio>
#include <string>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "common/flags.h"
#include "core/monitor.h"
#include "sim/sim.h"

using namespace ocep;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    apps::RandomWalkParams params;
    params.processes =
        static_cast<std::uint32_t>(flags.get_int("traces", 10));
    params.cycle_length =
        static_cast<std::uint32_t>(flags.get_int("cycle", 4));
    params.steps = static_cast<std::uint64_t>(flags.get_int("steps", 100));
    flags.check_unused();

    StringPool pool;
    sim::SimConfig config;
    config.seed = 42;
    config.channel_capacity = 2;
    sim::Sim sim(pool, config);
    const apps::RandomWalkApp app = apps::setup_random_walk(sim, params);

    Monitor monitor(pool);
    std::uint64_t alarms = 0;
    monitor.add_pattern(
        apps::deadlock_pattern(params.cycle_length), MatcherConfig{},
        [&](const Match& match, bool fresh) {
          if (!fresh) {
            return;
          }
          ++alarms;
          std::printf("DEADLOCK: cycle of %zu blocked sends detected:\n",
                      match.bindings.size());
          for (const EventId id : match.bindings) {
            const Event& event = monitor.store().event(id);
            std::printf("  %-4s blocked sending to %s (event #%u)\n",
                        std::string(pool.view(monitor.store().trace_name(
                            id.trace))).c_str(),
                        std::string(pool.view(event.text)).c_str(),
                        id.index);
          }
        });
    sim.set_live_sink(&monitor);

    std::printf("running %u-process random walk with an injected "
                "length-%u deadlock cycle...\n",
                params.processes, params.cycle_length);
    const sim::RunResult result = sim.run();
    std::printf("simulation ended after %llu events (%s)\n",
                static_cast<unsigned long long>(result.events),
                result.reason == sim::EndReason::kQuiescent
                    ? "quiescent: blocked processes remain"
                    : "completed");
    if (alarms == 0) {
      std::printf("no deadlock pattern matched\n");
      return 1;
    }
    std::printf("ground truth: the injected cycle is");
    for (const TraceId t : app.cycle) {
      std::printf(" %s",
                  std::string(pool.view(monitor.store().trace_name(t)))
                      .c_str());
    }
    std::printf("\n");
    return 0;
  } catch (const Error& error) {
    std::fprintf(stderr, "deadlock_monitor: %s\n", error.what());
    return 2;
  }
}
