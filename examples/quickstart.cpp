// Quickstart: monitor a two-process computation for a causal pattern.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the whole public API surface once: define a simulated
// application, attach a Monitor as the live event sink, give it a pattern,
// run, and read back the representative subset of matches.
#include <cstdio>
#include <string>

#include "core/monitor.h"
#include "sim/sim.h"

using namespace ocep;

namespace {

// A tiny client/server: the client asks, the server answers, the client
// acknowledges.  Every primitive emits an instrumented event with a vector
// timestamp, exactly like POET instrumentation would.
sim::ProcessBody client_body(sim::Proc& ctx, TraceId server,
                             std::uint64_t requests) {
  for (std::uint64_t i = 0; i < requests; ++i) {
    co_await ctx.send(server, ctx.sym("request"), ctx.sym("work"));
    co_await ctx.recv(server, ctx.sym("recv_response"));
    co_await ctx.local(ctx.sym("done"));
  }
}

sim::ProcessBody server_body(sim::Proc& ctx, TraceId client,
                             std::uint64_t requests) {
  for (std::uint64_t i = 0; i < requests; ++i) {
    co_await ctx.recv(client, ctx.sym("recv_request"));
    co_await ctx.local(ctx.sym("process"));
    co_await ctx.send(client, ctx.sym("response"));
  }
}

}  // namespace

int main() {
  // One string pool per monitoring session; all event attributes intern
  // into it.
  StringPool pool;

  // --- The target application (normally: your instrumented system) ------
  sim::SimConfig config;
  config.seed = 7;
  sim::Sim sim(pool, config);
  struct Ids {
    TraceId client = 0, server = 0;
  };
  auto ids = std::make_shared<Ids>();
  ids->client = sim.add_process("client", [ids](sim::Proc& ctx) {
    return client_body(ctx, ids->server, 10);
  });
  ids->server = sim.add_process("server", [ids](sim::Proc& ctx) {
    return server_body(ctx, ids->client, 10);
  });

  // --- The monitor -------------------------------------------------------
  // Pattern: a request is eventually followed (causally!) by a `done` on
  // the same client.  Classes are [process, type, text]; -> is
  // happens-before.
  Monitor monitor(pool);
  const std::size_t pattern_id = monitor.add_pattern(R"(
      Request := [client, request, ''];
      Done    := [client, done, ''];
      pattern := Request -> Done;
  )");

  // Receive the events live, in a linearization of the partial order.
  sim.set_live_sink(&monitor);
  const sim::RunResult result = sim.run();
  std::printf("simulated %llu events\n",
              static_cast<unsigned long long>(result.events));

  // --- Results -------------------------------------------------------------
  // The representative subset covers every (pattern-event, trace) pair that
  // occurs in any complete match — here both leaves live on the client.
  const OcepMatcher& matcher = monitor.matcher(pattern_id);
  std::printf("matches retained in the representative subset: %zu\n",
              matcher.subset().matches().size());
  for (const Match& match : matcher.subset().matches()) {
    const EventId request = match.bindings[0];
    const EventId done = match.bindings[1];
    std::printf("  request #%u on trace '%s' happens before done #%u\n",
                request.index,
                std::string(pool.view(monitor.store().trace_name(
                    request.trace))).c_str(),
                done.index);
  }
  std::printf("searches run: %llu, candidate events explored: %llu\n",
              static_cast<unsigned long long>(matcher.stats().searches),
              static_cast<unsigned long long>(
                  matcher.stats().nodes_explored));
  return matcher.subset().matches().empty() ? 1 : 0;
}
