// Remote online monitoring over a byte channel: the instrumented system
// streams events through the POET wire protocol as it runs; the monitor
// lives at the other end of a pipe (stand-in for a socket to another
// machine) and reports violations while the system is still executing.
//
//   ./build/examples/remote_monitor [--followers N] [--requests R]
//
// Producer thread:  Sim --live sink--> WireWriter --> pipe
// Consumer (main):  pipe --> WireReader --> Monitor --> reports
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <thread>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "common/fd_stream.h"
#include "common/flags.h"
#include "core/monitor.h"
#include "poet/wire.h"
#include "sim/sim.h"

using namespace ocep;

namespace {

/// Live sink that forwards every simulated event onto the wire.
class WireForwarder final : public EventSink {
 public:
  WireForwarder(std::ostream& out, const StringPool& pool)
      : out_(out), pool_(pool) {}

  void on_traces(const std::vector<Symbol>& names) override {
    writer_ = std::make_unique<WireWriter>(out_, pool_, names);
  }
  void on_event(const Event& event, const VectorClock& clock) override {
    writer_->write(event, clock);
  }
  void finish() { writer_->finish(); }

 private:
  std::ostream& out_;
  const StringPool& pool_;
  std::unique_ptr<WireWriter> writer_;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    apps::OrderingParams params;
    params.followers =
        static_cast<std::uint32_t>(flags.get_int("followers", 10));
    params.requests_each =
        static_cast<std::uint64_t>(flags.get_int("requests", 60));
    params.bug_percent =
        static_cast<std::uint32_t>(flags.get_int("bug-percent", 2));
    flags.check_unused();

    int fds[2];
    if (::pipe(fds) != 0) {
      throw Error("pipe() failed");
    }

    // --- Producer: the instrumented system, in its own thread ---------
    std::thread producer([fds, params] {
      StringPool pool;  // the producer's own pool, as a real process has
      sim::SimConfig config;
      config.seed = 97;
      sim::Sim sim(pool, config);
      apps::setup_leader_follower(sim, params);
      FdOStream out(fds[1]);
      WireForwarder forwarder(out.get(), pool);
      sim.set_live_sink(&forwarder);
      sim.run();
      forwarder.finish();
      out.get().flush();
      ::close(fds[1]);
    });

    // --- Consumer: the remote monitor ----------------------------------
    StringPool pool;
    Monitor monitor(pool);
    std::uint64_t incidents = 0;
    monitor.add_pattern(
        apps::ordering_pattern(), MatcherConfig{},
        [&](const Match& match, bool) {
          ++incidents;
          const Event& snapshot = monitor.store().event(match.bindings[1]);
          std::printf("[remote] stale snapshot for request '%s'\n",
                      std::string(pool.view(snapshot.text)).c_str());
        });
    FdIStream in(fds[0]);
    WireReader reader(in.get(), pool, monitor);
    const std::uint64_t delivered = reader.read_all();
    producer.join();
    ::close(fds[0]);

    std::printf("[remote] monitored %llu events over the wire, "
                "%llu incidents\n",
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(incidents));
    return incidents > 0 ? 0 : 1;
  } catch (const Error& error) {
    std::fprintf(stderr, "remote_monitor: %s\n", error.what());
    return 2;
  }
}
