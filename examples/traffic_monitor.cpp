// Traffic-light safety monitor (the paper's §I motivating example).
//
//   ./build/examples/traffic_monitor [--lights N] [--cycles C]
//                                    [--bug-percent P]
//
// "In a traffic-light system, a correctness condition is that lights in
// only one direction may be green in the global state.  Alternatively,
// this problem can be modeled as a sequence of events between the lights:
// a pattern that represents two events e_i and e_j happening concurrently.
// A match to this pattern signifies that the system is in an unsafe state."
//
// The controller normally serializes green phases through grant/release
// messages; the injected bug occasionally grants a second direction early.
// No global state is ever assembled — concurrency of the two green_on
// events is detected from vector timestamps alone.
#include <cstdio>
#include <string>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "common/flags.h"
#include "core/monitor.h"
#include "sim/sim.h"

using namespace ocep;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    apps::TrafficParams params;
    params.lights = static_cast<std::uint32_t>(flags.get_int("lights", 4));
    params.cycles =
        static_cast<std::uint64_t>(flags.get_int("cycles", 200));
    params.bug_percent =
        static_cast<std::uint32_t>(flags.get_int("bug-percent", 2));
    flags.check_unused();

    StringPool pool;
    sim::SimConfig config;
    config.seed = 47;
    sim::Sim sim(pool, config);
    const apps::TrafficApp app = apps::setup_traffic_lights(sim, params);

    Monitor monitor(pool);
    std::uint64_t alarms = 0;
    monitor.add_pattern(
        apps::traffic_pattern(), MatcherConfig{},
        [&](const Match& match, bool) {
          ++alarms;
          const EventStore& store = monitor.store();
          std::printf("UNSAFE: %s green (phase #%u) concurrently with %s "
                      "green (phase #%u)\n",
                      std::string(pool.view(store.trace_name(
                          match.bindings[0].trace))).c_str(),
                      match.bindings[0].index,
                      std::string(pool.view(store.trace_name(
                          match.bindings[1].trace))).c_str(),
                      match.bindings[1].index);
        });
    sim.set_live_sink(&monitor);
    const sim::RunResult result = sim.run();
    std::printf("%llu events; %llu unsafe-state matches "
                "(%zu early grants injected)\n",
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(alarms),
                app.injections->size());
    if (params.bug_percent == 0) {
      return alarms == 0 ? 0 : 2;
    }
    return alarms > 0 ? 0 : 1;
  } catch (const Error& error) {
    std::fprintf(stderr, "traffic_monitor: %s\n", error.what());
    return 2;
  }
}
