// Message-race monitor (paper §V-C.2): senders racing into a wild-card
// receive.
//
//   ./build/examples/race_monitor [--traces N] [--messages M]
//
// The receiver accepts with MPI_ANY_SOURCE semantics; two concurrent
// incoming messages race, causing nondeterministic delivery order.  The
// pattern pairs two concurrent sends with their partner receives ('<->'),
// so the report names the exact messages involved — the information a
// plain "a race exists" aggregate cannot give (§II).
#include <cstdio>
#include <string>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "common/flags.h"
#include "core/monitor.h"
#include "sim/sim.h"

using namespace ocep;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    apps::RaceParams params;
    params.traces = static_cast<std::uint32_t>(flags.get_int("traces", 6));
    params.messages_each =
        static_cast<std::uint64_t>(flags.get_int("messages", 25));
    flags.check_unused();

    StringPool pool;
    sim::SimConfig config;
    config.seed = 11;
    sim::Sim sim(pool, config);
    apps::setup_race_bench(sim, params);

    Monitor monitor(pool);
    std::uint64_t races = 0;
    monitor.add_pattern(
        apps::race_pattern(), MatcherConfig{},
        [&](const Match& match, bool fresh) {
          ++races;
          if (!fresh) {
            return;  // print only matches that extend coverage
          }
          const EventStore& store = monitor.store();
          const Event& s1 = store.event(match.bindings[0]);
          const Event& s2 = store.event(match.bindings[1]);
          std::printf(
              "RACE: message %llu from %s and message %llu from %s are "
              "concurrent at the wild-card receiver\n",
              static_cast<unsigned long long>(s1.message),
              std::string(pool.view(store.trace_name(
                  match.bindings[0].trace))).c_str(),
              static_cast<unsigned long long>(s2.message),
              std::string(pool.view(store.trace_name(
                  match.bindings[1].trace))).c_str());
        });
    sim.set_live_sink(&monitor);
    const sim::RunResult result = sim.run();
    std::printf("%llu events; %llu race matches reported, %zu retained in "
                "the representative subset\n",
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(races),
                monitor.matcher(0).subset().matches().size());
    return races > 0 ? 0 : 1;
  } catch (const Error& error) {
    std::fprintf(stderr, "race_monitor: %s\n", error.what());
    return 2;
  }
}
