// Atomicity-violation monitor (paper §V-C.3): a semaphore-protected method
// with occasionally skipped acquires.
//
//   ./build/examples/atomicity_monitor [--workers N] [--iterations I]
//                                      [--skip-percent P]
//
// The semaphore is instrumented as its own trace (the µC++ plugin
// behaviour), so correctly protected critical sections are causally
// chained through it; a violation is then simply two *concurrent* section
// entries — no lockset or serializability analysis required.
#include <cstdio>
#include <string>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "common/flags.h"
#include "core/monitor.h"
#include "sim/sim.h"

using namespace ocep;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    apps::AtomicityParams params;
    params.workers =
        static_cast<std::uint32_t>(flags.get_int("workers", 8));
    params.iterations =
        static_cast<std::uint64_t>(flags.get_int("iterations", 120));
    params.skip_percent =
        static_cast<std::uint32_t>(flags.get_int("skip-percent", 2));
    flags.check_unused();

    StringPool pool;
    sim::SimConfig config;
    config.seed = 23;
    sim::Sim sim(pool, config);
    const apps::AtomicityApp app = apps::setup_atomicity(sim, params);

    Monitor monitor(pool);
    std::uint64_t violations = 0;
    monitor.add_pattern(
        apps::atomicity_pattern(), MatcherConfig{},
        [&](const Match& match, bool fresh) {
          ++violations;
          if (!fresh) {
            return;
          }
          const EventStore& store = monitor.store();
          std::printf("ATOMICITY VIOLATION: %s (entry #%u) runs "
                      "concurrently with %s (entry #%u)\n",
                      std::string(pool.view(store.trace_name(
                          match.bindings[0].trace))).c_str(),
                      match.bindings[0].index,
                      std::string(pool.view(store.trace_name(
                          match.bindings[1].trace))).c_str(),
                      match.bindings[1].index);
        });
    sim.set_live_sink(&monitor);
    const sim::RunResult result = sim.run();
    std::printf("%llu events; %llu violation matches (%zu injected "
                "unprotected sections)\n",
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(violations),
                app.injections->size());
    // With skip-percent 0 there must be no reports: the run doubles as a
    // false-positive check.
    if (params.skip_percent == 0) {
      return violations == 0 ? 0 : 2;
    }
    return violations > 0 ? 0 : 1;
  } catch (const Error& error) {
    std::fprintf(stderr, "atomicity_monitor: %s\n", error.what());
    return 2;
  }
}
