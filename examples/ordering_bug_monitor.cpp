// Ordering-bug monitor (paper §III-D): ZooKeeper bug #962.
//
//   ./build/examples/ordering_bug_monitor [--followers N] [--requests R]
//                                         [--bug-percent P]
//                                         [--dump-file incident.poet]
//
// A restarting follower asks the leader for a snapshot; the leader is not
// blocked from updating between taking the snapshot and forwarding it, so
// the follower occasionally receives stale service data.  The pattern uses
// attribute variables to tie Synch / Take_Snapshot / Forward_Snapshot to
// one request and event variables ($Diff, $Write) exactly as in the paper.
//
// On detection the monitor also dumps the collected trace-event data to a
// file, restricting in-depth offline analysis to the involved traces — the
// paper's "complementary tool" workflow (§II).
#include <cstdio>
#include <fstream>
#include <string>

#include "apps/apps.h"
#include "apps/patterns.h"
#include "common/error.h"
#include "common/flags.h"
#include "core/monitor.h"
#include "poet/dump.h"
#include "sim/sim.h"

using namespace ocep;

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    apps::OrderingParams params;
    params.followers =
        static_cast<std::uint32_t>(flags.get_int("followers", 12));
    params.requests_each =
        static_cast<std::uint64_t>(flags.get_int("requests", 50));
    params.bug_percent =
        static_cast<std::uint32_t>(flags.get_int("bug-percent", 2));
    const std::string dump_file = flags.get_string("dump-file", "");
    flags.check_unused();

    StringPool pool;
    sim::SimConfig config;
    config.seed = 31;
    sim::Sim sim(pool, config);
    const apps::OrderingApp app = apps::setup_leader_follower(sim, params);

    Monitor monitor(pool);
    std::uint64_t incidents = 0;
    monitor.add_pattern(
        apps::ordering_pattern(), MatcherConfig{},
        [&](const Match& match, bool) {
          ++incidents;
          const EventStore& store = monitor.store();
          const Event& snapshot = store.event(match.bindings[1]);
          std::printf(
              "STALE SNAPSHOT: request '%s' — leader updated between "
              "Take_Snapshot (#%u) and Forward_Snapshot (#%u)\n",
              std::string(pool.view(snapshot.text)).c_str(),
              match.bindings[1].index, match.bindings[3].index);
        });
    sim.set_live_sink(&monitor);
    const sim::RunResult result = sim.run();
    std::printf("%llu events; %llu stale-snapshot incidents "
                "(ground truth: %zu injected)\n",
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(incidents),
                app.injections->size());

    if (!dump_file.empty() && incidents > 0) {
      std::ofstream out(dump_file, std::ios::binary);
      dump(monitor.store(), pool, out);
      std::printf("trace-event data saved to %s for offline analysis\n",
                  dump_file.c_str());
    }
    return incidents == app.injections->size() ? 0 : 1;
  } catch (const Error& error) {
    std::fprintf(stderr, "ordering_bug_monitor: %s\n", error.what());
    return 2;
  }
}
