# Empty dependencies file for ocep_tests.
# This may be replaced when dependencies are built.
