
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cc" "tests/CMakeFiles/ocep_tests.dir/test_baseline.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_baseline.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/ocep_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_compound.cc" "tests/CMakeFiles/ocep_tests.dir/test_compound.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_compound.cc.o.d"
  "/root/repo/tests/test_dump.cc" "tests/CMakeFiles/ocep_tests.dir/test_dump.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_dump.cc.o.d"
  "/root/repo/tests/test_event_store.cc" "tests/CMakeFiles/ocep_tests.dir/test_event_store.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_event_store.cc.o.d"
  "/root/repo/tests/test_history_subset.cc" "tests/CMakeFiles/ocep_tests.dir/test_history_subset.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_history_subset.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/ocep_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_linearizer.cc" "tests/CMakeFiles/ocep_tests.dir/test_linearizer.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_linearizer.cc.o.d"
  "/root/repo/tests/test_matcher.cc" "tests/CMakeFiles/ocep_tests.dir/test_matcher.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_matcher.cc.o.d"
  "/root/repo/tests/test_matcher_property.cc" "tests/CMakeFiles/ocep_tests.dir/test_matcher_property.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_matcher_property.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/ocep_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/ocep_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_pattern.cc" "tests/CMakeFiles/ocep_tests.dir/test_pattern.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_pattern.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/ocep_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_sim_semaphore.cc" "tests/CMakeFiles/ocep_tests.dir/test_sim_semaphore.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_sim_semaphore.cc.o.d"
  "/root/repo/tests/test_vector_clock.cc" "tests/CMakeFiles/ocep_tests.dir/test_vector_clock.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_vector_clock.cc.o.d"
  "/root/repo/tests/test_wire.cc" "tests/CMakeFiles/ocep_tests.dir/test_wire.cc.o" "gcc" "tests/CMakeFiles/ocep_tests.dir/test_wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/ocep_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ocep_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ocep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/ocep_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ocep_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ocep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/poet/CMakeFiles/ocep_poet.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/ocep_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ocep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
