# Empty dependencies file for ocep_sim.
# This may be replaced when dependencies are built.
