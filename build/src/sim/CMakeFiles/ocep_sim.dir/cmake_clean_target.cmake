file(REMOVE_RECURSE
  "libocep_sim.a"
)
