file(REMOVE_RECURSE
  "CMakeFiles/ocep_sim.dir/sim.cc.o"
  "CMakeFiles/ocep_sim.dir/sim.cc.o.d"
  "libocep_sim.a"
  "libocep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
