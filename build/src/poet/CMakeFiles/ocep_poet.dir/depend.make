# Empty dependencies file for ocep_poet.
# This may be replaced when dependencies are built.
