file(REMOVE_RECURSE
  "CMakeFiles/ocep_poet.dir/dump.cc.o"
  "CMakeFiles/ocep_poet.dir/dump.cc.o.d"
  "CMakeFiles/ocep_poet.dir/event_store.cc.o"
  "CMakeFiles/ocep_poet.dir/event_store.cc.o.d"
  "CMakeFiles/ocep_poet.dir/linearizer.cc.o"
  "CMakeFiles/ocep_poet.dir/linearizer.cc.o.d"
  "CMakeFiles/ocep_poet.dir/replay.cc.o"
  "CMakeFiles/ocep_poet.dir/replay.cc.o.d"
  "CMakeFiles/ocep_poet.dir/wire.cc.o"
  "CMakeFiles/ocep_poet.dir/wire.cc.o.d"
  "libocep_poet.a"
  "libocep_poet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_poet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
