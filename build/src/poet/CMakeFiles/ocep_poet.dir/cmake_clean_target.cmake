file(REMOVE_RECURSE
  "libocep_poet.a"
)
