# Empty compiler generated dependencies file for ocep_metrics.
# This may be replaced when dependencies are built.
