file(REMOVE_RECURSE
  "CMakeFiles/ocep_metrics.dir/boxplot.cc.o"
  "CMakeFiles/ocep_metrics.dir/boxplot.cc.o.d"
  "libocep_metrics.a"
  "libocep_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
