file(REMOVE_RECURSE
  "libocep_metrics.a"
)
