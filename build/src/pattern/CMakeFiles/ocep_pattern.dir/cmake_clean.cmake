file(REMOVE_RECURSE
  "CMakeFiles/ocep_pattern.dir/compile.cc.o"
  "CMakeFiles/ocep_pattern.dir/compile.cc.o.d"
  "CMakeFiles/ocep_pattern.dir/lexer.cc.o"
  "CMakeFiles/ocep_pattern.dir/lexer.cc.o.d"
  "CMakeFiles/ocep_pattern.dir/parser.cc.o"
  "CMakeFiles/ocep_pattern.dir/parser.cc.o.d"
  "libocep_pattern.a"
  "libocep_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
