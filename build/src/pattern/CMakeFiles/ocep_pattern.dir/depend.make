# Empty dependencies file for ocep_pattern.
# This may be replaced when dependencies are built.
