file(REMOVE_RECURSE
  "libocep_pattern.a"
)
