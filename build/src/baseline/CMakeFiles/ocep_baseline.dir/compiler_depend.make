# Empty compiler generated dependencies file for ocep_baseline.
# This may be replaced when dependencies are built.
