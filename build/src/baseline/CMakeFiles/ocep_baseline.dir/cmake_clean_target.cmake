file(REMOVE_RECURSE
  "libocep_baseline.a"
)
