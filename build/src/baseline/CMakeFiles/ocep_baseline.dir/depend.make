# Empty dependencies file for ocep_baseline.
# This may be replaced when dependencies are built.
