file(REMOVE_RECURSE
  "CMakeFiles/ocep_baseline.dir/conflict_graph.cc.o"
  "CMakeFiles/ocep_baseline.dir/conflict_graph.cc.o.d"
  "CMakeFiles/ocep_baseline.dir/dependency_graph.cc.o"
  "CMakeFiles/ocep_baseline.dir/dependency_graph.cc.o.d"
  "CMakeFiles/ocep_baseline.dir/naive_matcher.cc.o"
  "CMakeFiles/ocep_baseline.dir/naive_matcher.cc.o.d"
  "CMakeFiles/ocep_baseline.dir/race_checker.cc.o"
  "CMakeFiles/ocep_baseline.dir/race_checker.cc.o.d"
  "CMakeFiles/ocep_baseline.dir/window_matcher.cc.o"
  "CMakeFiles/ocep_baseline.dir/window_matcher.cc.o.d"
  "libocep_baseline.a"
  "libocep_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
