file(REMOVE_RECURSE
  "CMakeFiles/ocep_core.dir/matcher.cc.o"
  "CMakeFiles/ocep_core.dir/matcher.cc.o.d"
  "CMakeFiles/ocep_core.dir/monitor.cc.o"
  "CMakeFiles/ocep_core.dir/monitor.cc.o.d"
  "libocep_core.a"
  "libocep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
