# Empty compiler generated dependencies file for ocep_core.
# This may be replaced when dependencies are built.
