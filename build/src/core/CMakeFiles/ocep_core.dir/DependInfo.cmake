
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/matcher.cc" "src/core/CMakeFiles/ocep_core.dir/matcher.cc.o" "gcc" "src/core/CMakeFiles/ocep_core.dir/matcher.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/ocep_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/ocep_core.dir/monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pattern/CMakeFiles/ocep_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/poet/CMakeFiles/ocep_poet.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/ocep_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ocep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
