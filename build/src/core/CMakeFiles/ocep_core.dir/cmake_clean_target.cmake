file(REMOVE_RECURSE
  "libocep_core.a"
)
