# Empty dependencies file for ocep_causality.
# This may be replaced when dependencies are built.
