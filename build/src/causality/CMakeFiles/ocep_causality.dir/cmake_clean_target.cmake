file(REMOVE_RECURSE
  "libocep_causality.a"
)
