file(REMOVE_RECURSE
  "CMakeFiles/ocep_causality.dir/compound.cc.o"
  "CMakeFiles/ocep_causality.dir/compound.cc.o.d"
  "libocep_causality.a"
  "libocep_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
