# Empty compiler generated dependencies file for ocep_common.
# This may be replaced when dependencies are built.
