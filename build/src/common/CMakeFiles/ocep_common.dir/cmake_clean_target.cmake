file(REMOVE_RECURSE
  "libocep_common.a"
)
