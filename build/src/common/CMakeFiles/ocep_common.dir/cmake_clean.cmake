file(REMOVE_RECURSE
  "CMakeFiles/ocep_common.dir/flags.cc.o"
  "CMakeFiles/ocep_common.dir/flags.cc.o.d"
  "CMakeFiles/ocep_common.dir/string_pool.cc.o"
  "CMakeFiles/ocep_common.dir/string_pool.cc.o.d"
  "libocep_common.a"
  "libocep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
