file(REMOVE_RECURSE
  "CMakeFiles/ocep_apps.dir/atomicity_app.cc.o"
  "CMakeFiles/ocep_apps.dir/atomicity_app.cc.o.d"
  "CMakeFiles/ocep_apps.dir/leader_follower.cc.o"
  "CMakeFiles/ocep_apps.dir/leader_follower.cc.o.d"
  "CMakeFiles/ocep_apps.dir/patterns.cc.o"
  "CMakeFiles/ocep_apps.dir/patterns.cc.o.d"
  "CMakeFiles/ocep_apps.dir/race_bench.cc.o"
  "CMakeFiles/ocep_apps.dir/race_bench.cc.o.d"
  "CMakeFiles/ocep_apps.dir/random_walk.cc.o"
  "CMakeFiles/ocep_apps.dir/random_walk.cc.o.d"
  "CMakeFiles/ocep_apps.dir/traffic_light.cc.o"
  "CMakeFiles/ocep_apps.dir/traffic_light.cc.o.d"
  "libocep_apps.a"
  "libocep_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
