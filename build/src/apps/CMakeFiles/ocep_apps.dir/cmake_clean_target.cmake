file(REMOVE_RECURSE
  "libocep_apps.a"
)
