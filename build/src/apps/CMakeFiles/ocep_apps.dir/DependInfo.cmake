
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/atomicity_app.cc" "src/apps/CMakeFiles/ocep_apps.dir/atomicity_app.cc.o" "gcc" "src/apps/CMakeFiles/ocep_apps.dir/atomicity_app.cc.o.d"
  "/root/repo/src/apps/leader_follower.cc" "src/apps/CMakeFiles/ocep_apps.dir/leader_follower.cc.o" "gcc" "src/apps/CMakeFiles/ocep_apps.dir/leader_follower.cc.o.d"
  "/root/repo/src/apps/patterns.cc" "src/apps/CMakeFiles/ocep_apps.dir/patterns.cc.o" "gcc" "src/apps/CMakeFiles/ocep_apps.dir/patterns.cc.o.d"
  "/root/repo/src/apps/race_bench.cc" "src/apps/CMakeFiles/ocep_apps.dir/race_bench.cc.o" "gcc" "src/apps/CMakeFiles/ocep_apps.dir/race_bench.cc.o.d"
  "/root/repo/src/apps/random_walk.cc" "src/apps/CMakeFiles/ocep_apps.dir/random_walk.cc.o" "gcc" "src/apps/CMakeFiles/ocep_apps.dir/random_walk.cc.o.d"
  "/root/repo/src/apps/traffic_light.cc" "src/apps/CMakeFiles/ocep_apps.dir/traffic_light.cc.o" "gcc" "src/apps/CMakeFiles/ocep_apps.dir/traffic_light.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ocep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/poet/CMakeFiles/ocep_poet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ocep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/ocep_causality.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
