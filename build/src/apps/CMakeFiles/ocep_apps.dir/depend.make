# Empty dependencies file for ocep_apps.
# This may be replaced when dependencies are built.
