# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deadlock "/root/repo/build/examples/deadlock_monitor" "--traces" "8" "--steps" "60")
set_tests_properties(example_deadlock PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_race "/root/repo/build/examples/race_monitor" "--traces" "5" "--messages" "15")
set_tests_properties(example_race PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_atomicity "/root/repo/build/examples/atomicity_monitor" "--workers" "5" "--iterations" "60")
set_tests_properties(example_atomicity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_atomicity_clean "/root/repo/build/examples/atomicity_monitor" "--workers" "5" "--iterations" "40" "--skip-percent" "0")
set_tests_properties(example_atomicity_clean PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ordering "/root/repo/build/examples/ordering_bug_monitor" "--followers" "6" "--requests" "40")
set_tests_properties(example_ordering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic "/root/repo/build/examples/traffic_monitor" "--lights" "4" "--cycles" "150")
set_tests_properties(example_traffic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote "/root/repo/build/examples/remote_monitor" "--followers" "6" "--requests" "40")
set_tests_properties(example_remote PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic_clean "/root/repo/build/examples/traffic_monitor" "--lights" "4" "--cycles" "80" "--bug-percent" "0")
set_tests_properties(example_traffic_clean PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
