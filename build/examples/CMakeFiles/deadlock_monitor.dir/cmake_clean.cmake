file(REMOVE_RECURSE
  "CMakeFiles/deadlock_monitor.dir/deadlock_monitor.cpp.o"
  "CMakeFiles/deadlock_monitor.dir/deadlock_monitor.cpp.o.d"
  "deadlock_monitor"
  "deadlock_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
