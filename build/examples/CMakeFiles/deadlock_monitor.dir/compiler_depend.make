# Empty compiler generated dependencies file for deadlock_monitor.
# This may be replaced when dependencies are built.
