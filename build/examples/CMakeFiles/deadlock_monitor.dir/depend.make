# Empty dependencies file for deadlock_monitor.
# This may be replaced when dependencies are built.
