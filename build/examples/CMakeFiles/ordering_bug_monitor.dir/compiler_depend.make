# Empty compiler generated dependencies file for ordering_bug_monitor.
# This may be replaced when dependencies are built.
