file(REMOVE_RECURSE
  "CMakeFiles/ordering_bug_monitor.dir/ordering_bug_monitor.cpp.o"
  "CMakeFiles/ordering_bug_monitor.dir/ordering_bug_monitor.cpp.o.d"
  "ordering_bug_monitor"
  "ordering_bug_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_bug_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
