file(REMOVE_RECURSE
  "CMakeFiles/atomicity_monitor.dir/atomicity_monitor.cpp.o"
  "CMakeFiles/atomicity_monitor.dir/atomicity_monitor.cpp.o.d"
  "atomicity_monitor"
  "atomicity_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomicity_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
