# Empty dependencies file for atomicity_monitor.
# This may be replaced when dependencies are built.
