# Empty compiler generated dependencies file for race_monitor.
# This may be replaced when dependencies are built.
