file(REMOVE_RECURSE
  "CMakeFiles/race_monitor.dir/race_monitor.cpp.o"
  "CMakeFiles/race_monitor.dir/race_monitor.cpp.o.d"
  "race_monitor"
  "race_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
