# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_pipeline "/usr/bin/cmake" "-DRECORD=/root/repo/build/tools/ocep_record" "-DINSPECT=/root/repo/build/tools/ocep_inspect" "-DMATCH=/root/repo/build/tools/ocep_match" "-DWORK=/root/repo/build/tools" "-DSRC=/root/repo/tools" "-P" "/root/repo/tools/pipeline_test.cmake")
set_tests_properties(tools_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
