file(REMOVE_RECURSE
  "CMakeFiles/ocep_inspect.dir/ocep_inspect.cpp.o"
  "CMakeFiles/ocep_inspect.dir/ocep_inspect.cpp.o.d"
  "ocep_inspect"
  "ocep_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
