# Empty dependencies file for ocep_inspect.
# This may be replaced when dependencies are built.
