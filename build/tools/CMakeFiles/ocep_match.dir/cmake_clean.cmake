file(REMOVE_RECURSE
  "CMakeFiles/ocep_match.dir/ocep_match.cpp.o"
  "CMakeFiles/ocep_match.dir/ocep_match.cpp.o.d"
  "ocep_match"
  "ocep_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
