# Empty compiler generated dependencies file for ocep_match.
# This may be replaced when dependencies are built.
