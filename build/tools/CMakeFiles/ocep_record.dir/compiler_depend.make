# Empty compiler generated dependencies file for ocep_record.
# This may be replaced when dependencies are built.
