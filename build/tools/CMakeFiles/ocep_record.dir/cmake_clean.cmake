file(REMOVE_RECURSE
  "CMakeFiles/ocep_record.dir/ocep_record.cpp.o"
  "CMakeFiles/ocep_record.dir/ocep_record.cpp.o.d"
  "ocep_record"
  "ocep_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
