file(REMOVE_RECURSE
  "CMakeFiles/ocep_draw.dir/ocep_draw.cpp.o"
  "CMakeFiles/ocep_draw.dir/ocep_draw.cpp.o.d"
  "ocep_draw"
  "ocep_draw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
