# Empty compiler generated dependencies file for ocep_draw.
# This may be replaced when dependencies are built.
