# Empty compiler generated dependencies file for completeness.
# This may be replaced when dependencies are built.
