file(REMOVE_RECURSE
  "CMakeFiles/completeness.dir/completeness.cc.o"
  "CMakeFiles/completeness.dir/completeness.cc.o.d"
  "completeness"
  "completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
