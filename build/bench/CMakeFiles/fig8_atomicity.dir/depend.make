# Empty dependencies file for fig8_atomicity.
# This may be replaced when dependencies are built.
