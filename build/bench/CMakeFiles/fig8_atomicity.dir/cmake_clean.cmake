file(REMOVE_RECURSE
  "CMakeFiles/fig8_atomicity.dir/fig8_atomicity.cc.o"
  "CMakeFiles/fig8_atomicity.dir/fig8_atomicity.cc.o.d"
  "fig8_atomicity"
  "fig8_atomicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
