# Empty dependencies file for fig6_deadlock.
# This may be replaced when dependencies are built.
