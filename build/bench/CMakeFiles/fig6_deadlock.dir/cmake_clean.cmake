file(REMOVE_RECURSE
  "CMakeFiles/fig6_deadlock.dir/fig6_deadlock.cc.o"
  "CMakeFiles/fig6_deadlock.dir/fig6_deadlock.cc.o.d"
  "fig6_deadlock"
  "fig6_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
