# Empty dependencies file for baseline_depgraph.
# This may be replaced when dependencies are built.
