
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/baseline_depgraph.cc" "bench/CMakeFiles/baseline_depgraph.dir/baseline_depgraph.cc.o" "gcc" "bench/CMakeFiles/baseline_depgraph.dir/baseline_depgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ocep_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ocep_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ocep_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ocep_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ocep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ocep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/poet/CMakeFiles/ocep_poet.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/ocep_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/ocep_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ocep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
