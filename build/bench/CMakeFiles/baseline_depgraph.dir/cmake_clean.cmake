file(REMOVE_RECURSE
  "CMakeFiles/baseline_depgraph.dir/baseline_depgraph.cc.o"
  "CMakeFiles/baseline_depgraph.dir/baseline_depgraph.cc.o.d"
  "baseline_depgraph"
  "baseline_depgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_depgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
