file(REMOVE_RECURSE
  "CMakeFiles/fig10_table.dir/fig10_table.cc.o"
  "CMakeFiles/fig10_table.dir/fig10_table.cc.o.d"
  "fig10_table"
  "fig10_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
