# Empty compiler generated dependencies file for fig10_table.
# This may be replaced when dependencies are built.
