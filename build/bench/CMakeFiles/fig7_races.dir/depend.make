# Empty dependencies file for fig7_races.
# This may be replaced when dependencies are built.
