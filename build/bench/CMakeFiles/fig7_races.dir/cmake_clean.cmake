file(REMOVE_RECURSE
  "CMakeFiles/fig7_races.dir/fig7_races.cc.o"
  "CMakeFiles/fig7_races.dir/fig7_races.cc.o.d"
  "fig7_races"
  "fig7_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
