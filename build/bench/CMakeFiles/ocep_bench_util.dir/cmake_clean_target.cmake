file(REMOVE_RECURSE
  "libocep_bench_util.a"
)
