file(REMOVE_RECURSE
  "CMakeFiles/ocep_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ocep_bench_util.dir/bench_util.cc.o.d"
  "libocep_bench_util.a"
  "libocep_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocep_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
