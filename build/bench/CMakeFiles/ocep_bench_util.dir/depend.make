# Empty dependencies file for ocep_bench_util.
# This may be replaced when dependencies are built.
