# Empty dependencies file for memory_store.
# This may be replaced when dependencies are built.
