file(REMOVE_RECURSE
  "CMakeFiles/memory_store.dir/memory_store.cc.o"
  "CMakeFiles/memory_store.dir/memory_store.cc.o.d"
  "memory_store"
  "memory_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
