file(REMOVE_RECURSE
  "CMakeFiles/fig9_ordering.dir/fig9_ordering.cc.o"
  "CMakeFiles/fig9_ordering.dir/fig9_ordering.cc.o.d"
  "fig9_ordering"
  "fig9_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
