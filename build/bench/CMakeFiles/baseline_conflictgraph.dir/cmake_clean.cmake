file(REMOVE_RECURSE
  "CMakeFiles/baseline_conflictgraph.dir/baseline_conflictgraph.cc.o"
  "CMakeFiles/baseline_conflictgraph.dir/baseline_conflictgraph.cc.o.d"
  "baseline_conflictgraph"
  "baseline_conflictgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_conflictgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
