# Empty compiler generated dependencies file for baseline_conflictgraph.
# This may be replaced when dependencies are built.
