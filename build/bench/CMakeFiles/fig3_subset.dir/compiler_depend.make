# Empty compiler generated dependencies file for fig3_subset.
# This may be replaced when dependencies are built.
