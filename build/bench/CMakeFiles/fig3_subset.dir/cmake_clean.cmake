file(REMOVE_RECURSE
  "CMakeFiles/fig3_subset.dir/fig3_subset.cc.o"
  "CMakeFiles/fig3_subset.dir/fig3_subset.cc.o.d"
  "fig3_subset"
  "fig3_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
