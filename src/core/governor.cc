#include "core/governor.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "poet/varint.h"

namespace ocep {

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
    case BreakerState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

SearchBudget PatternGovernor::probe_budget() const noexcept {
  SearchBudget probe = budget_;
  const std::uint32_t divisor =
      std::max<std::uint32_t>(breaker_.probe_divisor, 1);
  if (probe.max_steps > 0) {
    probe.max_steps = std::max<std::uint64_t>(probe.max_steps / divisor, 1);
  }
  if (probe.deadline_ns > 0) {
    probe.deadline_ns =
        std::max<std::uint64_t>(probe.deadline_ns / divisor, 1);
  }
  return probe;
}

bool PatternGovernor::admit(std::uint64_t observe_index,
                            SearchBudget& effective) {
  switch (state_) {
    case BreakerState::kQuarantined:
      return false;
    case BreakerState::kOpen:
      if (observe_index - opened_at_ < breaker_.cooldown_observes) {
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      ++probes_;
      effective = probe_budget();
      return true;
    case BreakerState::kClosed:
      effective = budget_;
      return true;
  }
  return false;
}

void PatternGovernor::on_search_result(std::uint64_t observe_index,
                                       bool aborted) {
  if (state_ == BreakerState::kHalfOpen) {
    if (aborted) {
      state_ = BreakerState::kOpen;
      opened_at_ = observe_index;
      ++trips_;
    } else {
      state_ = BreakerState::kClosed;
      failures_.clear();
    }
    return;
  }
  if (state_ != BreakerState::kClosed || !aborted ||
      breaker_.trip_failures == 0) {
    return;
  }
  failures_.push_back(observe_index);
  if (breaker_.window_observes > 0) {
    while (!failures_.empty() &&
           observe_index - failures_.front() >= breaker_.window_observes) {
      failures_.pop_front();
    }
  }
  if (failures_.size() >= breaker_.trip_failures) {
    state_ = BreakerState::kOpen;
    opened_at_ = observe_index;
    ++trips_;
    failures_.clear();
  }
}

void PatternGovernor::quarantine(std::string reason) {
  state_ = BreakerState::kQuarantined;
  last_error_ = std::move(reason);
  ++trips_;
  failures_.clear();
}

void PatternGovernor::record_error(std::string reason) {
  last_error_ = std::move(reason);
}

void PatternGovernor::checkpoint(std::ostream& out) const {
  poet::put_varint(out, static_cast<std::uint64_t>(state_));
  poet::put_varint(out, opened_at_);
  poet::put_varint(out, trips_);
  poet::put_varint(out, probes_);
  poet::put_varint(out, failures_.size());
  for (const std::uint64_t index : failures_) {
    poet::put_varint(out, index);
  }
  poet::put_string(out, last_error_);
}

void PatternGovernor::restore(std::istream& in) {
  const std::uint64_t raw_state = poet::get_varint(in);
  if (raw_state > static_cast<std::uint64_t>(BreakerState::kQuarantined)) {
    throw SerializationError("corrupt checkpoint: unknown breaker state " +
                             std::to_string(raw_state));
  }
  state_ = static_cast<BreakerState>(raw_state);
  opened_at_ = poet::get_varint(in);
  trips_ = poet::get_varint(in);
  probes_ = poet::get_varint(in);
  failures_.clear();
  const std::uint64_t failure_count = poet::get_varint(in);
  if (failure_count > (1ULL << 24)) {
    throw SerializationError(
        "corrupt checkpoint: unreasonable breaker failure count");
  }
  for (std::uint64_t i = 0; i < failure_count; ++i) {
    failures_.push_back(poet::get_varint(in));
  }
  last_error_ = poet::get_string(in);
}

bool HealthReport::degraded() const noexcept {
  for (const PatternHealth& pattern : patterns) {
    if (pattern.state != BreakerState::kClosed || pattern.searches_aborted ||
        pattern.observes_shed || pattern.breaker_trips ||
        pattern.history_evicted || pattern.callback_errors) {
      return true;
    }
  }
  for (const WorkerHealth& worker : workers) {
    if (worker.restarts || worker.quarantined_patterns) {
      return true;
    }
  }
  return ingest.sheds || ingest.frames_corrupt || ingest.frames_gap ||
         ingest.resync_failures;
}

void HealthReport::to_text(std::ostream& out) const {
  out << "health: " << (degraded() ? "DEGRADED" : "ok") << "\n";
  for (const PatternHealth& p : patterns) {
    out << "pattern " << p.pattern << ": " << to_string(p.state)
        << "  searches=" << p.searches << " aborted=" << p.searches_aborted
        << " shed=" << p.observes_shed << " trips=" << p.breaker_trips
        << " probes=" << p.breaker_probes << "\n"
        << "  history: entries=" << p.history_entries
        << " bytes=" << p.history_bytes << " evicted=" << p.history_evicted
        << "  callback_errors=" << p.callback_errors << "\n";
    if (!p.last_error.empty()) {
      out << "  last_error: " << p.last_error << "\n";
    }
  }
  for (const WorkerHealth& w : workers) {
    out << "worker " << w.worker << ": batches=" << w.batches
        << " heartbeat=" << w.heartbeat << " restarts=" << w.restarts
        << " quarantined_patterns=" << w.quarantined_patterns << "\n";
  }
  out << "ingest: offered=" << ingest.offered
      << " delivered=" << ingest.delivered << " sheds=" << ingest.sheds
      << " duplicates=" << ingest.duplicates
      << " frames_corrupt=" << ingest.frames_corrupt
      << " frames_gap=" << ingest.frames_gap << " resyncs=" << ingest.resyncs
      << " resync_failures=" << ingest.resync_failures << "\n";
}

std::string HealthReport::to_text() const {
  std::ostringstream out;
  to_text(out);
  return out.str();
}

namespace {

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void HealthReport::to_json(std::ostream& out) const {
  out << "{\"degraded\":" << (degraded() ? "true" : "false")
      << ",\"patterns\":[";
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const PatternHealth& p = patterns[i];
    if (i > 0) {
      out << ',';
    }
    out << "{\"pattern\":" << p.pattern << ",\"state\":\""
        << to_string(p.state)
        << "\",\"searches\":" << p.searches
        << ",\"searches_aborted\":" << p.searches_aborted
        << ",\"observes_shed\":" << p.observes_shed
        << ",\"breaker_trips\":" << p.breaker_trips
        << ",\"breaker_probes\":" << p.breaker_probes
        << ",\"history_entries\":" << p.history_entries
        << ",\"history_bytes\":" << p.history_bytes
        << ",\"history_evicted\":" << p.history_evicted
        << ",\"callback_errors\":" << p.callback_errors << ",\"last_error\":";
    json_string(out, p.last_error);
    out << '}';
  }
  out << "],\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerHealth& w = workers[i];
    if (i > 0) {
      out << ',';
    }
    out << "{\"worker\":" << w.worker << ",\"batches\":" << w.batches
        << ",\"heartbeat\":" << w.heartbeat << ",\"restarts\":" << w.restarts
        << ",\"quarantined_patterns\":" << w.quarantined_patterns << '}';
  }
  out << "],\"ingest\":{\"offered\":" << ingest.offered
      << ",\"delivered\":" << ingest.delivered
      << ",\"duplicates\":" << ingest.duplicates
      << ",\"sheds\":" << ingest.sheds
      << ",\"frames_corrupt\":" << ingest.frames_corrupt
      << ",\"frames_gap\":" << ingest.frames_gap
      << ",\"resyncs\":" << ingest.resyncs
      << ",\"resync_failures\":" << ingest.resync_failures << "}}";
}

std::string HealthReport::to_json() const {
  std::ostringstream out;
  to_json(out);
  return out.str();
}

}  // namespace ocep
