#include "core/matcher.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/assert.h"
#include "common/error.h"
#include "poet/varint.h"

namespace ocep {
namespace {

constexpr std::uint64_t bit(std::size_t depth) noexcept {
  return 1ULL << depth;
}

}  // namespace

OcepMatcher::OcepMatcher(const EventStore& store,
                         pattern::CompiledPattern pattern,
                         MatcherConfig config, MatchCallback on_match)
    : store_(store),
      pattern_(std::move(pattern)),
      config_(config),
      on_match_(std::move(on_match)) {
  OCEP_ASSERT_MSG(pattern_.size() >= 1 && pattern_.size() <= 63,
                  "pattern size must be in [1, 63]");
  governor_.configure(config_.budget, config_.breaker);
}

void OcepMatcher::lazy_init() {
  if (initialized_) {
    return;
  }
  initialized_ = true;
  traces_ = store_.trace_count();
  OCEP_ASSERT_MSG(traces_ > 0, "store has no traces");

  const std::size_t k = pattern_.size();
  edges_.assign(k, {});
  for (const pattern::Constraint& c : pattern_.constraints) {
    switch (c.op) {
      case pattern::ConstraintOp::kBefore:
        edges_[c.a].push_back(Edge{c.b, Role::kBeforeOther});
        edges_[c.b].push_back(Edge{c.a, Role::kAfterOther});
        break;
      case pattern::ConstraintOp::kBeforeLimited:
        edges_[c.a].push_back(Edge{c.b, Role::kBeforeOtherLim});
        edges_[c.b].push_back(Edge{c.a, Role::kAfterOtherLim});
        break;
      case pattern::ConstraintOp::kConcurrent:
        edges_[c.a].push_back(Edge{c.b, Role::kConcurrent});
        edges_[c.b].push_back(Edge{c.a, Role::kConcurrent});
        break;
      case pattern::ConstraintOp::kPartner:
        edges_[c.a].push_back(Edge{c.b, Role::kSendOfOther});
        edges_[c.b].push_back(Edge{c.a, Role::kReceiveOfOther});
        break;
    }
  }

  key_attr_.assign(k, KeyAttr::kNone);
  for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
    if (pattern_.leaves[leaf].text.kind == pattern::Attr::Kind::kVariable) {
      key_attr_[leaf] = KeyAttr::kText;
    } else if (pattern_.leaves[leaf].type.kind ==
               pattern::Attr::Kind::kVariable) {
      key_attr_[leaf] = KeyAttr::kType;
    }
  }

  orders_.resize(k);
  for (std::uint32_t anchor = 0; anchor < k; ++anchor) {
    orders_[anchor] = make_order({anchor});
  }

  is_terminating_.assign(k, false);
  for (const std::uint32_t leaf : pattern_.terminating) {
    is_terminating_[leaf] = true;
  }

  // A leaf quantified by limited precedence ('a' in a -lim-> b) must keep
  // every occurrence: a merged-away event could be the intervening witness
  // that invalidates the limit.
  merge_allowed_.assign(k, true);
  for (const pattern::Constraint& c : pattern_.constraints) {
    if (c.op == pattern::ConstraintOp::kBeforeLimited) {
      merge_allowed_[c.a] = false;
    }
  }

  histories_.resize(k);
  for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
    histories_[leaf].reset(traces_, key_attr_[leaf] != KeyAttr::kNone);
  }
  comm_before_.assign(traces_, 0);

  trace_by_name_.clear();
  for (TraceId t = 0; t < traces_; ++t) {
    trace_by_name_.emplace_back(store_.trace_name(t), t);
  }

  binding_.assign(k, EventId{});
  depth_of_leaf_.assign(k, 0);
  var_value_.assign(pattern_.variable_count, kEmptySymbol);
  var_bound_.assign(pattern_.variable_count, false);
  var_binder_.assign(pattern_.variable_count, 0);

  subset_.reset(k, traces_);
}

std::vector<std::uint32_t> OcepMatcher::make_order(
    std::vector<std::uint32_t> seeds) const {
  const std::size_t k = pattern_.size();
  std::vector<bool> chosen(k, false);
  std::vector<bool> var_known(pattern_.variable_count, false);
  std::vector<std::uint32_t> order;

  auto absorb = [&](std::uint32_t leaf) {
    chosen[leaf] = true;
    order.push_back(leaf);
    const pattern::Leaf& spec = pattern_.leaves[leaf];
    for (const pattern::Attr* attr :
         {&spec.process, &spec.type, &spec.text}) {
      if (attr->kind == pattern::Attr::Kind::kVariable) {
        var_known[attr->variable] = true;
      }
    }
  };
  for (const std::uint32_t seed : seeds) {
    if (!chosen[seed]) {
      absorb(seed);
    }
  }

  while (order.size() < k) {
    std::uint32_t best = 0;
    int best_score = -1;
    for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
      if (chosen[leaf]) {
        continue;
      }
      const pattern::Leaf& spec = pattern_.leaves[leaf];
      int score = 0;
      for (const Edge& edge : edges_[leaf]) {
        if (!chosen[edge.other]) {
          continue;
        }
        if (edge.role == Role::kReceiveOfOther ||
            edge.role == Role::kSendOfOther) {
          score = std::max(score, 8);  // partner target: singleton domain
        } else {
          score = std::max(score, 2);  // Fig-4 restricted interval
        }
      }
      const KeyAttr key = key_attr_[leaf];
      if ((key == KeyAttr::kText && var_known[spec.text.variable]) ||
          (key == KeyAttr::kType && var_known[spec.type.variable])) {
        score += 4;  // indexed equality probe on the bound variable
      }
      if (spec.process.kind == pattern::Attr::Kind::kLiteral ||
          (spec.process.kind == pattern::Attr::Kind::kVariable &&
           var_known[spec.process.variable])) {
        score += 1;  // single-trace sweep
      }
      if (score > best_score) {
        best_score = score;
        best = leaf;
      }
    }
    absorb(best);
  }
  return order;
}

bool OcepMatcher::leaf_accepts(const pattern::Leaf& leaf,
                               const Event& event) const {
  using Kind = pattern::Attr::Kind;
  if (leaf.type.kind == Kind::kLiteral && leaf.type.literal != event.type) {
    return false;
  }
  if (leaf.text.kind == Kind::kLiteral && leaf.text.literal != event.text) {
    return false;
  }
  if (leaf.process.kind == Kind::kLiteral &&
      leaf.process.literal != store_.trace_name(event.id.trace)) {
    return false;
  }
  return true;
}

void OcepMatcher::observe(const Event& event) {
  lazy_init();
  // Snapshot for the per-observe telemetry deltas; skipped entirely (one
  // predictable branch) when no sinks are attached.
  const MatcherStats before = telemetry_on_ ? stats_ : MatcherStats{};
  ++stats_.events_observed;
  const TraceId trace = event.id.trace;
  OCEP_ASSERT(trace < traces_);

  // Append to every accepting leaf's history, then anchor searches at the
  // terminating ones.
  const bool is_comm = is_communication(event.kind);
  bool hit = false;
  for (std::uint32_t leaf = 0; leaf < pattern_.size(); ++leaf) {
    if (!leaf_accepts(pattern_.leaves[leaf], event)) {
      continue;
    }
    hit = true;
    const Symbol key =
        key_attr_[leaf] == KeyAttr::kText
            ? event.text
            : (key_attr_[leaf] == KeyAttr::kType ? event.type : kEmptySymbol);
    histories_[leaf].append(
        trace, event.id.index, comm_before_[trace], is_comm,
        config_.merge_redundant_history && merge_allowed_[leaf], key);
  }
  if (hit) {
    ++stats_.leaf_hits;
    bool terminating_hit = false;
    for (std::uint32_t leaf = 0; leaf < pattern_.size(); ++leaf) {
      if (is_terminating_[leaf] &&
          leaf_accepts(pattern_.leaves[leaf], event)) {
        terminating_hit = true;
        break;
      }
    }
    // The governor gates the whole search phase of this observe: an open
    // or quarantined breaker degrades it to the O(1) appends above, and an
    // admitted search runs under one shared budget across every anchor and
    // pin (at most one abort per observe).  The breaker clock is the
    // observe count, so the outcome is identical across worker counts and
    // checkpoint splits.
    SearchBudget effective;
    if (terminating_hit) {
      if (!governor_.admit(stats_.events_observed, effective)) {
        ++stats_.observes_shed;
      } else {
        begin_search_budget(effective);
        for (std::uint32_t leaf = 0; leaf < pattern_.size(); ++leaf) {
          if (is_terminating_[leaf] &&
              leaf_accepts(pattern_.leaves[leaf], event)) {
            run_anchor(leaf, event);
            if (search_aborted_) {
              break;
            }
          }
        }
        if (search_aborted_) {
          ++stats_.searches_aborted;
        }
        governor_.on_search_result(stats_.events_observed, search_aborted_);
        stats_.breaker_trips = governor_.trips();
      }
    }
  }
  if (is_comm) {
    ++comm_before_[trace];
  }
  // Retention: once a (leaf, trace) pair is covered, older occurrences on
  // it cannot add coverage there; keep a bounded recent window.  Amortize
  // the erase by pruning only at twice the budget.  Spilled spans of a
  // covered pair are even older than the prunable prefix, so they are
  // released at the sink rather than ever faulted back.
  if (config_.history_retention > 0) {
    for (std::uint32_t leaf = 0; leaf < pattern_.size(); ++leaf) {
      if (!subset_.covered(leaf, trace)) {
        continue;
      }
      if (span_sink_ != nullptr && histories_[leaf].has_spilled(trace)) {
        release_spilled(leaf, trace);
      }
      if (histories_[leaf].on_trace(trace).size() >
          2 * config_.history_retention) {
        histories_[leaf].prune_front(trace, config_.history_retention);
      }
    }
  }
  if (config_.history_bytes_limit > 0) {
    enforce_history_budget();
  }
  stats_.history_entries = 0;
  stats_.history_merged = 0;
  stats_.history_pruned = 0;
  stats_.history_evicted = 0;
  stats_.history_spilled = 0;
  for (const LeafHistory& history : histories_) {
    stats_.history_entries += history.total();
    stats_.history_merged += history.merged();
    stats_.history_pruned += history.pruned();
    stats_.history_evicted += history.evicted();
    stats_.history_spilled += history.spilled();
  }
  if (telemetry_on_) {
    publish_telemetry(before);
  }
}

void OcepMatcher::begin_search_budget(const SearchBudget& budget) {
  search_aborted_ = false;
  search_steps_ = 0;
  search_step_limit_ = budget.max_steps;
  search_has_deadline_ = budget.deadline_ns > 0;
  search_limited_ = search_step_limit_ > 0 || search_has_deadline_;
  if (search_has_deadline_) {
    search_deadline_ = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(budget.deadline_ns);
  }
}

bool OcepMatcher::budget_exhausted() {
  if (search_step_limit_ > 0 && search_steps_ > search_step_limit_) {
    return true;
  }
  return search_has_deadline_ && (search_steps_ & 255U) == 0 &&
         std::chrono::steady_clock::now() >= search_deadline_;
}

void OcepMatcher::enforce_history_budget() {
  std::size_t bytes = history_bytes();
  if (bytes <= config_.history_bytes_limit) {
    return;
  }
  const auto low = static_cast<std::size_t>(
      static_cast<double>(config_.history_bytes_limit) *
      config_.history_low_fraction);
  while (bytes > low) {
    std::uint32_t best_leaf = 0;
    TraceId best_trace = 0;
    std::size_t best_size = 0;
    for (std::uint32_t leaf = 0; leaf < pattern_.size(); ++leaf) {
      TraceId trace = 0;
      const std::size_t size = histories_[leaf].largest_trace(trace);
      if (size > best_size) {
        best_size = size;
        best_leaf = leaf;
        best_trace = trace;
      }
    }
    if (best_size <= 1) {
      break;  // nothing evictable left without emptying a pair entirely
    }
    // With a sink attached the prefix spills (recoverable); eviction is
    // the fallback when the sink declines (e.g. degraded store).
    std::size_t freed = 0;
    if (span_sink_ != nullptr) {
      freed = spill_pair(best_leaf, best_trace, best_size / 2);
    }
    if (freed == 0) {
      freed = histories_[best_leaf].evict_front(best_trace, best_size / 2);
    }
    if (freed == 0) {
      break;
    }
    bytes -= std::min(bytes, freed);
  }
}

std::size_t OcepMatcher::spill_pair(std::uint32_t leaf, TraceId trace,
                                    std::size_t keep) {
  const std::span<const HistoryEntry> entries =
      histories_[leaf].on_trace(trace);
  if (entries.size() <= keep) {
    return 0;
  }
  const std::size_t drop = entries.size() - keep;
  if (!span_sink_->spill(pattern_index_, leaf, trace, next_span_seq_,
                         entries.first(drop))) {
    return 0;
  }
  const std::size_t freed =
      histories_[leaf].spill_front(trace, keep, next_span_seq_);
  ++next_span_seq_;
  return freed;
}

bool OcepMatcher::fault_newest(std::uint32_t leaf, TraceId trace) {
  LeafHistory& history = histories_[leaf];
  OCEP_ASSERT(history.has_spilled(trace));
  const LeafHistory::SpanMeta meta = history.spilled_on(trace).back();
  std::vector<HistoryEntry> entries;
  bool valid =
      span_sink_ != nullptr &&
      span_sink_->fault(pattern_index_, leaf, trace, meta.seq, entries) &&
      entries.size() == meta.count;
  if (valid) {
    EventIndex prev = kNoEvent;
    for (const HistoryEntry& entry : entries) {
      if (entry.index == kNoEvent || entry.index > store_.trace_size(trace) ||
          (prev != kNoEvent && entry.index <= prev)) {
        valid = false;
        break;
      }
      prev = entry.index;
    }
    const std::span<const HistoryEntry> resident = history.on_trace(trace);
    if (valid && !resident.empty() &&
        entries.back().index >= resident.front().index) {
      valid = false;
    }
  }
  history.pop_spilled(trace);
  if (!valid) {
    // Unrecoverable (store degraded, record corrupt): proceed over what
    // remains, reported as permanent coverage loss.
    ++stats_.spans_lost;
    if (span_sink_ != nullptr) {
      span_sink_->release(pattern_index_, leaf, trace, meta.seq);
    }
    return false;
  }
  std::vector<Symbol> keys;
  if (history.keyed()) {
    keys.reserve(entries.size());
    for (const HistoryEntry& entry : entries) {
      const Event& event = store_.event(EventId{trace, entry.index});
      keys.push_back(key_attr_[leaf] == KeyAttr::kText ? event.text
                                                       : event.type);
    }
  }
  history.prepend_front(trace, entries, keys);
  stats_.history_faulted += entries.size();
  span_sink_->release(pattern_index_, leaf, trace, meta.seq);
  return true;
}

void OcepMatcher::ensure_history_loaded(std::uint32_t leaf, TraceId trace,
                                        EventIndex lo) {
  LeafHistory& history = histories_[leaf];
  while (history.has_spilled(trace)) {
    const std::span<const HistoryEntry> resident = history.on_trace(trace);
    if (!resident.empty() && resident.front().index <= lo) {
      return;  // the resident window already reaches the bound
    }
    if (history.spilled_on(trace).back().last_index < lo) {
      return;  // everything still spilled is older than needed
    }
    fault_newest(leaf, trace);  // consumes a meta either way: terminates
  }
}

void OcepMatcher::release_spilled(std::uint32_t leaf, TraceId trace) {
  for (const LeafHistory::SpanMeta& meta :
       histories_[leaf].take_spilled(trace)) {
    if (span_sink_ != nullptr) {
      span_sink_->release(pattern_index_, leaf, trace, meta.seq);
    }
  }
}

void OcepMatcher::fault_all_spans() {
  if (!initialized_ || span_sink_ == nullptr) {
    return;
  }
  for (std::uint32_t leaf = 0; leaf < pattern_.size(); ++leaf) {
    for (TraceId t = 0; t < traces_; ++t) {
      while (histories_[leaf].has_spilled(t)) {
        fault_newest(leaf, t);
      }
    }
  }
}

void OcepMatcher::for_each_spilled(
    const std::function<void(std::uint32_t leaf, TraceId trace,
                             std::uint64_t seq)>& fn) const {
  if (!initialized_) {
    return;
  }
  for (std::uint32_t leaf = 0; leaf < pattern_.size(); ++leaf) {
    for (TraceId t = 0; t < traces_; ++t) {
      for (const LeafHistory::SpanMeta& meta :
           histories_[leaf].spilled_on(t)) {
        fn(leaf, t, meta.seq);
      }
    }
  }
}

std::size_t OcepMatcher::history_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const LeafHistory& history : histories_) {
    bytes += history.approx_bytes();
  }
  return bytes;
}

PatternHealth OcepMatcher::health() const {
  PatternHealth health;
  health.state = governor_.state();
  health.searches = stats_.searches;
  health.searches_aborted = stats_.searches_aborted;
  health.observes_shed = stats_.observes_shed;
  health.breaker_trips = governor_.trips();
  health.breaker_probes = governor_.probes();
  health.history_entries = stats_.history_entries;
  health.history_bytes = history_bytes();
  health.history_evicted = stats_.history_evicted;
  health.callback_errors = stats_.callback_errors;
  health.last_error = governor_.last_error();
  return health;
}

void OcepMatcher::quarantine(std::string reason) {
  governor_.quarantine(std::move(reason));
  stats_.breaker_trips = governor_.trips();
}

void OcepMatcher::publish_telemetry(const MatcherStats& before) {
  const auto bump = [](obs::Counter* counter, std::uint64_t delta) {
    if (counter != nullptr && delta != 0) {
      counter->add(delta);
    }
  };
  bump(telemetry_.events, 1);
  bump(telemetry_.leaf_hits, stats_.leaf_hits - before.leaf_hits);
  bump(telemetry_.searches, stats_.searches - before.searches);
  bump(telemetry_.matches, stats_.matches_reported - before.matches_reported);
  bump(telemetry_.nodes, stats_.nodes_explored - before.nodes_explored);
  bump(telemetry_.domain_prunes, stats_.domain_prunes - before.domain_prunes);
  bump(telemetry_.backjumps, stats_.backjumps - before.backjumps);
  bump(telemetry_.pins_run, stats_.pins_run - before.pins_run);
  bump(telemetry_.pins_skipped, stats_.pins_skipped - before.pins_skipped);
  bump(telemetry_.searches_aborted,
       stats_.searches_aborted - before.searches_aborted);
  bump(telemetry_.observes_shed, stats_.observes_shed - before.observes_shed);
  bump(telemetry_.breaker_trips, stats_.breaker_trips - before.breaker_trips);
  bump(telemetry_.history_evicted,
       stats_.history_evicted - before.history_evicted);
  bump(telemetry_.callback_errors,
       stats_.callback_errors - before.callback_errors);
  if (stats_.searches == before.searches) {
    return;  // not a terminating event: no search distributions to record
  }
  if (telemetry_.levels_visited != nullptr) {
    telemetry_.levels_visited->record(stats_.levels_entered -
                                      before.levels_entered);
  }
  if (telemetry_.candidates_scanned != nullptr) {
    telemetry_.candidates_scanned->record(stats_.nodes_explored -
                                          before.nodes_explored);
  }
  if (telemetry_.matches_found != nullptr) {
    telemetry_.matches_found->record(stats_.matches_reported -
                                     before.matches_reported);
  }
}

void OcepMatcher::run_anchor(std::uint32_t anchor_leaf, const Event& event) {
  if (!partner_kind_ok(anchor_leaf, event)) {
    return;  // e.g. a send cannot anchor the receive side of '<->'
  }
  const std::size_t k = pattern_.size();
  // Local coverage for this anchor (pairs covered by matches reported now).
  std::vector<bool> local_covered(k * traces_, false);
  auto mark_local = [&] {
    for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
      local_covered[static_cast<std::size_t>(leaf) * traces_ +
                    binding_[leaf].trace] = true;
    }
  };

  auto prepare = [&](const std::vector<std::uint32_t>& order) -> bool {
    binding_.assign(k, EventId{});
    std::fill(var_bound_.begin(), var_bound_.end(), false);
    for (std::size_t d = 0; d < order.size(); ++d) {
      depth_of_leaf_[order[d]] = d;
    }
    // Bind the anchor (depth 0).
    std::vector<std::uint32_t> trail;
    std::uint64_t blame = 0;
    if (!bind_attrs(anchor_leaf, event, 0, trail, blame)) {
      return false;  // e.g. class [$1, x, $1] with differing attributes
    }
    binding_[anchor_leaf] = event.id;
    return true;
  };

  // --- Free search (Algorithm 1 anchored at the new event) -------------
  const std::vector<std::uint32_t>& order = orders_[anchor_leaf];
  OCEP_ASSERT(order.front() == anchor_leaf);
  if (!prepare(order)) {
    return;
  }
  ++stats_.searches;
  std::uint64_t conflicts = 0;
  if (!extend(order, 1, Pin{}, conflicts)) {
    if (search_aborted_) {
      return;  // budget blew mid-search: not a real conflict to record
    }
    if (telemetry_.conflict_set_size != nullptr) {
      telemetry_.conflict_set_size->record(
          static_cast<std::uint64_t>(std::popcount(conflicts)));
    }
    return;  // no match contains the anchor: nothing to cover
  }
  report(/*pinned=*/false);
  mark_local();

  if (!config_.pin_coverage) {
    return;
  }

  // --- Coverage pinning (§IV-B representative subset) -------------------
  for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
    if (leaf == anchor_leaf) {
      continue;  // the anchor is fixed to this event's trace
    }
    for (TraceId t = 0; t < traces_; ++t) {
      if (search_aborted_) {
        return;  // budget blew: skip the remaining pins this observe
      }
      if (local_covered[static_cast<std::size_t>(leaf) * traces_ + t] ||
          (config_.global_coverage && subset_.covered(leaf, t)) ||
          (histories_[leaf].on_trace(t).empty() &&
           !histories_[leaf].has_spilled(t))) {
        ++stats_.pins_skipped;
        continue;
      }
      // Pinned order: the anchor, then the pinned leaf, then the greedy
      // selectivity order from both.
      const std::vector<std::uint32_t> pin_order =
          make_order({anchor_leaf, leaf});
      if (!prepare(pin_order)) {
        continue;
      }
      ++stats_.pins_run;
      ++stats_.searches;
      std::uint64_t pin_conflicts = 0;
      if (extend(pin_order, 1, Pin{true, leaf, t}, pin_conflicts)) {
        report(/*pinned=*/true);
        mark_local();
      }
    }
  }
}

void OcepMatcher::report(bool pinned) {
  static_cast<void>(pinned);
  Match match;
  match.bindings = binding_;
  const bool fresh = subset_.add(match);
  ++stats_.matches_reported;
  if (!on_match_) {
    return;
  }
  if (!config_.contain_callback_errors) {
    on_match_(match, fresh);
    return;
  }
  // A throwing user callback must not unwind through the search: the
  // matcher's own state (subset, stats, histories) is already consistent
  // at this point, so count the error, keep its message for the health
  // report, and carry on matching.
  try {
    on_match_(match, fresh);
  } catch (const std::exception& e) {
    ++stats_.callback_errors;
    governor_.record_error(std::string("match callback threw: ") + e.what());
  } catch (...) {
    ++stats_.callback_errors;
    governor_.record_error("match callback threw a non-standard exception");
  }
}

bool OcepMatcher::extend(const std::vector<std::uint32_t>& order,
                         std::size_t depth, const Pin& pin,
                         std::uint64_t& conflict_out) {
  if (depth == order.size()) {
    return true;
  }
  if (search_aborted_) {
    return false;
  }
  ++stats_.levels_entered;
  const std::uint32_t leaf = order[depth];
  const pattern::Leaf& spec = pattern_.leaves[leaf];

  // Trace selection: a pin, a literal process attribute, or a bound
  // process variable restrict the sweep to a single trace (this is what
  // isolates the relevant traces, §V-D).
  TraceId single = 0;
  bool have_single = false;
  std::uint64_t my_conflicts = 0;
  std::uint64_t trace_blame = 0;  // binder of a bound process variable
  if (pin.active && pin.leaf == leaf) {
    single = pin.trace;
    have_single = true;
  } else if (spec.process.kind == pattern::Attr::Kind::kLiteral) {
    bool found = false;
    for (const auto& [name, t] : trace_by_name_) {
      if (name == spec.process.literal) {
        single = t;
        found = true;
        break;
      }
    }
    if (!found) {
      conflict_out |= 0;  // no such trace: unconditional failure
      return false;
    }
    have_single = true;
  } else if (spec.process.kind == pattern::Attr::Kind::kVariable &&
             var_bound_[spec.process.variable]) {
    const Symbol want = var_value_[spec.process.variable];
    bool found = false;
    for (const auto& [name, t] : trace_by_name_) {
      if (name == want) {
        single = t;
        found = true;
        break;
      }
    }
    if (!found) {
      conflict_out |= bit(var_binder_[spec.process.variable]);
      return false;
    }
    have_single = true;
    // Exhausting this trace must blame the variable's binder: a different
    // earlier choice selects a different trace.
    trace_blame = bit(var_binder_[spec.process.variable]);
  }

  const TraceId t_begin = have_single ? single : 0;
  const TraceId t_end = have_single ? single + 1
                                    : static_cast<TraceId>(traces_);
  for (TraceId t = t_begin; t < t_end; ++t) {
    EventIndex lo = 1;
    EventIndex hi = store_.trace_size(t);
    std::uint64_t setters = 0;
    if (config_.domain_pruning) {
      std::uint64_t blame = 0;
      if (!domain_on_trace(leaf, t, lo, hi, blame, setters)) {
        ++stats_.domain_prunes;
        my_conflicts |= blame;
        continue;
      }
    }
    // Fault spilled history covering [lo, hi] back in before taking the
    // entries view.  Afterwards every span still spilled on (leaf, t) is
    // strictly older than lo, so deeper faults (a limited_ok check can
    // prepend into this same history) only ever grow the view below
    // range.first — positions shift by exactly the growth.
    if (span_sink_ != nullptr) {
      ensure_history_loaded(leaf, t, lo);
    }
    // With the leaf's key variable already bound, probe the secondary
    // index: only occurrences with the matching attribute value.
    std::span<const HistoryEntry> entries;
    std::uint64_t key_blame = 0;
    bool keyed_probe = false;
    Symbol probe_key = kEmptySymbol;
    if (key_attr_[leaf] != KeyAttr::kNone) {
      const pattern::Attr& attr = key_attr_[leaf] == KeyAttr::kText
                                      ? spec.text
                                      : spec.type;
      if (var_bound_[attr.variable]) {
        probe_key = var_value_[attr.variable];
        entries = histories_[leaf].on_trace_keyed(t, probe_key);
        keyed_probe = true;
        key_blame = bit(var_binder_[attr.variable]);
      }
    }
    if (!keyed_probe) {
      entries = histories_[leaf].on_trace(t);
    }
    LeafHistory::Range range = LeafHistory::range_of(entries, lo, hi);
    for (std::size_t pos = range.last; pos > range.first; --pos) {
      const EventId candidate{t, entries[pos - 1].index};
      const std::size_t size_before = entries.size();
      bool backjump = false;
      if (try_candidate(order, depth, pin, leaf, candidate, my_conflicts,
                        backjump)) {
        return true;
      }
      if (search_aborted_) {
        conflict_out |= my_conflicts;
        return false;
      }
      if (backjump) {
        // The failure below did not involve this level: skip its remaining
        // candidates and traces entirely.
        conflict_out |= my_conflicts;
        return false;
      }
      if (span_sink_ != nullptr) {
        // A deeper fault may have prepended older entries (all < lo) into
        // this view, reallocating it: re-fetch and shift positions.
        const std::span<const HistoryEntry> fresh =
            keyed_probe ? histories_[leaf].on_trace_keyed(t, probe_key)
                        : histories_[leaf].on_trace(t);
        if (fresh.size() != size_before) {
          const std::size_t growth = fresh.size() - size_before;
          pos += growth;
          range.first += growth;
          range.last += growth;
        }
        entries = fresh;
      }
    }
    // This trace is exhausted.  The interval may have excluded stored
    // occurrences, and the key probe excluded other attribute values; the
    // levels that produced those restrictions must be blamed, or
    // backjumping could unsoundly skip re-instantiating them.
    my_conflicts |= setters | key_blame;
  }
  conflict_out |= my_conflicts | trace_blame;
  return false;
}

// Returns true when a complete match was found below this candidate.  When
// returning false, `backjump` (via made_match) is set if the failure did
// not involve this level and remaining candidates must be skipped.
bool OcepMatcher::try_candidate(const std::vector<std::uint32_t>& order,
                                std::size_t depth, const Pin& pin,
                                std::uint32_t leaf, EventId candidate,
                                std::uint64_t& conflict_out,
                                bool& backjump) {
  ++stats_.nodes_explored;
  backjump = false;
  if (search_limited_) {
    ++search_steps_;
    if (budget_exhausted()) {
      search_aborted_ = true;
      return false;
    }
  }
  const Event& event = store_.event(candidate);

  // Without domain pruning (chronological baseline), constraints against
  // instantiated events are checked here, one relation at a time.
  if (!config_.domain_pruning) {
    for (const Edge& edge : edges_[leaf]) {
      if (binding_[edge.other].index == kNoEvent) {
        continue;
      }
      if (!satisfied(leaf, edge.role, candidate, binding_[edge.other])) {
        conflict_out |= bit(depth_of_leaf_[edge.other]);
        return false;
      }
    }
  } else {
    // Partner kinds are not captured by index intervals; enforce them.
    if (!partner_kind_ok(leaf, event)) {
      return false;
    }
    // Limited precedence needs a history check beyond the interval.
    for (const Edge& edge : edges_[leaf]) {
      const EventId other = binding_[edge.other];
      if (other.index == kNoEvent) {
        continue;
      }
      if (edge.role == Role::kBeforeOtherLim &&
          !limited_ok(leaf, candidate, other)) {
        conflict_out |= bit(depth_of_leaf_[edge.other]);
        return false;
      }
      if (edge.role == Role::kAfterOtherLim &&
          !limited_ok(edge.other, other, candidate)) {
        conflict_out |= bit(depth_of_leaf_[edge.other]);
        return false;
      }
    }
  }

  std::vector<std::uint32_t> trail;
  std::uint64_t blame = 0;
  if (!bind_attrs(leaf, event, depth, trail, blame)) {
    for (auto it = trail.rbegin(); it != trail.rend(); ++it) {
      var_bound_[*it] = false;
    }
    conflict_out |= blame;
    return false;
  }
  binding_[leaf] = candidate;

  std::uint64_t child_conflicts = 0;
  if (extend(order, depth + 1, pin, child_conflicts)) {
    return true;  // keep bindings; the caller reports the match
  }

  binding_[leaf] = EventId{};
  for (auto it = trail.rbegin(); it != trail.rend(); ++it) {
    var_bound_[*it] = false;
  }

  if (search_aborted_) {
    return false;  // unwind without recording a backjump: not a conflict
  }
  if (config_.backjumping && (child_conflicts & bit(depth)) == 0) {
    // This level's choice is irrelevant to the failure below: jump past it
    // (the paper's goBackward with recorded conflict timestamps).
    ++stats_.backjumps;
    if (telemetry_.backjump_distance != nullptr) {
      // Levels the jump skips: down to the deepest blamed level below this
      // one (or to the anchor when nothing below is blamed).
      const std::uint64_t blamed_below = child_conflicts & (bit(depth) - 1);
      const std::size_t land =
          blamed_below == 0
              ? 0
              : static_cast<std::size_t>(std::bit_width(blamed_below)) - 1;
      telemetry_.backjump_distance->record(depth - land);
    }
    conflict_out |= child_conflicts;
    backjump = true;
    return false;
  }
  conflict_out |= child_conflicts & ~bit(depth);
  return false;
}

// NOLINTNEXTLINE(readability-function-cognitive-complexity)
bool OcepMatcher::domain_on_trace(std::uint32_t leaf, TraceId trace,
                                  EventIndex& lo, EventIndex& hi,
                                  std::uint64_t& blame,
                                  std::uint64_t& setters) const {
  // Track which depths supplied the binding lower/upper bounds so an empty
  // interval blames exactly the constraints that tightened it (sound for
  // backjumping: keeping those instantiations keeps the domain empty).
  std::uint64_t lo_setter = 0;
  std::uint64_t hi_setter = 0;
  for (const Edge& edge : edges_[leaf]) {
    const EventId other = binding_[edge.other];
    if (other.index == kNoEvent) {
      continue;
    }
    const std::uint64_t other_bit = bit(depth_of_leaf_[edge.other]);
    switch (edge.role) {
      case Role::kAfterOther:
      case Role::kAfterOtherLim: {  // other -> me: [LS(other, t), inf)
        const EventIndex ls = store_.least_successor(other, trace);
        if (ls == kInfiniteIndex) {
          blame |= other_bit | lo_setter | hi_setter;
          return false;
        }
        if (ls > lo) {
          lo = ls;
          lo_setter = other_bit;
        }
        break;
      }
      case Role::kBeforeOther:
      case Role::kBeforeOtherLim: {  // me -> other: (-inf, GP(other, t)]
        const EventIndex gp = store_.greatest_predecessor(other, trace);
        if (gp == kNoEvent) {
          blame |= other_bit | lo_setter | hi_setter;
          return false;
        }
        if (gp < hi) {
          hi = gp;
          hi_setter = other_bit;
        }
        break;
      }
      case Role::kConcurrent: {  // (GP(other, t), LS(other, t))
        if (trace == other.trace) {
          // Events on the instantiated event's own trace are totally
          // ordered with it: nothing there can be concurrent.
          blame |= other_bit;
          return false;
        }
        const EventIndex gp = store_.greatest_predecessor(other, trace);
        if (gp + 1 > lo) {
          lo = gp + 1;
          lo_setter = other_bit;
        }
        const EventIndex ls = store_.least_successor(other, trace);
        if (ls != kInfiniteIndex && ls - 1 < hi) {
          hi = ls - 1;
          hi_setter = other_bit;
        }
        break;
      }
      case Role::kReceiveOfOther:
      case Role::kSendOfOther: {
        const Event& other_event = store_.event(other);
        EventId target{};
        if (other_event.message != kNoMessage) {
          target = edge.role == Role::kReceiveOfOther
                       ? store_.receive_of(other_event.message)
                       : store_.send_of(other_event.message);
        }
        if (target.index == kNoEvent || target.trace != trace) {
          blame |= other_bit | lo_setter | hi_setter;
          return false;
        }
        if (target.index > lo) {
          lo = target.index;
          lo_setter = other_bit;
        }
        if (target.index < hi) {
          hi = target.index;
          hi_setter = other_bit;
        }
        break;
      }
    }
    if (lo > hi) {
      blame |= lo_setter | hi_setter | other_bit;
      return false;
    }
  }
  setters = lo_setter | hi_setter;
  return true;
}

bool OcepMatcher::bind_attrs(std::uint32_t leaf, const Event& event,
                             std::size_t depth,
                             std::vector<std::uint32_t>& trail,
                             std::uint64_t& blame) {
  const pattern::Leaf& spec = pattern_.leaves[leaf];
  const Symbol values[3] = {store_.trace_name(event.id.trace), event.type,
                            event.text};
  const pattern::Attr* attrs[3] = {&spec.process, &spec.type, &spec.text};
  for (int i = 0; i < 3; ++i) {
    if (attrs[i]->kind != pattern::Attr::Kind::kVariable) {
      continue;
    }
    const std::uint32_t var = attrs[i]->variable;
    if (var_bound_[var]) {
      if (var_value_[var] != values[i]) {
        blame |= bit(var_binder_[var]);
        return false;
      }
      continue;
    }
    var_value_[var] = values[i];
    var_bound_[var] = true;
    var_binder_[var] = depth;
    trail.push_back(var);
  }
  return true;
}

bool OcepMatcher::limited_ok(std::uint32_t a_leaf, EventId a, EventId b) {
  // Violated iff some event x of a_leaf's class (by its stored history)
  // satisfies a -> x -> b: on each trace that is the index window
  // [LS(a, t), GP(b, t)].
  for (TraceId t = 0; t < traces_; ++t) {
    const EventIndex ls = store_.least_successor(a, t);
    if (ls == kInfiniteIndex) {
      continue;
    }
    const EventIndex gp = store_.greatest_predecessor(b, t);
    if (gp == kNoEvent || ls > gp) {
      continue;
    }
    // The intervening witness may sit below the in-RAM window: fault the
    // spilled spans that could cover [ls, gp] back in first.
    if (span_sink_ != nullptr) {
      ensure_history_loaded(a_leaf, t, ls);
    }
    if (histories_[a_leaf].any_in(t, ls, gp)) {
      return false;
    }
  }
  return true;
}

bool OcepMatcher::partner_kind_ok(std::uint32_t leaf,
                                  const Event& event) const {
  for (const Edge& edge : edges_[leaf]) {
    if (edge.role == Role::kReceiveOfOther &&
        event.kind != EventKind::kReceive) {
      return false;
    }
    if (edge.role == Role::kSendOfOther && event.kind != EventKind::kSend) {
      return false;
    }
  }
  return true;
}

namespace {

/// The MatcherStats fields in checkpoint order.
template <typename Stats, typename Fn>
void for_each_stat(Stats& stats, Fn&& fn) {
  fn(stats.events_observed);
  fn(stats.leaf_hits);
  fn(stats.searches);
  fn(stats.matches_reported);
  fn(stats.nodes_explored);
  fn(stats.backjumps);
  fn(stats.history_entries);
  fn(stats.history_merged);
  fn(stats.history_pruned);
  fn(stats.levels_entered);
  fn(stats.domain_prunes);
  fn(stats.pins_run);
  fn(stats.pins_skipped);
}

}  // namespace

void OcepMatcher::checkpoint(std::ostream& out) {
  lazy_init();
  const std::size_t k = pattern_.size();
  for_each_stat(stats_,
                [&out](std::uint64_t field) { poet::put_varint(out, field); });
  // v2 governance counters.  breaker_trips and history_evicted are not
  // written: they are recomputed on restore from the governor blob and the
  // per-leaf evicted counters, keeping each figure stored exactly once.
  poet::put_varint(out, stats_.searches_aborted);
  poet::put_varint(out, stats_.observes_shed);
  poet::put_varint(out, stats_.callback_errors);
  for (TraceId t = 0; t < traces_; ++t) {
    poet::put_varint(out, comm_before_[t]);
  }
  for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
    const LeafHistory& history = histories_[leaf];
    poet::put_varint(out, history.merged());
    poet::put_varint(out, history.pruned());
    poet::put_varint(out, history.evicted());
    for (TraceId t = 0; t < traces_; ++t) {
      const std::span<const HistoryEntry> entries = history.on_trace(t);
      poet::put_varint(out, entries.size());
      for (const HistoryEntry& entry : entries) {
        poet::put_varint(out, entry.index);
        poet::put_varint(out, entry.comm_before);
      }
    }
  }
  for (const std::uint32_t slot : subset_.slots()) {
    poet::put_varint(out, slot);
  }
  const std::vector<Match>& matches = subset_.matches();
  poet::put_varint(out, matches.size());
  for (const Match& match : matches) {
    OCEP_ASSERT(match.bindings.size() == k);
    for (const EventId id : match.bindings) {
      poet::put_varint(out, id.trace);
      poet::put_varint(out, id.index);
    }
  }
  governor_.checkpoint(out);
  // v3 span-spill state: the spill sequence, fault counters, and the
  // per-(leaf, trace) spilled-span metas.  The entries themselves are not
  // written — they live in the tenant's log as span records, addressed by
  // the (pattern, leaf, trace, seq) fingerprints recorded here.
  poet::put_varint(out, next_span_seq_);
  poet::put_varint(out, stats_.history_faulted);
  poet::put_varint(out, stats_.spans_lost);
  for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
    poet::put_varint(out, histories_[leaf].spilled());
    for (TraceId t = 0; t < traces_; ++t) {
      const std::span<const LeafHistory::SpanMeta> metas =
          histories_[leaf].spilled_on(t);
      poet::put_varint(out, metas.size());
      for (const LeafHistory::SpanMeta& meta : metas) {
        poet::put_varint(out, meta.seq);
        poet::put_varint(out, meta.first_index);
        poet::put_varint(out, meta.last_index);
        poet::put_varint(out, meta.count);
      }
    }
  }
}

void OcepMatcher::restore(std::istream& in, int version) {
  OCEP_ASSERT_MSG(stats_.events_observed == 0,
                  "restore requires a fresh matcher");
  OCEP_ASSERT_MSG(version >= 1 && version <= kCheckpointVersion,
                  "unsupported matcher checkpoint version");
  lazy_init();
  const std::size_t k = pattern_.size();
  for_each_stat(stats_,
                [&in](std::uint64_t& field) { field = poet::get_varint(in); });
  if (version >= 2) {
    stats_.searches_aborted = poet::get_varint(in);
    stats_.observes_shed = poet::get_varint(in);
    stats_.callback_errors = poet::get_varint(in);
  }
  for (TraceId t = 0; t < traces_; ++t) {
    comm_before_[t] = static_cast<std::uint32_t>(poet::get_varint(in));
  }
  for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
    // Sequenced reads: as direct arguments their evaluation order would be
    // unspecified.
    const std::uint64_t merged = poet::get_varint(in);
    const std::uint64_t pruned = poet::get_varint(in);
    const std::uint64_t evicted = version >= 2 ? poet::get_varint(in) : 0;
    histories_[leaf].set_counters(merged, pruned, evicted);
    for (TraceId t = 0; t < traces_; ++t) {
      const std::uint64_t count = poet::get_varint(in);
      if (count > store_.trace_size(t)) {
        throw SerializationError("checkpoint history longer than its trace");
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto index = static_cast<EventIndex>(poet::get_varint(in));
        const auto comm = static_cast<std::uint32_t>(poet::get_varint(in));
        if (index == kNoEvent || index > store_.trace_size(t)) {
          throw SerializationError("checkpoint history entry out of range");
        }
        const Event& event = store_.event(EventId{t, index});
        const Symbol key = key_attr_[leaf] == KeyAttr::kText
                               ? event.text
                               : (key_attr_[leaf] == KeyAttr::kType
                                      ? event.type
                                      : kEmptySymbol);
        histories_[leaf].restore_entry(t, index, comm, key);
      }
    }
  }
  std::vector<std::uint32_t> slots(k * traces_);
  for (std::uint32_t& slot : slots) {
    slot = static_cast<std::uint32_t>(poet::get_varint(in));
  }
  const std::uint64_t match_count = poet::get_varint(in);
  if (match_count > k * traces_) {
    throw SerializationError("checkpoint retains too many matches");
  }
  std::vector<Match> matches(match_count);
  for (Match& match : matches) {
    match.bindings.resize(k);
    for (EventId& id : match.bindings) {
      id.trace = static_cast<TraceId>(poet::get_varint(in));
      id.index = static_cast<EventIndex>(poet::get_varint(in));
      if (id.trace >= traces_ || id.index == kNoEvent ||
          id.index > store_.trace_size(id.trace)) {
        throw SerializationError("checkpoint match binding out of range");
      }
    }
  }
  for (const std::uint32_t slot : slots) {
    if (slot != RepresentativeSubset::kUnsetSlot && slot >= match_count) {
      throw SerializationError("checkpoint coverage slot out of range");
    }
  }
  subset_.restore(std::move(slots), std::move(matches));
  if (version >= 2) {
    governor_.restore(in);
  }
  if (version >= 3) {
    next_span_seq_ = poet::get_varint(in);
    stats_.history_faulted = poet::get_varint(in);
    stats_.spans_lost = poet::get_varint(in);
    for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
      histories_[leaf].set_spilled_counter(poet::get_varint(in));
      for (TraceId t = 0; t < traces_; ++t) {
        const std::uint64_t meta_count = poet::get_varint(in);
        if (meta_count > store_.trace_size(t)) {
          throw SerializationError("checkpoint spans exceed the trace");
        }
        EventIndex prev_last = kNoEvent;
        for (std::uint64_t i = 0; i < meta_count; ++i) {
          LeafHistory::SpanMeta meta;
          meta.seq = poet::get_varint(in);
          meta.first_index =
              static_cast<EventIndex>(poet::get_varint(in));
          meta.last_index = static_cast<EventIndex>(poet::get_varint(in));
          meta.count = static_cast<std::uint32_t>(poet::get_varint(in));
          if (meta.count == 0 || meta.first_index == kNoEvent ||
              meta.first_index > meta.last_index ||
              meta.last_index > store_.trace_size(t) ||
              (prev_last != kNoEvent && meta.first_index <= prev_last)) {
            throw SerializationError("checkpoint span meta out of range");
          }
          prev_last = meta.last_index;
          histories_[leaf].restore_spilled(t, meta);
        }
        const std::span<const HistoryEntry> resident =
            histories_[leaf].on_trace(t);
        if (prev_last != kNoEvent && !resident.empty() &&
            prev_last >= resident.front().index) {
          throw SerializationError(
              "checkpoint span metas overlap resident history");
        }
      }
    }
  }
  stats_.breaker_trips = governor_.trips();
  stats_.history_evicted = 0;
  stats_.history_spilled = 0;
  for (const LeafHistory& history : histories_) {
    stats_.history_evicted += history.evicted();
    stats_.history_spilled += history.spilled();
  }
}

bool OcepMatcher::satisfied(std::uint32_t leaf, Role role, EventId me,
                            EventId other) {
  switch (role) {
    case Role::kAfterOther:
      return store_.happens_before(other, me);
    case Role::kBeforeOther:
      return store_.happens_before(me, other);
    case Role::kAfterOtherLim: {
      // other -lim-> me: the quantified class is the *other* leaf's.
      std::uint32_t other_leaf = 0;
      for (const Edge& edge : edges_[leaf]) {
        if (edge.role == Role::kAfterOtherLim &&
            binding_[edge.other] == other) {
          other_leaf = edge.other;
          break;
        }
      }
      return store_.happens_before(other, me) &&
             limited_ok(other_leaf, other, me);
    }
    case Role::kBeforeOtherLim:
      return store_.happens_before(me, other) && limited_ok(leaf, me, other);
    case Role::kConcurrent:
      return store_.relate(me, other) == Relation::kConcurrent;
    case Role::kReceiveOfOther: {
      const Event& mine = store_.event(me);
      const Event& theirs = store_.event(other);
      return mine.kind == EventKind::kReceive &&
             theirs.kind == EventKind::kSend &&
             mine.message != kNoMessage && mine.message == theirs.message;
    }
    case Role::kSendOfOther: {
      const Event& mine = store_.event(me);
      const Event& theirs = store_.event(other);
      return mine.kind == EventKind::kSend &&
             theirs.kind == EventKind::kReceive &&
             mine.message != kNoMessage && mine.message == theirs.message;
    }
  }
  return false;
}

}  // namespace ocep
