// Parallel multi-pattern matching pipeline.
//
// Monitor::on_event used to feed every registered matcher sequentially on
// the delivery thread, so per-event latency grew linearly with the number
// of patterns.  The matchers are independent per pattern, which makes the
// decomposition free: this module shards compiled patterns across a fixed
// pool of worker threads and keeps the delivery thread doing nothing but
// appending to the EventStore and handing off batch descriptors.
//
// Threading model
// ---------------
//  * One producer: the delivery thread (Monitor::on_event).  It appends
//    events to the shared store (publishing them, see event_store.h) and,
//    once a batch fills, pushes a {begin, end) arrival-range descriptor
//    into every worker's bounded SPSC ring.  A full ring applies
//    backpressure: the producer spins/yields (counted as a stall) until
//    the worker catches up, so memory stays bounded.
//  * N workers: each owns a disjoint subset of the matchers (round-robin
//    sharding at add_matcher time), pops batch descriptors, reads the
//    events from the store's published prefix, and runs observe() on its
//    matchers only.  Matcher state is single-owner, so no matcher locking
//    exists anywhere.
//  * drain() is the barrier: after it returns, every dispatched event has
//    been observed by every matcher, and the release/acquire pair on each
//    worker's processed counter makes the matchers' state (subsets,
//    stats) safe to read from the caller's thread.
//
// Determinism: workers observe events in arrival order, and a worker may
// see the store *ahead* of the event it is observing.  That is harmless —
// candidates come from matcher-owned histories (observed events only) and
// causal relations between stored events are immutable, so every search
// returns exactly what the sequential run returns (tested in
// tests/test_pipeline.cc against worker_threads = 0).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "core/governor.h"
#include "core/matcher.h"
#include "obs/metrics.h"
#include "poet/event_store.h"
#include "poet/linearizer.h"

namespace ocep {

/// Producer-side and worker-side counters.  Exact after drain().
struct PipelineWorkerStats {
  std::uint64_t batches = 0;         ///< batches processed
  std::uint64_t events = 0;          ///< events processed (all its patterns)
  std::uint64_t ring_full_stalls = 0;  ///< producer pushes that had to wait
  std::uint64_t restarts = 0;        ///< supervised respawns (see supervise)
  std::uint64_t heartbeat = 0;       ///< liveness ticks (batches + idle)
};

/// Per-pattern observation cost, measured on the owning worker with
/// metrics::Stopwatch at batch granularity.
struct PipelinePatternStats {
  std::size_t worker = 0;            ///< owning shard
  std::uint64_t events_observed = 0;
  double observe_us_total = 0.0;     ///< summed batch observe time
  double observe_us_max = 0.0;       ///< slowest single batch
  bool quarantined = false;          ///< shut down by worker supervision
};

struct PipelineStats {
  std::uint64_t events_dispatched = 0;
  std::vector<PipelineWorkerStats> workers;
  std::vector<PipelinePatternStats> patterns;
  /// Ingestion-side counters (linearizer + wire session), populated when
  /// the monitor has an ingest source attached (Monitor::set_ingest_source).
  IngestStats ingest{};
};

class MatchPipeline {
 public:
  /// Spawns `workers` threads immediately (they idle on empty rings).
  /// `ring_batches` bounds each worker's queue of batch descriptors.
  MatchPipeline(const EventStore& store, std::size_t workers,
                std::size_t ring_batches);
  ~MatchPipeline();

  MatchPipeline(const MatchPipeline&) = delete;
  MatchPipeline& operator=(const MatchPipeline&) = delete;

  /// Mirrors the per-worker counters onto `registry` and records
  /// per-arrival observe latency per pattern (monitor.observe_ns) plus
  /// ring occupancy at dispatch (pipeline.ring_depth).  Must be called
  /// before the first add_matcher(); the registry must outlive the
  /// pipeline.
  void enable_metrics(obs::Registry& registry);

  /// Registers a matcher into the next shard (round-robin).  Must happen
  /// before the first dispatch(); the matcher must outlive the pipeline.
  void add_matcher(OcepMatcher* matcher);

  /// Hands the arrival range [dispatched(), end) to every worker.  The
  /// events must already be appended (and thereby published) to the
  /// store.  Delivery thread only.
  void dispatch(std::uint64_t end);

  /// Blocks until every worker has processed everything dispatched so
  /// far.  After it returns, reading matcher state from the calling
  /// thread is race-free.  Delivery thread only.
  void drain();

  /// Checkpoint support: primes the dispatch and processed watermarks
  /// after Monitor::restore(), so the first post-restore batch starts at
  /// arrival position `events`.  Must precede the first dispatch.
  void resume_at(std::uint64_t events);

  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_;
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Snapshot of the counters.  Call after drain() for exact values.
  [[nodiscard]] PipelineStats stats() const;

  /// Fills the per-worker section of a HealthReport (batches, heartbeat,
  /// restarts, quarantined pattern count).  Call after drain().
  void fill_health(HealthReport& report) const;

 private:
  struct Batch {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  struct PatternSlot {
    OcepMatcher* matcher = nullptr;
    std::size_t pattern_index = 0;
    std::uint64_t events = 0;   // worker-thread only until drain()
    double us_total = 0.0;
    double us_max = 0.0;
    bool quarantined = false;   // worker-thread only until drain()
    obs::Histogram* observe_ns = nullptr;  ///< per-arrival latency sink
  };

  struct Worker {
    explicit Worker(std::size_t ring_batches) : ring(ring_batches) {}
    SpscRing<Batch> ring;
    std::vector<PatternSlot> patterns;
    std::atomic<std::uint64_t> processed{0};  ///< arrival watermark done
    std::atomic<std::uint64_t> batches{0};
    // Supervision (see supervise()): heartbeat ticks on every batch and
    // idle backoff; restarts counts worker-loop respawns after an escaped
    // exception.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> restarts{0};
    std::uint64_t current_batch_end = 0;  ///< worker thread only
    bool respawn_pending = false;         ///< worker thread only
    std::uint64_t stalls = 0;  ///< producer-side, producer thread only
    // Registry mirrors (null when metrics are off).
    obs::Counter* batches_counter = nullptr;
    obs::Counter* events_counter = nullptr;
    obs::Counter* stalls_counter = nullptr;
    obs::Counter* restarts_counter = nullptr;
    obs::Histogram* ring_depth = nullptr;  ///< occupancy seen at dispatch
    std::thread thread;
  };

  /// Thread entry: runs worker_loop under exception containment.  An
  /// exception that escapes a batch quarantines the offending pattern
  /// (done at the throw site), publishes the batch watermark so drain()
  /// cannot hang, counts a restart, and re-enters the loop — the process
  /// never terminates for one pattern's failure.
  void supervise(Worker& worker);
  void worker_loop(Worker& worker);
  void run_batch(Worker& worker, const Batch& batch);
  /// One matcher observe under supervision: an escaped exception or a
  /// contained callback error quarantines the slot.  Per-event (not
  /// per-batch) so the quarantine point is identical across batch sizes
  /// and worker counts.
  void observe_one(Worker& worker, PatternSlot& slot, const Event& event);
  void quarantine_slot(PatternSlot& slot, const std::string& reason);
  static void backoff(unsigned& spins);

  const EventStore& store_;
  obs::Registry* registry_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  std::uint64_t dispatched_ = 0;
  bool started_ = false;
  std::size_t next_shard_ = 0;
  std::size_t pattern_count_ = 0;
};

}  // namespace ocep
