// Per-leaf event history (paper §IV-A).
//
// "Every time POET reports an event that matches a leaf node of the
// pattern tree, it is added to the corresponding leaf node's history of
// events.  This history is grouped by traces and is totally ordered for
// each individual trace."
//
// Redundancy elimination (§VI): two events on one trace with no send or
// receive event between them have the same causal relation to every event
// on other traces, so only the first is kept.  This is the O(1) overhead
// bound the paper describes; it is optional because it can drop matches of
// patterns that relate two events on the same trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/error.h"
#include "common/string_pool.h"
#include "model/ids.h"

namespace ocep {

struct HistoryEntry {
  EventIndex index = kNoEvent;
  /// Communication events on this trace before this event; equal counts
  /// (for non-communication events) mean causally identical cross-trace.
  std::uint32_t comm_before = 0;
};

class LeafHistory {
 public:
  /// `keyed` enables a secondary per-symbol index: entries are also
  /// grouped by a key attribute (the leaf's variable text or type), so a
  /// search with the variable already bound probes only the matching
  /// occurrences instead of filtering the whole trace history.
  void reset(std::size_t traces, bool keyed = false) {
    per_trace_.assign(traces, {});
    keyed_ = keyed;
    by_key_.assign(keyed ? traces : 0, {});
    total_ = 0;
    merged_ = 0;
    pruned_ = 0;
    evicted_ = 0;
    bytes_ = 0;
  }

  [[nodiscard]] bool keyed() const noexcept { return keyed_; }

  /// Appends an occurrence; indexes must arrive in increasing order per
  /// trace.  With `merge` set, drops the event when it is causally
  /// redundant with the previous stored occurrence.  Returns true when the
  /// event was stored.  `key` is the secondary-index symbol (ignored when
  /// the history is not keyed).
  bool append(TraceId trace, EventIndex index, std::uint32_t comm_before,
              bool is_communication, bool merge, Symbol key = kEmptySymbol) {
    check_insert(trace, index);
    std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (merge && !is_communication && !entries.empty() &&
        entries.back().comm_before == comm_before) {
      ++merged_;
      return false;
    }
    store(trace, index, comm_before, key);
    return true;
  }

  /// Keyed variant of on_trace(): only entries whose key symbol matches.
  [[nodiscard]] std::span<const HistoryEntry> on_trace_keyed(
      TraceId trace, Symbol key) const {
    OCEP_ASSERT(keyed_ && trace < by_key_.size());
    const auto it = by_key_[trace].find(static_cast<std::uint32_t>(key));
    if (it == by_key_[trace].end()) {
      return {};
    }
    return it->second;
  }

  [[nodiscard]] std::span<const HistoryEntry> on_trace(TraceId trace) const {
    OCEP_ASSERT(trace < per_trace_.size());
    return per_trace_[trace];
  }

  /// Positions [first, last) of entries with index in [lo, hi], by binary
  /// search over the sorted-by-index entries.
  struct Range {
    std::size_t first = 0;
    std::size_t last = 0;
    [[nodiscard]] bool empty() const noexcept { return first >= last; }
  };

  [[nodiscard]] Range range(TraceId trace, EventIndex lo,
                            EventIndex hi) const {
    return range_of(on_trace(trace), lo, hi);
  }

  [[nodiscard]] Range range_keyed(TraceId trace, Symbol key, EventIndex lo,
                                  EventIndex hi) const {
    return range_of(on_trace_keyed(trace, key), lo, hi);
  }

  [[nodiscard]] static Range range_of(std::span<const HistoryEntry> entries,
                                      EventIndex lo, EventIndex hi) {
    if (lo > hi || entries.empty()) {
      return {};
    }
    Range out;
    out.first = lower_bound(entries, lo);
    out.last = upper_bound(entries, hi);
    return out;
  }

  /// True if some entry on `trace` has index in [lo, hi].
  [[nodiscard]] bool any_in(TraceId trace, EventIndex lo,
                            EventIndex hi) const {
    return !range(trace, lo, hi).empty();
  }

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t merged() const noexcept { return merged_; }
  [[nodiscard]] std::size_t pruned() const noexcept { return pruned_; }
  [[nodiscard]] std::size_t evicted() const noexcept { return evicted_; }

  /// Deterministic size estimate for memory governance: stored entry count
  /// times entry size (main plus keyed copies) plus a flat per-key bucket
  /// overhead.  Counted from sizes, never capacities, so identical inputs
  /// give identical figures across allocators and growth policies.
  [[nodiscard]] std::size_t approx_bytes() const noexcept { return bytes_; }

  /// Largest per-trace entry count, and which trace holds it (lowest trace
  /// wins ties, keeping eviction order deterministic).
  [[nodiscard]] std::size_t largest_trace(TraceId& trace) const noexcept {
    std::size_t best = 0;
    trace = 0;
    for (std::size_t t = 0; t < per_trace_.size(); ++t) {
      if (per_trace_[t].size() > best) {
        best = per_trace_[t].size();
        trace = static_cast<TraceId>(t);
      }
    }
    return best;
  }

  /// Checkpoint support: re-inserts a surviving entry exactly as stored,
  /// bypassing the merge heuristic (the entry already survived it when it
  /// was first appended).  Counters are restored via set_counters().
  void restore_entry(TraceId trace, EventIndex index,
                     std::uint32_t comm_before, Symbol key) {
    check_insert(trace, index);
    store(trace, index, comm_before, key);
  }

  /// Checkpoint support: restores the merge/prune/evict counters.
  void set_counters(std::size_t merged, std::size_t pruned,
                    std::size_t evicted = 0) {
    merged_ = merged;
    pruned_ = pruned;
    evicted_ = evicted;
  }

  /// Retention (paper §VI future work): drops the oldest entries on
  /// `trace`, keeping the `keep` most recent.  The caller decides *when*
  /// this is safe — OCEP does it once the (leaf, trace) pair is covered by
  /// the representative subset, so the dropped events can no longer
  /// contribute new coverage there.
  void prune_front(TraceId trace, std::size_t keep) {
    drop_front(trace, keep, pruned_);
  }

  /// Memory governance (docs/GOVERNANCE.md): same front-drop as
  /// prune_front but charged to the `evicted` counter — these entries were
  /// *not* known to be covered, so the drop is reported as coverage loss.
  /// Returns the approximate bytes freed.
  std::size_t evict_front(TraceId trace, std::size_t keep) {
    return drop_front(trace, keep, evicted_);
  }

 private:
  /// Caller-invariant checks for append/restore_entry.  These are caller
  /// errors (a bad ingestion path), not internal bugs, so they throw a
  /// positioned HistoryError instead of aborting.
  void check_insert(TraceId trace, EventIndex index) const {
    if (trace >= per_trace_.size()) {
      throw HistoryError("leaf history append to unknown trace", trace, index);
    }
    const std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (!entries.empty() && entries.back().index >= index) {
      throw HistoryError("out-of-order leaf history append (last stored " +
                             std::to_string(entries.back().index) + ")",
                         trace, index);
    }
  }

  void store(TraceId trace, EventIndex index, std::uint32_t comm_before,
             Symbol key) {
    per_trace_[trace].push_back(HistoryEntry{index, comm_before});
    bytes_ += sizeof(HistoryEntry);
    if (keyed_) {
      std::vector<HistoryEntry>& keyed_entries =
          by_key_[trace][static_cast<std::uint32_t>(key)];
      if (keyed_entries.empty()) {
        bytes_ += kKeyBucketBytes;
      }
      keyed_entries.push_back(HistoryEntry{index, comm_before});
      bytes_ += sizeof(HistoryEntry);
    }
    ++total_;
  }

  std::size_t drop_front(TraceId trace, std::size_t keep,
                         std::size_t& counter) {
    OCEP_ASSERT(trace < per_trace_.size());
    std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (entries.size() <= keep) {
      return 0;
    }
    const std::size_t drop = entries.size() - keep;
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(drop));
    counter += drop;
    total_ -= drop;
    std::size_t freed = drop * sizeof(HistoryEntry);
    if (keyed_) {
      // Rebuild the secondary index for this trace from the survivors.
      // (The entry keys are not stored; drop every keyed entry older than
      // the new oldest index instead.)
      const EventIndex oldest =
          entries.empty() ? kNoEvent : entries.front().index;
      for (auto& [key, keyed_entries] : by_key_[trace]) {
        static_cast<void>(key);
        const std::size_t cut = lower_bound(keyed_entries, oldest);
        keyed_entries.erase(
            keyed_entries.begin(),
            keyed_entries.begin() + static_cast<std::ptrdiff_t>(cut));
        freed += cut * sizeof(HistoryEntry);
        if (cut > 0 && keyed_entries.empty()) {
          // Release the bucket charge so the figure always equals the
          // survivors' accounting (what a checkpoint restore recomputes).
          freed += kKeyBucketBytes;
        }
      }
    }
    bytes_ -= std::min(bytes_, freed);
    return freed;
  }

  /// Flat charge for a new keyed bucket (node + hashing overhead); a fixed
  /// constant keeps the accounting deterministic across libraries.
  static constexpr std::size_t kKeyBucketBytes = 64;

  static std::size_t lower_bound(std::span<const HistoryEntry> entries,
                                 EventIndex value) {
    std::size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].index < value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  static std::size_t upper_bound(std::span<const HistoryEntry> entries,
                                 EventIndex value) {
    std::size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].index <= value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::vector<std::vector<HistoryEntry>> per_trace_;
  /// Secondary index (when keyed): per trace, entries grouped by symbol.
  std::vector<std::unordered_map<std::uint32_t, std::vector<HistoryEntry>>>
      by_key_;
  bool keyed_ = false;
  std::size_t total_ = 0;
  std::size_t merged_ = 0;
  std::size_t pruned_ = 0;
  std::size_t evicted_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace ocep
