// Per-leaf event history (paper §IV-A).
//
// "Every time POET reports an event that matches a leaf node of the
// pattern tree, it is added to the corresponding leaf node's history of
// events.  This history is grouped by traces and is totally ordered for
// each individual trace."
//
// Redundancy elimination (§VI): two events on one trace with no send or
// receive event between them have the same causal relation to every event
// on other traces, so only the first is kept.  This is the O(1) overhead
// bound the paper describes; it is optional because it can drop matches of
// patterns that relate two events on the same trace.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/string_pool.h"
#include "model/ids.h"

namespace ocep {

struct HistoryEntry {
  EventIndex index = kNoEvent;
  /// Communication events on this trace before this event; equal counts
  /// (for non-communication events) mean causally identical cross-trace.
  std::uint32_t comm_before = 0;
};

class LeafHistory {
 public:
  /// `keyed` enables a secondary per-symbol index: entries are also
  /// grouped by a key attribute (the leaf's variable text or type), so a
  /// search with the variable already bound probes only the matching
  /// occurrences instead of filtering the whole trace history.
  void reset(std::size_t traces, bool keyed = false) {
    per_trace_.assign(traces, {});
    keyed_ = keyed;
    by_key_.assign(keyed ? traces : 0, {});
    total_ = 0;
    merged_ = 0;
    pruned_ = 0;
  }

  [[nodiscard]] bool keyed() const noexcept { return keyed_; }

  /// Appends an occurrence; indexes must arrive in increasing order per
  /// trace.  With `merge` set, drops the event when it is causally
  /// redundant with the previous stored occurrence.  Returns true when the
  /// event was stored.  `key` is the secondary-index symbol (ignored when
  /// the history is not keyed).
  bool append(TraceId trace, EventIndex index, std::uint32_t comm_before,
              bool is_communication, bool merge, Symbol key = kEmptySymbol) {
    OCEP_ASSERT(trace < per_trace_.size());
    std::vector<HistoryEntry>& entries = per_trace_[trace];
    OCEP_ASSERT(entries.empty() || entries.back().index < index);
    if (merge && !is_communication && !entries.empty() &&
        entries.back().comm_before == comm_before) {
      ++merged_;
      return false;
    }
    entries.push_back(HistoryEntry{index, comm_before});
    if (keyed_) {
      by_key_[trace][static_cast<std::uint32_t>(key)].push_back(
          HistoryEntry{index, comm_before});
    }
    ++total_;
    return true;
  }

  /// Keyed variant of on_trace(): only entries whose key symbol matches.
  [[nodiscard]] std::span<const HistoryEntry> on_trace_keyed(
      TraceId trace, Symbol key) const {
    OCEP_ASSERT(keyed_ && trace < by_key_.size());
    const auto it = by_key_[trace].find(static_cast<std::uint32_t>(key));
    if (it == by_key_[trace].end()) {
      return {};
    }
    return it->second;
  }

  [[nodiscard]] std::span<const HistoryEntry> on_trace(TraceId trace) const {
    OCEP_ASSERT(trace < per_trace_.size());
    return per_trace_[trace];
  }

  /// Positions [first, last) of entries with index in [lo, hi], by binary
  /// search over the sorted-by-index entries.
  struct Range {
    std::size_t first = 0;
    std::size_t last = 0;
    [[nodiscard]] bool empty() const noexcept { return first >= last; }
  };

  [[nodiscard]] Range range(TraceId trace, EventIndex lo,
                            EventIndex hi) const {
    return range_of(on_trace(trace), lo, hi);
  }

  [[nodiscard]] Range range_keyed(TraceId trace, Symbol key, EventIndex lo,
                                  EventIndex hi) const {
    return range_of(on_trace_keyed(trace, key), lo, hi);
  }

  [[nodiscard]] static Range range_of(std::span<const HistoryEntry> entries,
                                      EventIndex lo, EventIndex hi) {
    if (lo > hi || entries.empty()) {
      return {};
    }
    Range out;
    out.first = lower_bound(entries, lo);
    out.last = upper_bound(entries, hi);
    return out;
  }

  /// True if some entry on `trace` has index in [lo, hi].
  [[nodiscard]] bool any_in(TraceId trace, EventIndex lo,
                            EventIndex hi) const {
    return !range(trace, lo, hi).empty();
  }

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t merged() const noexcept { return merged_; }
  [[nodiscard]] std::size_t pruned() const noexcept { return pruned_; }

  /// Checkpoint support: re-inserts a surviving entry exactly as stored,
  /// bypassing the merge heuristic (the entry already survived it when it
  /// was first appended).  Counters are restored via set_counters().
  void restore_entry(TraceId trace, EventIndex index,
                     std::uint32_t comm_before, Symbol key) {
    OCEP_ASSERT(trace < per_trace_.size());
    std::vector<HistoryEntry>& entries = per_trace_[trace];
    OCEP_ASSERT(entries.empty() || entries.back().index < index);
    entries.push_back(HistoryEntry{index, comm_before});
    if (keyed_) {
      by_key_[trace][static_cast<std::uint32_t>(key)].push_back(
          HistoryEntry{index, comm_before});
    }
    ++total_;
  }

  /// Checkpoint support: restores the merge/prune counters.
  void set_counters(std::size_t merged, std::size_t pruned) {
    merged_ = merged;
    pruned_ = pruned;
  }

  /// Retention (paper §VI future work): drops the oldest entries on
  /// `trace`, keeping the `keep` most recent.  The caller decides *when*
  /// this is safe — OCEP does it once the (leaf, trace) pair is covered by
  /// the representative subset, so the dropped events can no longer
  /// contribute new coverage there.
  void prune_front(TraceId trace, std::size_t keep) {
    OCEP_ASSERT(trace < per_trace_.size());
    std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (entries.size() <= keep) {
      return;
    }
    const std::size_t drop = entries.size() - keep;
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(drop));
    pruned_ += drop;
    total_ -= drop;
    if (keyed_) {
      // Rebuild the secondary index for this trace from the survivors.
      // (The entry keys are not stored; drop every keyed entry older than
      // the new oldest index instead.)
      const EventIndex oldest =
          entries.empty() ? kNoEvent : entries.front().index;
      for (auto& [key, keyed_entries] : by_key_[trace]) {
        static_cast<void>(key);
        const std::size_t cut = lower_bound(keyed_entries, oldest);
        keyed_entries.erase(
            keyed_entries.begin(),
            keyed_entries.begin() + static_cast<std::ptrdiff_t>(cut));
      }
    }
  }

 private:
  static std::size_t lower_bound(std::span<const HistoryEntry> entries,
                                 EventIndex value) {
    std::size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].index < value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  static std::size_t upper_bound(std::span<const HistoryEntry> entries,
                                 EventIndex value) {
    std::size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].index <= value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::vector<std::vector<HistoryEntry>> per_trace_;
  /// Secondary index (when keyed): per trace, entries grouped by symbol.
  std::vector<std::unordered_map<std::uint32_t, std::vector<HistoryEntry>>>
      by_key_;
  bool keyed_ = false;
  std::size_t total_ = 0;
  std::size_t merged_ = 0;
  std::size_t pruned_ = 0;
};

}  // namespace ocep
