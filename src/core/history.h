// Per-leaf event history (paper §IV-A).
//
// "Every time POET reports an event that matches a leaf node of the
// pattern tree, it is added to the corresponding leaf node's history of
// events.  This history is grouped by traces and is totally ordered for
// each individual trace."
//
// Redundancy elimination (§VI): two events on one trace with no send or
// receive event between them have the same causal relation to every event
// on other traces, so only the first is kept.  This is the O(1) overhead
// bound the paper describes; it is optional because it can drop matches of
// patterns that relate two events on the same trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/error.h"
#include "common/string_pool.h"
#include "model/ids.h"

namespace ocep {

struct HistoryEntry {
  EventIndex index = kNoEvent;
  /// Communication events on this trace before this event; equal counts
  /// (for non-communication events) mean causally identical cross-trace.
  std::uint32_t comm_before = 0;
};

class LeafHistory {
 public:
  /// One spilled span of this history: entries dropped from RAM but
  /// recoverable through a SpanSink.  Metas per trace are kept oldest to
  /// newest, with strictly ascending, non-overlapping index ranges that
  /// all precede the resident entries.  Metas are bookkeeping, not
  /// entries: they are excluded from total()/approx_bytes().
  struct SpanMeta {
    std::uint64_t seq = 0;         ///< matcher-wide spill sequence number
    EventIndex first_index = kNoEvent;
    EventIndex last_index = kNoEvent;
    std::uint32_t count = 0;
  };

  /// `keyed` enables a secondary per-symbol index: entries are also
  /// grouped by a key attribute (the leaf's variable text or type), so a
  /// search with the variable already bound probes only the matching
  /// occurrences instead of filtering the whole trace history.
  void reset(std::size_t traces, bool keyed = false) {
    per_trace_.assign(traces, {});
    keyed_ = keyed;
    by_key_.assign(keyed ? traces : 0, {});
    spilled_meta_.assign(traces, {});
    total_ = 0;
    merged_ = 0;
    pruned_ = 0;
    evicted_ = 0;
    spilled_ = 0;
    bytes_ = 0;
  }

  [[nodiscard]] bool keyed() const noexcept { return keyed_; }

  /// Appends an occurrence; indexes must arrive in increasing order per
  /// trace.  With `merge` set, drops the event when it is causally
  /// redundant with the previous stored occurrence.  Returns true when the
  /// event was stored.  `key` is the secondary-index symbol (ignored when
  /// the history is not keyed).
  bool append(TraceId trace, EventIndex index, std::uint32_t comm_before,
              bool is_communication, bool merge, Symbol key = kEmptySymbol) {
    check_insert(trace, index);
    std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (merge && !is_communication && !entries.empty() &&
        entries.back().comm_before == comm_before) {
      ++merged_;
      return false;
    }
    store(trace, index, comm_before, key);
    return true;
  }

  /// Keyed variant of on_trace(): only entries whose key symbol matches.
  [[nodiscard]] std::span<const HistoryEntry> on_trace_keyed(
      TraceId trace, Symbol key) const {
    OCEP_ASSERT(keyed_ && trace < by_key_.size());
    const auto it = by_key_[trace].find(static_cast<std::uint32_t>(key));
    if (it == by_key_[trace].end()) {
      return {};
    }
    return it->second;
  }

  [[nodiscard]] std::span<const HistoryEntry> on_trace(TraceId trace) const {
    OCEP_ASSERT(trace < per_trace_.size());
    return per_trace_[trace];
  }

  /// Positions [first, last) of entries with index in [lo, hi], by binary
  /// search over the sorted-by-index entries.
  struct Range {
    std::size_t first = 0;
    std::size_t last = 0;
    [[nodiscard]] bool empty() const noexcept { return first >= last; }
  };

  [[nodiscard]] Range range(TraceId trace, EventIndex lo,
                            EventIndex hi) const {
    return range_of(on_trace(trace), lo, hi);
  }

  [[nodiscard]] Range range_keyed(TraceId trace, Symbol key, EventIndex lo,
                                  EventIndex hi) const {
    return range_of(on_trace_keyed(trace, key), lo, hi);
  }

  [[nodiscard]] static Range range_of(std::span<const HistoryEntry> entries,
                                      EventIndex lo, EventIndex hi) {
    if (lo > hi || entries.empty()) {
      return {};
    }
    Range out;
    out.first = lower_bound(entries, lo);
    out.last = upper_bound(entries, hi);
    return out;
  }

  /// True if some entry on `trace` has index in [lo, hi].
  [[nodiscard]] bool any_in(TraceId trace, EventIndex lo,
                            EventIndex hi) const {
    return !range(trace, lo, hi).empty();
  }

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t merged() const noexcept { return merged_; }
  [[nodiscard]] std::size_t pruned() const noexcept { return pruned_; }
  [[nodiscard]] std::size_t evicted() const noexcept { return evicted_; }
  [[nodiscard]] std::size_t spilled() const noexcept { return spilled_; }

  /// Deterministic size estimate for memory governance: stored entry count
  /// times entry size (main plus keyed copies) plus a flat per-key bucket
  /// overhead.  Counted from sizes, never capacities, so identical inputs
  /// give identical figures across allocators and growth policies.
  [[nodiscard]] std::size_t approx_bytes() const noexcept { return bytes_; }

  /// Largest per-trace entry count, and which trace holds it (lowest trace
  /// wins ties, keeping eviction order deterministic).
  [[nodiscard]] std::size_t largest_trace(TraceId& trace) const noexcept {
    std::size_t best = 0;
    trace = 0;
    for (std::size_t t = 0; t < per_trace_.size(); ++t) {
      if (per_trace_[t].size() > best) {
        best = per_trace_[t].size();
        trace = static_cast<TraceId>(t);
      }
    }
    return best;
  }

  /// Checkpoint support: re-inserts a surviving entry exactly as stored,
  /// bypassing the merge heuristic (the entry already survived it when it
  /// was first appended).  Counters are restored via set_counters().
  void restore_entry(TraceId trace, EventIndex index,
                     std::uint32_t comm_before, Symbol key) {
    check_insert(trace, index);
    store(trace, index, comm_before, key);
  }

  /// Checkpoint support: restores the merge/prune/evict counters.
  void set_counters(std::size_t merged, std::size_t pruned,
                    std::size_t evicted = 0) {
    merged_ = merged;
    pruned_ = pruned;
    evicted_ = evicted;
  }
  /// Checkpoint support (format v3): restores the spilled counter.
  void set_spilled_counter(std::size_t spilled) { spilled_ = spilled; }

  /// Retention (paper §VI future work): drops the oldest entries on
  /// `trace`, keeping the `keep` most recent.  The caller decides *when*
  /// this is safe — OCEP does it once the (leaf, trace) pair is covered by
  /// the representative subset, so the dropped events can no longer
  /// contribute new coverage there.
  void prune_front(TraceId trace, std::size_t keep) {
    drop_front(trace, keep, pruned_);
  }

  /// Memory governance (docs/GOVERNANCE.md): same front-drop as
  /// prune_front but charged to the `evicted` counter — these entries were
  /// *not* known to be covered, so the drop is reported as coverage loss.
  /// Returns the approximate bytes freed.
  std::size_t evict_front(TraceId trace, std::size_t keep) {
    return drop_front(trace, keep, evicted_);
  }

  // --- span spill (storage tier; see core/span_sink.h) -----------------

  /// Same front-drop as evict_front but recoverable: records a SpanMeta
  /// for the dropped prefix (charged to the `spilled` counter) so the
  /// entries can be faulted back.  Call only after the sink durably
  /// accepted the exact prefix being dropped.
  std::size_t spill_front(TraceId trace, std::size_t keep,
                          std::uint64_t seq) {
    OCEP_ASSERT(trace < per_trace_.size());
    const std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (entries.size() <= keep) {
      return 0;
    }
    const std::size_t drop = entries.size() - keep;
    spilled_meta_[trace].push_back(
        SpanMeta{seq, entries.front().index, entries[drop - 1].index,
                 static_cast<std::uint32_t>(drop)});
    return drop_front(trace, keep, spilled_);
  }

  [[nodiscard]] bool has_spilled(TraceId trace) const {
    OCEP_ASSERT(trace < spilled_meta_.size());
    return !spilled_meta_[trace].empty();
  }
  [[nodiscard]] std::span<const SpanMeta> spilled_on(TraceId trace) const {
    OCEP_ASSERT(trace < spilled_meta_.size());
    return spilled_meta_[trace];
  }

  /// Fault-back support: re-inserts a contiguous block of entries older
  /// than everything resident (the newest spilled span).  Bypasses
  /// check_insert — prepends must keep the per-trace order, which the
  /// caller guarantees by faulting newest-first.  `keys` are the
  /// secondary-index symbols, recomputed by the caller (parallel to
  /// `entries`; ignored when the history is not keyed).
  void prepend_front(TraceId trace, std::span<const HistoryEntry> entries,
                     std::span<const Symbol> keys) {
    OCEP_ASSERT(trace < per_trace_.size());
    if (entries.empty()) {
      return;
    }
    std::vector<HistoryEntry>& resident = per_trace_[trace];
    OCEP_ASSERT(resident.empty() ||
                entries.back().index < resident.front().index);
    resident.insert(resident.begin(), entries.begin(), entries.end());
    total_ += entries.size();
    bytes_ += entries.size() * sizeof(HistoryEntry);
    if (keyed_) {
      OCEP_ASSERT(keys.size() == entries.size());
      // Group by key in arrival order, then prepend each group as one
      // block so every bucket stays sorted by index.
      std::unordered_map<std::uint32_t, std::vector<HistoryEntry>> groups;
      std::vector<std::uint32_t> group_order;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto key = static_cast<std::uint32_t>(keys[i]);
        std::vector<HistoryEntry>& group = groups[key];
        if (group.empty()) {
          group_order.push_back(key);
        }
        group.push_back(entries[i]);
      }
      for (const std::uint32_t key : group_order) {
        std::vector<HistoryEntry>& bucket = by_key_[trace][key];
        if (bucket.empty()) {
          bytes_ += kKeyBucketBytes;
        }
        const std::vector<HistoryEntry>& group = groups[key];
        bucket.insert(bucket.begin(), group.begin(), group.end());
        bytes_ += group.size() * sizeof(HistoryEntry);
      }
    }
  }

  /// Removes the newest spilled span's meta (its entries were faulted
  /// back via prepend_front, or proved unrecoverable).
  void pop_spilled(TraceId trace) {
    OCEP_ASSERT(trace < spilled_meta_.size() &&
                !spilled_meta_[trace].empty());
    spilled_meta_[trace].pop_back();
  }

  /// Removes and returns every spilled meta of `trace` (coverage made the
  /// pair prunable, so the spans will never be faulted again).
  [[nodiscard]] std::vector<SpanMeta> take_spilled(TraceId trace) {
    OCEP_ASSERT(trace < spilled_meta_.size());
    std::vector<SpanMeta> out = std::move(spilled_meta_[trace]);
    spilled_meta_[trace].clear();
    return out;
  }

  /// Checkpoint support: re-records one spilled meta (oldest first).
  void restore_spilled(TraceId trace, const SpanMeta& meta) {
    OCEP_ASSERT(trace < spilled_meta_.size());
    spilled_meta_[trace].push_back(meta);
  }

 private:
  /// Caller-invariant checks for append/restore_entry.  These are caller
  /// errors (a bad ingestion path), not internal bugs, so they throw a
  /// positioned HistoryError instead of aborting.
  void check_insert(TraceId trace, EventIndex index) const {
    if (trace >= per_trace_.size()) {
      throw HistoryError("leaf history append to unknown trace", trace, index);
    }
    const std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (!entries.empty() && entries.back().index >= index) {
      throw HistoryError("out-of-order leaf history append (last stored " +
                             std::to_string(entries.back().index) + ")",
                         trace, index);
    }
  }

  void store(TraceId trace, EventIndex index, std::uint32_t comm_before,
             Symbol key) {
    per_trace_[trace].push_back(HistoryEntry{index, comm_before});
    bytes_ += sizeof(HistoryEntry);
    if (keyed_) {
      std::vector<HistoryEntry>& keyed_entries =
          by_key_[trace][static_cast<std::uint32_t>(key)];
      if (keyed_entries.empty()) {
        bytes_ += kKeyBucketBytes;
      }
      keyed_entries.push_back(HistoryEntry{index, comm_before});
      bytes_ += sizeof(HistoryEntry);
    }
    ++total_;
  }

  std::size_t drop_front(TraceId trace, std::size_t keep,
                         std::size_t& counter) {
    OCEP_ASSERT(trace < per_trace_.size());
    std::vector<HistoryEntry>& entries = per_trace_[trace];
    if (entries.size() <= keep) {
      return 0;
    }
    const std::size_t drop = entries.size() - keep;
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(drop));
    counter += drop;
    total_ -= drop;
    std::size_t freed = drop * sizeof(HistoryEntry);
    if (keyed_) {
      // Rebuild the secondary index for this trace from the survivors.
      // (The entry keys are not stored; drop every keyed entry older than
      // the new oldest index instead.)
      const EventIndex oldest =
          entries.empty() ? kNoEvent : entries.front().index;
      for (auto& [key, keyed_entries] : by_key_[trace]) {
        static_cast<void>(key);
        const std::size_t cut = lower_bound(keyed_entries, oldest);
        keyed_entries.erase(
            keyed_entries.begin(),
            keyed_entries.begin() + static_cast<std::ptrdiff_t>(cut));
        freed += cut * sizeof(HistoryEntry);
        if (cut > 0 && keyed_entries.empty()) {
          // Release the bucket charge so the figure always equals the
          // survivors' accounting (what a checkpoint restore recomputes).
          freed += kKeyBucketBytes;
        }
      }
    }
    bytes_ -= std::min(bytes_, freed);
    return freed;
  }

  /// Flat charge for a new keyed bucket (node + hashing overhead); a fixed
  /// constant keeps the accounting deterministic across libraries.
  static constexpr std::size_t kKeyBucketBytes = 64;

  static std::size_t lower_bound(std::span<const HistoryEntry> entries,
                                 EventIndex value) {
    std::size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].index < value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  static std::size_t upper_bound(std::span<const HistoryEntry> entries,
                                 EventIndex value) {
    std::size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].index <= value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::vector<std::vector<HistoryEntry>> per_trace_;
  /// Secondary index (when keyed): per trace, entries grouped by symbol.
  std::vector<std::unordered_map<std::uint32_t, std::vector<HistoryEntry>>>
      by_key_;
  /// Per trace, oldest..newest spilled span metas (see SpanMeta).
  std::vector<std::vector<SpanMeta>> spilled_meta_;
  bool keyed_ = false;
  std::size_t total_ = 0;
  std::size_t merged_ = 0;
  std::size_t pruned_ = 0;
  std::size_t evicted_ = 0;
  std::size_t spilled_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace ocep
