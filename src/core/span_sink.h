// Where evicted leaf-history spans go — and come back from.
//
// The matcher's byte-capped history eviction (docs/GOVERNANCE.md) turns
// into a memory hierarchy when a sink is attached: instead of discarding
// the oldest entries of the largest (leaf, trace) pair, the matcher
// offers them to the sink as one contiguous span, identified by a
// matcher-wide monotonic sequence number.  A deep search that needs
// history older than the in-RAM window faults spans back in newest-first
// order; a span the search has reabsorbed (or that coverage proved
// useless) is released.
//
// The production sink (src/net/shard.cc) appends spans to the tenant's
// segment log and serves faults through the shared buffer pool; the
// matcher itself only depends on this interface, so core stays free of
// any store dependency.  A sink that declines a spill (returns false)
// falls the matcher back to plain eviction — the entries are then lost,
// exactly the pre-sink behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/history.h"
#include "model/ids.h"

namespace ocep {

class SpanSink {
 public:
  virtual ~SpanSink() = default;

  /// Offers one span of evicted entries (indices strictly ascending).
  /// True = the sink durably owns a copy and the matcher may drop the
  /// entries from RAM; false = decline (the matcher evicts instead).
  virtual bool spill(std::uint32_t pattern, std::uint32_t leaf,
                     TraceId trace, std::uint64_t seq,
                     std::span<const HistoryEntry> entries) = 0;

  /// Loads a previously spilled span back; fills `out` with the exact
  /// entries passed to spill().  False when the span cannot be read.
  virtual bool fault(std::uint32_t pattern, std::uint32_t leaf,
                     TraceId trace, std::uint64_t seq,
                     std::vector<HistoryEntry>& out) = 0;

  /// The span is no longer needed (faulted back into RAM for good, or
  /// its (leaf, trace) pair was covered); the sink may reclaim it.
  virtual void release(std::uint32_t pattern, std::uint32_t leaf,
                       TraceId trace, std::uint64_t seq) = 0;
};

}  // namespace ocep
