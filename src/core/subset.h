// Representative subset of matches (paper §IV-B).
//
// A subset of all matches is representative when, for every pattern leaf
// and every trace, it contains at least one occurrence of that leaf's
// event on that trace if any complete match binds the leaf there.  Such a
// subset has cardinality at most k * n (k = pattern size, n = traces),
// which is what bounds OCEP's storage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "model/ids.h"

namespace ocep {

/// A complete match: one event per pattern leaf.
struct Match {
  std::vector<EventId> bindings;
};

class RepresentativeSubset {
 public:
  void reset(std::size_t leaves, std::size_t traces) {
    leaves_ = leaves;
    traces_ = traces;
    slot_.assign(leaves * traces, kUnset);
    matches_.clear();
  }

  [[nodiscard]] bool covered(std::uint32_t leaf, TraceId trace) const {
    return slot_[index(leaf, trace)] != kUnset;
  }

  /// Adds the match if it covers any (leaf, trace) pair not yet covered.
  /// Returns true when the match was retained.
  bool add(const Match& match) {
    OCEP_ASSERT(match.bindings.size() == leaves_);
    bool fresh = false;
    for (std::uint32_t leaf = 0; leaf < leaves_; ++leaf) {
      if (!covered(leaf, match.bindings[leaf].trace)) {
        fresh = true;
        break;
      }
    }
    if (!fresh) {
      return false;
    }
    const auto match_id = static_cast<std::uint32_t>(matches_.size());
    matches_.push_back(match);
    for (std::uint32_t leaf = 0; leaf < leaves_; ++leaf) {
      std::uint32_t& entry = slot_[index(leaf, match.bindings[leaf].trace)];
      if (entry == kUnset) {
        entry = match_id;
      }
    }
    return true;
  }

  /// Retained matches; at most leaves * traces of them.
  [[nodiscard]] const std::vector<Match>& matches() const noexcept {
    return matches_;
  }

  /// Raw coverage table for checkpointing: (leaf, trace) -> match id, with
  /// kUnset (0xffffffff) marking uncovered pairs.
  [[nodiscard]] std::span<const std::uint32_t> slots() const noexcept {
    return slot_;
  }

  /// Checkpoint support: replaces the coverage table and retained matches
  /// after reset() sized them.  Slot values must be kUnset or valid match
  /// ids — the caller validates before handing over.
  void restore(std::vector<std::uint32_t> slots, std::vector<Match> matches) {
    OCEP_ASSERT(slots.size() == leaves_ * traces_);
    slot_ = std::move(slots);
    matches_ = std::move(matches);
  }

  /// The sentinel used in slots().
  static constexpr std::uint32_t kUnsetSlot = 0xffffffffU;

  /// Number of covered (leaf, trace) pairs.
  [[nodiscard]] std::size_t coverage() const noexcept {
    std::size_t count = 0;
    for (const std::uint32_t entry : slot_) {
      count += entry != kUnset ? 1 : 0;
    }
    return count;
  }

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaves_; }
  [[nodiscard]] std::size_t trace_count() const noexcept { return traces_; }

 private:
  static constexpr std::uint32_t kUnset = 0xffffffffU;

  [[nodiscard]] std::size_t index(std::uint32_t leaf, TraceId trace) const {
    OCEP_ASSERT(leaf < leaves_ && trace < traces_);
    return static_cast<std::size_t>(leaf) * traces_ + trace;
  }

  std::size_t leaves_ = 0;
  std::size_t traces_ = 0;
  std::vector<std::uint32_t> slot_;  // (leaf, trace) -> match id
  std::vector<Match> matches_;
};

}  // namespace ocep
