#include "core/monitor.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "common/assert.h"
#include "common/crc32c.h"
#include "common/error.h"
#include "metrics/stopwatch.h"
#include "poet/dump.h"
#include "poet/varint.h"

namespace ocep {

Monitor::Monitor(StringPool& pool, const MonitorConfig& config,
                 ClockStorage storage)
    : pool_(&pool), store_(storage), config_(config) {
  if (config_.metrics) {
    registry_ = std::make_unique<obs::Registry>();
    arrival_ns_ = &registry_->histogram(
        "monitor.arrival_ns", "",
        "per-arrival delivery-thread latency (ns)");
    store_events_ =
        &registry_->gauge("store.events", "", "events held by the store");
    store_bytes_ = &registry_->gauge("store.bytes", "",
                                     "approximate store footprint (bytes)");
    store_traces_ =
        &registry_->gauge("store.traces", "", "traces announced");
  }
  if (config_.worker_threads > 0) {
    OCEP_ASSERT_MSG(config_.batch_size > 0, "batch_size must be positive");
    store_.set_concurrent(true);
    pipeline_ = std::make_unique<MatchPipeline>(
        store_, config_.worker_threads, config_.ring_batches);
    if (registry_) {
      pipeline_->enable_metrics(*registry_);
    }
  }
}

MatcherTelemetry Monitor::make_telemetry(std::size_t index) {
  const std::string label = "pattern=\"" + std::to_string(index) + "\"";
  obs::Registry& reg = *registry_;
  MatcherTelemetry t;
  t.events = &reg.counter("matcher.events", label, "events observed");
  t.leaf_hits = &reg.counter("matcher.leaf_hits", label,
                             "events appended to >= 1 history");
  t.searches =
      &reg.counter("matcher.searches", label, "anchored searches run");
  t.matches = &reg.counter("matcher.matches", label, "matches reported");
  t.nodes = &reg.counter("matcher.nodes", label,
                         "candidate instantiations tried");
  t.domain_prunes = &reg.counter("matcher.domain_prunes", label,
                                 "empty Fig-4 candidate intervals");
  t.backjumps =
      &reg.counter("matcher.backjumps", label, "conflict-directed jumps");
  t.pins_run =
      &reg.counter("matcher.pins_run", label, "coverage pins searched");
  t.pins_skipped = &reg.counter("matcher.pins_skipped", label,
                                "coverage pins skipped");
  t.searches_aborted = &reg.counter("matcher.searches_aborted", label,
                                    "searches aborted by the budget");
  t.observes_shed = &reg.counter("matcher.observes_shed", label,
                                 "searches shed by an open breaker");
  t.breaker_trips =
      &reg.counter("matcher.breaker_trips", label, "breaker trips");
  t.history_evicted = &reg.counter("matcher.history_evicted", label,
                                   "history entries evicted by the byte cap");
  t.callback_errors = &reg.counter("matcher.callback_errors", label,
                                   "contained match-callback exceptions");
  t.levels_visited = &reg.histogram("matcher.levels_visited", label,
                                    "levels per terminating event");
  t.candidates_scanned =
      &reg.histogram("matcher.candidates_scanned", label,
                     "candidates per terminating event");
  t.matches_found = &reg.histogram("matcher.matches_found", label,
                                   "matches per terminating event");
  t.backjump_distance = &reg.histogram("matcher.backjump_distance", label,
                                       "levels skipped per backjump");
  t.conflict_set_size = &reg.histogram("matcher.conflict_set_size", label,
                                       "conflict-set size per failed search");
  return t;
}

std::size_t Monitor::add_pattern(std::string_view source,
                                 MatcherConfig config,
                                 MatchCallback on_match) {
  OCEP_ASSERT_MSG(events_seen_ == 0,
                  "patterns must be registered before the first event");
  pattern::CompiledPattern compiled = pattern::compile(source, *pool_);
  matchers_.push_back(std::make_unique<OcepMatcher>(
      store_, std::move(compiled), config, std::move(on_match)));
  const std::size_t index = matchers_.size() - 1;
  if (registry_) {
    matchers_.back()->set_telemetry(make_telemetry(index));
    if (pipeline_ == nullptr) {
      observe_ns_.push_back(&registry_->histogram(
          "monitor.observe_ns",
          "pattern=\"" + std::to_string(index) + "\"",
          "per-arrival observe latency (ns)"));
    }
  }
  if (pipeline_) {
    pipeline_->add_matcher(matchers_.back().get());
  }
  return index;
}

void Monitor::on_traces(const std::vector<Symbol>& names) {
  OCEP_ASSERT_MSG(!traces_known_, "trace table announced twice");
  traces_known_ = true;
  for (const Symbol name : names) {
    store_.add_trace(name);
  }
}

void Monitor::on_event(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT_MSG(traces_known_,
                  "on_traces must be delivered before the first event");
  store_.append(event, clock);
  ++events_seen_;
  if (pipeline_ == nullptr) {
    if (registry_) {
      const metrics::Stopwatch arrival;
      for (std::size_t i = 0; i < matchers_.size(); ++i) {
        const metrics::Stopwatch watch;
        matchers_[i]->observe(event);
        observe_ns_[i]->record(watch.elapsed_ns());
      }
      arrival_ns_->record(arrival.elapsed_ns());
    } else {
      for (const std::unique_ptr<OcepMatcher>& matcher : matchers_) {
        matcher->observe(event);
      }
    }
    drained_through_ = events_seen_;
    return;
  }
  if (registry_) {
    // Delivery-thread cost only: append + (maybe) dispatch.  Matching
    // latency lands in monitor.observe_ns on the owning worker.
    const metrics::Stopwatch arrival;
    if (events_seen_ - pipeline_->dispatched() >= config_.batch_size) {
      pipeline_->dispatch(events_seen_);
    }
    arrival_ns_->record(arrival.elapsed_ns());
    return;
  }
  if (events_seen_ - pipeline_->dispatched() >= config_.batch_size) {
    pipeline_->dispatch(events_seen_);
  }
}

void Monitor::flush() {
  if (pipeline_) {
    pipeline_->dispatch(events_seen_);
  }
}

void Monitor::drain() {
  if (pipeline_) {
    pipeline_->dispatch(events_seen_);
    pipeline_->drain();
  }
  drained_through_ = events_seen_;
  if (registry_) {
    update_store_gauges();
  }
}

void Monitor::set_span_sink(SpanSink* sink) {
  OCEP_ASSERT_MSG(pipeline_ == nullptr,
                  "span sinks require synchronous matching "
                  "(worker_threads = 0)");
  for (std::size_t i = 0; i < matchers_.size(); ++i) {
    matchers_[i]->set_span_sink(sink, static_cast<std::uint32_t>(i));
  }
}

void Monitor::fault_all_spans() {
  drain();
  for (const std::unique_ptr<OcepMatcher>& matcher : matchers_) {
    matcher->fault_all_spans();
  }
}

void Monitor::for_each_spilled(
    const std::function<void(std::uint32_t pattern, std::uint32_t leaf,
                             TraceId trace, std::uint64_t seq)>& fn) const {
  assert_drained();
  for (std::size_t i = 0; i < matchers_.size(); ++i) {
    const auto pattern = static_cast<std::uint32_t>(i);
    matchers_[i]->for_each_spilled(
        [&](std::uint32_t leaf, TraceId trace, std::uint64_t seq) {
          fn(pattern, leaf, trace, seq);
        });
  }
}

void Monitor::update_store_gauges() {
  store_events_->set(static_cast<std::int64_t>(store_.event_count()));
  store_bytes_->set(static_cast<std::int64_t>(store_.approx_bytes()));
  store_traces_->set(static_cast<std::int64_t>(store_.trace_count()));
}

PipelineStats Monitor::stats() const {
  PipelineStats out;
  if (pipeline_) {
    assert_drained();
    out = pipeline_->stats();
  } else {
    out.events_dispatched = events_seen_;
  }
  if (ingest_source_) {
    out.ingest = ingest_source_();
  }
  return out;
}

HealthReport Monitor::health() const {
  assert_drained();
  HealthReport report;
  report.patterns.reserve(matchers_.size());
  for (std::size_t i = 0; i < matchers_.size(); ++i) {
    PatternHealth pattern = matchers_[i]->health();
    pattern.pattern = i;
    report.patterns.push_back(std::move(pattern));
  }
  if (pipeline_) {
    pipeline_->fill_health(report);
  }
  if (ingest_source_) {
    report.ingest = ingest_source_();
  }
  return report;
}

namespace {

// Checkpoint framing magic: "OCEPCKP" + format version digit.  Version 3
// (this layout) added the span-spill state; version 2 added the
// governance counters and breaker state; both older versions (PRs 3 and
// 6) still restore, with the newer sections starting from their defaults.
constexpr char kCheckpointMagic[8] = {'O', 'C', 'E', 'P',
                                      'C', 'K', 'P', '3'};
constexpr char kCheckpointMagicV2[8] = {'O', 'C', 'E', 'P',
                                        'C', 'K', 'P', '2'};
constexpr char kCheckpointMagicV1[8] = {'O', 'C', 'E', 'P',
                                        'C', 'K', 'P', '1'};

}  // namespace

void Monitor::checkpoint(std::ostream& out) {
  OCEP_ASSERT_MSG(traces_known_,
                  "nothing to checkpoint before traces are announced");
  drain();
  // Body first: framing carries its length and CRC so restore() can tell
  // a torn or bit-flipped checkpoint from a valid one.
  std::ostringstream body;
  dump(store_, *pool_, body);
  poet::put_varint(body, events_seen_);
  poet::put_varint(body, matchers_.size());
  for (const std::unique_ptr<OcepMatcher>& matcher : matchers_) {
    matcher->checkpoint(body);
  }
  const std::string bytes = body.str();
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  poet::put_varint(out, bytes.size());
  poet::put_varint(out, crc32c(bytes));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void Monitor::restore(std::istream& in) {
  OCEP_ASSERT_MSG(events_seen_ == 0 && !traces_known_,
                  "restore requires a fresh monitor (patterns added, no "
                  "events seen)");
  char magic[sizeof(kCheckpointMagic)] = {};
  in.read(magic, sizeof(magic));
  int version = 0;
  if (in.gcount() == sizeof(magic)) {
    if (std::equal(std::begin(magic), std::end(magic),
                   std::begin(kCheckpointMagic))) {
      version = 3;
    } else if (std::equal(std::begin(magic), std::end(magic),
                          std::begin(kCheckpointMagicV2))) {
      version = 2;
    } else if (std::equal(std::begin(magic), std::end(magic),
                          std::begin(kCheckpointMagicV1))) {
      version = 1;
    }
  }
  if (version == 0) {
    throw SerializationError("not an OCEP checkpoint (bad magic)");
  }
  const std::uint64_t length = poet::get_varint(in);
  const auto expected_crc =
      static_cast<std::uint32_t>(poet::get_varint(in));
  if (length > (1ULL << 32)) {
    throw SerializationError("corrupt checkpoint: unreasonable body length");
  }
  std::string bytes(length, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::uint64_t>(in.gcount()) != length) {
    throw SerializationError("truncated checkpoint body");
  }
  if (crc32c(bytes) != expected_crc) {
    throw SerializationError("checkpoint body fails its CRC");
  }

  // Replay the embedded dump straight into the store, bypassing the
  // matchers: their state is restored from the per-matcher blobs below,
  // not recomputed.
  struct RestoreSink final : EventSink {
    explicit RestoreSink(Monitor& m) : monitor(m) {}
    void on_traces(const std::vector<Symbol>& names) override {
      OCEP_ASSERT(!monitor.traces_known_);
      monitor.traces_known_ = true;
      for (const Symbol name : names) {
        monitor.store_.add_trace(name);
      }
    }
    void on_event(const Event& event, const VectorClock& clock) override {
      monitor.store_.append(event, clock);
    }
    Monitor& monitor;
  };
  std::istringstream body(bytes);
  RestoreSink sink(*this);
  reload(body, *pool_, sink);

  events_seen_ = poet::get_varint(body);
  if (events_seen_ != store_.event_count()) {
    throw SerializationError("checkpoint event watermark disagrees with "
                             "its embedded dump");
  }
  const std::uint64_t matcher_count = poet::get_varint(body);
  if (matcher_count != matchers_.size()) {
    throw SerializationError(
        "checkpoint pattern count does not match the registered patterns");
  }
  for (const std::unique_ptr<OcepMatcher>& matcher : matchers_) {
    matcher->restore(body, version);
  }
  if (pipeline_) {
    pipeline_->resume_at(events_seen_);
  }
  drained_through_ = events_seen_;
  if (registry_) {
    update_store_gauges();
  }
}

}  // namespace ocep
