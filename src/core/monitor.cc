#include "core/monitor.h"

#include <string>

#include "common/assert.h"
#include "metrics/stopwatch.h"

namespace ocep {

Monitor::Monitor(StringPool& pool, const MonitorConfig& config,
                 ClockStorage storage)
    : pool_(&pool), store_(storage), config_(config) {
  if (config_.metrics) {
    registry_ = std::make_unique<obs::Registry>();
    arrival_ns_ = &registry_->histogram(
        "monitor.arrival_ns", "",
        "per-arrival delivery-thread latency (ns)");
    store_events_ =
        &registry_->gauge("store.events", "", "events held by the store");
    store_bytes_ = &registry_->gauge("store.bytes", "",
                                     "approximate store footprint (bytes)");
    store_traces_ =
        &registry_->gauge("store.traces", "", "traces announced");
  }
  if (config_.worker_threads > 0) {
    OCEP_ASSERT_MSG(config_.batch_size > 0, "batch_size must be positive");
    store_.set_concurrent(true);
    pipeline_ = std::make_unique<MatchPipeline>(
        store_, config_.worker_threads, config_.ring_batches);
    if (registry_) {
      pipeline_->enable_metrics(*registry_);
    }
  }
}

MatcherTelemetry Monitor::make_telemetry(std::size_t index) {
  const std::string label = "pattern=\"" + std::to_string(index) + "\"";
  obs::Registry& reg = *registry_;
  MatcherTelemetry t;
  t.events = &reg.counter("matcher.events", label, "events observed");
  t.leaf_hits = &reg.counter("matcher.leaf_hits", label,
                             "events appended to >= 1 history");
  t.searches =
      &reg.counter("matcher.searches", label, "anchored searches run");
  t.matches = &reg.counter("matcher.matches", label, "matches reported");
  t.nodes = &reg.counter("matcher.nodes", label,
                         "candidate instantiations tried");
  t.domain_prunes = &reg.counter("matcher.domain_prunes", label,
                                 "empty Fig-4 candidate intervals");
  t.backjumps =
      &reg.counter("matcher.backjumps", label, "conflict-directed jumps");
  t.pins_run =
      &reg.counter("matcher.pins_run", label, "coverage pins searched");
  t.pins_skipped = &reg.counter("matcher.pins_skipped", label,
                                "coverage pins skipped");
  t.levels_visited = &reg.histogram("matcher.levels_visited", label,
                                    "levels per terminating event");
  t.candidates_scanned =
      &reg.histogram("matcher.candidates_scanned", label,
                     "candidates per terminating event");
  t.matches_found = &reg.histogram("matcher.matches_found", label,
                                   "matches per terminating event");
  t.backjump_distance = &reg.histogram("matcher.backjump_distance", label,
                                       "levels skipped per backjump");
  t.conflict_set_size = &reg.histogram("matcher.conflict_set_size", label,
                                       "conflict-set size per failed search");
  return t;
}

std::size_t Monitor::add_pattern(std::string_view source,
                                 MatcherConfig config,
                                 MatchCallback on_match) {
  OCEP_ASSERT_MSG(events_seen_ == 0,
                  "patterns must be registered before the first event");
  pattern::CompiledPattern compiled = pattern::compile(source, *pool_);
  matchers_.push_back(std::make_unique<OcepMatcher>(
      store_, std::move(compiled), config, std::move(on_match)));
  const std::size_t index = matchers_.size() - 1;
  if (registry_) {
    matchers_.back()->set_telemetry(make_telemetry(index));
    if (pipeline_ == nullptr) {
      observe_ns_.push_back(&registry_->histogram(
          "monitor.observe_ns",
          "pattern=\"" + std::to_string(index) + "\"",
          "per-arrival observe latency (ns)"));
    }
  }
  if (pipeline_) {
    pipeline_->add_matcher(matchers_.back().get());
  }
  return index;
}

void Monitor::on_traces(const std::vector<Symbol>& names) {
  OCEP_ASSERT_MSG(!traces_known_, "trace table announced twice");
  traces_known_ = true;
  for (const Symbol name : names) {
    store_.add_trace(name);
  }
}

void Monitor::on_event(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT_MSG(traces_known_,
                  "on_traces must be delivered before the first event");
  store_.append(event, clock);
  ++events_seen_;
  if (pipeline_ == nullptr) {
    if (registry_) {
      const metrics::Stopwatch arrival;
      for (std::size_t i = 0; i < matchers_.size(); ++i) {
        const metrics::Stopwatch watch;
        matchers_[i]->observe(event);
        observe_ns_[i]->record(watch.elapsed_ns());
      }
      arrival_ns_->record(arrival.elapsed_ns());
    } else {
      for (const std::unique_ptr<OcepMatcher>& matcher : matchers_) {
        matcher->observe(event);
      }
    }
    drained_through_ = events_seen_;
    return;
  }
  if (registry_) {
    // Delivery-thread cost only: append + (maybe) dispatch.  Matching
    // latency lands in monitor.observe_ns on the owning worker.
    const metrics::Stopwatch arrival;
    if (events_seen_ - pipeline_->dispatched() >= config_.batch_size) {
      pipeline_->dispatch(events_seen_);
    }
    arrival_ns_->record(arrival.elapsed_ns());
    return;
  }
  if (events_seen_ - pipeline_->dispatched() >= config_.batch_size) {
    pipeline_->dispatch(events_seen_);
  }
}

void Monitor::flush() {
  if (pipeline_) {
    pipeline_->dispatch(events_seen_);
  }
}

void Monitor::drain() {
  if (pipeline_) {
    pipeline_->dispatch(events_seen_);
    pipeline_->drain();
  }
  drained_through_ = events_seen_;
  if (registry_) {
    update_store_gauges();
  }
}

void Monitor::update_store_gauges() {
  store_events_->set(static_cast<std::int64_t>(store_.event_count()));
  store_bytes_->set(static_cast<std::int64_t>(store_.approx_bytes()));
  store_traces_->set(static_cast<std::int64_t>(store_.trace_count()));
}

PipelineStats Monitor::stats() const {
  if (pipeline_) {
    assert_drained();
    return pipeline_->stats();
  }
  PipelineStats out;
  out.events_dispatched = events_seen_;
  return out;
}

}  // namespace ocep
