#include "core/monitor.h"

#include "common/assert.h"

namespace ocep {

std::size_t Monitor::add_pattern(std::string_view source,
                                 MatcherConfig config,
                                 MatchCallback on_match) {
  OCEP_ASSERT_MSG(events_seen_ == 0,
                  "patterns must be registered before the first event");
  pattern::CompiledPattern compiled = pattern::compile(source, *pool_);
  matchers_.push_back(std::make_unique<OcepMatcher>(
      store_, std::move(compiled), config, std::move(on_match)));
  return matchers_.size() - 1;
}

void Monitor::on_traces(const std::vector<Symbol>& names) {
  OCEP_ASSERT_MSG(!traces_known_, "trace table announced twice");
  traces_known_ = true;
  for (const Symbol name : names) {
    store_.add_trace(name);
  }
}

void Monitor::on_event(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT_MSG(traces_known_,
                  "on_traces must be delivered before the first event");
  store_.append(event, clock);
  ++events_seen_;
  for (const std::unique_ptr<OcepMatcher>& matcher : matchers_) {
    matcher->observe(event);
  }
}

}  // namespace ocep
