#include "core/monitor.h"

#include "common/assert.h"

namespace ocep {

Monitor::Monitor(StringPool& pool, const MonitorConfig& config,
                 ClockStorage storage)
    : pool_(&pool), store_(storage), config_(config) {
  if (config_.worker_threads > 0) {
    OCEP_ASSERT_MSG(config_.batch_size > 0, "batch_size must be positive");
    store_.set_concurrent(true);
    pipeline_ = std::make_unique<MatchPipeline>(
        store_, config_.worker_threads, config_.ring_batches);
  }
}

std::size_t Monitor::add_pattern(std::string_view source,
                                 MatcherConfig config,
                                 MatchCallback on_match) {
  OCEP_ASSERT_MSG(events_seen_ == 0,
                  "patterns must be registered before the first event");
  pattern::CompiledPattern compiled = pattern::compile(source, *pool_);
  matchers_.push_back(std::make_unique<OcepMatcher>(
      store_, std::move(compiled), config, std::move(on_match)));
  if (pipeline_) {
    pipeline_->add_matcher(matchers_.back().get());
  }
  return matchers_.size() - 1;
}

void Monitor::on_traces(const std::vector<Symbol>& names) {
  OCEP_ASSERT_MSG(!traces_known_, "trace table announced twice");
  traces_known_ = true;
  for (const Symbol name : names) {
    store_.add_trace(name);
  }
}

void Monitor::on_event(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT_MSG(traces_known_,
                  "on_traces must be delivered before the first event");
  store_.append(event, clock);
  ++events_seen_;
  if (pipeline_ == nullptr) {
    for (const std::unique_ptr<OcepMatcher>& matcher : matchers_) {
      matcher->observe(event);
    }
    drained_through_ = events_seen_;
    return;
  }
  if (events_seen_ - pipeline_->dispatched() >= config_.batch_size) {
    pipeline_->dispatch(events_seen_);
  }
}

void Monitor::flush() {
  if (pipeline_) {
    pipeline_->dispatch(events_seen_);
  }
}

void Monitor::drain() {
  if (pipeline_) {
    pipeline_->dispatch(events_seen_);
    pipeline_->drain();
  }
  drained_through_ = events_seen_;
}

PipelineStats Monitor::stats() const {
  if (pipeline_) {
    assert_drained();
    return pipeline_->stats();
  }
  PipelineStats out;
  out.events_dispatched = events_seen_;
  return out;
}

}  // namespace ocep
