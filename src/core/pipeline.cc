#include "core/pipeline.h"

#include <chrono>

#include "common/assert.h"
#include "metrics/stopwatch.h"

namespace ocep {

MatchPipeline::MatchPipeline(const EventStore& store, std::size_t workers,
                             std::size_t ring_batches)
    : store_(store) {
  OCEP_ASSERT_MSG(workers > 0, "a pipeline needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(ring_batches));
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    Worker& ref = *worker;
    ref.thread = std::thread([this, &ref] { worker_loop(ref); });
  }
}

MatchPipeline::~MatchPipeline() {
  stop_.store(true, std::memory_order_release);
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void MatchPipeline::add_matcher(OcepMatcher* matcher) {
  OCEP_ASSERT_MSG(!started_,
                  "matchers must be registered before the first dispatch");
  Worker& worker = *workers_[next_shard_];
  next_shard_ = (next_shard_ + 1) % workers_.size();
  PatternSlot slot;
  slot.matcher = matcher;
  slot.pattern_index = pattern_count_++;
  worker.patterns.push_back(slot);
}

void MatchPipeline::backoff(unsigned& spins) {
  ++spins;
  if (spins < 64) {
    return;  // brief busy wait: the peer is typically mid-batch
  }
  if (spins < 1024) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(100));
}

void MatchPipeline::dispatch(std::uint64_t end) {
  OCEP_ASSERT(end >= dispatched_);
  if (end == dispatched_) {
    return;
  }
  started_ = true;
  const Batch batch{dispatched_, end};
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (!worker->ring.try_push(batch)) {
      // Backpressure: the ring bounds how far this worker may lag.
      ++worker->stalls;
      unsigned spins = 0;
      do {
        backoff(spins);
      } while (!worker->ring.try_push(batch));
    }
  }
  dispatched_ = end;
}

void MatchPipeline::drain() {
  for (const std::unique_ptr<Worker>& worker : workers_) {
    unsigned spins = 0;
    // The acquire pairs with the worker's release after its last batch:
    // once the watermark reaches dispatched_, all matcher writes of that
    // worker happen-before our return.
    while (worker->processed.load(std::memory_order_acquire) < dispatched_) {
      backoff(spins);
    }
  }
}

void MatchPipeline::run_batch(Worker& worker, const Batch& batch) {
  OCEP_ASSERT_MSG(store_.visible_count() >= batch.end,
                  "batch dispatched before its events were published");
  for (PatternSlot& slot : worker.patterns) {
    const metrics::Stopwatch watch;
    for (std::uint64_t pos = batch.begin; pos < batch.end; ++pos) {
      slot.matcher->observe(store_.event(store_.arrival(pos)));
    }
    const double us = watch.elapsed_us();
    slot.us_total += us;
    slot.us_max = us > slot.us_max ? us : slot.us_max;
    slot.events += batch.end - batch.begin;
  }
  worker.batches.fetch_add(1, std::memory_order_relaxed);
  worker.processed.store(batch.end, std::memory_order_release);
}

void MatchPipeline::worker_loop(Worker& worker) {
  unsigned spins = 0;
  for (;;) {
    Batch batch;
    if (worker.ring.try_pop(batch)) {
      run_batch(worker, batch);
      spins = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // The producer is gone; whatever is still queued was pushed before
      // the stop flag, so drain it and exit.
      while (worker.ring.try_pop(batch)) {
        run_batch(worker, batch);
      }
      break;
    }
    backoff(spins);
  }
}

PipelineStats MatchPipeline::stats() const {
  PipelineStats out;
  out.events_dispatched = dispatched_;
  out.workers.resize(workers_.size());
  out.patterns.resize(pattern_count_);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = *workers_[w];
    PipelineWorkerStats& stats = out.workers[w];
    stats.batches = worker.batches.load(std::memory_order_relaxed);
    stats.ring_full_stalls = worker.stalls;
    for (const PatternSlot& slot : worker.patterns) {
      stats.events += slot.events;
      PipelinePatternStats& pattern = out.patterns[slot.pattern_index];
      pattern.worker = w;
      pattern.events_observed = slot.events;
      pattern.observe_us_total = slot.us_total;
      pattern.observe_us_max = slot.us_max;
    }
  }
  return out;
}

}  // namespace ocep
