#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/assert.h"
#include "metrics/stopwatch.h"

namespace ocep {
namespace {

/// Marker thrown at the end of a batch in which an observe escaped: it
/// unwinds run_batch (after the watermark is published) so supervise()
/// counts a restart and re-enters the worker loop with clean state.
struct WorkerRespawn {};

}  // namespace

MatchPipeline::MatchPipeline(const EventStore& store, std::size_t workers,
                             std::size_t ring_batches)
    : store_(store) {
  OCEP_ASSERT_MSG(workers > 0, "a pipeline needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(ring_batches));
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    Worker& ref = *worker;
    ref.thread = std::thread([this, &ref] { supervise(ref); });
  }
}

MatchPipeline::~MatchPipeline() {
  stop_.store(true, std::memory_order_release);
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
}

void MatchPipeline::enable_metrics(obs::Registry& registry) {
  OCEP_ASSERT_MSG(pattern_count_ == 0,
                  "enable_metrics must precede add_matcher");
  registry_ = &registry;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = *workers_[w];
    const std::string label = "worker=\"" + std::to_string(w) + "\"";
    worker.batches_counter = &registry.counter(
        "pipeline.batches", label, "batch descriptors processed");
    worker.events_counter = &registry.counter(
        "pipeline.events", label, "events observed across owned patterns");
    worker.stalls_counter = &registry.counter(
        "pipeline.ring_stalls", label, "producer pushes that had to wait");
    worker.restarts_counter = &registry.counter(
        "pipeline.worker_restarts", label,
        "supervised worker respawns after an escaped exception");
    worker.ring_depth = &registry.histogram(
        "pipeline.ring_depth", label, "ring occupancy seen at dispatch");
  }
}

void MatchPipeline::add_matcher(OcepMatcher* matcher) {
  OCEP_ASSERT_MSG(!started_,
                  "matchers must be registered before the first dispatch");
  Worker& worker = *workers_[next_shard_];
  next_shard_ = (next_shard_ + 1) % workers_.size();
  PatternSlot slot;
  slot.matcher = matcher;
  slot.pattern_index = pattern_count_++;
  if (registry_ != nullptr) {
    slot.observe_ns = &registry_->histogram(
        "monitor.observe_ns",
        "pattern=\"" + std::to_string(slot.pattern_index) + "\"",
        "per-arrival observe latency (ns)");
  }
  worker.patterns.push_back(slot);
}

void MatchPipeline::backoff(unsigned& spins) {
  ++spins;
  if (spins < 64) {
    return;  // brief busy wait: the peer is typically mid-batch
  }
  if (spins < 1024) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(100));
}

void MatchPipeline::dispatch(std::uint64_t end) {
  OCEP_ASSERT(end >= dispatched_);
  if (end == dispatched_) {
    return;
  }
  started_ = true;
  const Batch batch{dispatched_, end};
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->ring_depth != nullptr) {
      worker->ring_depth->record(worker->ring.size());
    }
    if (!worker->ring.try_push(batch)) {
      // Backpressure: the ring bounds how far this worker may lag.
      ++worker->stalls;
      if (worker->stalls_counter != nullptr) {
        worker->stalls_counter->add(1);
      }
      unsigned spins = 0;
      do {
        backoff(spins);
      } while (!worker->ring.try_push(batch));
    }
  }
  dispatched_ = end;
}

void MatchPipeline::drain() {
  for (const std::unique_ptr<Worker>& worker : workers_) {
    unsigned spins = 0;
    // The acquire pairs with the worker's release after its last batch:
    // once the watermark reaches dispatched_, all matcher writes of that
    // worker happen-before our return.
    while (worker->processed.load(std::memory_order_acquire) < dispatched_) {
      backoff(spins);
    }
  }
}

void MatchPipeline::resume_at(std::uint64_t events) {
  OCEP_ASSERT_MSG(!started_ && dispatched_ == 0,
                  "resume_at must precede the first dispatch");
  dispatched_ = events;
  for (const std::unique_ptr<Worker>& worker : workers_) {
    worker->processed.store(events, std::memory_order_release);
  }
}

void MatchPipeline::quarantine_slot(PatternSlot& slot,
                                    const std::string& reason) {
  if (slot.quarantined) {
    return;
  }
  slot.quarantined = true;
  // The matcher's breaker goes terminal: its remaining observes degrade
  // to O(1) history appends, so the other patterns (and this worker's
  // throughput) are unaffected.
  slot.matcher->quarantine("pattern " + std::to_string(slot.pattern_index) +
                           " quarantined: " + reason);
}

void MatchPipeline::observe_one(Worker& worker, PatternSlot& slot,
                                const Event& event) {
  const std::uint64_t errors_before = slot.matcher->stats().callback_errors;
  try {
    slot.matcher->observe(event);
  } catch (const std::exception& e) {
    quarantine_slot(slot, e.what());
    worker.respawn_pending = true;
    return;
  } catch (...) {
    quarantine_slot(slot, "non-standard exception escaped observe");
    worker.respawn_pending = true;
    return;
  }
  if (!slot.quarantined &&
      slot.matcher->stats().callback_errors > errors_before) {
    // The matcher contained a throwing MatchCallback.  The user sink for
    // this pattern is broken, so supervision still shuts the pattern down
    // — but the worker survives without a respawn.
    quarantine_slot(slot, slot.matcher->governor().last_error());
  }
}

void MatchPipeline::run_batch(Worker& worker, const Batch& batch) {
  OCEP_ASSERT_MSG(store_.visible_count() >= batch.end,
                  "batch dispatched before its events were published");
  worker.current_batch_end = batch.end;
  for (PatternSlot& slot : worker.patterns) {
    if (slot.observe_ns != nullptr) {
      // Metrics path: time each arrival individually so the histogram
      // captures per-event latency, then fold the total back into the
      // batch-granular counters the stats() snapshot reports.
      std::uint64_t batch_ns = 0;
      for (std::uint64_t pos = batch.begin; pos < batch.end; ++pos) {
        const metrics::Stopwatch watch;
        observe_one(worker, slot, store_.event(store_.arrival(pos)));
        const std::uint64_t ns = watch.elapsed_ns();
        slot.observe_ns->record(ns);
        batch_ns += ns;
      }
      const double us = static_cast<double>(batch_ns) / 1000.0;
      slot.us_total += us;
      slot.us_max = us > slot.us_max ? us : slot.us_max;
    } else {
      const metrics::Stopwatch watch;
      for (std::uint64_t pos = batch.begin; pos < batch.end; ++pos) {
        observe_one(worker, slot, store_.event(store_.arrival(pos)));
      }
      const double us = watch.elapsed_us();
      slot.us_total += us;
      slot.us_max = us > slot.us_max ? us : slot.us_max;
    }
    slot.events += batch.end - batch.begin;
  }
  worker.batches.fetch_add(1, std::memory_order_relaxed);
  worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
  if (worker.batches_counter != nullptr) {
    worker.batches_counter->add(1);
    worker.events_counter->add(
        (batch.end - batch.begin) * worker.patterns.size());
  }
  worker.processed.store(batch.end, std::memory_order_release);
  if (worker.respawn_pending) {
    // Unwind only after the watermark is published: drain() never hangs
    // on a batch whose observe escaped.
    worker.respawn_pending = false;
    throw WorkerRespawn{};
  }
}

void MatchPipeline::supervise(Worker& worker) {
  for (;;) {
    try {
      worker_loop(worker);
      return;  // clean stop
    } catch (...) {
      // An exception escaped a batch (WorkerRespawn after a throwing
      // observe, or an unexpected internal error).  The offending pattern
      // is already quarantined at the throw site; make sure the watermark
      // covers the batch so drain() cannot hang, count the restart, and
      // respawn the worker loop.
      worker.processed.store(
          std::max(worker.processed.load(std::memory_order_relaxed),
                   worker.current_batch_end),
          std::memory_order_release);
      worker.restarts.fetch_add(1, std::memory_order_relaxed);
      if (worker.restarts_counter != nullptr) {
        worker.restarts_counter->add(1);
      }
    }
  }
}

void MatchPipeline::worker_loop(Worker& worker) {
  unsigned spins = 0;
  for (;;) {
    Batch batch;
    if (worker.ring.try_pop(batch)) {
      run_batch(worker, batch);
      spins = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // The producer is gone; whatever is still queued was pushed before
      // the stop flag, so drain it and exit.
      while (worker.ring.try_pop(batch)) {
        run_batch(worker, batch);
      }
      break;
    }
    worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
    backoff(spins);
  }
}

PipelineStats MatchPipeline::stats() const {
  PipelineStats out;
  out.events_dispatched = dispatched_;
  out.workers.resize(workers_.size());
  out.patterns.resize(pattern_count_);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = *workers_[w];
    PipelineWorkerStats& stats = out.workers[w];
    stats.batches = worker.batches.load(std::memory_order_relaxed);
    stats.ring_full_stalls = worker.stalls;
    stats.restarts = worker.restarts.load(std::memory_order_relaxed);
    stats.heartbeat = worker.heartbeat.load(std::memory_order_relaxed);
    for (const PatternSlot& slot : worker.patterns) {
      stats.events += slot.events;
      PipelinePatternStats& pattern = out.patterns[slot.pattern_index];
      pattern.worker = w;
      pattern.events_observed = slot.events;
      pattern.observe_us_total = slot.us_total;
      pattern.observe_us_max = slot.us_max;
      pattern.quarantined = slot.quarantined;
    }
  }
  return out;
}

void MatchPipeline::fill_health(HealthReport& report) const {
  report.workers.resize(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = *workers_[w];
    WorkerHealth& health = report.workers[w];
    health.worker = w;
    health.batches = worker.batches.load(std::memory_order_relaxed);
    health.heartbeat = worker.heartbeat.load(std::memory_order_relaxed);
    health.restarts = worker.restarts.load(std::memory_order_relaxed);
    health.quarantined_patterns = 0;
    for (const PatternSlot& slot : worker.patterns) {
      if (slot.quarantined) {
        ++health.quarantined_patterns;
      }
    }
  }
}

}  // namespace ocep
