// Per-pattern resource governance: search budgets, circuit breakers, and
// the aggregated health report.
//
// The paper's backtracking search (§IV) is worst-case exponential in the
// number of pattern leaves, so one pathological pattern can livelock the
// whole monitor.  Production CER engines bound this with per-query
// resource governance and partial-result degradation (CORE, VLDB 2022);
// OCEP's version is three cooperating pieces:
//
//  * SearchBudget — a per-observe cap on candidate-scan steps and/or
//    wall-clock, checked cooperatively inside the search.  A blown budget
//    aborts that observe's searches (partial results already reported are
//    kept; the anchor stays in the histories so later anchors can still
//    cover it) and is counted, never silent.
//  * PatternGovernor — a circuit breaker over budget outcomes.  A pattern
//    whose searches blow the budget `trip_failures` times inside a rolling
//    `window_observes` window trips open: its observes degrade to O(1)
//    history appends.  After `cooldown_observes` it half-opens and probes
//    with a reduced budget; success closes it, failure re-opens it.
//    kQuarantined is the terminal state used by worker supervision for
//    patterns whose callbacks or internals threw.
//  * HealthReport — the one-stop degradation snapshot: per-pattern breaker
//    state and budget/eviction counters, per-worker supervision counters,
//    and the ingestion-side shed counters, so operators see every coverage
//    loss in one place (docs/GOVERNANCE.md).
//
// Everything here is deterministic: the breaker clock is the matcher's
// observe count, never wall time, so identical inputs and step budgets
// produce identical states across worker counts and checkpoint splits.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "poet/linearizer.h"

namespace ocep {

/// Per-observe search budget.  Zero means unlimited; the default is fully
/// unlimited, which is guaranteed zero-cost and zero-semantics.  Step
/// budgets are deterministic; the wall-clock deadline is a best-effort
/// production guard (checked every 256 steps) and should stay off in
/// reproducibility-sensitive runs.
struct SearchBudget {
  std::uint64_t max_steps = 0;    ///< candidate instantiations per observe
  std::uint64_t deadline_ns = 0;  ///< wall-clock per observe

  [[nodiscard]] bool unlimited() const noexcept {
    return max_steps == 0 && deadline_ns == 0;
  }
};

/// Circuit-breaker tuning.  Disabled (never trips) while trip_failures is
/// 0; budgets still abort individual searches without it.
struct BreakerConfig {
  /// Blown budgets inside the rolling window that trip the breaker.
  std::uint32_t trip_failures = 0;
  /// Rolling window, in matcher observes; 0 = unbounded window.
  std::uint64_t window_observes = 1024;
  /// Observes the breaker stays open before half-opening a probe.
  std::uint64_t cooldown_observes = 256;
  /// Probe budget while half-open: full budget divided by this.
  std::uint32_t probe_divisor = 2;
};

enum class BreakerState : std::uint8_t {
  kClosed,       ///< normal operation, full budget
  kOpen,         ///< tripped: observes degrade to history appends
  kHalfOpen,     ///< probing with a reduced budget
  kQuarantined,  ///< terminal: pattern errored; supervision keeps it shut
};

[[nodiscard]] const char* to_string(BreakerState state) noexcept;

/// The per-pattern breaker state machine.  Single-owner like the matcher
/// that embeds it; all transitions are driven by the matcher's observe
/// count so they are deterministic and checkpointable.
class PatternGovernor {
 public:
  void configure(const SearchBudget& budget,
                 const BreakerConfig& breaker) {
    budget_ = budget;
    breaker_ = breaker;
  }

  /// Gate for one observe's search phase.  Returns false when the search
  /// must be shed (breaker open or pattern quarantined); otherwise fills
  /// `effective` with the full (closed) or probe (half-open) budget.
  [[nodiscard]] bool admit(std::uint64_t observe_index,
                           SearchBudget& effective);

  /// Outcome of an admitted search phase: `aborted` when the budget blew.
  void on_search_result(std::uint64_t observe_index, bool aborted);

  /// Terminal shutdown by worker supervision (throwing callback or
  /// internal error).  Only a restored checkpoint or a fresh matcher
  /// leaves this state.
  void quarantine(std::string reason);

  /// Records a contained error (e.g. a throwing MatchCallback) without a
  /// state change; surfaces in the health report.
  void record_error(std::string reason);

  [[nodiscard]] BreakerState state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t trips() const noexcept { return trips_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }

  /// Serializes the dynamic state (not the config: restore() runs on a
  /// governor configured identically, mirroring the matcher contract).
  void checkpoint(std::ostream& out) const;
  void restore(std::istream& in);

 private:
  [[nodiscard]] SearchBudget probe_budget() const noexcept;

  SearchBudget budget_;
  BreakerConfig breaker_;
  BreakerState state_ = BreakerState::kClosed;
  /// Observe indices of blown budgets inside the rolling window.
  std::deque<std::uint64_t> failures_;
  std::uint64_t opened_at_ = 0;  ///< observe index of the last trip
  std::uint64_t trips_ = 0;
  std::uint64_t probes_ = 0;
  std::string last_error_;
};

/// One pattern's governance snapshot (Monitor::health()).
struct PatternHealth {
  std::uint64_t pattern = 0;
  BreakerState state = BreakerState::kClosed;
  std::uint64_t searches = 0;
  std::uint64_t searches_aborted = 0;
  std::uint64_t observes_shed = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t history_entries = 0;
  std::uint64_t history_bytes = 0;
  std::uint64_t history_evicted = 0;
  std::uint64_t callback_errors = 0;
  std::string last_error;

  friend bool operator==(const PatternHealth&,
                         const PatternHealth&) = default;
};

/// One pipeline worker's supervision snapshot.  Process-local by design:
/// restarts and heartbeats do not survive a checkpoint (a restored process
/// has fresh workers), unlike the per-pattern state above.
struct WorkerHealth {
  std::uint64_t worker = 0;
  std::uint64_t batches = 0;
  std::uint64_t heartbeat = 0;  ///< liveness: bumped per batch and idle tick
  std::uint64_t restarts = 0;   ///< supervised respawns after an escape
  std::uint64_t quarantined_patterns = 0;

  friend bool operator==(const WorkerHealth&, const WorkerHealth&) = default;
};

/// The aggregated overload/degradation picture.  `ingest` carries the
/// linearizer/session shed counters when the monitor has an ingest source,
/// so matcher-side eviction and wire-side shedding are read together.
struct HealthReport {
  std::vector<PatternHealth> patterns;
  std::vector<WorkerHealth> workers;
  IngestStats ingest{};

  /// True when any surface degraded: a non-closed breaker, an aborted or
  /// shed search, an eviction, a callback error, a worker restart, or
  /// ingestion-side shedding.
  [[nodiscard]] bool degraded() const noexcept;

  void to_text(std::ostream& out) const;
  [[nodiscard]] std::string to_text() const;
  /// Stable JSON (sorted, fixed key order) for dashboards and tests.
  void to_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;
};

}  // namespace ocep
