// Monitor facade: the OCEP client that connects to a POET-style event
// source (paper §V-A).
//
// A Monitor is an EventSink: hook it up as the simulator's live sink, as
// the target of replay(), or as the target of reload(), and it stores the
// incoming linearized event stream and matches any number of compiled
// patterns against it online.
//
//   StringPool pool;
//   Monitor monitor(pool);
//   monitor.add_pattern("A := ['', ping, '']; B := ['', recv_ping, ''];"
//                       "pattern := A -> B;");
//   sim.set_live_sink(&monitor);
//   sim.run();
//   monitor.matcher(0).subset().matches();  // representative subset
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/matcher.h"
#include "poet/client.h"
#include "poet/event_store.h"

namespace ocep {

class Monitor final : public EventSink {
 public:
  /// `storage` selects the timestamp backend of the internal store
  /// (kSparse bounds memory on wide, long computations).
  explicit Monitor(StringPool& pool,
                   ClockStorage storage = ClockStorage::kDense)
      : pool_(&pool), store_(storage) {}

  /// Compiles and registers a pattern.  Returns its index.  Patterns must
  /// be added before the first event arrives.
  std::size_t add_pattern(std::string_view source, MatcherConfig config = {},
                          MatchCallback on_match = nullptr);

  void on_traces(const std::vector<Symbol>& names) override;
  void on_event(const Event& event, const VectorClock& clock) override;

  [[nodiscard]] const EventStore& store() const noexcept { return store_; }
  [[nodiscard]] StringPool& pool() const noexcept { return *pool_; }

  [[nodiscard]] std::size_t pattern_count() const noexcept {
    return matchers_.size();
  }
  [[nodiscard]] OcepMatcher& matcher(std::size_t i) {
    OCEP_ASSERT(i < matchers_.size());
    return *matchers_[i];
  }
  [[nodiscard]] const OcepMatcher& matcher(std::size_t i) const {
    OCEP_ASSERT(i < matchers_.size());
    return *matchers_[i];
  }

  [[nodiscard]] std::uint64_t events_seen() const noexcept {
    return events_seen_;
  }

 private:
  StringPool* pool_;
  EventStore store_;
  std::vector<std::unique_ptr<OcepMatcher>> matchers_;
  bool traces_known_ = false;
  std::uint64_t events_seen_ = 0;
};

}  // namespace ocep
