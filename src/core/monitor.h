// Monitor facade: the OCEP client that connects to a POET-style event
// source (paper §V-A).
//
// A Monitor is an EventSink: hook it up as the simulator's live sink, as
// the target of replay(), or as the target of reload(), and it stores the
// incoming linearized event stream and matches any number of compiled
// patterns against it online.
//
//   StringPool pool;
//   Monitor monitor(pool);
//   monitor.add_pattern("A := ['', ping, '']; B := ['', recv_ping, ''];"
//                       "pattern := A -> B;");
//   sim.set_live_sink(&monitor);
//   sim.run();
//   monitor.matcher(0).subset().matches();  // representative subset
//
// With MonitorConfig::worker_threads > 0 the matchers run on a parallel
// pipeline (see core/pipeline.h): events are appended and published on
// the delivery thread, matched on worker threads in batches.  Call
// drain() before reading matcher state; worker_threads = 0 (the default)
// preserves the exact synchronous behaviour.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

#include "core/matcher.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "poet/client.h"
#include "poet/event_store.h"

namespace ocep {

struct MonitorConfig {
  /// 0 = match synchronously on the delivery thread (default; exact
  /// single-threaded behaviour).  N > 0 = shard patterns across N worker
  /// threads fed by bounded rings of event batches.
  std::size_t worker_threads = 0;
  /// Events per batch descriptor handed to the workers.  Smaller batches
  /// cut match latency; larger ones amortize hand-off overhead.
  std::size_t batch_size = 64;
  /// Bound (in batches) of each worker's ring; a full ring backpressures
  /// the delivery thread, keeping memory bounded.
  std::size_t ring_batches = 128;
  /// Collect search telemetry (src/obs/metrics.h) into a registry
  /// readable via Monitor::metrics().  Off by default: the hot paths
  /// then pay one predictable branch per event.
  bool metrics = false;
};

class Monitor final : public EventSink {
 public:
  /// `storage` selects the timestamp backend of the internal store
  /// (kSparse bounds memory on wide, long computations).
  explicit Monitor(StringPool& pool,
                   ClockStorage storage = ClockStorage::kDense)
      : Monitor(pool, MonitorConfig{}, storage) {}

  Monitor(StringPool& pool, const MonitorConfig& config,
          ClockStorage storage = ClockStorage::kDense);

  /// Compiles and registers a pattern.  Returns its index.  Patterns must
  /// be added before the first event arrives (enforced: aborts once
  /// events_seen() > 0).
  std::size_t add_pattern(std::string_view source, MatcherConfig config = {},
                          MatchCallback on_match = nullptr);

  void on_traces(const std::vector<Symbol>& names) override;
  void on_event(const Event& event, const VectorClock& clock) override;

  /// Pushes any partially filled batch to the workers without waiting.
  /// No-op in synchronous mode.
  void flush();

  /// Barrier: flushes and blocks until every matcher has observed every
  /// event seen so far.  Required before reading matcher state (subset(),
  /// stats()) in pipeline mode; no-op in synchronous mode.
  void drain();

  [[nodiscard]] const EventStore& store() const noexcept { return store_; }
  [[nodiscard]] StringPool& pool() const noexcept { return *pool_; }
  [[nodiscard]] const MonitorConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::size_t pattern_count() const noexcept {
    return matchers_.size();
  }
  [[nodiscard]] OcepMatcher& matcher(std::size_t i) {
    OCEP_ASSERT(i < matchers_.size());
    assert_drained();
    return *matchers_[i];
  }
  [[nodiscard]] const OcepMatcher& matcher(std::size_t i) const {
    OCEP_ASSERT(i < matchers_.size());
    assert_drained();
    return *matchers_[i];
  }

  [[nodiscard]] std::uint64_t events_seen() const noexcept {
    return events_seen_;
  }

  /// True once announce_traces() ran (or a restore supplied the table) —
  /// the earliest point checkpoint() is legal.
  [[nodiscard]] bool traces_known() const noexcept { return traces_known_; }

  /// Pipeline counters (per-worker batches/events/stalls, per-pattern
  /// observe latency).  Exact after drain(); in synchronous mode only
  /// events_dispatched is populated.  The `ingest` member is filled from
  /// the source attached with set_ingest_source(), when any.
  [[nodiscard]] PipelineStats stats() const;

  /// Governance snapshot (docs/GOVERNANCE.md): per-pattern breaker state
  /// and budget/eviction counters, per-worker supervision counters, plus
  /// the ingestion-side stats when a source is attached.  Like stats(),
  /// requires a drained pipeline.
  [[nodiscard]] HealthReport health() const;

  /// Attaches the ingestion-side counter source merged into stats() —
  /// typically SessionClient::stats or Linearizer::ingest_stats.  The
  /// source must stay callable for the monitor's lifetime.
  void set_ingest_source(std::function<IngestStats()> source) {
    ingest_source_ = std::move(source);
  }

  /// Attaches a spill sink (core/span_sink.h) to every matcher — each
  /// matcher spills under its own pattern index.  Synchronous mode only
  /// (workers would race on the sink); attach after add_pattern and
  /// before the first event or restore, nullptr detaches.  The sink must
  /// outlive the monitor or the next set_span_sink(nullptr).
  void set_span_sink(SpanSink* sink);

  /// Faults every spilled span of every matcher back into RAM and
  /// releases it from the sink — after this no matcher references the
  /// sink's storage (used before tenant migration / sink teardown).
  void fault_all_spans();

  /// Enumerates every spilled span currently referenced by any matcher,
  /// as (pattern, leaf, trace, seq) — the shard's rebuild path uses this
  /// to reconcile the store's span index with what a restored
  /// checkpoint actually references.
  void for_each_spilled(
      const std::function<void(std::uint32_t pattern, std::uint32_t leaf,
                               TraceId trace, std::uint64_t seq)>& fn) const;

  /// Serializes the monitor's full matching state — store contents, event
  /// watermark, and every matcher's incremental state — framed with a
  /// magic, a length, and a CRC32C so a torn write is detected on restore.
  /// Drains the pipeline first; layout in docs/ROBUSTNESS.md.
  void checkpoint(std::ostream& out);

  /// Restores a checkpoint into this monitor.  Requires a fresh monitor
  /// (no traces announced, no events seen) constructed with the same
  /// configuration and with the same patterns added in the same order;
  /// throws SerializationError on a corrupt or mismatched checkpoint.
  /// Afterwards the monitor continues exactly where checkpoint() left
  /// off: feeding it the remaining suffix of the event stream yields the
  /// same matcher state as an uninterrupted run.
  void restore(std::istream& in);

  /// The telemetry registry (counters, latency histograms, store gauges).
  /// Requires MonitorConfig::metrics; like stats(), reading it while
  /// workers may still be matching is a race, so it aborts unless the
  /// pipeline is drained.
  [[nodiscard]] const obs::Registry& metrics() const {
    OCEP_ASSERT_MSG(registry_ != nullptr,
                    "enable MonitorConfig::metrics to collect telemetry");
    assert_drained();
    return *registry_;
  }
  /// Mutable overload, e.g. for binding external instruments
  /// (Linearizer::bind_metrics) onto the monitor's registry.
  [[nodiscard]] obs::Registry& metrics() {
    OCEP_ASSERT_MSG(registry_ != nullptr,
                    "enable MonitorConfig::metrics to collect telemetry");
    assert_drained();
    return *registry_;
  }

  [[nodiscard]] bool metrics_enabled() const noexcept {
    return registry_ != nullptr;
  }

 private:
  /// Reading matcher state while workers may still be observing events is
  /// a race; drain() is the hand-off.  Fails loudly instead of silently
  /// returning torn subsets.
  void assert_drained() const {
    OCEP_ASSERT_MSG(pipeline_ == nullptr || drained_through_ == events_seen_,
                    "drain() the pipeline before reading matcher state");
  }

  /// Builds the MatcherTelemetry instrument set for pattern `index`.
  [[nodiscard]] MatcherTelemetry make_telemetry(std::size_t index);
  void update_store_gauges();

  StringPool* pool_;
  EventStore store_;
  MonitorConfig config_;
  std::function<IngestStats()> ingest_source_;
  std::vector<std::unique_ptr<OcepMatcher>> matchers_;
  bool traces_known_ = false;
  std::uint64_t events_seen_ = 0;
  std::uint64_t drained_through_ = 0;
  /// Declared before pipeline_: workers write registry instruments until
  /// they join, so the registry must be destroyed after the pipeline.
  std::unique_ptr<obs::Registry> registry_;
  // Synchronous-mode latency sinks (pipeline mode records these on the
  // owning worker instead; see MatchPipeline::run_batch).
  std::vector<obs::Histogram*> observe_ns_;
  obs::Histogram* arrival_ns_ = nullptr;
  obs::Gauge* store_events_ = nullptr;
  obs::Gauge* store_bytes_ = nullptr;
  obs::Gauge* store_traces_ = nullptr;
  /// Declared last: destroyed first, so workers join while the store and
  /// matchers they reference are still alive.
  std::unique_ptr<MatchPipeline> pipeline_;
};

}  // namespace ocep
