// The OCEP online causal-event-pattern matcher (paper §IV).
//
// On every arrival of a terminating event e — one whose leaf can be the
// last-delivered event of a match — the matcher runs a backtracking search
// anchored at e (Algorithm 1's partial match of length one).  The search
// corresponds to the paper's goForward / goBackward pair:
//
//  * goForward: per backtracking level, sweep the traces; on each trace the
//    candidate domain is a contiguous index interval derived from the
//    vector timestamps of the already-instantiated events (Fig 4):
//      e -> ei        [LS(e, t), +inf)
//      ei -> e        (-inf, GP(e, t)]
//      e || ei        (GP(e, t), LS(e, t))
//    intersected with the leaf's history, iterated latest-first.
//  * goBackward: on failure the search backjumps — a level whose choice did
//    not contribute to the conflict is skipped entirely (the conflict sets
//    generalize the paper's bt[][] timestamp records, Fig 5).
//
// After the free search finds a match, coverage pinning re-runs the search
// once per still-uncovered (leaf, trace) pair with that leaf pinned to the
// trace, which makes the reported set a representative subset (§IV-B): at
// most k*n matches are ever retained.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/assert.h"
#include "core/governor.h"
#include "core/history.h"
#include "core/span_sink.h"
#include "core/subset.h"
#include "obs/metrics.h"
#include "pattern/compiled.h"
#include "poet/event_store.h"

namespace ocep {

struct MatcherConfig {
  /// §VI redundancy elimination on leaf histories.
  bool merge_redundant_history = true;
  /// Fig-4 GP/LS domain restriction.  Off = chronological backtracking
  /// over whole trace histories with post-hoc constraint checks (the
  /// baseline the paper calls "not very efficient in practice").
  bool domain_pruning = true;
  /// Conflict-directed backjumping (the paper's goBackward with recorded
  /// conflicts).  Off = plain chronological backtracking.
  bool backjumping = true;
  /// Pinned coverage searches guaranteeing the representative subset.
  bool pin_coverage = true;
  /// Skip pins for (leaf, trace) pairs already covered earlier in the run
  /// (bounds total work; per-anchor free searches still report every
  /// violation occurrence).
  bool global_coverage = true;
  /// History retention (paper §VI future work, 0 = keep everything): once
  /// a (leaf, trace) pair is covered by the representative subset, keep at
  /// most this many recent occurrences in that pair's history.  Bounds the
  /// monitor's memory for arbitrarily long runs; a heuristic — a pruned
  /// event can in rare shapes be the only witness for a *different*
  /// still-uncovered pair.
  std::size_t history_retention = 0;
  /// Overload governance (docs/GOVERNANCE.md).  All defaults are the
  /// do-nothing configuration: unlimited budget, breaker disabled, no
  /// byte cap — guaranteed zero-cost and zero-semantics.
  SearchBudget budget;
  BreakerConfig breaker;
  /// Byte-accounted cap across this pattern's leaf histories (including
  /// the keyed index), 0 = unbounded.  Past the cap the matcher evicts
  /// oldest-per-trace entries — counted as `history_evicted` coverage
  /// loss — down to `history_low_fraction` of the cap.
  std::size_t history_bytes_limit = 0;
  double history_low_fraction = 0.5;
  /// Contain exceptions thrown by the MatchCallback: count them, record
  /// the message in the health report, and keep matching.  Off restores
  /// the legacy propagate-mid-search behaviour.
  bool contain_callback_errors = true;
};

struct MatcherStats {
  std::uint64_t events_observed = 0;
  std::uint64_t leaf_hits = 0;          ///< events appended to >= 1 history
  std::uint64_t searches = 0;           ///< anchored searches (free + pinned)
  std::uint64_t matches_reported = 0;
  std::uint64_t nodes_explored = 0;     ///< candidate instantiations tried
  std::uint64_t backjumps = 0;
  std::uint64_t history_entries = 0;
  std::uint64_t history_merged = 0;
  std::uint64_t history_pruned = 0;
  std::uint64_t levels_entered = 0;     ///< backtracking levels visited
  std::uint64_t domain_prunes = 0;      ///< empty Fig-4 intervals (goBackward)
  std::uint64_t pins_run = 0;           ///< coverage pin searches executed
  std::uint64_t pins_skipped = 0;       ///< pins avoided (covered / empty)
  // Governance counters (checkpoint format v2; docs/GOVERNANCE.md).
  std::uint64_t searches_aborted = 0;   ///< observes whose search blew budget
  std::uint64_t observes_shed = 0;      ///< searches skipped (breaker open)
  std::uint64_t breaker_trips = 0;      ///< closed->open transitions
  std::uint64_t history_evicted = 0;    ///< entries dropped by the byte cap
  std::uint64_t callback_errors = 0;    ///< contained MatchCallback throws
  // Span-spill counters (checkpoint format v3; core/span_sink.h).
  std::uint64_t history_spilled = 0;    ///< entries spilled through the sink
  std::uint64_t history_faulted = 0;    ///< entries faulted back into RAM
  std::uint64_t spans_lost = 0;         ///< spans that failed to fault back
};

/// Optional per-matcher telemetry sinks (src/obs/metrics.h).  Counters
/// receive the per-observe deltas of the matching MatcherStats fields;
/// histograms record per-terminating-event distributions.  Null pointers
/// disable the corresponding instrument; a default-constructed struct
/// disables everything (the hot path then pays one branch per observe).
struct MatcherTelemetry {
  obs::Counter* events = nullptr;
  obs::Counter* leaf_hits = nullptr;
  obs::Counter* searches = nullptr;
  obs::Counter* matches = nullptr;
  obs::Counter* nodes = nullptr;
  obs::Counter* domain_prunes = nullptr;
  obs::Counter* backjumps = nullptr;
  obs::Counter* pins_run = nullptr;
  obs::Counter* pins_skipped = nullptr;
  obs::Counter* searches_aborted = nullptr;
  obs::Counter* observes_shed = nullptr;
  obs::Counter* breaker_trips = nullptr;
  obs::Counter* history_evicted = nullptr;
  obs::Counter* callback_errors = nullptr;
  obs::Histogram* levels_visited = nullptr;      ///< per terminating event
  obs::Histogram* candidates_scanned = nullptr;  ///< per terminating event
  obs::Histogram* matches_found = nullptr;       ///< per terminating event
  obs::Histogram* backjump_distance = nullptr;   ///< per backjump (levels)
  obs::Histogram* conflict_set_size = nullptr;   ///< per failed free search
};

/// Called for every reported match.  `newly_covering` is true when the
/// match extended the representative subset's coverage.
using MatchCallback = std::function<void(const Match&, bool newly_covering)>;

/// Threading contract: a matcher is single-owner — exactly one thread
/// calls observe(), and the const read path (pattern(), subset(),
/// stats()) is only safe from another thread after a happens-before
/// hand-off (Monitor::drain()).  The matcher itself takes no locks; it
/// reads the shared EventStore exclusively through the store's published
/// prefix (see event_store.h), which may run ahead of the event being
/// observed — causal relations are immutable, so the results are
/// identical to a synchronous run.
class OcepMatcher {
 public:
  /// The store must outlive the matcher and must already contain every
  /// event passed to observe().  Events must be observed in the store's
  /// arrival (linearization) order.
  OcepMatcher(const EventStore& store, pattern::CompiledPattern pattern,
              MatcherConfig config = {}, MatchCallback on_match = nullptr);

  /// Feeds one event; runs anchored searches when it is terminating.
  void observe(const Event& event);

  /// Attaches telemetry sinks.  Must be called before the first observe()
  /// and from the owning thread; the instruments must outlive the matcher.
  void set_telemetry(const MatcherTelemetry& telemetry) {
    OCEP_ASSERT_MSG(stats_.events_observed == 0,
                    "telemetry must be attached before the first event");
    telemetry_ = telemetry;
    telemetry_on_ = true;
  }

  [[nodiscard]] const pattern::CompiledPattern& pattern() const noexcept {
    return pattern_;
  }
  [[nodiscard]] const RepresentativeSubset& subset() const noexcept {
    return subset_;
  }
  [[nodiscard]] const MatcherStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PatternGovernor& governor() const noexcept {
    return governor_;
  }

  /// Governance snapshot for Monitor::health().  The caller fills
  /// PatternHealth::pattern (the matcher does not know its index).
  [[nodiscard]] PatternHealth health() const;

  /// Approximate bytes held by this pattern's leaf histories.
  [[nodiscard]] std::size_t history_bytes() const noexcept;

  /// Attaches the span-spill tier (core/span_sink.h): byte-cap pressure
  /// then spills the oldest entries of the largest (leaf, trace) pair
  /// through the sink instead of evicting them, and deep searches fault
  /// them back on demand.  `pattern_index` is this matcher's index at the
  /// sink (the matcher does not know it, as with health()).  Attach from
  /// the owning thread before any events are observed or restored; the
  /// sink must outlive the matcher.  Null detaches (spilled-span metas
  /// then become unreachable, so only detach on teardown).
  void set_span_sink(SpanSink* sink, std::uint32_t pattern_index) {
    span_sink_ = sink;
    pattern_index_ = pattern_index;
  }

  /// Faults every spilled span back into RAM and releases it at the sink.
  /// Used before a migration freeze so the checkpoint blob is
  /// self-contained (the source log's spans are about to be tombstoned).
  void fault_all_spans();

  /// Enumerates every span currently spilled through the sink, as
  /// (leaf, trace, seq) — the store-side reconcile after a restart uses
  /// this to drop span records the restored matcher no longer references.
  void for_each_spilled(
      const std::function<void(std::uint32_t leaf, TraceId trace,
                               std::uint64_t seq)>& fn) const;

  /// Forces the breaker into its terminal quarantined state: subsequent
  /// observes degrade to history appends.  Used by worker supervision
  /// after a callback or internal error escaped an observe.
  void quarantine(std::string reason);

  /// Serializes the matcher's incremental state: stats, per-trace comm
  /// counters, per-leaf histories, and the representative subset.  The
  /// store and pattern are not serialized — restore() must run on a
  /// matcher built over the restored store with the identical pattern and
  /// config.  History keys are recomputed from the store on restore, so
  /// they are not written either.
  void checkpoint(std::ostream& out);

  /// Checkpoint blob format written by checkpoint() (OCEPCKP3).  restore()
  /// also accepts `version` 2 (OCEPCKP2, PR 6) and 1 (OCEPCKP1, PR 3)
  /// blobs: the span-spill state (v3) and the governance counters and
  /// breaker state (v2) then start from their defaults.
  static constexpr int kCheckpointVersion = 3;

  /// Counterpart of checkpoint().  Requires a fresh matcher (no events
  /// observed) whose store already holds every checkpointed event; throws
  /// SerializationError when the blob is inconsistent with the store.
  void restore(std::istream& in, int version = kCheckpointVersion);

 private:
  /// A constraint as seen from one endpoint leaf.
  enum class Role : std::uint8_t {
    kAfterOther,    ///< other -> me
    kBeforeOther,   ///< me -> other
    kAfterOtherLim,   ///< other -lim-> me
    kBeforeOtherLim,  ///< me -lim-> other
    kConcurrent,    ///< me || other
    kReceiveOfOther,  ///< other <-> me: I am the receive of other's message
    kSendOfOther,     ///< me <-> other: I am the send of other's receive
  };
  struct Edge {
    std::uint32_t other = 0;
    Role role = Role::kConcurrent;
  };

  void lazy_init();
  [[nodiscard]] bool leaf_accepts(const pattern::Leaf& leaf,
                                  const Event& event) const;
  /// Partner-kind requirement: a leaf on the send (receive) side of '<->'
  /// only binds kSend (kReceive) events.  Checked for anchors and, with
  /// domain pruning, for candidates (post-hoc relation checks cover the
  /// unpruned path).
  [[nodiscard]] bool partner_kind_ok(std::uint32_t leaf,
                                     const Event& event) const;

  void run_anchor(std::uint32_t anchor_leaf, const Event& event);
  void report(bool pinned);

  /// Arms the per-observe search budget before the anchor searches run.
  void begin_search_budget(const SearchBudget& budget);
  /// Cooperative budget check, called once per candidate instantiation.
  /// The wall-clock deadline is polled every 256 steps to keep the common
  /// case a single integer compare.
  [[nodiscard]] bool budget_exhausted();
  /// Evicts oldest-per-trace history entries until the byte figure is back
  /// under history_low_fraction of the cap (largest (leaf, trace) pair
  /// first; deterministic tie-break on the lowest leaf then trace).
  void enforce_history_budget();
  /// Per-observe telemetry publication: counter deltas against `before`,
  /// plus the per-terminating-event histograms when a search ran.
  void publish_telemetry(const MatcherStats& before);

  /// Search machinery (one search at a time; scratch state is reused).
  struct Pin {
    bool active = false;
    std::uint32_t leaf = 0;
    TraceId trace = 0;
  };
  bool extend(const std::vector<std::uint32_t>& order, std::size_t depth,
              const Pin& pin, std::uint64_t& conflict_out);
  bool try_candidate(const std::vector<std::uint32_t>& order,
                     std::size_t depth, const Pin& pin, std::uint32_t leaf,
                     EventId candidate, std::uint64_t& conflict_out,
                     bool& backjump);

  /// Computes leaf's domain interval on `trace` given current bindings;
  /// returns false (with blame set) when empty.  `setters` receives the
  /// depth bits of the constraints that tightened the surviving interval —
  /// if the later history intersection is empty, those are the levels whose
  /// re-instantiation could re-open it, so they must be blamed (otherwise
  /// backjumping would unsoundly skip them).
  bool domain_on_trace(std::uint32_t leaf, TraceId trace, EventIndex& lo,
                       EventIndex& hi, std::uint64_t& blame,
                       std::uint64_t& setters) const;

  /// Binds attribute variables of `leaf` against `event`; records undo
  /// entries.  On mismatch returns false with `blame` naming the binder.
  bool bind_attrs(std::uint32_t leaf, const Event& event, std::size_t depth,
                  std::vector<std::uint32_t>& trail, std::uint64_t& blame);

  /// Non-const: limited_ok may fault spilled history back in.
  [[nodiscard]] bool satisfied(std::uint32_t leaf, Role role, EventId me,
                               EventId other);

  /// Fig 1 limited precedence: a -> b holds and no event in `a_leaf`'s
  /// history is causally between them.  O(traces * log history).
  /// Non-const: faults spilled spans covering the checked windows.
  [[nodiscard]] bool limited_ok(std::uint32_t a_leaf, EventId a, EventId b);

  /// Span-spill helpers (no-ops without a sink).  spill_pair offers the
  /// prefix past `keep` of (leaf, trace) to the sink; returns the bytes
  /// freed, 0 when the sink declined (caller falls back to eviction).
  std::size_t spill_pair(std::uint32_t leaf, TraceId trace,
                         std::size_t keep);
  /// Faults the newest spilled span of (leaf, trace) back into RAM; on an
  /// unreadable span drops its meta and counts spans_lost.  Either way
  /// the meta is consumed (guaranteed progress for callers that loop).
  bool fault_newest(std::uint32_t leaf, TraceId trace);
  /// Faults spans of (leaf, trace) newest-first until the resident window
  /// reaches down to `lo` (or nothing spilled covers it).
  void ensure_history_loaded(std::uint32_t leaf, TraceId trace,
                             EventIndex lo);
  /// Releases every spilled span of a covered (leaf, trace) pair.
  void release_spilled(std::uint32_t leaf, TraceId trace);

  const EventStore& store_;
  pattern::CompiledPattern pattern_;
  MatcherConfig config_;
  MatchCallback on_match_;
  MatcherTelemetry telemetry_;
  bool telemetry_on_ = false;

  /// Builds a selectivity-aware evaluation order (the pattern tree's Order
  /// attribute): starting from `seeds`, greedily append the leaf whose
  /// instantiation is cheapest given what is already bound — a partner
  /// target (singleton), a bound variable key (indexed probe), adjacency
  /// (Fig-4 restricted domain), a known process (single trace).
  [[nodiscard]] std::vector<std::uint32_t> make_order(
      std::vector<std::uint32_t> seeds) const;

  /// The secondary-index key of a leaf for `event` (text variable first,
  /// then type variable), or kEmptySymbol when the leaf is not keyed.
  enum class KeyAttr : std::uint8_t { kNone, kText, kType };

  bool initialized_ = false;
  std::size_t traces_ = 0;
  std::vector<std::vector<Edge>> edges_;      // per leaf
  std::vector<KeyAttr> key_attr_;             // per leaf
  std::vector<std::vector<std::uint32_t>> orders_;  // per anchor leaf
  std::vector<bool> is_terminating_;
  std::vector<bool> merge_allowed_;  // false for -lim-> quantified leaves
  std::vector<LeafHistory> histories_;
  std::vector<std::uint32_t> comm_before_;    // per trace
  /// Trace lookup for process attributes: symbol -> trace + 1 (0 = none).
  std::vector<std::pair<Symbol, TraceId>> trace_by_name_;

  // Search scratch.
  std::vector<EventId> binding_;             // per leaf; index==0: unbound
  std::vector<std::size_t> depth_of_leaf_;   // position in current order
  std::vector<Symbol> var_value_;            // per attribute variable
  std::vector<bool> var_bound_;
  std::vector<std::size_t> var_binder_;      // depth that bound the variable

  // Span-spill tier (core/span_sink.h); null = legacy evict-only mode.
  SpanSink* span_sink_ = nullptr;
  std::uint32_t pattern_index_ = 0;
  /// Monotonic spill sequence, shared across leaves/traces so replaying
  /// the same events re-issues identical span identities.  Checkpointed.
  std::uint64_t next_span_seq_ = 0;

  // Overload governance (docs/GOVERNANCE.md).
  PatternGovernor governor_;
  bool search_limited_ = false;  ///< a finite budget is armed this observe
  bool search_aborted_ = false;
  std::uint64_t search_steps_ = 0;
  std::uint64_t search_step_limit_ = 0;
  bool search_has_deadline_ = false;
  std::chrono::steady_clock::time_point search_deadline_{};

  RepresentativeSubset subset_;
  MatcherStats stats_;
};

}  // namespace ocep
