#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace ocep::obs {

// --- Histogram -----------------------------------------------------------

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value < 8) {
    return static_cast<std::size_t>(value);
  }
  const auto width = static_cast<int>(std::bit_width(value));  // >= 4
  const std::uint64_t sub = (value >> (width - 3)) & 3;
  return 8 + (static_cast<std::size_t>(width) - 4) * 4 +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lo(std::size_t bucket) noexcept {
  if (bucket < 8) {
    return bucket;
  }
  const std::size_t width = (bucket - 8) / 4 + 4;
  const std::uint64_t sub = (bucket - 8) % 4;
  return (1ULL << (width - 1)) | (sub << (width - 3));
}

std::uint64_t Histogram::bucket_hi(std::size_t bucket) noexcept {
  if (bucket < 8) {
    return bucket;
  }
  const std::size_t width = (bucket - 8) / 4 + 4;
  return bucket_lo(bucket) + (1ULL << (width - 3)) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::merge_from(const Histogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const std::uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen && !min_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  const std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ULL ? 0 : v;
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile falls on (nearest-rank, 1-based).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1)) + 1;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket =
        buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) {
      continue;
    }
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    const auto lo = static_cast<double>(std::max(bucket_lo(b), min()));
    const auto hi = static_cast<double>(std::min(bucket_hi(b), max()));
    if (in_bucket == 1 || hi <= lo) {
      return lo;
    }
    // Interpolate the rank's position within the bucket.
    const double pos = static_cast<double>(rank - cumulative - 1) /
                       static_cast<double>(in_bucket - 1);
    return lo + (hi - lo) * pos;
  }
  return static_cast<double>(max());
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.min = min();
  snap.max = max();
  snap.p50 = quantile(0.50);
  snap.p90 = quantile(0.90);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

// --- Registry ------------------------------------------------------------

namespace {

std::string canonical_key(std::string_view name, std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

/// `ocep_` + name with '.' -> '_' (Prometheus metric-name charset).
std::string prometheus_name(std::string_view name) {
  std::string out = "ocep_";
  for (const char c : name) {
    out += c == '.' ? '_' : c;
  }
  return out;
}

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

}  // namespace

Registry::Entry& Registry::find_or_create(Kind kind, std::string_view name,
                                          std::string_view labels,
                                          std::string_view help) {
  std::string key = canonical_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    OCEP_ASSERT_MSG(it->second.kind == kind,
                    "instrument re-registered with a different kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = std::string(name);
  entry.labels = std::string(labels);
  entry.help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      entry.counter = &counters_.emplace_back();
      break;
    case Kind::kGauge:
      entry.gauge = &gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      entry.histogram = &histograms_.emplace_back();
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view labels,
                           std::string_view help) {
  return *find_or_create(Kind::kCounter, name, labels, help).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels,
                       std::string_view help) {
  return *find_or_create(Kind::kGauge, name, labels, help).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view labels,
                               std::string_view help) {
  return *find_or_create(Kind::kHistogram, name, labels, help).histogram;
}

void Registry::merge_from(const Registry& other) {
  OCEP_ASSERT_MSG(this != &other, "registry merged into itself");
  // Snapshot the directory under the source's mutex, then release it:
  // instrument addresses are stable for the registry's lifetime, so the
  // actual value reads (relaxed atomics) need no lock.  Never holding
  // both mutexes also makes cross-merges deadlock-free.
  struct Item {
    Kind kind;
    std::string name;
    std::string labels;
    std::string help;
    const Counter* counter;
    const Gauge* gauge;
    const Histogram* histogram;
  };
  std::vector<Item> items;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    items.reserve(other.entries_.size());
    for (const auto& [key, entry] : other.entries_) {
      items.push_back({entry.kind, entry.name, entry.labels, entry.help,
                       entry.counter, entry.gauge, entry.histogram});
    }
  }
  for (const Item& item : items) {
    switch (item.kind) {
      case Kind::kCounter:
        counter(item.name, item.labels, item.help).add(item.counter->value());
        break;
      case Kind::kGauge:
        gauge(item.name, item.labels, item.help).add(item.gauge->value());
        break;
      case Kind::kHistogram:
        histogram(item.name, item.labels, item.help)
            .merge_from(*item.histogram);
        break;
    }
  }
}

std::uint64_t Registry::counter_value(std::string_view key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) {
    return 0;
  }
  return it->second.counter->value();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.kind == Kind::kCounter) {
      out.emplace_back(key, entry.counter->value());
    }
  }
  return out;
}

void Registry::to_text(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out << key << " = " << entry.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << key << " = " << entry.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->snapshot();
        out << key << " count=" << snap.count << " sum=" << snap.sum
            << " min=" << snap.min << " p50=" << snap.p50
            << " p95=" << snap.p95 << " p99=" << snap.p99
            << " max=" << snap.max << '\n';
        break;
      }
    }
  }
}

void Registry::to_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto section = [&](Kind kind, const char* title, auto&& emit) {
    out << '"' << title << "\":{";
    bool first = true;
    for (const auto& [key, entry] : entries_) {
      if (entry.kind != kind) {
        continue;
      }
      if (!first) {
        out << ',';
      }
      first = false;
      json_string(out, key);
      out << ':';
      emit(entry);
    }
    out << '}';
  };
  out << '{';
  section(Kind::kCounter, "counters",
          [&](const Entry& e) { out << e.counter->value(); });
  out << ',';
  section(Kind::kGauge, "gauges",
          [&](const Entry& e) { out << e.gauge->value(); });
  out << ',';
  section(Kind::kHistogram, "histograms", [&](const Entry& e) {
    const HistogramSnapshot snap = e.histogram->snapshot();
    out << "{\"count\":" << snap.count << ",\"sum\":" << snap.sum
        << ",\"min\":" << snap.min << ",\"max\":" << snap.max
        << ",\"p50\":" << snap.p50 << ",\"p90\":" << snap.p90
        << ",\"p95\":" << snap.p95 << ",\"p99\":" << snap.p99 << '}';
  });
  out << '}';
}

std::string Registry::to_json() const {
  std::ostringstream out;
  to_json(out);
  return out.str();
}

std::string Registry::to_text() const {
  std::ostringstream out;
  to_text(out);
  return out.str();
}

std::string Registry::to_prometheus() const {
  std::ostringstream out;
  to_prometheus(out);
  return out.str();
}

void Registry::to_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string last_name;
  for (const auto& [key, entry] : entries_) {
    const std::string name = prometheus_name(entry.name);
    const std::string braced =
        entry.labels.empty() ? std::string() : "{" + entry.labels + "}";
    if (entry.name != last_name) {
      last_name = entry.name;
      if (!entry.help.empty()) {
        out << "# HELP " << name << ' ' << entry.help << '\n';
      }
      out << "# TYPE " << name << ' '
          << (entry.kind == Kind::kCounter
                  ? "counter"
                  : entry.kind == Kind::kGauge ? "gauge" : "summary")
          << '\n';
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out << name << braced << ' ' << entry.counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << name << braced << ' ' << entry.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->snapshot();
        const std::string comma = entry.labels.empty() ? "" : ",";
        const std::pair<const char*, double> quantiles[] = {
            {"0.5", snap.p50},
            {"0.9", snap.p90},
            {"0.95", snap.p95},
            {"0.99", snap.p99}};
        for (const auto& [q, v] : quantiles) {
          out << name << '{' << entry.labels << comma << "quantile=\"" << q
              << "\"} " << v << '\n';
        }
        out << name << "_sum" << braced << ' ' << snap.sum << '\n';
        out << name << "_count" << braced << ' ' << snap.count << '\n';
        break;
      }
    }
  }
}

}  // namespace ocep::obs
