// Search-telemetry observability layer (the substrate behind the paper's
// §V per-arrival latency methodology).
//
// Three instrument kinds behind a named Registry:
//
//  * Counter   — monotonically increasing 64-bit count (relaxed atomic
//    add; lock-free).  The intended discipline is single-writer — each
//    instrument is owned by one thread, matching the matcher's
//    single-owner contract — but concurrent writers are still safe, just
//    contended.
//  * Gauge     — a settable signed value (queue depth, resident bytes).
//  * Histogram — log-bucketed value distribution: exact below 8, then
//    four sub-buckets per power of two (<= 25% relative quantile error),
//    with exact count/sum/min/max on the side.  Recording is wait-free:
//    one relaxed fetch_add plus two bounded CAS loops for the extremes.
//
// Instruments are created through the Registry (creation takes a mutex —
// cold path only; do it before worker threads run) and are address-stable
// for the registry's lifetime, so hot paths hold plain pointers and pay
// one predictable branch when metrics are off.
//
// Export: to_text (human), to_json (stable, sorted keys — the format
// BENCH_*.json records and tests consume), to_prometheus (text
// exposition format; histograms become summaries with quantile labels).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ocep::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time quantile summary of a histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
};

class Histogram {
 public:
  /// Values 0..7 get exact buckets; larger values land in one of four
  /// sub-buckets per power of two: 8 + 61 * 4 buckets total.
  static constexpr std::size_t kBuckets = 8 + 61 * 4;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Approximate quantile (q in [0, 1]) interpolated within the bucket
  /// holding the rank; exact for values below 8, <= 25% relative error
  /// above.  Returns 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Folds another histogram's samples into this one, bucket by bucket
  /// (relaxed atomic reads of `other`, so merging while writers are
  /// recording yields a consistent-enough point-in-time view).  Quantiles
  /// of the merge are exact at the bucket resolution — the same <= 25%
  /// relative error as recording directly.
  void merge_from(const Histogram& other) noexcept;

  /// Bucket arithmetic, exposed for tests.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t bucket) noexcept;
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t bucket) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Named instrument directory.  Keys are `name` plus optional Prometheus
/// label pairs (`pattern="3"`); the canonical key string is
/// `name{labels}`.  Lookup-or-create is mutex-guarded and idempotent;
/// returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {},
               std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {},
                       std::string_view help = {});

  /// Folds every instrument of `other` into this registry: counters and
  /// gauges add their current value, histograms merge bucket-wise.
  /// Instruments missing here are created.  Safe while writers are still
  /// recording into `other` (values are read relaxed); the two registries
  /// must be distinct objects.  The shard → admin-plane aggregation path:
  /// each reactor shard owns a private registry and the admin plane merges
  /// them into a scratch registry per scrape.
  void merge_from(const Registry& other);

  /// Value of the counter with the exact canonical key (`name{labels}`),
  /// or 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view key) const;

  /// All counters as (canonical key, value), sorted by key.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;

  /// Human-readable dump, one instrument per line, sorted by key.
  void to_text(std::ostream& out) const;
  [[nodiscard]] std::string to_text() const;

  /// Stable JSON: {"counters": {...}, "gauges": {...}, "histograms":
  /// {key: {count, sum, min, max, p50, p90, p95, p99}}}, keys sorted.
  void to_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format.  Names are prefixed `ocep_` with
  /// dots replaced by underscores; histograms export as summaries.
  void to_prometheus(std::ostream& out) const;
  [[nodiscard]] std::string to_prometheus() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind = Kind::kCounter;
    std::string name;
    std::string labels;
    std::string help;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  Entry& find_or_create(Kind kind, std::string_view name,
                        std::string_view labels, std::string_view help);

  mutable std::mutex mutex_;
  // Deques keep instrument addresses stable as the registry grows.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace ocep::obs
