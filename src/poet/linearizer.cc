#include "poet/linearizer.h"

#include "common/assert.h"

namespace ocep {

Linearizer::Linearizer(std::size_t trace_count, EventSink& sink)
    : sink_(sink), delivered_(trace_count, 0), held_(trace_count) {}

void Linearizer::bind_metrics(obs::Registry& registry) {
  OCEP_ASSERT_MSG(offered_total_ == 0,
                  "metrics must be bound before the first offer");
  offered_counter_ =
      &registry.counter("linearizer.offered", "", "events offered");
  delivered_counter_ =
      &registry.counter("linearizer.delivered", "", "events delivered");
  held_counter_ = &registry.counter("linearizer.held", "",
                                    "events buffered for predecessors");
  queue_depth_ = &registry.histogram("linearizer.queue_depth", "",
                                     "events pending after each offer");
  delivery_lag_ =
      &registry.histogram("linearizer.delivery_lag", "",
                          "offers elapsed while an event sat buffered");
  pending_gauge_ =
      &registry.gauge("linearizer.pending", "", "events currently buffered");
}

void Linearizer::offer(const Event& event, VectorClock clock) {
  OCEP_ASSERT(event.id.trace < delivered_.size());
  OCEP_ASSERT(clock.size() == delivered_.size());
  OCEP_ASSERT_MSG(event.id.index > delivered_[event.id.trace],
                  "duplicate or regressed event index");
  ++offered_total_;
  if (deliverable(event, clock)) {
    if (delivery_lag_ != nullptr) {
      delivery_lag_->record(0);  // delivered on the offer that carried it
    }
    deliver(event, clock);
    drain();
  } else {
    auto [it, inserted] = held_[event.id.trace].emplace(
        event.id.index, Held{event, std::move(clock), offered_total_});
    OCEP_ASSERT_MSG(inserted, "duplicate buffered event");
    static_cast<void>(it);
    ++pending_count_;
    if (held_counter_ != nullptr) {
      held_counter_->add(1);
    }
  }
  if (offered_counter_ != nullptr) {
    offered_counter_->add(1);
    queue_depth_->record(pending_count_);
    pending_gauge_->set(static_cast<std::int64_t>(pending_count_));
  }
}

bool Linearizer::deliverable(const Event& event,
                             const VectorClock& clock) const {
  if (delivered_[event.id.trace] != event.id.index - 1) {
    return false;
  }
  for (std::size_t s = 0; s < delivered_.size(); ++s) {
    if (s != event.id.trace && delivered_[s] < clock[static_cast<TraceId>(s)]) {
      return false;
    }
  }
  return true;
}

void Linearizer::deliver(const Event& event, const VectorClock& clock) {
  delivered_[event.id.trace] = event.id.index;
  ++delivered_total_;
  if (delivered_counter_ != nullptr) {
    delivered_counter_->add(1);
  }
  sink_.on_event(event, clock);
}

void Linearizer::drain() {
  // A delivery can unblock the head of any trace's buffer; iterate to a
  // fixpoint.  Each pass only inspects buffer heads, so the amortized cost
  // stays proportional to deliveries plus (rarely) blocked head rescans.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& buffer : held_) {
      while (!buffer.empty()) {
        const auto& [index, held] = *buffer.begin();
        if (!deliverable(held.event, held.clock)) {
          break;
        }
        // Move out before erasing; deliver after erase so reentrant state
        // stays consistent.
        Event event = held.event;
        VectorClock clock = std::move(buffer.begin()->second.clock);
        if (delivery_lag_ != nullptr) {
          delivery_lag_->record(offered_total_ - held.offered_at);
        }
        buffer.erase(buffer.begin());
        --pending_count_;
        deliver(event, clock);
        progressed = true;
      }
    }
  }
}

}  // namespace ocep
