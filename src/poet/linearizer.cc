#include "poet/linearizer.h"

#include <istream>
#include <limits>
#include <ostream>

#include "common/assert.h"
#include "common/error.h"
#include "common/string_pool.h"
#include "poet/varint.h"

namespace ocep {

Linearizer::Linearizer(std::size_t trace_count, EventSink& sink,
                       LinearizerConfig config)
    : sink_(sink),
      config_(config),
      delivered_(trace_count, 0),
      held_(trace_count),
      last_clock_(trace_count, VectorClock(trace_count)),
      stalled_(trace_count, false) {
  if (config_.high_watermark > 0 && config_.low_watermark == 0) {
    config_.low_watermark = config_.high_watermark / 2;
  }
  OCEP_ASSERT_MSG(config_.low_watermark <= config_.high_watermark ||
                      config_.high_watermark == 0,
                  "low watermark above high watermark");
}

void Linearizer::bind_metrics(obs::Registry& registry) {
  OCEP_ASSERT_MSG(offered_total_ == 0,
                  "metrics must be bound before the first offer");
  offered_counter_ =
      &registry.counter("linearizer.offered", "", "events offered");
  delivered_counter_ =
      &registry.counter("linearizer.delivered", "", "events delivered");
  held_counter_ = &registry.counter("linearizer.held", "",
                                    "events buffered for predecessors");
  duplicate_counter_ = &registry.counter("linearizer.duplicates", "",
                                         "duplicate offers dropped");
  shed_counter_ = &registry.counter("linearizer.sheds", "",
                                    "placeholder events synthesized");
  queue_depth_ = &registry.histogram("linearizer.queue_depth", "",
                                     "events pending after each offer");
  delivery_lag_ =
      &registry.histogram("linearizer.delivery_lag", "",
                          "offers elapsed while an event sat buffered");
  pending_gauge_ =
      &registry.gauge("linearizer.pending", "", "events currently buffered");
  stalled_gauge_ = &registry.gauge("linearizer.stalled_traces", "",
                                   "traces stalled past the horizon");
}

OfferResult Linearizer::offer(const Event& event, VectorClock clock) {
  OCEP_ASSERT(event.id.trace < delivered_.size());
  OCEP_ASSERT(clock.size() == delivered_.size());
  ++offered_total_;
  OfferResult result;

  const bool regressed = event.id.index <= delivered_[event.id.trace];
  const bool already_held =
      !regressed && held_[event.id.trace].count(event.id.index) != 0;
  if (regressed || already_held) {
    if (config_.strict) {
      OCEP_ASSERT_MSG(!regressed, "duplicate or regressed event index");
      OCEP_ASSERT_MSG(!already_held, "duplicate buffered event");
    }
    ++duplicates_;
    if (duplicate_counter_ != nullptr) {
      duplicate_counter_->add(1);
    }
    result = OfferResult::kDuplicate;
  } else if (deliverable(event, clock)) {
    if (delivery_lag_ != nullptr) {
      delivery_lag_->record(0);  // delivered on the offer that carried it
    }
    deliver(event, clock);
    drain();
    result = OfferResult::kDelivered;
  } else if (config_.policy == OverflowPolicy::kBlock &&
             config_.high_watermark > 0 &&
             pending_count_ >= config_.high_watermark) {
    ++blocked_;
    result = OfferResult::kBlocked;
  } else {
    held_[event.id.trace].emplace(
        event.id.index, Held{event, std::move(clock), offered_total_});
    ++pending_count_;
    if (pending_count_ > max_pending_) {
      max_pending_ = pending_count_;
    }
    if (held_counter_ != nullptr) {
      held_counter_->add(1);
    }
    result = OfferResult::kBuffered;
  }

  update_stalls();
  apply_policy();
  if (offered_counter_ != nullptr) {
    offered_counter_->add(1);
    queue_depth_->record(pending_count_);
  }
  update_gauges();
  return result;
}

bool Linearizer::deliverable(const Event& event,
                             const VectorClock& clock) const {
  if (delivered_[event.id.trace] != event.id.index - 1) {
    return false;
  }
  for (std::size_t s = 0; s < delivered_.size(); ++s) {
    if (s != event.id.trace && delivered_[s] < clock[static_cast<TraceId>(s)]) {
      return false;
    }
  }
  return true;
}

void Linearizer::deliver(const Event& event, const VectorClock& clock) {
  delivered_[event.id.trace] = event.id.index;
  last_clock_[event.id.trace] = clock;
  ++delivered_total_;
  if (delivered_counter_ != nullptr) {
    delivered_counter_->add(1);
  }
  sink_.on_event(event, clock);
}

void Linearizer::drain() {
  // A delivery can unblock the head of any trace's buffer; iterate to a
  // fixpoint.  Each pass only inspects buffer heads, so the amortized cost
  // stays proportional to deliveries plus (rarely) blocked head rescans.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& buffer : held_) {
      while (!buffer.empty()) {
        const auto& [index, held] = *buffer.begin();
        if (!deliverable(held.event, held.clock)) {
          break;
        }
        // Move out before erasing; deliver after erase so reentrant state
        // stays consistent.
        Event event = held.event;
        VectorClock clock = std::move(buffer.begin()->second.clock);
        if (delivery_lag_ != nullptr) {
          delivery_lag_->record(offered_total_ - held.offered_at);
        }
        buffer.erase(buffer.begin());
        --pending_count_;
        deliver(event, clock);
        progressed = true;
      }
    }
  }
}

void Linearizer::synthesize_through(TraceId trace, EventIndex index) {
  // Placeholders extend the trace's last delivered clock row one tick at a
  // time, so every downstream invariant (store monotonicity, linearization
  // order) holds exactly as it would for a real local event.
  while (delivered_[trace] < index) {
    Event placeholder;
    placeholder.id = EventId{trace, delivered_[trace] + 1};
    placeholder.kind = EventKind::kLocal;
    placeholder.type = config_.shed_type;
    VectorClock clock = last_clock_[trace];
    clock.tick(trace);
    ++sheds_;
    if (shed_counter_ != nullptr) {
      shed_counter_->add(1);
    }
    deliver(placeholder, clock);
  }
}

void Linearizer::update_stalls() {
  if (config_.stall_horizon == 0) {
    return;
  }
  for (TraceId t = 0; t < held_.size(); ++t) {
    bool now_stalled = false;
    if (!held_[t].empty()) {
      const std::uint64_t waited =
          offered_total_ - held_[t].begin()->second.offered_at;
      now_stalled = waited > config_.stall_horizon;
    }
    if (now_stalled && !stalled_[t]) {
      ++stall_events_;
      ++stalled_count_;
    } else if (!now_stalled && stalled_[t]) {
      --stalled_count_;
    }
    stalled_[t] = now_stalled;
  }
}

void Linearizer::apply_policy() {
  if (config_.policy != OverflowPolicy::kShed) {
    return;
  }
  if (config_.high_watermark > 0 && pending_count_ > config_.high_watermark) {
    shed_to(config_.low_watermark);
  }
  while (stalled_count_ > 0) {
    const std::size_t before = delivered_total_;
    if (!fill_cross_trace_needs()) {
      fill_trace_gaps();
    }
    drain();
    update_stalls();
    if (delivered_total_ == before) {
      break;  // no progress possible; leave the stall visible in stats
    }
  }
}

void Linearizer::fill_trace_gaps() {
  // Phase-1 shed: give every buffered head its same-trace predecessors.
  for (TraceId t = 0; t < held_.size(); ++t) {
    if (!held_[t].empty()) {
      synthesize_through(t, held_[t].begin()->first - 1);
    }
  }
}

bool Linearizer::fill_cross_trace_needs() {
  // Force-deliver one buffered head that is causally minimal among all
  // buffered events: no other trace holds an event at or below what this
  // head's clock requires, so its missing predecessors are genuinely lost
  // (not merely late in our own buffers) and may be synthesized safely.
  for (TraceId t = 0; t < held_.size(); ++t) {
    if (held_[t].empty()) {
      continue;
    }
    const Held& head = held_[t].begin()->second;
    bool minimal = true;
    for (TraceId s = 0; s < held_.size() && minimal; ++s) {
      if (s != t && !held_[s].empty() &&
          held_[s].begin()->first <= head.clock[s]) {
        minimal = false;
      }
    }
    if (!minimal) {
      continue;
    }
    synthesize_through(t, head.event.id.index - 1);
    for (TraceId s = 0; s < held_.size(); ++s) {
      if (s != t) {
        synthesize_through(s, head.clock[s]);
      }
    }
    return true;
  }
  return false;
}

void Linearizer::shed_to(std::size_t target_pending) {
  while (pending_count_ > target_pending) {
    const std::size_t before = pending_count_;
    if (!fill_cross_trace_needs()) {
      // Corrupt clocks could make every head non-minimal; fall back to
      // same-trace gap filling so the loop still terminates.
      fill_trace_gaps();
    }
    drain();
    if (pending_count_ >= before) {
      break;  // no progress; give up rather than loop forever
    }
  }
  update_stalls();
  update_gauges();
}

void Linearizer::update_gauges() {
  if (pending_gauge_ != nullptr) {
    pending_gauge_->set(static_cast<std::int64_t>(pending_count_));
  }
  if (stalled_gauge_ != nullptr) {
    stalled_gauge_->set(static_cast<std::int64_t>(stalled_count_));
  }
}

IngestStats Linearizer::ingest_stats() const {
  IngestStats stats;
  stats.offered = offered_total_;
  stats.delivered = delivered_total_;
  stats.duplicates = duplicates_;
  stats.sheds = sheds_;
  stats.stall_events = stall_events_;
  stats.blocked = blocked_;
  stats.pending = pending_count_;
  stats.max_pending = max_pending_;
  stats.stalled_traces = stalled_count_;
  return stats;
}

// --- checkpoint -------------------------------------------------------------
//
// Layout (varints unless noted): trace count, per-trace delivered
// watermark, per-trace last delivered clock (full rows), the eight
// counters, then the held events with symbols spelled out as strings so
// the restoring pool need not match the dumping one.

void Linearizer::checkpoint(std::ostream& out, const StringPool& pool) const {
  const std::size_t n = delivered_.size();
  poet::put_varint(out, n);
  for (std::size_t t = 0; t < n; ++t) {
    poet::put_varint(out, delivered_[t]);
  }
  for (std::size_t t = 0; t < n; ++t) {
    for (TraceId s = 0; s < n; ++s) {
      poet::put_varint(out, last_clock_[t][s]);
    }
  }
  poet::put_varint(out, offered_total_);
  poet::put_varint(out, delivered_total_);
  poet::put_varint(out, duplicates_);
  poet::put_varint(out, sheds_);
  poet::put_varint(out, stall_events_);
  poet::put_varint(out, blocked_);
  poet::put_varint(out, max_pending_);
  poet::put_varint(out, pending_count_);
  for (TraceId t = 0; t < n; ++t) {
    for (const auto& [index, held] : held_[t]) {
      poet::put_varint(out, t);
      poet::put_varint(out, index);
      poet::put_varint(out, static_cast<std::uint64_t>(held.event.kind));
      poet::put_string(out, pool.view(held.event.type));
      poet::put_string(out, pool.view(held.event.text));
      poet::put_varint(out, held.event.message);
      for (TraceId s = 0; s < n; ++s) {
        poet::put_varint(out, held.clock[s]);
      }
      poet::put_varint(out, held.offered_at);
    }
  }
  if (!out) {
    throw SerializationError("write failure while checkpointing linearizer");
  }
}

void Linearizer::restore(std::istream& in, StringPool& pool) {
  OCEP_ASSERT_MSG(offered_total_ == 0 && pending_count_ == 0,
                  "restore requires a fresh linearizer");
  const std::uint64_t n = poet::get_varint(in);
  if (n != delivered_.size()) {
    throw SerializationError("linearizer checkpoint trace count mismatch");
  }
  for (std::size_t t = 0; t < n; ++t) {
    const std::uint64_t v = poet::get_varint(in);
    if (v > std::numeric_limits<std::uint32_t>::max()) {
      throw SerializationError("corrupt checkpoint: bad delivery watermark");
    }
    delivered_[t] = static_cast<std::uint32_t>(v);
  }
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<std::uint32_t> entries(n);
    for (std::size_t s = 0; s < n; ++s) {
      entries[s] = static_cast<std::uint32_t>(poet::get_varint(in));
    }
    last_clock_[t] = VectorClock(std::move(entries));
  }
  offered_total_ = poet::get_varint(in);
  delivered_total_ = poet::get_varint(in);
  duplicates_ = poet::get_varint(in);
  sheds_ = poet::get_varint(in);
  stall_events_ = poet::get_varint(in);
  blocked_ = poet::get_varint(in);
  max_pending_ = poet::get_varint(in);
  const std::uint64_t held_count = poet::get_varint(in);
  for (std::uint64_t i = 0; i < held_count; ++i) {
    const std::uint64_t t64 = poet::get_varint(in);
    if (t64 >= n) {
      throw SerializationError("corrupt checkpoint: held trace out of range");
    }
    const auto t = static_cast<TraceId>(t64);
    Held held;
    held.event.id.trace = t;
    held.event.id.index = static_cast<EventIndex>(poet::get_varint(in));
    const std::uint64_t kind = poet::get_varint(in);
    if (kind > static_cast<std::uint64_t>(EventKind::kBlockedSend)) {
      throw SerializationError("corrupt checkpoint: bad held event kind");
    }
    held.event.kind = static_cast<EventKind>(kind);
    held.event.type = pool.intern(poet::get_string(in));
    held.event.text = pool.intern(poet::get_string(in));
    held.event.message = poet::get_varint(in);
    std::vector<std::uint32_t> entries(n);
    for (std::size_t s = 0; s < n; ++s) {
      entries[s] = static_cast<std::uint32_t>(poet::get_varint(in));
    }
    held.clock = VectorClock(std::move(entries));
    held.offered_at = poet::get_varint(in);
    const EventIndex index = held.event.id.index;
    if (index <= delivered_[t] ||
        !held_[t].emplace(index, std::move(held)).second) {
      throw SerializationError("corrupt checkpoint: duplicate held event");
    }
    ++pending_count_;
  }
  update_stalls();
  update_gauges();
}

}  // namespace ocep
