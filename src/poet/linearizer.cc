#include "poet/linearizer.h"

#include "common/assert.h"

namespace ocep {

Linearizer::Linearizer(std::size_t trace_count, EventSink& sink)
    : sink_(sink), delivered_(trace_count, 0), held_(trace_count) {}

void Linearizer::offer(const Event& event, VectorClock clock) {
  OCEP_ASSERT(event.id.trace < delivered_.size());
  OCEP_ASSERT(clock.size() == delivered_.size());
  OCEP_ASSERT_MSG(event.id.index > delivered_[event.id.trace],
                  "duplicate or regressed event index");
  if (deliverable(event, clock)) {
    deliver(event, clock);
    drain();
  } else {
    auto [it, inserted] = held_[event.id.trace].emplace(
        event.id.index, Held{event, std::move(clock)});
    OCEP_ASSERT_MSG(inserted, "duplicate buffered event");
    static_cast<void>(it);
    ++pending_count_;
  }
}

bool Linearizer::deliverable(const Event& event,
                             const VectorClock& clock) const {
  if (delivered_[event.id.trace] != event.id.index - 1) {
    return false;
  }
  for (std::size_t s = 0; s < delivered_.size(); ++s) {
    if (s != event.id.trace && delivered_[s] < clock[static_cast<TraceId>(s)]) {
      return false;
    }
  }
  return true;
}

void Linearizer::deliver(const Event& event, const VectorClock& clock) {
  delivered_[event.id.trace] = event.id.index;
  ++delivered_total_;
  sink_.on_event(event, clock);
}

void Linearizer::drain() {
  // A delivery can unblock the head of any trace's buffer; iterate to a
  // fixpoint.  Each pass only inspects buffer heads, so the amortized cost
  // stays proportional to deliveries plus (rarely) blocked head rescans.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& buffer : held_) {
      while (!buffer.empty()) {
        const auto& [index, held] = *buffer.begin();
        if (!deliverable(held.event, held.clock)) {
          break;
        }
        // Move out before erasing; deliver after erase so reentrant state
        // stays consistent.
        Event event = held.event;
        VectorClock clock = std::move(buffer.begin()->second.clock);
        buffer.erase(buffer.begin());
        --pending_count_;
        deliver(event, clock);
        progressed = true;
      }
    }
  }
}

}  // namespace ocep
