// Varint and length-prefixed-string primitives shared by the dump format
// and the wire protocol.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "common/error.h"

namespace ocep::poet {

inline void put_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

inline std::uint64_t get_varint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      throw SerializationError("truncated stream: varint cut short");
    }
    if (shift >= 64) {
      throw SerializationError("corrupt stream: varint too long");
    }
    value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

inline void put_string(std::ostream& out, std::string_view s) {
  put_varint(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Current read position of `in`, or -1 when the stream cannot tell (a
/// failed read poisons tellg).  Readers capture this at record boundaries
/// so SerializationError can point at the offending bytes.
[[nodiscard]] inline std::int64_t stream_pos(std::istream& in) {
  if (!in.good()) {
    return -1;
  }
  const std::istream::pos_type pos = in.tellg();
  return pos < 0 ? -1 : static_cast<std::int64_t>(pos);
}

/// Rethrows `e` annotated with the position of the record being decoded.
/// An error that already carries a byte offset is forwarded untouched, so
/// the innermost (most precise) position wins.
[[noreturn]] inline void rethrow_positioned(const SerializationError& e,
                                            std::int64_t byte_offset,
                                            std::int64_t frame_index = -1) {
  if (e.byte_offset() >= 0) {
    throw e;
  }
  throw SerializationError(e.what(), byte_offset, frame_index);
}

inline std::string get_string(std::istream& in) {
  const std::uint64_t size = get_varint(in);
  if (size > (1ULL << 20)) {
    throw SerializationError("corrupt stream: unreasonable string length");
  }
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    throw SerializationError("truncated stream: string cut short");
  }
  return s;
}

}  // namespace ocep::poet
