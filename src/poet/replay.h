// Replay of a stored computation to a client (paper §V-B).
//
// The paper's methodology collects trace-event data once (POET's dump
// feature), then replays the saved events through the same client interface
// used for live collection.  replay() feeds every event of a store to a
// sink in a linearization of the partial order.
#pragma once

#include <functional>

#include "poet/client.h"
#include "poet/event_store.h"

namespace ocep {

/// Invokes `fn(event, clock)` for every event in `store`, in a
/// linearization of the partial order (causal delivery order).
void for_each_linearized(
    const EventStore& store,
    const std::function<void(const Event&, const VectorClock&)>& fn);

/// Streams a stored computation into a client.
void replay(const EventStore& store, EventSink& sink);

}  // namespace ocep
