#include "poet/dump.h"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/error.h"
#include "poet/varint.h"

namespace ocep {
namespace {

using poet::get_string;
using poet::get_varint;
using poet::put_string;
using poet::put_varint;

constexpr char kMagic[8] = {'O', 'C', 'E', 'P', 'D', 'M', 'P', '1'};

/// Maps pool symbols to dense dump-local ids, interning lazily.
class SymbolWriter {
 public:
  explicit SymbolWriter(const StringPool& pool) : pool_(pool) {}

  std::uint32_t local_id(Symbol sym) {
    auto [it, inserted] =
        ids_.emplace(static_cast<std::uint32_t>(sym),
                     static_cast<std::uint32_t>(strings_.size()));
    if (inserted) {
      strings_.emplace_back(pool_.view(sym));
    }
    return it->second;
  }

  const std::vector<std::string>& strings() const noexcept { return strings_; }

 private:
  const StringPool& pool_;
  std::unordered_map<std::uint32_t, std::uint32_t> ids_;
  std::vector<std::string> strings_;
};

}  // namespace

void dump(const EventStore& store, const StringPool& pool, std::ostream& out) {
  const auto n = static_cast<TraceId>(store.trace_count());

  // Pass 1: collect the symbol table so it can precede the event stream.
  SymbolWriter symbols(pool);
  std::vector<std::uint32_t> trace_names(n);
  for (TraceId t = 0; t < n; ++t) {
    trace_names[t] = symbols.local_id(store.trace_name(t));
  }
  struct Encoded {
    std::uint32_t type;
    std::uint32_t text;
  };
  std::vector<Encoded> encoded;
  encoded.reserve(store.event_count());
  for (const EventId id : store.arrival_order()) {
    const Event& event = store.event(id);
    encoded.push_back(
        Encoded{symbols.local_id(event.type), symbols.local_id(event.text)});
  }

  out.write(kMagic, sizeof(kMagic));
  put_varint(out, n);
  put_varint(out, symbols.strings().size());
  for (const std::string& s : symbols.strings()) {
    put_string(out, s);
  }
  for (TraceId t = 0; t < n; ++t) {
    put_varint(out, trace_names[t]);
  }

  // Event stream; timestamps delta-encoded against the trace predecessor.
  put_varint(out, store.event_count());
  std::vector<std::vector<std::uint32_t>> prev_clock(
      n, std::vector<std::uint32_t>(n, 0));
  std::size_t seq = 0;
  for (const EventId id : store.arrival_order()) {
    const Event& event = store.event(id);
    put_varint(out, id.trace);
    put_varint(out, static_cast<std::uint64_t>(event.kind));
    put_varint(out, encoded[seq].type);
    put_varint(out, encoded[seq].text);
    put_varint(out, event.message);
    ++seq;

    const VectorClock row = store.clock(id);
    std::vector<std::uint32_t>& prev = prev_clock[id.trace];
    std::uint32_t changed = 0;
    for (TraceId s = 0; s < n; ++s) {
      if (s != id.trace && row[s] != prev[s]) {
        ++changed;
      }
    }
    put_varint(out, changed);
    for (TraceId s = 0; s < n; ++s) {
      if (s != id.trace && row[s] != prev[s]) {
        put_varint(out, s);
        put_varint(out, row[s]);
        prev[s] = row[s];
      }
    }
    prev[id.trace] = row[id.trace];
  }
  if (!out) {
    throw SerializationError("write failure while dumping computation");
  }
}

void reload(std::istream& in, StringPool& pool, EventSink& sink) {
  const std::int64_t header_start = poet::stream_pos(in);
  std::uint64_t event_count = 0;
  TraceId n = 0;
  std::vector<Symbol> symbols;
  try {
    char magic[sizeof(kMagic)];
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw SerializationError("not an OCEP dump file (bad magic)");
    }

    const std::uint64_t n64 = get_varint(in);
    if (n64 == 0 || n64 > std::numeric_limits<TraceId>::max()) {
      throw SerializationError("corrupt dump: bad trace count");
    }
    n = static_cast<TraceId>(n64);

    const std::uint64_t symbol_count = get_varint(in);
    symbols.reserve(symbol_count);
    for (std::uint64_t i = 0; i < symbol_count; ++i) {
      symbols.push_back(pool.intern(get_string(in)));
    }

    std::vector<Symbol> trace_names(n);
    for (TraceId t = 0; t < n; ++t) {
      const std::uint64_t local = get_varint(in);
      if (local >= symbols.size()) {
        throw SerializationError("corrupt dump: symbol id out of range");
      }
      trace_names[t] = symbols[local];
    }
    sink.on_traces(trace_names);
    event_count = get_varint(in);
  } catch (const SerializationError& e) {
    poet::rethrow_positioned(e, header_start, 0);
  }

  auto symbol_at = [&symbols](std::uint64_t local) {
    if (local >= symbols.size()) {
      throw SerializationError("corrupt dump: symbol id out of range");
    }
    return symbols[local];
  };

  std::vector<VectorClock> clocks(n, VectorClock(n));
  std::vector<EventIndex> next(n, 1);
  for (std::uint64_t i = 0; i < event_count; ++i) {
    // Record positions so a corrupt event reports "byte X, frame i+1"
    // instead of a bare message; the header counts as frame 0.
    const std::int64_t record_start = poet::stream_pos(in);
    try {
      const std::uint64_t t64 = get_varint(in);
      if (t64 >= n) {
        throw SerializationError("corrupt dump: trace id out of range");
      }
      const auto t = static_cast<TraceId>(t64);
      Event event;
      event.id = EventId{t, next[t]++};
      const std::uint64_t kind = get_varint(in);
      if (kind > static_cast<std::uint64_t>(EventKind::kBlockedSend)) {
        throw SerializationError("corrupt dump: bad event kind");
      }
      event.kind = static_cast<EventKind>(kind);
      event.type = symbol_at(get_varint(in));
      event.text = symbol_at(get_varint(in));
      event.message = get_varint(in);

      VectorClock& clock = clocks[t];
      const std::uint64_t changed = get_varint(in);
      if (changed >= n) {
        throw SerializationError("corrupt dump: clock delta too wide");
      }
      for (std::uint64_t c = 0; c < changed; ++c) {
        const std::uint64_t s = get_varint(in);
        const std::uint64_t value = get_varint(in);
        if (s >= n || s == t ||
            value > std::numeric_limits<std::uint32_t>::max() ||
            value < clock[static_cast<TraceId>(s)] ||
            // An event cannot know more events of s than have been emitted:
            // the dump order is a linearization.
            value >= next[s]) {
          throw SerializationError("corrupt dump: bad clock delta entry");
        }
        clock.raise(static_cast<TraceId>(s), static_cast<std::uint32_t>(value));
      }
      clock.tick(t);
      sink.on_event(event, clock);
    } catch (const SerializationError& e) {
      poet::rethrow_positioned(e, record_start, static_cast<std::int64_t>(i + 1));
    }
  }
}

namespace {

/// Adapter: builds a store (with its trace table) from a reload stream.
class StoreBuilder final : public EventSink {
 public:
  explicit StoreBuilder(EventStore& store) : store_(store) {}

  void on_event(const Event& event, const VectorClock& clock) override {
    store_.append(event, clock);
  }

 private:
  EventStore& store_;
};

}  // namespace

EventStore reload_store(std::istream& in, StringPool& pool,
                        ClockStorage storage) {
  // Peek the header to size the trace table, then rewind and stream.
  const std::istream::pos_type start = in.tellg();
  EventStore store(storage);
  try {
    char magic[sizeof(kMagic)];
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw SerializationError("not an OCEP dump file (bad magic)");
    }
    const std::uint64_t n64 = get_varint(in);
    const std::uint64_t symbol_count = get_varint(in);
    std::vector<std::string> strings;
    strings.reserve(symbol_count);
    for (std::uint64_t i = 0; i < symbol_count; ++i) {
      strings.push_back(get_string(in));
    }
    for (std::uint64_t t = 0; t < n64; ++t) {
      const std::uint64_t local = get_varint(in);
      if (local >= strings.size()) {
        throw SerializationError("corrupt dump: trace name out of range");
      }
      store.add_trace(pool.intern(strings[local]));
    }
  } catch (const SerializationError& e) {
    poet::rethrow_positioned(e, static_cast<std::int64_t>(start), 0);
  }
  in.clear();
  in.seekg(start);
  StoreBuilder builder(store);
  reload(in, pool, builder);
  return store;
}

}  // namespace ocep
