// Dump / reload of trace-event data (paper §V-B).
//
// POET's dump feature saves a collected computation to a file; reload
// passes the saved events back through the same interface used for live
// collection, which is exactly how the paper's evaluation feeds OCEP.
//
// Format (little-endian, varint-compressed):
//   magic "OCEPDMP1"
//   trace count, then per trace its name
//   string table (symbols referenced by events and trace names)
//   event count, then events in arrival (linearization) order; each event's
//   timestamp is delta-encoded against its trace predecessor, so the cost
//   per event is proportional to the entries a receive actually changed.
#pragma once

#include <iosfwd>

#include "common/string_pool.h"
#include "poet/client.h"
#include "poet/event_store.h"

namespace ocep {

/// Writes the computation to `out`.  `pool` must be the pool the store's
/// symbols were interned in.
void dump(const EventStore& store, const StringPool& pool, std::ostream& out);

/// Reads a dumped computation, interning strings into `pool` and streaming
/// every event to `sink` in the dumped linearization order.
/// Throws SerializationError on malformed input.
void reload(std::istream& in, StringPool& pool, EventSink& sink);

/// Convenience: reload straight into a fresh EventStore with the chosen
/// timestamp backend.
[[nodiscard]] EventStore reload_store(
    std::istream& in, StringPool& pool,
    ClockStorage storage = ClockStorage::kDense);

}  // namespace ocep
