#include "poet/session.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>

#include "common/assert.h"
#include "common/crc32c.h"
#include "common/error.h"
#include "poet/varint.h"

namespace ocep {
namespace {

// Frame marker: two bytes that are unlikely to appear adjacently in varint
// payloads, used to find the next frame boundary after corruption.
constexpr char kMarker[2] = {'\xa7', '\x0c'};

enum class Payload : std::uint8_t {
  kHello = 1,
  kEvent = 2,
  kSnapshot = 3,
  kBye = 4,
};

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xffU));
  out.push_back(static_cast<char>((v >> 8U) & 0xffU));
  out.push_back(static_cast<char>((v >> 16U) & 0xffU));
  out.push_back(static_cast<char>((v >> 24U) & 0xffU));
}

/// Bounded decoder over an in-memory payload.  Any malformed or truncated
/// read flips ok() and poisons subsequent reads; the caller checks once.
class Cursor {
 public:
  explicit Cursor(std::string_view buf) : buf_(buf) {}

  std::uint64_t u64() {
    std::uint64_t value = 0;
    int shift = 0;
    while (ok_) {
      if (pos_ >= buf_.size() || shift >= 64) {
        ok_ = false;
        break;
      }
      const auto c = static_cast<unsigned char>(buf_[pos_++]);
      value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) {
        return value;
      }
      shift += 7;
    }
    return 0;
  }

  std::string_view str() {
    const std::uint64_t size = u64();
    if (!ok_ || size > buf_.size() - pos_) {
      ok_ = false;
      return {};
    }
    const std::string_view s = buf_.substr(pos_, size);
    pos_ += size;
    return s;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool done() const noexcept { return ok_ && pos_ == buf_.size(); }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::uint32_t read_u32le(std::string_view bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1]))
          << 8U) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
          << 16U) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
          << 24U);
}

}  // namespace

// --- SessionServer ----------------------------------------------------------

SessionServer::SessionServer(ByteSink& out, const StringPool& pool,
                             const std::vector<Symbol>& names,
                             SessionConfig config)
    : out_(out), pool_(pool), config_(config), names_(names) {
  OCEP_ASSERT_MSG(!names_.empty(), "session needs at least one trace");
  std::string payload;
  payload.push_back(static_cast<char>(Payload::kHello));
  put_varint(payload, names_.size());
  for (const Symbol name : names_) {
    put_string(payload, pool_.view(name));
  }
  emit_frame(payload);
}

void SessionServer::append_event_body(std::string& out,
                                      const Retained& retained) const {
  const Event& event = retained.event;
  put_varint(out, event.id.trace);
  put_varint(out, event.id.index);
  put_varint(out, static_cast<std::uint64_t>(event.kind));
  put_string(out, pool_.view(event.type));
  put_string(out, pool_.view(event.text));
  put_varint(out, event.message);
  put_varint(out, retained.clock.size());
  for (const std::uint32_t entry : retained.clock) {
    put_varint(out, entry);
  }
}

void SessionServer::write(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT_MSG(!finished_, "write after finish()");
  OCEP_ASSERT(event.id.trace < names_.size());
  Retained retained;
  retained.event = event;
  retained.clock.assign(clock.entries().begin(), clock.entries().end());
  const std::uint64_t position = retained_.size();
  retained_.push_back(std::move(retained));

  std::string payload;
  payload.push_back(static_cast<char>(Payload::kEvent));
  put_varint(payload, position);
  append_event_body(payload, retained_.back());
  emit_frame(payload);
  ++stats_.events_written;
}

void SessionServer::finish() {
  OCEP_ASSERT_MSG(!finished_, "finish() called twice");
  finished_ = true;
  std::string payload;
  payload.push_back(static_cast<char>(Payload::kBye));
  put_varint(payload, retained_.size());
  emit_frame(payload);
}

void SessionServer::handle_resync(const ResyncRequest& request) {
  ++stats_.resyncs_served;
  // Chunked so every snapshot frame respects the payload bound.  Even an
  // empty chunk is sent: it carries the trace table and totals, which is
  // exactly what a client that lost HELLO or BYE needs.
  std::uint64_t position =
      std::min<std::uint64_t>(request.next_position, retained_.size());
  bool first = true;
  while (first || position < retained_.size()) {
    first = false;
    std::string payload;
    payload.push_back(static_cast<char>(Payload::kSnapshot));
    put_varint(payload, request.request_id);
    put_varint(payload, names_.size());
    for (const Symbol name : names_) {
      put_string(payload, pool_.view(name));
    }
    put_varint(payload, retained_.size());
    payload.push_back(finished_ ? '\1' : '\0');
    put_varint(payload, position);
    const std::uint64_t count =
        std::min<std::uint64_t>(config_.snapshot_chunk,
                                retained_.size() - position);
    put_varint(payload, count);
    for (std::uint64_t i = 0; i < count; ++i) {
      append_event_body(payload, retained_[position + i]);
    }
    position += count;
    emit_frame(payload);
    ++stats_.snapshot_frames;
  }
}

void SessionServer::emit_frame(std::string_view payload) {
  OCEP_ASSERT_MSG(payload.size() <= config_.max_frame_payload,
                  "frame payload exceeds the configured bound");
  std::string header;
  put_varint(header, next_seq_++);
  put_varint(header, payload.size());
  const std::uint32_t crc = crc32c(payload, crc32c(header));

  std::string frame;
  frame.reserve(sizeof(kMarker) + header.size() + 4 + payload.size());
  frame.append(kMarker, sizeof(kMarker));
  frame.append(header);
  put_u32le(frame, crc);
  frame.append(payload);
  out_.write(frame);
  ++stats_.frames_written;
}

// --- SessionClient ----------------------------------------------------------

SessionClient::SessionClient(EventSink& sink, StringPool& pool,
                             ResyncTransport& transport, SessionConfig config)
    : sink_(sink), pool_(pool), transport_(transport), config_(config) {
  OCEP_ASSERT(config_.backoff_initial > 0);
}

void SessionClient::bind_metrics(obs::Registry& registry) {
  registry_ = &registry;
  resync_counter_ = &registry.counter("linearizer.resyncs", "",
                                      "resync requests issued");
  corrupt_counter_ = &registry.counter("session.frames_corrupt", "",
                                       "frames dropped by CRC or framing");
  gap_counter_ = &registry.counter("session.frames_gap", "",
                                   "sequence numbers never seen");
  snapshot_counter_ = &registry.counter("session.snapshots", "",
                                        "snapshot frames applied");
}

void SessionClient::feed(std::string_view bytes) {
  buffer_.append(bytes);
  ++ticks_;
  process_buffer();
  advance_clock();
}

void SessionClient::tick() {
  ++ticks_;
  process_buffer();
  advance_clock();
}

void SessionClient::finish_input() {
  input_done_ = true;
  // A partial frame at the tail will never complete now; let the framer
  // classify it as truncation instead of waiting for more bytes.
  process_buffer();
  advance_clock();
}

void SessionClient::process_buffer() {
  while (try_parse_frame()) {
  }
  // Compact lazily so steady-state parsing is O(bytes), not O(bytes^2).
  if (buffer_pos_ > 4096 || buffer_pos_ == buffer_.size()) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
}

void SessionClient::note_corrupt(std::size_t skipped) {
  ++frames_corrupt_;
  bytes_skipped_ += skipped;
  if (corrupt_counter_ != nullptr) {
    corrupt_counter_->add(1);
  }
}

bool SessionClient::try_parse_frame() {
  const std::string_view buf(buffer_);
  std::size_t start = buf.find(kMarker[0], buffer_pos_);
  // Scan for the two-byte marker.
  while (start != std::string_view::npos && start + 1 < buf.size() &&
         buf[start + 1] != kMarker[1]) {
    start = buf.find(kMarker[0], start + 1);
  }
  if (start == std::string_view::npos) {
    // No marker: everything pending is inter-frame garbage.
    if (buf.size() > buffer_pos_) {
      note_corrupt(buf.size() - buffer_pos_);
      buffer_pos_ = buf.size();
    }
    return false;
  }
  if (start + 1 >= buf.size()) {
    // A lone first marker byte at the tail: may complete on the next feed.
    if (start > buffer_pos_) {
      note_corrupt(start - buffer_pos_);
      buffer_pos_ = start;
    }
    if (input_done_ && buf.size() > buffer_pos_) {
      note_corrupt(buf.size() - buffer_pos_);
      buffer_pos_ = buf.size();
    }
    return false;
  }
  if (start > buffer_pos_) {
    note_corrupt(start - buffer_pos_);
    buffer_pos_ = start;
  }

  // Header: seq varint, len varint.  Bounded at 10 bytes each.
  std::size_t pos = start + sizeof(kMarker);
  std::uint64_t seq = 0;
  std::uint64_t len = 0;
  for (std::uint64_t* field : {&seq, &len}) {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos >= buf.size()) {
        if (input_done_) {
          note_corrupt(buf.size() - start);
          buffer_pos_ = buf.size();
          return false;
        }
        return false;  // wait for more bytes
      }
      if (shift >= 64) {
        note_corrupt(1);
        buffer_pos_ = start + 1;
        return true;
      }
      const auto c = static_cast<unsigned char>(buf[pos++]);
      value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    *field = value;
  }
  if (len > config_.max_frame_payload) {
    note_corrupt(1);
    buffer_pos_ = start + 1;
    return true;
  }
  const std::size_t frame_end = pos + 4 + static_cast<std::size_t>(len);
  if (frame_end > buf.size()) {
    if (input_done_) {
      note_corrupt(buf.size() - start);
      buffer_pos_ = buf.size();
      return false;
    }
    return false;  // wait for the rest of the frame
  }
  const std::string_view header = buf.substr(start + sizeof(kMarker),
                                             pos - start - sizeof(kMarker));
  const std::uint32_t stored_crc = read_u32le(buf.substr(pos, 4));
  const std::string_view payload = buf.substr(pos + 4, len);
  if (crc32c(payload, crc32c(header)) != stored_crc) {
    note_corrupt(1);
    buffer_pos_ = start + 1;
    return true;
  }

  ++frames_ok_;
  if (seq > expected_seq_) {
    frames_gap_ += seq - expected_seq_;
    if (gap_counter_ != nullptr) {
      gap_counter_->add(seq - expected_seq_);
    }
  }
  if (seq >= expected_seq_) {
    expected_seq_ = seq + 1;
  }
  buffer_pos_ = frame_end;
  handle_payload(payload);
  return true;
}

void SessionClient::handle_payload(std::string_view payload) {
  if (payload.empty()) {
    ++frames_corrupt_;
    return;
  }
  switch (static_cast<Payload>(static_cast<unsigned char>(payload[0]))) {
    case Payload::kHello:
      handle_hello(payload.substr(1));
      return;
    case Payload::kEvent:
      handle_event(payload.substr(1));
      return;
    case Payload::kSnapshot:
      handle_snapshot(payload.substr(1));
      return;
    case Payload::kBye:
      handle_bye(payload.substr(1));
      return;
  }
  // CRC-valid but unknown kind: a protocol version mismatch, not line
  // noise; counted with the corrupt frames all the same.
  ++frames_corrupt_;
}

void SessionClient::announce_traces(const std::vector<std::string>& names) {
  if (traces_known_ || names.empty()) {
    return;
  }
  trace_names_.reserve(names.size());
  std::vector<Symbol> symbols;
  symbols.reserve(names.size());
  for (const std::string& name : names) {
    symbols.push_back(pool_.intern(name));
  }
  trace_names_ = symbols;
  traces_known_ = true;
  linearizer_.emplace(trace_names_.size(), sink_, config_.linearizer);
  if (registry_ != nullptr) {
    linearizer_->bind_metrics(*registry_);
  }
  sink_.on_traces(trace_names_);
  release_ready();
}

void SessionClient::handle_hello(std::string_view payload) {
  Cursor cursor(payload);
  const std::uint64_t n = cursor.u64();
  if (!cursor.ok() || n == 0 || n > std::numeric_limits<TraceId>::max()) {
    ++frames_corrupt_;
    return;
  }
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint64_t t = 0; t < n; ++t) {
    names.emplace_back(cursor.str());
  }
  if (!cursor.done()) {
    ++frames_corrupt_;
    return;
  }
  announce_traces(names);
}

namespace {

struct ParsedEvent {
  Event event;  ///< type/text left kEmptySymbol; views below need interning
  std::string_view type;
  std::string_view text;
  std::vector<std::uint32_t> clock;
};

bool parse_event_body(Cursor& cursor, ParsedEvent& out) {
  const std::uint64_t trace = cursor.u64();
  const std::uint64_t index = cursor.u64();
  const std::uint64_t kind = cursor.u64();
  out.type = cursor.str();
  out.text = cursor.str();
  const std::uint64_t message = cursor.u64();
  const std::uint64_t clock_size = cursor.u64();
  if (!cursor.ok() || index == 0 || clock_size == 0 ||
      clock_size > std::numeric_limits<TraceId>::max() ||
      trace >= clock_size ||
      kind > static_cast<std::uint64_t>(EventKind::kBlockedSend) ||
      index > std::numeric_limits<EventIndex>::max()) {
    return false;
  }
  out.clock.resize(clock_size);
  for (std::uint64_t s = 0; s < clock_size; ++s) {
    const std::uint64_t entry = cursor.u64();
    if (entry > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    out.clock[s] = static_cast<std::uint32_t>(entry);
  }
  if (!cursor.ok() || out.clock[trace] != index) {
    return false;
  }
  out.event.id = EventId{static_cast<TraceId>(trace),
                         static_cast<EventIndex>(index)};
  out.event.kind = static_cast<EventKind>(kind);
  out.event.message = message;
  return true;
}

}  // namespace

void SessionClient::handle_event(std::string_view payload) {
  Cursor cursor(payload);
  const std::uint64_t position = cursor.u64();
  ParsedEvent parsed;
  if (!cursor.ok() || !parse_event_body(cursor, parsed) || !cursor.done()) {
    ++frames_corrupt_;
    return;
  }
  Decoded decoded;
  decoded.event = parsed.event;
  decoded.event.type = pool_.intern(parsed.type);
  decoded.event.text = pool_.intern(parsed.text);
  decoded.clock = VectorClock(std::move(parsed.clock));
  accept_event(position, std::move(decoded));
}

void SessionClient::handle_snapshot(std::string_view payload) {
  Cursor cursor(payload);
  static_cast<void>(cursor.u64());  // request id, informational only
  const std::uint64_t n = cursor.u64();
  if (!cursor.ok() || n == 0 || n > std::numeric_limits<TraceId>::max()) {
    ++frames_corrupt_;
    return;
  }
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint64_t t = 0; t < n; ++t) {
    names.emplace_back(cursor.str());
  }
  const std::uint64_t total = cursor.u64();
  const std::uint64_t finished = cursor.u64();
  const std::uint64_t baseline = cursor.u64();
  const std::uint64_t count = cursor.u64();
  if (!cursor.ok() || finished > 1) {
    ++frames_corrupt_;
    return;
  }
  announce_traces(names);
  if (total >= total_events_) {
    total_events_ = total;
  }
  if (finished == 1) {
    total_known_ = true;
  }
  ++snapshots_;
  if (snapshot_counter_ != nullptr) {
    snapshot_counter_->add(1);
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    ParsedEvent parsed;
    if (!parse_event_body(cursor, parsed)) {
      ++frames_corrupt_;
      return;
    }
    Decoded decoded;
    decoded.event = parsed.event;
    decoded.event.type = pool_.intern(parsed.type);
    decoded.event.text = pool_.intern(parsed.text);
    decoded.clock = VectorClock(std::move(parsed.clock));
    accept_event(baseline + i, std::move(decoded));
  }
}

void SessionClient::handle_bye(std::string_view payload) {
  Cursor cursor(payload);
  const std::uint64_t total = cursor.u64();
  if (!cursor.ok() || !cursor.done()) {
    ++frames_corrupt_;
    return;
  }
  if (total >= total_events_) {
    total_events_ = total;
  }
  total_known_ = true;
}

void SessionClient::accept_event(std::uint64_t position, Decoded decoded) {
  if (position < next_release_ || decoded_.count(position) != 0) {
    ++dup_positions_;
    return;
  }
  if (free_run_ && traces_known_) {
    // Degraded mode: hand everything straight to the linearizer, which
    // buffers/sheds under its own policy.  Watermark still advances so
    // stats and resume stay meaningful.
    next_release_ = std::max(next_release_, position + 1);
    linearizer_->offer(decoded.event, std::move(decoded.clock));
    return;
  }
  decoded_.emplace(position, std::move(decoded));
  release_ready();
}

void SessionClient::release_ready() {
  if (!traces_known_) {
    return;
  }
  auto it = decoded_.find(next_release_);
  while (it != decoded_.end()) {
    Decoded decoded = std::move(it->second);
    decoded_.erase(it);
    ++next_release_;
    linearizer_->offer(decoded.event, std::move(decoded.clock));
    it = decoded_.find(next_release_);
  }
}

bool SessionClient::gap_open() const {
  if (!decoded_.empty()) {
    return true;  // positions beyond the watermark are in hand, a hole below
  }
  if (total_known_ && next_release_ < total_events_) {
    return true;  // the tail is missing (truncation / disconnect)
  }
  // No direct evidence of a hole — but a closed channel with an incomplete
  // stream means HELLO/BYE themselves were lost.
  const bool complete =
      traces_known_ && total_known_ && next_release_ >= total_events_;
  return input_done_ && !complete;
}

void SessionClient::advance_clock() {
  if (flushed_) {
    return;
  }
  if (!gap_open()) {
    if (gap_timed_) {
      ++recoveries_;
      recovery_ticks_ += ticks_ - degraded_since_;
      gap_timed_ = false;
      resync_in_flight_ = false;
      resync_attempts_ = 0;
    }
    if (free_run_ && input_done_) {
      flush_degraded();
    }
    return;
  }
  if (!gap_timed_) {
    gap_timed_ = true;
    gap_since_ = ticks_;
    degraded_since_ = ticks_;
  }
  if (free_run_) {
    if (input_done_) {
      flush_degraded();
    }
    return;
  }
  if (!resync_in_flight_) {
    // A closed channel cannot deliver the missing bytes on its own; skip
    // the grace period and ask immediately.
    if (input_done_ || ticks_ - gap_since_ >= config_.resync_grace) {
      issue_resync();
    }
    return;
  }
  if (ticks_ >= resync_deadline_) {
    if (resync_attempts_ >= config_.max_resync_attempts) {
      ++resync_failures_;
      enter_free_run();
      return;
    }
    issue_resync();
  }
}

void SessionClient::issue_resync() {
  ++resync_attempts_;
  ++resyncs_;
  if (resync_counter_ != nullptr) {
    resync_counter_->add(1);
  }
  // Exponential backoff, doubling per attempt and capped; saturating so a
  // generous attempt budget cannot overflow the shift.
  std::uint64_t backoff = std::max<std::uint64_t>(1, config_.backoff_initial);
  for (std::uint32_t i = 1; i < resync_attempts_ && backoff < config_.backoff_max;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, std::max<std::uint64_t>(1, config_.backoff_max));
  resync_deadline_ = ticks_ + backoff;
  resync_in_flight_ = true;
  transport_.request_resync(
      ResyncRequest{next_request_id_++, next_release_});
}

void SessionClient::enter_free_run() {
  free_run_ = true;
  resync_in_flight_ = false;
  drain_decoded();
  if (input_done_) {
    flush_degraded();
  }
}

void SessionClient::drain_decoded() {
  if (!traces_known_) {
    if (decoded_.empty()) {
      return;
    }
    // Every HELLO and snapshot was lost but events got through; fabricate
    // a trace table from the clock width so the stream can still complete
    // (loudly degraded).
    const std::size_t n = decoded_.begin()->second.clock.size();
    std::vector<std::string> names;
    names.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      names.push_back("?lost-trace-" + std::to_string(t));
    }
    announce_traces(names);
  }
  // Release everything we have, holes and all; the linearizer buffers
  // out-of-order remainders until the degraded flush.
  auto held = std::move(decoded_);
  decoded_.clear();
  for (auto& [position, decoded] : held) {
    next_release_ = std::max(next_release_, position + 1);
    linearizer_->offer(decoded.event, std::move(decoded.clock));
  }
}

void SessionClient::flush_degraded() {
  if (flushed_ || !free_run_) {
    return;
  }
  drain_decoded();
  if (!traces_known_) {
    // Nothing decodable ever arrived; there is nothing to flush.
    flushed_ = true;
    return;
  }
  linearizer_->shed_to(0);
  flushed_ = true;
}

bool SessionClient::done() const {
  if (flushed_) {
    return true;
  }
  return traces_known_ && total_known_ && next_release_ >= total_events_ &&
         decoded_.empty() && linearizer_.has_value() &&
         linearizer_->pending() == 0;
}

bool SessionClient::degraded() const {
  return free_run_ || resync_failures_ > 0 ||
         (linearizer_.has_value() && linearizer_->ingest_stats().sheds > 0);
}

IngestStats SessionClient::stats() const {
  IngestStats stats;
  if (linearizer_.has_value()) {
    stats = linearizer_->ingest_stats();
  }
  stats.duplicates += dup_positions_;
  stats.pending += decoded_.size();
  stats.frames_corrupt = frames_corrupt_;
  stats.frames_gap = frames_gap_;
  stats.bytes_skipped = bytes_skipped_;
  stats.resyncs = resyncs_;
  stats.snapshots = snapshots_;
  stats.resync_failures = resync_failures_;
  stats.recoveries = recoveries_;
  stats.recovery_ticks = recovery_ticks_;
  return stats;
}

// --- SessionClient checkpoint ----------------------------------------------
//
// Layout: version varint, traces_known flag + names, watermarks and
// counters, decoded-but-unreleased events, then the embedded linearizer's
// own checkpoint.  Restoring reconnects by letting the normal gap logic
// request a resync from the restored watermark.

void SessionClient::checkpoint(std::ostream& out) const {
  poet::put_varint(out, 1);  // version
  poet::put_varint(out, traces_known_ ? 1 : 0);
  if (traces_known_) {
    poet::put_varint(out, trace_names_.size());
    for (const Symbol name : trace_names_) {
      poet::put_string(out, pool_.view(name));
    }
  }
  poet::put_varint(out, next_release_);
  poet::put_varint(out, expected_seq_);
  poet::put_varint(out, total_events_);
  poet::put_varint(out, total_known_ ? 1 : 0);
  poet::put_varint(out, frames_ok_);
  poet::put_varint(out, frames_corrupt_);
  poet::put_varint(out, frames_gap_);
  poet::put_varint(out, bytes_skipped_);
  poet::put_varint(out, dup_positions_);
  poet::put_varint(out, resyncs_);
  poet::put_varint(out, snapshots_);
  poet::put_varint(out, resync_failures_);
  poet::put_varint(out, recoveries_);
  poet::put_varint(out, recovery_ticks_);
  poet::put_varint(out, decoded_.size());
  for (const auto& [position, decoded] : decoded_) {
    poet::put_varint(out, position);
    poet::put_varint(out, decoded.event.id.trace);
    poet::put_varint(out, decoded.event.id.index);
    poet::put_varint(out, static_cast<std::uint64_t>(decoded.event.kind));
    poet::put_string(out, pool_.view(decoded.event.type));
    poet::put_string(out, pool_.view(decoded.event.text));
    poet::put_varint(out, decoded.event.message);
    poet::put_varint(out, decoded.clock.size());
    for (TraceId s = 0; s < decoded.clock.size(); ++s) {
      poet::put_varint(out, decoded.clock[s]);
    }
  }
  if (traces_known_) {
    linearizer_->checkpoint(out, pool_);
  }
  if (!out) {
    throw SerializationError("write failure while checkpointing session");
  }
}

void SessionClient::restore(std::istream& in) {
  OCEP_ASSERT_MSG(ticks_ == 0 && buffer_.empty(),
                  "restore requires a fresh session client");
  if (poet::get_varint(in) != 1) {
    throw SerializationError("unsupported session checkpoint version");
  }
  const bool had_traces = poet::get_varint(in) == 1;
  if (had_traces) {
    const std::uint64_t n = poet::get_varint(in);
    if (n == 0 || n > std::numeric_limits<TraceId>::max()) {
      throw SerializationError("corrupt checkpoint: bad trace count");
    }
    trace_names_.reserve(n);
    for (std::uint64_t t = 0; t < n; ++t) {
      trace_names_.push_back(pool_.intern(poet::get_string(in)));
    }
    traces_known_ = true;
    // The sink is expected to have been restored separately (it already
    // knows the trace table), so no on_traces here.
    linearizer_.emplace(trace_names_.size(), sink_, config_.linearizer);
    if (registry_ != nullptr) {
      linearizer_->bind_metrics(*registry_);
    }
  }
  next_release_ = poet::get_varint(in);
  expected_seq_ = poet::get_varint(in);
  total_events_ = poet::get_varint(in);
  total_known_ = poet::get_varint(in) == 1;
  frames_ok_ = poet::get_varint(in);
  frames_corrupt_ = poet::get_varint(in);
  frames_gap_ = poet::get_varint(in);
  bytes_skipped_ = poet::get_varint(in);
  dup_positions_ = poet::get_varint(in);
  resyncs_ = poet::get_varint(in);
  snapshots_ = poet::get_varint(in);
  resync_failures_ = poet::get_varint(in);
  recoveries_ = poet::get_varint(in);
  recovery_ticks_ = poet::get_varint(in);
  const std::uint64_t count = poet::get_varint(in);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t position = poet::get_varint(in);
    Decoded decoded;
    const std::uint64_t trace = poet::get_varint(in);
    const std::uint64_t index = poet::get_varint(in);
    const std::uint64_t kind = poet::get_varint(in);
    if (kind > static_cast<std::uint64_t>(EventKind::kBlockedSend) ||
        index == 0 || index > std::numeric_limits<EventIndex>::max()) {
      throw SerializationError("corrupt checkpoint: bad decoded event");
    }
    decoded.event.id =
        EventId{static_cast<TraceId>(trace), static_cast<EventIndex>(index)};
    decoded.event.kind = static_cast<EventKind>(kind);
    decoded.event.type = pool_.intern(poet::get_string(in));
    decoded.event.text = pool_.intern(poet::get_string(in));
    decoded.event.message = poet::get_varint(in);
    const std::uint64_t clock_size = poet::get_varint(in);
    if (trace >= clock_size ||
        clock_size > std::numeric_limits<TraceId>::max()) {
      throw SerializationError("corrupt checkpoint: bad decoded clock");
    }
    std::vector<std::uint32_t> entries(clock_size);
    for (std::uint64_t s = 0; s < clock_size; ++s) {
      entries[s] = static_cast<std::uint32_t>(poet::get_varint(in));
    }
    decoded.clock = VectorClock(std::move(entries));
    if (!decoded_.emplace(position, std::move(decoded)).second) {
      throw SerializationError("corrupt checkpoint: duplicate position");
    }
  }
  if (had_traces) {
    linearizer_->restore(in, pool_);
  }
}

}  // namespace ocep
