// Sessionized, loss-tolerant event transport (the fault-tolerance layer on
// top of the POET wire idea, paper §V-A).
//
// The plain wire format (poet/wire.h) assumes a clean channel: one flipped
// bit desynchronizes the stream and the reader dies.  A *session* instead
// wraps every message in a self-contained frame:
//
//   marker(2) | seq varint | len varint | crc32c(4, LE) | payload
//
// The CRC covers the seq and len varints plus the payload, so corruption is
// detected per frame; the reader then scans forward to the next marker and
// keeps going.  Unlike the wire format, session payloads are independently
// decodable — events carry full vector clocks and inline attribute strings
// instead of deltas and symbol-table references, because delta encoding
// couples frames and turns one loss into a cascade.  Sessions trade bytes
// for recoverability; the loss-free dump/wire formats keep their deltas.
//
// Every event frame carries the event's global arrival position.  The
// client releases decoded events in contiguous position order, which makes
// the recovered delivery order identical to the server's arrival order —
// and therefore the representative match set identical to a clean run.
// A persistent hole in the positions (or a corrupted stream head) triggers
// the resync handshake: the client sends a RESYNC carrying its position
// watermark over the (typed, in-process) reverse channel; the server
// answers with snapshot frames — trace table, totals, and the missing
// events with full clocks, chunked to respect the frame size bound —
// re-encoded over the same lossy forward channel.  Retries use bounded
// exponential backoff with a configurable attempt budget; on exhaustion the
// client *free-runs*: it releases what it has and lets the linearizer's
// shed policy synthesize the rest, so the run completes degraded-but-
// reported, never silently diverged and never deadlocked.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "causality/vector_clock.h"
#include "common/string_pool.h"
#include "model/event.h"
#include "obs/metrics.h"
#include "poet/client.h"
#include "poet/linearizer.h"

namespace ocep {

/// Receiver of the forward byte stream (the lossy direction).  The chaos
/// harness interposes a FaultyChannel here; production would be a socket.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void write(std::string_view bytes) = 0;
};

/// A client's request to refill the stream from `next_position` onward.
struct ResyncRequest {
  std::uint64_t request_id = 0;
  std::uint64_t next_position = 0;  ///< first global position the client lacks
};

/// Reverse channel for resync requests.  Deliberately a typed in-process
/// interface, not a byte protocol: the reverse direction carries a few
/// dozen bytes per recovery and is assumed reliable (TCP-like); only the
/// high-volume forward direction gets the lossy-channel treatment.
class ResyncTransport {
 public:
  virtual ~ResyncTransport() = default;
  virtual void request_resync(const ResyncRequest& request) = 0;
};

struct SessionConfig {
  /// Upper bound on one frame's payload; longer advertised lengths are
  /// treated as corruption.  Snapshots are chunked to respect it.
  std::uint32_t max_frame_payload = 1U << 16U;
  /// Events per snapshot chunk frame.
  std::uint32_t snapshot_chunk = 64;
  /// Ticks (feed/tick calls) a position gap may persist before the client
  /// requests a resync.
  std::uint64_t resync_grace = 8;
  /// Backoff before the first resync retry, doubling per attempt.
  std::uint64_t backoff_initial = 16;
  std::uint64_t backoff_max = 1024;
  /// Resync attempts before the client gives up and free-runs.
  std::uint32_t max_resync_attempts = 8;
  /// Degradation policy of the embedded linearizer (watermarks, shed/block,
  /// placeholder type are all configured here).
  LinearizerConfig linearizer;
};

/// Server half: encodes events into session frames and answers resyncs
/// from a retained copy of the stream.  Retention is currently unbounded
/// (the whole computation); a checkpoint horizon would bound it in a
/// longer-lived deployment.
class SessionServer {
 public:
  struct Stats {
    std::uint64_t frames_written = 0;
    std::uint64_t events_written = 0;
    std::uint64_t resyncs_served = 0;
    std::uint64_t snapshot_frames = 0;
  };

  /// Emits the HELLO frame announcing `names`.  `out` and `pool` must
  /// outlive the server.
  SessionServer(ByteSink& out, const StringPool& pool,
                const std::vector<Symbol>& names, SessionConfig config = {});

  /// Streams one event (in linearization order, per-trace indexes
  /// contiguous from 1, global positions implicit and contiguous).
  void write(const Event& event, const VectorClock& clock);

  /// Emits the BYE frame carrying the final event total.
  void finish();

  /// Answers a client resync: snapshot frames with the trace table, the
  /// stream totals, and every retained event from `next_position` on.
  void handle_resync(const ResyncRequest& request);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Retained {
    Event event;
    std::vector<std::uint32_t> clock;
  };

  void emit_frame(std::string_view payload);
  void append_event_body(std::string& out, const Retained& retained) const;

  ByteSink& out_;
  const StringPool& pool_;
  SessionConfig config_;
  std::vector<Symbol> names_;
  std::vector<Retained> retained_;
  std::uint64_t next_seq_ = 0;
  bool finished_ = false;
  Stats stats_;
};

/// Client half: reassembles frames from a lossy byte stream, releases
/// events to an embedded Linearizer in global-position order, and drives
/// the resync state machine.  Feed bytes with feed(); call tick() when
/// idle so stall detection and backoff advance; finish_input() once the
/// channel is known closed.
class SessionClient {
 public:
  SessionClient(EventSink& sink, StringPool& pool, ResyncTransport& transport,
                SessionConfig config = {});

  /// Registers session + linearizer instruments (session.*, linearizer.*,
  /// including linearizer.resyncs).  Call before the first feed().
  void bind_metrics(obs::Registry& registry);

  /// Appends received bytes and processes every complete frame.
  void feed(std::string_view bytes);

  /// Advances session time without new bytes (idle poll): ages gaps,
  /// fires due resyncs, detects stalls.
  void tick();

  /// Declares the forward channel closed: any outstanding gap goes through
  /// the resync budget, then the stream is flushed (shedding if degraded).
  void finish_input();

  /// True once the trace table is known, every expected event has been
  /// released, and nothing is pending — or the degraded flush completed.
  [[nodiscard]] bool done() const;

  /// True when any fault handling changed the delivered stream or required
  /// giving up on a resync (sheds, placeholders, free-run).  A run that
  /// recovered purely via resync is NOT degraded.
  [[nodiscard]] bool degraded() const;

  /// Combined session + linearizer counters.
  [[nodiscard]] IngestStats stats() const;

  /// First global position not yet released to the sink.
  [[nodiscard]] std::uint64_t next_position() const noexcept {
    return next_release_;
  }

  /// CRC-verified frames accepted so far (wire-level accounting).
  [[nodiscard]] std::uint64_t frames_ok() const noexcept {
    return frames_ok_;
  }

  /// Serializes the ingestion state (release watermark, decoded-but-
  /// unreleased events, linearizer holds and counters) so a restarted
  /// client can resume and re-request the tail via resync.
  void checkpoint(std::ostream& out) const;
  void restore(std::istream& in);

 private:
  struct Decoded {
    Event event;
    VectorClock clock;
  };

  void process_buffer();
  bool try_parse_frame();
  void handle_payload(std::string_view payload);
  void handle_hello(std::string_view payload);
  void handle_event(std::string_view payload);
  void handle_snapshot(std::string_view payload);
  void handle_bye(std::string_view payload);
  void accept_event(std::uint64_t position, Decoded decoded);
  void announce_traces(const std::vector<std::string>& names);
  void release_ready();
  void note_corrupt(std::size_t skipped);
  [[nodiscard]] bool gap_open() const;
  void advance_clock();
  void issue_resync();
  void enter_free_run();
  void drain_decoded();
  void flush_degraded();

  EventSink& sink_;
  StringPool& pool_;
  ResyncTransport& transport_;
  SessionConfig config_;
  obs::Registry* registry_ = nullptr;
  std::optional<Linearizer> linearizer_;
  std::vector<Symbol> trace_names_;
  bool traces_known_ = false;

  std::string buffer_;
  std::size_t buffer_pos_ = 0;

  std::map<std::uint64_t, Decoded> decoded_;  // position -> event, unreleased
  std::uint64_t next_release_ = 0;
  std::uint64_t expected_seq_ = 0;
  std::uint64_t total_events_ = 0;
  bool total_known_ = false;
  bool input_done_ = false;
  bool free_run_ = false;
  bool flushed_ = false;

  // Resync state machine.
  std::uint64_t ticks_ = 0;
  std::uint64_t gap_since_ = 0;       ///< tick when the open gap appeared
  bool gap_timed_ = false;
  std::uint64_t resync_deadline_ = 0;  ///< next tick a retry may fire
  std::uint32_t resync_attempts_ = 0;
  bool resync_in_flight_ = false;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t degraded_since_ = 0;

  // Session counters (linearizer keeps its own; stats() merges).
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_corrupt_ = 0;
  std::uint64_t frames_gap_ = 0;
  std::uint64_t bytes_skipped_ = 0;
  std::uint64_t dup_positions_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t resync_failures_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t recovery_ticks_ = 0;

  obs::Counter* resync_counter_ = nullptr;
  obs::Counter* corrupt_counter_ = nullptr;
  obs::Counter* gap_counter_ = nullptr;
  obs::Counter* snapshot_counter_ = nullptr;
};

}  // namespace ocep
