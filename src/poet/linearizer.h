// Online causal-delivery queue.
//
// The POET server may observe instrumented events from the target system in
// an order that is not a linearization of the partial order (reports from
// different processes race on the wire).  The linearizer buffers such
// events and releases them to the client exactly when every causal
// predecessor has been released — the classic vector-clock delivery
// condition: event e on trace t is deliverable when
//   delivered[t] == index(e) - 1   and
//   delivered[s] >= V_e[s]  for every s != t.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "causality/vector_clock.h"
#include "model/event.h"
#include "obs/metrics.h"
#include "poet/client.h"

namespace ocep {

class Linearizer {
 public:
  /// Delivered events are forwarded to `sink`, which must outlive this.
  Linearizer(std::size_t trace_count, EventSink& sink);

  /// Attaches delivery telemetry to `registry` (linearizer.* instruments:
  /// offered/delivered/held counters, queue_depth and delivery_lag
  /// histograms, pending gauge).  Call before the first offer(); the
  /// registry must outlive this.
  void bind_metrics(obs::Registry& registry);

  /// Offers one event; delivers it (and any unblocked buffered events) if
  /// its causal predecessors have all been delivered, buffers it otherwise.
  void offer(const Event& event, VectorClock clock);

  /// Number of events buffered but not yet deliverable.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_count_; }

  /// Events delivered so far.
  [[nodiscard]] std::size_t delivered() const noexcept {
    return delivered_total_;
  }

 private:
  struct Held {
    Event event;
    VectorClock clock;
    std::uint64_t offered_at = 0;  ///< offer sequence number when buffered
  };

  [[nodiscard]] bool deliverable(const Event& event,
                                 const VectorClock& clock) const;
  void deliver(const Event& event, const VectorClock& clock);
  void drain();

  EventSink& sink_;
  std::vector<std::uint32_t> delivered_;           // per-trace high-water mark
  std::vector<std::map<EventIndex, Held>> held_;   // per-trace buffered events
  std::size_t pending_count_ = 0;
  std::size_t delivered_total_ = 0;
  std::uint64_t offered_total_ = 0;
  // Telemetry sinks (null when unbound).
  obs::Counter* offered_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* held_counter_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;   ///< pending after each offer
  obs::Histogram* delivery_lag_ = nullptr;  ///< offers waited while buffered
  obs::Gauge* pending_gauge_ = nullptr;
};

}  // namespace ocep
