// Online causal-delivery queue with bounded degradation.
//
// The POET server may observe instrumented events from the target system in
// an order that is not a linearization of the partial order (reports from
// different processes race on the wire).  The linearizer buffers such
// events and releases them to the client exactly when every causal
// predecessor has been released — the classic vector-clock delivery
// condition: event e on trace t is deliverable when
//   delivered[t] == index(e) - 1   and
//   delivered[s] >= V_e[s]  for every s != t.
//
// On a lossy channel predecessors may never arrive, so unbounded buffering
// turns one lost frame into an unbounded stall.  This linearizer therefore
// degrades on purpose, under explicit policy:
//
//   * duplicates — a re-offered (trace, index) pair (retransmission,
//     overlapping snapshot) is counted and dropped instead of corrupting
//     the delivery order; `strict` mode keeps the old assert for tests.
//   * watermarks — when pending exceeds `high_watermark` the policy runs:
//     kShed synthesizes placeholder events for the missing predecessors
//     until pending falls to `low_watermark`; kBlock refuses the offer and
//     leaves recovery (a resync) to the caller.
//   * stalls — a trace whose buffered head has waited more than
//     `stall_horizon` offers is stalled; under kShed its gap is filled.
//
// Shed placeholders are real deliverable events (kind kLocal, type
// `shed_type`, clock extending the trace's last delivered row), so every
// downstream invariant — store append asserts included — still holds; the
// degradation is visible in the stats, never silent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <utility>
#include <vector>

#include "causality/vector_clock.h"
#include "model/event.h"
#include "obs/metrics.h"
#include "poet/client.h"

namespace ocep {

/// What to do when held events exceed the high watermark (or a stall is
/// detected): synthesize the missing predecessors, or refuse new input
/// until the caller resolves the gap (typically via a session resync).
enum class OverflowPolicy : std::uint8_t { kBlock, kShed };

struct LinearizerConfig {
  /// Pending events above this trigger the overflow policy; 0 = unbounded
  /// (the pre-fault-tolerance behaviour).
  std::size_t high_watermark = 0;
  /// Shed target once the high watermark trips; defaults to half the high
  /// watermark when left 0.
  std::size_t low_watermark = 0;
  /// Offers a buffered head may wait before its trace counts as stalled;
  /// 0 disables stall detection.
  std::uint64_t stall_horizon = 0;
  OverflowPolicy policy = OverflowPolicy::kShed;
  /// Assert on duplicate offers (legacy behaviour, death-testable) instead
  /// of counting and dropping them.
  bool strict = false;
  /// Type attribute stamped on synthesized placeholder events.
  Symbol shed_type = kEmptySymbol;
};

/// Outcome of one offer(), so transport layers can react (e.g. trigger a
/// resync on kBlocked instead of spinning).
enum class OfferResult : std::uint8_t {
  kDelivered,  ///< delivered immediately (and possibly unblocked others)
  kBuffered,   ///< held until its predecessors arrive
  kDuplicate,  ///< already delivered or already held; dropped
  kBlocked,    ///< refused: buffer at high watermark under kBlock policy
};

/// Ingestion health counters, shared vocabulary between the linearizer and
/// the session layer (which adds the wire-level fields).  Snapshot-style:
/// cheap to copy, embedded in PipelineStats by Monitor::stats().
struct IngestStats {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t sheds = 0;         ///< placeholder events synthesized
  std::uint64_t stall_events = 0;  ///< not-stalled -> stalled transitions
  std::uint64_t blocked = 0;       ///< offers refused under kBlock
  std::uint64_t pending = 0;
  std::uint64_t max_pending = 0;
  std::uint64_t stalled_traces = 0;  ///< currently stalled
  // Session/wire-level (filled by SessionClient, zero otherwise).
  std::uint64_t frames_corrupt = 0;
  std::uint64_t frames_gap = 0;
  std::uint64_t bytes_skipped = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t resync_failures = 0;
  std::uint64_t recoveries = 0;      ///< gaps healed (resync or shed)
  std::uint64_t recovery_ticks = 0;  ///< offers spent in degraded state
};

class StringPool;

class Linearizer {
 public:
  /// Delivered events are forwarded to `sink`, which must outlive this.
  Linearizer(std::size_t trace_count, EventSink& sink,
             LinearizerConfig config = {});

  /// Attaches delivery telemetry to `registry` (linearizer.* instruments:
  /// offered/delivered/held/duplicate/shed counters, queue_depth and
  /// delivery_lag histograms, pending and stalled_traces gauges).  Call
  /// before the first offer(); the registry must outlive this.
  void bind_metrics(obs::Registry& registry);

  /// Offers one event; delivers it (and any unblocked buffered events) if
  /// its causal predecessors have all been delivered, buffers it otherwise.
  /// Duplicates and watermark overflow degrade per the config instead of
  /// corrupting state; the result says what happened.
  OfferResult offer(const Event& event, VectorClock clock);

  /// Force-delivers buffered events by synthesizing missing predecessors
  /// until at most `target_pending` events remain held.  Exposed so
  /// transports can flush after a failed resync or at end of stream.
  void shed_to(std::size_t target_pending);

  /// Number of events buffered but not yet deliverable.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_count_; }

  /// Events delivered so far (placeholders included).
  [[nodiscard]] std::size_t delivered() const noexcept {
    return delivered_total_;
  }

  /// Per-trace delivery watermark (index of the last delivered event).
  [[nodiscard]] EventIndex delivered_through(TraceId trace) const {
    return delivered_[trace];
  }

  /// Snapshot of the linearizer-owned counters (session fields are zero).
  [[nodiscard]] IngestStats ingest_stats() const;

  /// Serializes watermarks, held events, and counters.  Restore with
  /// restore() on a freshly constructed linearizer with the same trace
  /// count; symbols travel as strings so the pools may differ.
  void checkpoint(std::ostream& out, const StringPool& pool) const;
  void restore(std::istream& in, StringPool& pool);

 private:
  struct Held {
    Event event;
    VectorClock clock;
    std::uint64_t offered_at = 0;  ///< offer sequence number when buffered
  };

  [[nodiscard]] bool deliverable(const Event& event,
                                 const VectorClock& clock) const;
  void deliver(const Event& event, const VectorClock& clock);
  void drain();
  void synthesize_through(TraceId trace, EventIndex index);
  void fill_trace_gaps();
  bool fill_cross_trace_needs();
  void update_stalls();
  void apply_policy();
  void update_gauges();

  EventSink& sink_;
  LinearizerConfig config_;
  std::vector<std::uint32_t> delivered_;           // per-trace high-water mark
  std::vector<std::map<EventIndex, Held>> held_;   // per-trace buffered events
  std::vector<VectorClock> last_clock_;  // last delivered row per trace
  std::vector<bool> stalled_;
  std::size_t stalled_count_ = 0;
  std::size_t pending_count_ = 0;
  std::size_t delivered_total_ = 0;
  std::uint64_t offered_total_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t sheds_ = 0;
  std::uint64_t stall_events_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t max_pending_ = 0;
  // Telemetry sinks (null when unbound).
  obs::Counter* offered_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* held_counter_ = nullptr;
  obs::Counter* duplicate_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;   ///< pending after each offer
  obs::Histogram* delivery_lag_ = nullptr;  ///< offers waited while buffered
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* stalled_gauge_ = nullptr;
};

}  // namespace ocep
