#include "poet/event_store.h"

#include <algorithm>
#include <mutex>

#include "common/assert.h"

namespace ocep {
namespace {

/// Value of a sparse column at 0-based event position `pos`, considering
/// only the first `count` changes (the caller's published prefix): the
/// last change at or before pos.
template <typename ChangeVector>
std::uint32_t column_at(const ChangeVector& column, std::size_t count,
                        std::uint32_t pos) noexcept {
  std::size_t lo = 0, hi = count;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (column[mid].pos <= pos) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : column[lo - 1].value;
}

}  // namespace

EventStore::EventStore(EventStore&& other) noexcept
    : storage_(other.storage_),
      concurrent_(other.concurrent_),
      traces_(std::move(other.traces_)),
      arrival_order_(std::move(other.arrival_order_)),
      partners_(std::move(other.partners_)),
      total_events_(other.total_events_) {
  // Moves are writer-side operations: no reader may exist during them, so
  // plain copies of the counters are safe.  The mutex is freshly made.
  visible_count_.store(other.visible_count_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  other.total_events_ = 0;
  other.visible_count_.store(0, std::memory_order_relaxed);
}

EventStore& EventStore::operator=(EventStore&& other) noexcept {
  if (this != &other) {
    storage_ = other.storage_;
    concurrent_ = other.concurrent_;
    traces_ = std::move(other.traces_);
    arrival_order_ = std::move(other.arrival_order_);
    partners_ = std::move(other.partners_);
    total_events_ = other.total_events_;
    visible_count_.store(other.visible_count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    other.total_events_ = 0;
    other.visible_count_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

TraceId EventStore::add_trace(Symbol name) {
  OCEP_ASSERT_MSG(total_events_ == 0,
                  "all traces must be registered before the first event");
  traces_.emplace_back();
  traces_.back().name = name;
  return static_cast<TraceId>(traces_.size() - 1);
}

Symbol EventStore::trace_name(TraceId t) const { return trace_ref(t).name; }

void EventStore::append(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT(event.id.trace < traces_.size());
  OCEP_ASSERT(clock.size() == traces_.size());
  Trace& trace = traces_[event.id.trace];
  OCEP_ASSERT_MSG(event.id.index == trace.events.size() + 1,
                  "events on a trace must be appended in order");
  OCEP_ASSERT_MSG(clock[event.id.trace] == event.id.index,
                  "own clock component must equal the event index");
#ifndef NDEBUG
  for (TraceId s = 0; s < traces_.size(); ++s) {
    // Timestamps along one trace are component-wise non-decreasing (the
    // least-successor binary search depends on this) ...
    if (!trace.events.empty()) {
      OCEP_ASSERT(clock.entries()[s] >=
                  clock_entry(EventId{event.id.trace, event.id.index - 1},
                              s));
    }
    // ... and appends across traces form a linearization: every causal
    // predecessor is already stored.
    if (s != event.id.trace) {
      OCEP_ASSERT_MSG(
          clock.entries()[s] <= traces_[s].events.size(),
          "append order must be a linearization of the partial order");
    }
  }
#endif

  const auto pos = static_cast<std::uint32_t>(trace.events.size());
  if (storage_ == ClockStorage::kDense) {
    for (const std::uint32_t entry : clock.entries()) {
      trace.clocks.push_back(entry);
    }
  } else {
    if (trace.columns.empty()) {
      // First append on this trace: all traces are registered by now, so
      // the column table's final size is known.  Readers only reach the
      // columns through an event of this trace, whose publication below
      // orders this allocation before their reads.
      trace.columns.resize(traces_.size());
      trace.last_row.assign(traces_.size(), 0);
    }
    for (TraceId s = 0; s < traces_.size(); ++s) {
      const std::uint32_t value = clock[s];
      OCEP_ASSERT_MSG(value >= trace.last_row[s],
                      "clock entries never regress along a trace");
      if (s != event.id.trace && value != trace.last_row[s]) {
        trace.columns[s].push_back(Change{pos, value});
        trace.last_row[s] = value;
      }
    }
    trace.last_row[event.id.trace] = event.id.index;
  }

  // Timestamps first, then the event, then the arrival slot: each
  // push_back release-publishes, so a reader that sees the event (or its
  // arrival position) also sees its timestamps.
  trace.events.push_back(event);
  arrival_order_.push_back(event.id);
  if (event.message != kNoMessage) {
    if (concurrent_) {
      const std::unique_lock<std::shared_mutex> guard(partners_mutex_);
      Partners& partners = partners_[event.message];
      if (event.kind == EventKind::kSend) {
        partners.send = event.id;
      } else if (event.kind == EventKind::kReceive) {
        partners.receive = event.id;
      }
    } else {
      Partners& partners = partners_[event.message];
      if (event.kind == EventKind::kSend) {
        partners.send = event.id;
      } else if (event.kind == EventKind::kReceive) {
        partners.receive = event.id;
      }
    }
  }
  ++total_events_;
  // The explicit publish point: everything written above happens-before
  // any reader's acquire-load of visible_count().
  visible_count_.store(total_events_, std::memory_order_release);
}

EventIndex EventStore::trace_size(TraceId t) const {
  return static_cast<EventIndex>(trace_ref(t).events.visible_size());
}

const Event& EventStore::event(EventId id) const {
  const Trace& trace = trace_ref(id.trace);
  OCEP_ASSERT(id.index >= 1 && id.index <= trace.events.visible_size());
  return trace.events[id.index - 1];
}

std::uint32_t EventStore::clock_entry(EventId e, TraceId s) const {
  OCEP_ASSERT(s < traces_.size());
  const Trace& trace = trace_ref(e.trace);
  OCEP_ASSERT(e.index >= 1 && e.index <= trace.events.visible_size());
  if (s == e.trace) {
    return e.index;
  }
  if (storage_ == ClockStorage::kDense) {
    return trace.clocks[(e.index - 1) * traces_.size() + s];
  }
  // e is visible on its trace, so the column table was allocated (and
  // published) no later than e itself.
  return column_at(trace.columns[s], trace.columns[s].visible_size(),
                   e.index - 1);
}

VectorClock EventStore::clock(EventId e) const {
  std::vector<std::uint32_t> entries(traces_.size(), 0);
  if (storage_ == ClockStorage::kDense) {
    const Trace& trace = trace_ref(e.trace);
    OCEP_ASSERT(e.index >= 1 && e.index <= trace.events.visible_size());
    const std::size_t stride = traces_.size();
    const std::size_t row = (e.index - 1) * stride;
    for (std::size_t s = 0; s < stride; ++s) {
      entries[s] = trace.clocks[row + s];
    }
  } else {
    for (TraceId s = 0; s < traces_.size(); ++s) {
      entries[s] = clock_entry(e, s);
    }
  }
  return VectorClock(std::move(entries));
}

bool EventStore::happens_before(EventId a, EventId b) const {
  if (a == b) {
    return false;
  }
  if (a.trace == b.trace) {
    return a.index < b.index;
  }
  return clock_entry(b, a.trace) >= a.index;
}

Relation EventStore::relate(EventId a, EventId b) const {
  if (a == b) {
    return Relation::kEqual;
  }
  if (happens_before(a, b)) {
    return Relation::kBefore;
  }
  if (happens_before(b, a)) {
    return Relation::kAfter;
  }
  return Relation::kConcurrent;
}

EventIndex EventStore::greatest_predecessor(EventId e, TraceId t) const {
  OCEP_ASSERT(t < traces_.size());
  if (t == e.trace) {
    return e.index - 1;  // may be kNoEvent
  }
  // V_e[t] counts the events of t known to (i.e. happening before) e.
  return clock_entry(e, t);
}

EventIndex EventStore::least_successor(EventId e, TraceId t) const {
  const Trace& trace = trace_ref(t);
  const std::size_t visible = trace.events.visible_size();
  if (t == e.trace) {
    return e.index < visible ? e.index + 1 : kInfiniteIndex;
  }
  // Find the first event x on t with V_x[e.trace] >= index(e); the column
  // V[.][e.trace] along trace t is non-decreasing.  Readers may see fewer
  // events than the writer has appended; that only makes the answer
  // kInfiniteIndex / larger, which is the sound direction (the successor
  // "does not exist yet" from the reader's point of view).
  if (visible == 0) {
    return kInfiniteIndex;
  }
  if (storage_ == ClockStorage::kDense) {
    const std::size_t stride = traces_.size();
    std::size_t lo = 0;           // candidates in [lo, hi)
    std::size_t hi = visible;     // 0-based positions
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (trace.clocks[mid * stride + e.trace] >= e.index) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo == visible) {
      return kInfiniteIndex;
    }
    return static_cast<EventIndex>(lo + 1);
  }
  // Sparse: the first change point whose value reaches e.index is the
  // successor (the entry is constant between changes).  visible > 0
  // guarantees the column table exists and was published.
  const ChangeColumn& column = trace.columns[e.trace];
  std::size_t lo = 0, hi = column.visible_size();
  const std::size_t count = hi;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (column[mid].value >= e.index) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == count) {
    return kInfiniteIndex;
  }
  const EventIndex successor = static_cast<EventIndex>(column[lo].pos + 1);
  // The change list can run ahead of the published event count only on the
  // writer thread (within append); clamp for readers.
  return successor <= visible ? successor : kInfiniteIndex;
}

EventId EventStore::send_of(std::uint64_t message) const {
  if (concurrent_) {
    const std::shared_lock<std::shared_mutex> guard(partners_mutex_);
    auto it = partners_.find(message);
    return it != partners_.end() ? it->second.send : EventId{};
  }
  auto it = partners_.find(message);
  return it != partners_.end() ? it->second.send : EventId{};
}

EventId EventStore::receive_of(std::uint64_t message) const {
  if (concurrent_) {
    const std::shared_lock<std::shared_mutex> guard(partners_mutex_);
    auto it = partners_.find(message);
    return it != partners_.end() ? it->second.receive : EventId{};
  }
  auto it = partners_.find(message);
  return it != partners_.end() ? it->second.receive : EventId{};
}

std::size_t EventStore::approx_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const Trace& trace : traces_) {
    bytes += trace.events.capacity() * sizeof(Event) +
             trace.clocks.capacity() * sizeof(std::uint32_t) +
             trace.last_row.capacity() * sizeof(std::uint32_t);
    for (const ChangeColumn& column : trace.columns) {
      bytes += column.capacity() * sizeof(Change);
    }
  }
  bytes += arrival_order_.capacity() * sizeof(EventId);
  return bytes;
}

const EventStore::Trace& EventStore::trace_ref(TraceId t) const {
  OCEP_ASSERT(t < traces_.size());
  return traces_[t];
}

}  // namespace ocep
