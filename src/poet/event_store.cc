#include "poet/event_store.h"

#include <algorithm>

#include "common/assert.h"

namespace ocep {
namespace {

/// Value of a sparse column at 0-based event position `pos`: the last
/// change at or before pos (templated so the private Change type can be
/// passed from member functions without widening its access).
template <typename ChangeVector>
std::uint32_t column_at(const ChangeVector& column,
                        std::uint32_t pos) noexcept {
  std::size_t lo = 0, hi = column.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (column[mid].pos <= pos) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : column[lo - 1].value;
}

}  // namespace

TraceId EventStore::add_trace(Symbol name) {
  OCEP_ASSERT_MSG(total_events_ == 0,
                  "all traces must be registered before the first event");
  traces_.push_back(Trace{name, {}, {}, {}, {}});
  return static_cast<TraceId>(traces_.size() - 1);
}

Symbol EventStore::trace_name(TraceId t) const { return trace_ref(t).name; }

void EventStore::append(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT(event.id.trace < traces_.size());
  OCEP_ASSERT(clock.size() == traces_.size());
  Trace& trace = traces_[event.id.trace];
  OCEP_ASSERT_MSG(event.id.index == trace.events.size() + 1,
                  "events on a trace must be appended in order");
  OCEP_ASSERT_MSG(clock[event.id.trace] == event.id.index,
                  "own clock component must equal the event index");
#ifndef NDEBUG
  for (TraceId s = 0; s < traces_.size(); ++s) {
    // Timestamps along one trace are component-wise non-decreasing (the
    // least-successor binary search depends on this) ...
    if (!trace.events.empty()) {
      OCEP_ASSERT(clock.entries()[s] >=
                  clock_entry(EventId{event.id.trace, event.id.index - 1},
                              s));
    }
    // ... and appends across traces form a linearization: every causal
    // predecessor is already stored.
    if (s != event.id.trace) {
      OCEP_ASSERT_MSG(
          clock.entries()[s] <= traces_[s].events.size(),
          "append order must be a linearization of the partial order");
    }
  }
#endif

  const auto pos = static_cast<std::uint32_t>(trace.events.size());
  if (storage_ == ClockStorage::kDense) {
    trace.clocks.insert(trace.clocks.end(), clock.entries().begin(),
                        clock.entries().end());
  } else {
    if (trace.columns.empty()) {
      trace.columns.assign(traces_.size(), {});
      trace.last_row.assign(traces_.size(), 0);
    }
    for (TraceId s = 0; s < traces_.size(); ++s) {
      const std::uint32_t value = clock[s];
      OCEP_ASSERT_MSG(value >= trace.last_row[s],
                      "clock entries never regress along a trace");
      if (s != event.id.trace && value != trace.last_row[s]) {
        trace.columns[s].push_back(Change{pos, value});
        trace.last_row[s] = value;
      }
    }
    trace.last_row[event.id.trace] = event.id.index;
  }

  trace.events.push_back(event);
  arrival_order_.push_back(event.id);
  if (event.message != kNoMessage) {
    Partners& partners = partners_[event.message];
    if (event.kind == EventKind::kSend) {
      partners.send = event.id;
    } else if (event.kind == EventKind::kReceive) {
      partners.receive = event.id;
    }
  }
  ++total_events_;
}

EventIndex EventStore::trace_size(TraceId t) const {
  return static_cast<EventIndex>(trace_ref(t).events.size());
}

const Event& EventStore::event(EventId id) const {
  const Trace& trace = trace_ref(id.trace);
  OCEP_ASSERT(id.index >= 1 && id.index <= trace.events.size());
  return trace.events[id.index - 1];
}

std::uint32_t EventStore::clock_entry(EventId e, TraceId s) const {
  OCEP_ASSERT(s < traces_.size());
  const Trace& trace = trace_ref(e.trace);
  OCEP_ASSERT(e.index >= 1 && e.index <= trace.events.size());
  if (s == e.trace) {
    return e.index;
  }
  if (storage_ == ClockStorage::kDense) {
    return trace.clocks[(e.index - 1) * traces_.size() + s];
  }
  if (trace.columns.empty()) {
    return 0;
  }
  return column_at(trace.columns[s], e.index - 1);
}

VectorClock EventStore::clock(EventId e) const {
  std::vector<std::uint32_t> entries(traces_.size(), 0);
  if (storage_ == ClockStorage::kDense) {
    const Trace& trace = trace_ref(e.trace);
    OCEP_ASSERT(e.index >= 1 && e.index <= trace.events.size());
    const std::uint32_t* row =
        trace.clocks.data() + (e.index - 1) * traces_.size();
    entries.assign(row, row + traces_.size());
  } else {
    for (TraceId s = 0; s < traces_.size(); ++s) {
      entries[s] = clock_entry(e, s);
    }
  }
  return VectorClock(std::move(entries));
}

bool EventStore::happens_before(EventId a, EventId b) const {
  if (a == b) {
    return false;
  }
  if (a.trace == b.trace) {
    return a.index < b.index;
  }
  return clock_entry(b, a.trace) >= a.index;
}

Relation EventStore::relate(EventId a, EventId b) const {
  if (a == b) {
    return Relation::kEqual;
  }
  if (happens_before(a, b)) {
    return Relation::kBefore;
  }
  if (happens_before(b, a)) {
    return Relation::kAfter;
  }
  return Relation::kConcurrent;
}

EventIndex EventStore::greatest_predecessor(EventId e, TraceId t) const {
  OCEP_ASSERT(t < traces_.size());
  if (t == e.trace) {
    return e.index - 1;  // may be kNoEvent
  }
  // V_e[t] counts the events of t known to (i.e. happening before) e.
  return clock_entry(e, t);
}

EventIndex EventStore::least_successor(EventId e, TraceId t) const {
  const Trace& trace = trace_ref(t);
  if (t == e.trace) {
    return e.index < trace.events.size() ? e.index + 1 : kInfiniteIndex;
  }
  // Find the first event x on t with V_x[e.trace] >= index(e); the column
  // V[.][e.trace] along trace t is non-decreasing.
  if (storage_ == ClockStorage::kDense) {
    const std::size_t stride = traces_.size();
    const std::uint32_t* base = trace.clocks.data() + e.trace;
    std::size_t lo = 0;                    // candidates in [lo, hi)
    std::size_t hi = trace.events.size();  // 0-based positions
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (base[mid * stride] >= e.index) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo == trace.events.size()) {
      return kInfiniteIndex;
    }
    return static_cast<EventIndex>(lo + 1);
  }
  // Sparse: the first change point whose value reaches e.index is the
  // successor (the entry is constant between changes).
  if (trace.columns.empty()) {
    return kInfiniteIndex;
  }
  const std::vector<Change>& column = trace.columns[e.trace];
  std::size_t lo = 0, hi = column.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (column[mid].value >= e.index) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == column.size()) {
    return kInfiniteIndex;
  }
  return static_cast<EventIndex>(column[lo].pos + 1);
}

EventId EventStore::send_of(std::uint64_t message) const {
  auto it = partners_.find(message);
  return it != partners_.end() ? it->second.send : EventId{};
}

EventId EventStore::receive_of(std::uint64_t message) const {
  auto it = partners_.find(message);
  return it != partners_.end() ? it->second.receive : EventId{};
}

std::size_t EventStore::approx_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const Trace& trace : traces_) {
    bytes += trace.events.capacity() * sizeof(Event) +
             trace.clocks.capacity() * sizeof(std::uint32_t) +
             trace.last_row.capacity() * sizeof(std::uint32_t);
    for (const std::vector<Change>& column : trace.columns) {
      bytes += column.capacity() * sizeof(Change);
    }
  }
  return bytes;
}

const EventStore::Trace& EventStore::trace_ref(TraceId t) const {
  OCEP_ASSERT(t < traces_.size());
  return traces_[t];
}

}  // namespace ocep
