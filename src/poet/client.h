// POET client interface (paper §V-A).
//
// A client connects to the POET server and receives the arriving events in
// a linearization of the partial order: a total order in which every event
// appears after all of its causal predecessors.  OCEP's monitor is one such
// client; so are the baselines.
#pragma once

#include <vector>

#include "causality/vector_clock.h"
#include "common/string_pool.h"
#include "model/event.h"

namespace ocep {

/// Receiver of a linearized event stream.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Announces the trace table (one name per TraceId) before any event.
  /// Default: ignore.
  virtual void on_traces(const std::vector<Symbol>& names) {
    static_cast<void>(names);
  }

  /// Called once per event, in a linearization of the partial order.  The
  /// clock reference is only valid for the duration of the call.
  virtual void on_event(const Event& event, const VectorClock& clock) = 0;
};

}  // namespace ocep
