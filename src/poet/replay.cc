#include "poet/replay.h"

namespace ocep {

void for_each_linearized(
    const EventStore& store,
    const std::function<void(const Event&, const VectorClock&)>& fn) {
  // Appends are required to form a linearization (see EventStore::append),
  // so replay is a single pass over the arrival order.
  for (const EventId id : store.arrival_order()) {
    fn(store.event(id), store.clock(id));
  }
}

void replay(const EventStore& store, EventSink& sink) {
  std::vector<Symbol> names;
  names.reserve(store.trace_count());
  for (TraceId t = 0; t < store.trace_count(); ++t) {
    names.push_back(store.trace_name(t));
  }
  sink.on_traces(names);
  for_each_linearized(store, [&sink](const Event& event,
                                     const VectorClock& clock) {
    sink.on_event(event, clock);
  });
}

}  // namespace ocep
