// POET-equivalent event store (paper §V-A).
//
// The core information stored by POET is a set of events grouped by traces
// plus the partial-order relationships among them.  Two timestamp storage
// backends are provided:
//
//  * kDense — per trace a row-major matrix (one row per event, one column
//    per trace): O(1) timestamp retrieval (the "future POET plugin" the
//    paper asks for in §VI) and O(log) least-successor column searches.
//    Memory: events x traces x 4 bytes.
//  * kSparse — per (trace, source) column only the *changes* are kept
//    (an entry changes only at receive events that learned something new),
//    so memory scales with the communication volume instead of
//    events x traces.  Timestamp reads become O(log changes); the
//    non-decreasing-column property still gives least-successor searches
//    directly on the change list.
//
// Both backends answer every causal query identically (property-tested);
// pick kSparse for long runs with many traces.
//
// Concurrency / publication contract
// ----------------------------------
// The store supports one writer thread (the delivery thread calling
// append()) and any number of reader threads (the matching pipeline's
// workers).  All storage is append-only and address-stable (StableVector
// chunks never move), and the append path has an explicit publish point:
// append() finishes by release-storing the new total into an atomic
// visible count.  A reader that acquire-loads visible_count() — directly,
// or transitively through the pipeline's ring hand-off — may freely query
// any event in the published prefix; no lock is taken on any read path.
// Causal queries are monotone: extra published events only tighten
// least_successor, never change the relation between stored events, so
// readers lagging behind the writer still compute identical answers.
// The partner map is the one hash-based structure; its accesses are
// guarded by a shared mutex when set_concurrent(true) was called (before
// any thread is spawned) and unguarded in single-threaded use.
#pragma once

#include <atomic>
#include <cstdint>
#include <iterator>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "causality/vector_clock.h"
#include "common/stable_vector.h"
#include "common/string_pool.h"
#include "model/event.h"
#include "model/ids.h"

namespace ocep {

/// Sentinel index meaning "no such event" for least_successor: there is no
/// event on the queried trace that happens after the argument.
inline constexpr EventIndex kInfiniteIndex = 0xffffffffU;

enum class ClockStorage : std::uint8_t { kDense, kSparse };

class EventStore {
 public:
  explicit EventStore(ClockStorage storage = ClockStorage::kDense)
      : storage_(storage) {}

  EventStore(const EventStore&) = delete;
  EventStore& operator=(const EventStore&) = delete;
  EventStore(EventStore&& other) noexcept;
  EventStore& operator=(EventStore&& other) noexcept;

  [[nodiscard]] ClockStorage storage() const noexcept { return storage_; }

  /// Declares that reader threads will query the store while the writer
  /// appends.  Must be called before any reader thread exists; turns on
  /// locking of the partner map (all other read paths are lock-free).
  void set_concurrent(bool concurrent) noexcept { concurrent_ = concurrent; }

  /// Registers a trace.  All traces must be added before the first event so
  /// that every stored timestamp has one entry per trace.
  TraceId add_trace(Symbol name);

  [[nodiscard]] std::size_t trace_count() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] Symbol trace_name(TraceId t) const;

  /// Appends an event with its timestamp.  `event.id.trace` must be a
  /// registered trace, `event.id.index` the next index on it, and
  /// `clock[trace]` equal to the index (Fidge/Mattern invariant).
  ///
  /// Appends across traces must form a linearization of the partial order
  /// (each event after all its causal predecessors); this is how every
  /// producer — the simulator, reload, the POET wire — naturally emits, and
  /// it lets replay() run in O(1) per event.  Checked in debug builds.
  ///
  /// Writer thread only.  The event is published (visible to concurrent
  /// readers) when append() returns.
  void append(const Event& event, const VectorClock& clock);

  /// Read-only view of the order in which events were appended: a
  /// linearization of the partial order.  Sized at the published count, so
  /// it is safe to take on a reader thread.
  class ArrivalView {
   public:
    class Iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = EventId;
      using difference_type = std::ptrdiff_t;
      using pointer = const EventId*;
      using reference = const EventId&;

      Iterator(const StableVector<EventId>* order, std::size_t pos)
          : order_(order), pos_(pos) {}
      reference operator*() const { return (*order_)[pos_]; }
      Iterator& operator++() {
        ++pos_;
        return *this;
      }
      Iterator operator++(int) {
        Iterator copy = *this;
        ++pos_;
        return copy;
      }
      friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.pos_ == b.pos_;
      }
      friend bool operator!=(const Iterator& a, const Iterator& b) {
        return a.pos_ != b.pos_;
      }

     private:
      const StableVector<EventId>* order_;
      std::size_t pos_;
    };

    ArrivalView(const StableVector<EventId>& order, std::size_t count)
        : order_(&order), count_(count) {}
    [[nodiscard]] Iterator begin() const { return Iterator(order_, 0); }
    [[nodiscard]] Iterator end() const { return Iterator(order_, count_); }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] EventId operator[](std::size_t pos) const {
      return (*order_)[pos];
    }

   private:
    const StableVector<EventId>* order_;
    std::size_t count_;
  };

  [[nodiscard]] ArrivalView arrival_order() const noexcept {
    return ArrivalView(arrival_order_, arrival_order_.visible_size());
  }

  /// The id of the event at arrival position `pos` (0-based); `pos` must be
  /// below event_count() on the writer or visible_count() on a reader.
  [[nodiscard]] EventId arrival(std::uint64_t pos) const {
    return arrival_order_[static_cast<std::size_t>(pos)];
  }

  /// Writer's view of the total.
  [[nodiscard]] std::size_t event_count() const noexcept {
    return total_events_;
  }

  /// The publish point's acquire side: every arrival position below the
  /// returned count is safe to read from this thread.
  [[nodiscard]] std::uint64_t visible_count() const noexcept {
    return visible_count_.load(std::memory_order_acquire);
  }

  [[nodiscard]] EventIndex trace_size(TraceId t) const;

  [[nodiscard]] const Event& event(EventId id) const;

  /// e's knowledge of trace s: V_e[s].  O(1) dense, O(log) sparse.
  [[nodiscard]] std::uint32_t clock_entry(EventId e, TraceId s) const;

  /// Materialized copy of e's timestamp.
  [[nodiscard]] VectorClock clock(EventId e) const;

  // --- Causal queries -----------------------------------------------------

  [[nodiscard]] bool happens_before(EventId a, EventId b) const;
  [[nodiscard]] Relation relate(EventId a, EventId b) const;

  /// Greatest predecessor GP(e, t): the most-recent event on trace t that
  /// happens before e; kNoEvent (0) when no event on t precedes e.
  [[nodiscard]] EventIndex greatest_predecessor(EventId e, TraceId t) const;

  /// Least successor LS(e, t): the least-recent event on trace t that
  /// happens after e; kInfiniteIndex when none exists (yet).
  [[nodiscard]] EventIndex least_successor(EventId e, TraceId t) const;

  /// Partner lookup for point-to-point messages (the pattern language's
  /// '<->' operator): the send / receive event carrying message id `m`.
  /// Returns an id with index == kNoEvent when not (yet) stored.
  [[nodiscard]] EventId send_of(std::uint64_t message) const;
  [[nodiscard]] EventId receive_of(std::uint64_t message) const;

  /// Approximate resident size, for the memory-bound experiments.
  [[nodiscard]] std::size_t approx_bytes() const noexcept;

 private:
  /// One change point of a sparse column: from event `pos` (0-based) on,
  /// the entry is `value` (until the next change).
  struct Change {
    std::uint32_t pos = 0;
    std::uint32_t value = 0;
  };

  /// Sparse columns start tiny (16 elements): most (trace, source) pairs
  /// see few changes, and the chunk geometry doubles for the busy ones.
  using ChangeColumn = StableVector<Change, 4>;

  struct Trace {
    Symbol name = kEmptySymbol;
    StableVector<Event> events;
    /// kDense: row-major timestamps, event j (0-based) occupies
    /// [j * stride, (j + 1) * stride).
    StableVector<std::uint32_t> clocks;
    /// kSparse: per source trace, the change list of column V[.][source];
    /// plus the last full row for O(n) append-time delta detection.
    std::vector<ChangeColumn> columns;
    std::vector<std::uint32_t> last_row;
  };

  [[nodiscard]] const Trace& trace_ref(TraceId t) const;

  struct Partners {
    EventId send;
    EventId receive;
  };

  ClockStorage storage_ = ClockStorage::kDense;
  bool concurrent_ = false;
  std::vector<Trace> traces_;
  StableVector<EventId> arrival_order_;
  std::unordered_map<std::uint64_t, Partners> partners_;
  mutable std::shared_mutex partners_mutex_;
  std::size_t total_events_ = 0;
  std::atomic<std::uint64_t> visible_count_{0};
};

}  // namespace ocep
