// POET-equivalent event store (paper §V-A).
//
// The core information stored by POET is a set of events grouped by traces
// plus the partial-order relationships among them.  Two timestamp storage
// backends are provided:
//
//  * kDense — per trace a row-major matrix (one row per event, one column
//    per trace): O(1) timestamp retrieval (the "future POET plugin" the
//    paper asks for in §VI) and O(log) least-successor column searches.
//    Memory: events x traces x 4 bytes.
//  * kSparse — per (trace, source) column only the *changes* are kept
//    (an entry changes only at receive events that learned something new),
//    so memory scales with the communication volume instead of
//    events x traces.  Timestamp reads become O(log changes); the
//    non-decreasing-column property still gives least-successor searches
//    directly on the change list.
//
// Both backends answer every causal query identically (property-tested);
// pick kSparse for long runs with many traces.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "causality/vector_clock.h"
#include "common/string_pool.h"
#include "model/event.h"
#include "model/ids.h"

namespace ocep {

/// Sentinel index meaning "no such event" for least_successor: there is no
/// event on the queried trace that happens after the argument.
inline constexpr EventIndex kInfiniteIndex = 0xffffffffU;

enum class ClockStorage : std::uint8_t { kDense, kSparse };

class EventStore {
 public:
  explicit EventStore(ClockStorage storage = ClockStorage::kDense)
      : storage_(storage) {}

  EventStore(const EventStore&) = delete;
  EventStore& operator=(const EventStore&) = delete;
  EventStore(EventStore&&) = default;
  EventStore& operator=(EventStore&&) = default;

  [[nodiscard]] ClockStorage storage() const noexcept { return storage_; }

  /// Registers a trace.  All traces must be added before the first event so
  /// that every stored timestamp has one entry per trace.
  TraceId add_trace(Symbol name);

  [[nodiscard]] std::size_t trace_count() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] Symbol trace_name(TraceId t) const;

  /// Appends an event with its timestamp.  `event.id.trace` must be a
  /// registered trace, `event.id.index` the next index on it, and
  /// `clock[trace]` equal to the index (Fidge/Mattern invariant).
  ///
  /// Appends across traces must form a linearization of the partial order
  /// (each event after all its causal predecessors); this is how every
  /// producer — the simulator, reload, the POET wire — naturally emits, and
  /// it lets replay() run in O(1) per event.  Checked in debug builds.
  void append(const Event& event, const VectorClock& clock);

  /// The order in which events were appended: a linearization of the
  /// partial order.
  [[nodiscard]] std::span<const EventId> arrival_order() const noexcept {
    return arrival_order_;
  }

  [[nodiscard]] std::size_t event_count() const noexcept {
    return total_events_;
  }
  [[nodiscard]] EventIndex trace_size(TraceId t) const;

  [[nodiscard]] const Event& event(EventId id) const;

  /// e's knowledge of trace s: V_e[s].  O(1) dense, O(log) sparse.
  [[nodiscard]] std::uint32_t clock_entry(EventId e, TraceId s) const;

  /// Materialized copy of e's timestamp.
  [[nodiscard]] VectorClock clock(EventId e) const;

  // --- Causal queries -----------------------------------------------------

  [[nodiscard]] bool happens_before(EventId a, EventId b) const;
  [[nodiscard]] Relation relate(EventId a, EventId b) const;

  /// Greatest predecessor GP(e, t): the most-recent event on trace t that
  /// happens before e; kNoEvent (0) when no event on t precedes e.
  [[nodiscard]] EventIndex greatest_predecessor(EventId e, TraceId t) const;

  /// Least successor LS(e, t): the least-recent event on trace t that
  /// happens after e; kInfiniteIndex when none exists (yet).
  [[nodiscard]] EventIndex least_successor(EventId e, TraceId t) const;

  /// Partner lookup for point-to-point messages (the pattern language's
  /// '<->' operator): the send / receive event carrying message id `m`.
  /// Returns an id with index == kNoEvent when not (yet) stored.
  [[nodiscard]] EventId send_of(std::uint64_t message) const;
  [[nodiscard]] EventId receive_of(std::uint64_t message) const;

  /// Approximate resident size, for the memory-bound experiments.
  [[nodiscard]] std::size_t approx_bytes() const noexcept;

 private:
  /// One change point of a sparse column: from event `pos` (0-based) on,
  /// the entry is `value` (until the next change).
  struct Change {
    std::uint32_t pos = 0;
    std::uint32_t value = 0;
  };

  struct Trace {
    Symbol name = kEmptySymbol;
    std::vector<Event> events;
    /// kDense: row-major timestamps, event j (0-based) occupies
    /// [j * stride, (j + 1) * stride).
    std::vector<std::uint32_t> clocks;
    /// kSparse: per source trace, the change list of column V[.][source];
    /// plus the last full row for O(n) append-time delta detection.
    std::vector<std::vector<Change>> columns;
    std::vector<std::uint32_t> last_row;
  };

  [[nodiscard]] const Trace& trace_ref(TraceId t) const;

  struct Partners {
    EventId send;
    EventId receive;
  };

  ClockStorage storage_ = ClockStorage::kDense;
  std::vector<Trace> traces_;
  std::vector<EventId> arrival_order_;
  std::unordered_map<std::uint64_t, Partners> partners_;
  std::size_t total_events_ = 0;
};

}  // namespace ocep
