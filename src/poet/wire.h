// POET wire protocol: streaming instrumented events over a byte channel
// (paper §V-A: "a client can connect to the POET server in a way that it
// receives the arriving events in a linearization of the partial order").
//
// Unlike the dump format, the wire is incremental: the writer does not know
// the computation in advance.  Frames:
//
//   HELLO   magic "OCEPWIR1", trace count, trace-name symbol ids
//   SYM     (id, bytes)      — announces a string the first time it is used
//   EVENT   trace, kind, type-id, text-id, message, clock delta
//   BYE     clean end of stream
//
// Event timestamps are delta-encoded against the same trace's previous
// event, exactly like the dump, so the per-event cost is proportional to
// what a receive actually changed.  The reader re-interns strings into its
// own pool and delivers to any EventSink — a Monitor, a store builder, a
// Linearizer front end.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/string_pool.h"
#include "poet/client.h"
#include "poet/event_store.h"

namespace ocep {

class WireWriter {
 public:
  /// Writes the HELLO frame.  `names` is the trace table; the pool must be
  /// the one the events' symbols come from.  The stream must outlive the
  /// writer.
  WireWriter(std::ostream& out, const StringPool& pool,
             const std::vector<Symbol>& names);

  /// Streams one event (in linearization order, per-trace indexes
  /// contiguous from 1).
  void write(const Event& event, const VectorClock& clock);

  /// Writes the BYE frame.  Further writes are invalid.
  void finish();

  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return events_;
  }

 private:
  std::uint32_t symbol_id(Symbol sym);

  std::ostream& out_;
  const StringPool& pool_;
  std::size_t traces_;
  std::unordered_map<std::uint32_t, std::uint32_t> symbol_ids_;
  std::uint32_t next_symbol_ = 0;
  std::vector<VectorClock> prev_clock_;
  std::vector<EventIndex> next_index_;
  std::uint64_t events_ = 0;
  bool finished_ = false;
};

class WireReader {
 public:
  /// Reads the HELLO frame (throws SerializationError if absent) and
  /// announces the trace table to `sink`.
  WireReader(std::istream& in, StringPool& pool, EventSink& sink);

  /// Reads frames until one event has been delivered; returns false on a
  /// clean BYE.  Throws SerializationError on malformed input.
  bool read_one();

  /// Drains the stream to BYE; returns the number of events delivered.
  std::uint64_t read_all();

  [[nodiscard]] std::size_t trace_count() const noexcept {
    return clocks_.size();
  }

  /// Frames fully decoded so far (the HELLO header is frame 0).  The next
  /// SerializationError reports this + 1 as its frame index.
  [[nodiscard]] std::uint64_t frames_read() const noexcept {
    return frames_read_;
  }

 private:
  Symbol symbol_at(std::uint64_t id) const;

  std::istream& in_;
  StringPool& pool_;
  EventSink& sink_;
  std::vector<Symbol> symbols_;  // wire id -> local symbol
  std::vector<VectorClock> clocks_;
  std::vector<EventIndex> next_index_;
  std::uint64_t frames_read_ = 0;
  bool done_ = false;
};

}  // namespace ocep
