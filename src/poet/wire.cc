#include "poet/wire.h"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "common/assert.h"
#include "common/error.h"
#include "poet/varint.h"

namespace ocep {
namespace {

using poet::get_string;
using poet::get_varint;
using poet::put_string;
using poet::put_varint;

constexpr char kMagic[8] = {'O', 'C', 'E', 'P', 'W', 'I', 'R', '1'};

enum class Frame : std::uint8_t { kSym = 1, kEvent = 2, kBye = 3 };

}  // namespace

// --- WireWriter -------------------------------------------------------------

WireWriter::WireWriter(std::ostream& out, const StringPool& pool,
                       const std::vector<Symbol>& names)
    : out_(out), pool_(pool), traces_(names.size()) {
  OCEP_ASSERT_MSG(traces_ > 0, "wire needs at least one trace");
  out_.write(kMagic, sizeof(kMagic));
  // Symbol frames may need to precede their first use, including in the
  // HELLO trace table, so resolve the names first.
  std::vector<std::uint32_t> ids;
  ids.reserve(names.size());
  for (const Symbol name : names) {
    ids.push_back(symbol_id(name));
  }
  put_varint(out_, traces_);
  for (const std::uint32_t id : ids) {
    put_varint(out_, id);
  }
  prev_clock_.assign(traces_, VectorClock(traces_));
  next_index_.assign(traces_, 1);
}

std::uint32_t WireWriter::symbol_id(Symbol sym) {
  auto [it, inserted] =
      symbol_ids_.emplace(static_cast<std::uint32_t>(sym), next_symbol_);
  if (inserted) {
    put_varint(out_, static_cast<std::uint64_t>(Frame::kSym));
    put_varint(out_, next_symbol_);
    put_string(out_, pool_.view(sym));
    ++next_symbol_;
  }
  return it->second;
}

void WireWriter::write(const Event& event, const VectorClock& clock) {
  OCEP_ASSERT_MSG(!finished_, "write after finish()");
  OCEP_ASSERT(event.id.trace < traces_);
  OCEP_ASSERT_MSG(event.id.index == next_index_[event.id.trace],
                  "wire events must be contiguous per trace");
  const std::uint32_t type_id = symbol_id(event.type);
  const std::uint32_t text_id = symbol_id(event.text);

  put_varint(out_, static_cast<std::uint64_t>(Frame::kEvent));
  put_varint(out_, event.id.trace);
  put_varint(out_, static_cast<std::uint64_t>(event.kind));
  put_varint(out_, type_id);
  put_varint(out_, text_id);
  put_varint(out_, event.message);

  VectorClock& prev = prev_clock_[event.id.trace];
  std::uint32_t changed = 0;
  for (TraceId s = 0; s < traces_; ++s) {
    if (s != event.id.trace && clock[s] != prev[s]) {
      ++changed;
    }
  }
  put_varint(out_, changed);
  for (TraceId s = 0; s < traces_; ++s) {
    if (s != event.id.trace && clock[s] != prev[s]) {
      put_varint(out_, s);
      put_varint(out_, clock[s]);
      prev.raise(s, clock[s]);
    }
  }
  prev.raise(event.id.trace, clock[event.id.trace]);
  ++next_index_[event.id.trace];
  ++events_;
  if (!out_) {
    throw SerializationError("write failure on the wire");
  }
}

void WireWriter::finish() {
  OCEP_ASSERT_MSG(!finished_, "finish() called twice");
  finished_ = true;
  put_varint(out_, static_cast<std::uint64_t>(Frame::kBye));
  out_.flush();
}

// --- WireReader -------------------------------------------------------------

WireReader::WireReader(std::istream& in, StringPool& pool, EventSink& sink)
    : in_(in), pool_(pool), sink_(sink) {
  const std::int64_t header_start = poet::stream_pos(in_);
  try {
    char magic[sizeof(kMagic)];
    in_.read(magic, sizeof(magic));
    if (in_.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw SerializationError("not an OCEP wire stream (bad magic)");
    }
    // HELLO may be preceded by SYM frames for the trace names — but the
    // writer emits them before the trace table *inside* the header block, so
    // consume frames until the trace count arrives.  The writer's layout is:
    // [SYM frames for names] then the plain varint trace table.  SYM frames
    // are tagged, the table is not, so read tags as long as they are kSym.
    std::uint64_t first = get_varint(in_);
    while (first == static_cast<std::uint64_t>(Frame::kSym)) {
      const std::uint64_t id = get_varint(in_);
      if (id != symbols_.size()) {
        throw SerializationError("corrupt wire: symbol ids must be dense");
      }
      symbols_.push_back(pool_.intern(get_string(in_)));
      first = get_varint(in_);
    }
    const std::uint64_t n64 = first;
    if (n64 == 0 || n64 > std::numeric_limits<TraceId>::max()) {
      throw SerializationError("corrupt wire: bad trace count");
    }
    const auto n = static_cast<TraceId>(n64);
    std::vector<Symbol> names;
    names.reserve(n);
    for (TraceId t = 0; t < n; ++t) {
      names.push_back(symbol_at(get_varint(in_)));
    }
    clocks_.assign(n, VectorClock(n));
    next_index_.assign(n, 1);
    sink_.on_traces(names);
  } catch (const SerializationError& e) {
    poet::rethrow_positioned(e, header_start, 0);
  }
}

Symbol WireReader::symbol_at(std::uint64_t id) const {
  if (id >= symbols_.size()) {
    throw SerializationError("corrupt wire: symbol id out of range");
  }
  return symbols_[id];
}

bool WireReader::read_one() {
  if (done_) {
    return false;
  }
  while (true) {
    // Captured per frame so a decode failure can report where the frame
    // started, not wherever the stream cursor happened to die.
    const std::int64_t frame_start = poet::stream_pos(in_);
    try {
      const std::uint64_t tag = get_varint(in_);
      switch (static_cast<Frame>(tag)) {
        case Frame::kSym: {
          const std::uint64_t id = get_varint(in_);
          if (id != symbols_.size()) {
            throw SerializationError("corrupt wire: symbol ids must be dense");
          }
          symbols_.push_back(pool_.intern(get_string(in_)));
          ++frames_read_;
          continue;
        }
        case Frame::kBye:
          done_ = true;
          ++frames_read_;
          return false;
        case Frame::kEvent: {
          const std::uint64_t t64 = get_varint(in_);
          if (t64 >= clocks_.size()) {
            throw SerializationError("corrupt wire: trace id out of range");
          }
          const auto t = static_cast<TraceId>(t64);
          Event event;
          event.id = EventId{t, next_index_[t]++};
          const std::uint64_t kind = get_varint(in_);
          if (kind > static_cast<std::uint64_t>(EventKind::kBlockedSend)) {
            throw SerializationError("corrupt wire: bad event kind");
          }
          event.kind = static_cast<EventKind>(kind);
          event.type = symbol_at(get_varint(in_));
          event.text = symbol_at(get_varint(in_));
          event.message = get_varint(in_);

          VectorClock& clock = clocks_[t];
          const std::uint64_t changed = get_varint(in_);
          if (changed >= clocks_.size()) {
            throw SerializationError("corrupt wire: clock delta too wide");
          }
          for (std::uint64_t c = 0; c < changed; ++c) {
            const std::uint64_t s = get_varint(in_);
            const std::uint64_t value = get_varint(in_);
            if (s >= clocks_.size() || s == t ||
                value > std::numeric_limits<std::uint32_t>::max() ||
                value < clock[static_cast<TraceId>(s)] ||
                value >= next_index_[s]) {
              throw SerializationError("corrupt wire: bad clock delta entry");
            }
            clock.raise(static_cast<TraceId>(s),
                        static_cast<std::uint32_t>(value));
          }
          clock.tick(t);
          ++frames_read_;
          sink_.on_event(event, clock);
          return true;
        }
        default:
          throw SerializationError("corrupt wire: unknown frame tag");
      }
    } catch (const SerializationError& e) {
      poet::rethrow_positioned(e, frame_start,
                               static_cast<std::int64_t>(frames_read_ + 1));
    }
  }
}

std::uint64_t WireReader::read_all() {
  std::uint64_t delivered = 0;
  while (read_one()) {
    ++delivered;
  }
  return delivered;
}

}  // namespace ocep
