// The primitive event: the smallest building block of the framework
// (paper §III-A).  An event is a state transition of interest in the target
// application, described by the 3-tuple [process, type, text]; the process
// is implied by the trace the event occurs on.
#pragma once

#include <cstdint>

#include "common/string_pool.h"
#include "model/ids.h"

namespace ocep {

/// What an event does to the causal structure.
enum class EventKind : std::uint8_t {
  kLocal,        ///< internal state transition, no message involved
  kSend,         ///< message departure; partners with exactly one kReceive
  kReceive,      ///< message arrival; merges the sender's clock
  kBlockedSend,  ///< observation that a blocking send could not buffer
};

/// True for events that carry causal information across traces.  Used by
/// the leaf-history redundancy elimination (§VI): two events on one trace
/// with no communication event between them have identical causal
/// relationships with events on all other traces.
constexpr bool is_communication(EventKind kind) noexcept {
  return kind == EventKind::kSend || kind == EventKind::kReceive;
}

/// Sentinel for "event carries no message".
inline constexpr std::uint64_t kNoMessage = 0;

/// A primitive event.  Attribute strings are interned in the monitor's
/// StringPool; the vector timestamp lives in the event store, not here.
struct Event {
  EventId id;
  EventKind kind = EventKind::kLocal;
  Symbol type = kEmptySymbol;  ///< event-class type attribute
  Symbol text = kEmptySymbol;  ///< free-form text attribute
  /// Message identity for kSend/kReceive/kBlockedSend: the send and the
  /// receive of one point-to-point message share the same non-zero id.
  /// This realizes the partner operator (A <-> B) exactly.
  std::uint64_t message = kNoMessage;
};

}  // namespace ocep
