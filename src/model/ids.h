// Identifiers for traces and events.
//
// Following POET's data model (Kunz et al., 1997), a *trace* is any entity
// with sequential behaviour — a process, a thread, or a passive entity such
// as a semaphore or a communication channel.  Events on one trace are
// totally ordered; an event is globally identified by (trace, index).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace ocep {

/// Dense 0-based trace number.
using TraceId = std::uint32_t;

/// 1-based position of an event on its trace.  Index 0 is reserved to mean
/// "no event" (e.g. "no greatest predecessor on this trace").
using EventIndex = std::uint32_t;

inline constexpr EventIndex kNoEvent = 0;

/// Globally unique event identifier.
struct EventId {
  TraceId trace = 0;
  EventIndex index = kNoEvent;

  friend constexpr auto operator<=>(const EventId&, const EventId&) = default;
};

}  // namespace ocep

template <>
struct std::hash<ocep::EventId> {
  std::size_t operator()(const ocep::EventId& id) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(id.trace) << 32) | id.index;
    // SplitMix64 finalizer: cheap and well mixed.
    std::uint64_t z = packed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
