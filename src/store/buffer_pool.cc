#include "store/buffer_pool.h"

#include <utility>

#include "common/error.h"

namespace ocep::store {

namespace {

/// Charged footprint of one resident frame: the decoded entries plus a
/// fixed overhead for the index/ring bookkeeping around them.
constexpr std::uint64_t kFrameOverheadBytes = 128;

std::uint64_t frame_bytes(const SpanPayload& span) {
  return kFrameOverheadBytes +
         span.entries.size() *
             sizeof(std::pair<std::uint64_t, std::uint64_t>);
}

}  // namespace

const SpanPayload* BufferPool::acquire(const std::string& tenant,
                                       const SpanKey& key,
                                       const TenantStore& store) {
  const FrameKey frame_key{tenant, key};
  if (const auto it = frames_.find(frame_key); it != frames_.end()) {
    stats_.hits += 1;
    it->second.referenced = true;
    if (it->second.pins++ == 0) {
      stats_.pinned += 1;
    }
    return &it->second.span;
  }
  stats_.misses += 1;
  SpanPayload span;
  try {
    if (!store.has_span(tenant, key)) {
      stats_.load_errors += 1;
      return nullptr;
    }
    span = store.read_span(tenant, key);
  } catch (const StoreError&) {
    stats_.load_errors += 1;
    return nullptr;
  }
  Frame frame;
  frame.bytes = frame_bytes(span);
  frame.span = std::move(span);
  frame.pins = 1;
  const auto [it, inserted] = frames_.emplace(frame_key, std::move(frame));
  it->second.ring_pos = ring_.insert(ring_.end(), frame_key);
  stats_.frames += 1;
  stats_.bytes += it->second.bytes;
  stats_.pinned += 1;
  evict_past_budget();
  return &it->second.span;
}

void BufferPool::unpin(const std::string& tenant, const SpanKey& key) {
  const auto it = frames_.find(FrameKey{tenant, key});
  if (it == frames_.end() || it->second.pins == 0) {
    return;
  }
  if (--it->second.pins == 0) {
    stats_.pinned -= 1;
  }
}

void BufferPool::drop_frame(std::map<FrameKey, Frame>::iterator it) {
  stats_.frames -= 1;
  stats_.bytes -= it->second.bytes;
  if (it->second.pins > 0) {
    stats_.pinned -= 1;
  }
  if (hand_ == it->second.ring_pos) {
    ++hand_;
  }
  ring_.erase(it->second.ring_pos);
  frames_.erase(it);
}

void BufferPool::invalidate(const std::string& tenant, const SpanKey& key) {
  if (const auto it = frames_.find(FrameKey{tenant, key});
      it != frames_.end()) {
    drop_frame(it);
  }
}

void BufferPool::invalidate_tenant(const std::string& tenant) {
  for (auto it = frames_.lower_bound(FrameKey{tenant, SpanKey{}});
       it != frames_.end() && it->first.tenant == tenant;) {
    drop_frame(it++);
  }
}

void BufferPool::evict_past_budget() {
  // One full CLOCK lap clears every reference bit; after two laps with no
  // victim everything left is pinned and the pool overshoots its budget.
  std::size_t swept = 0;
  const std::size_t sweep_limit = ring_.size() * 2;
  while (stats_.bytes > budget_bytes_ && !ring_.empty() &&
         swept < sweep_limit) {
    if (hand_ == ring_.end()) {
      hand_ = ring_.begin();
    }
    const auto it = frames_.find(*hand_);
    ++swept;
    if (it->second.pins > 0) {
      ++hand_;
      continue;
    }
    if (it->second.referenced) {
      it->second.referenced = false;
      ++hand_;
      continue;
    }
    drop_frame(it);
    stats_.evictions += 1;
  }
}

}  // namespace ocep::store
