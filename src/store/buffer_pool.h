// Fixed-budget read cache between the matcher and the segment log: the
// frames a deep search faults spilled leaf-history spans through.
//
// Each frame caches one decoded span record, keyed by the matcher's
// fingerprint {tenant, pattern, leaf, trace, seq}.  The pool never owns
// log positions — the TenantStore span index stays the source of truth
// for where a span's record lives, so compaction can relocate records
// without invalidating resident frames (a miss re-resolves through the
// store, and every disk read re-checks the frame CRC in read_payload).
//
// Eviction is CLOCK-style: frames sit on a ring with a reference bit;
// the hand clears bits until it finds an unreferenced, unpinned frame.
// Pinned frames (in use by an in-flight observe) are never evicted; when
// everything is pinned the pool overshoots its budget rather than fail.
//
// Thread model: one owner thread (the pool lives on its reactor shard,
// next to the store it reads from).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "store/tenant_store.h"

namespace ocep::store {

struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< loads from the log (or failed loads)
  std::uint64_t evictions = 0;
  std::uint64_t load_errors = 0;  ///< absent or corrupt span on fault
  std::uint64_t frames = 0;       ///< resident frames right now
  std::uint64_t bytes = 0;        ///< resident charged bytes right now
  std::uint64_t pinned = 0;       ///< frames pinned right now
};

class BufferPool {
 public:
  explicit BufferPool(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the span's decoded payload, pinned against eviction — pair
  /// every successful acquire with an unpin().  Loads through `store` on
  /// a miss; nullptr when the store has no such span or the record fails
  /// its CRC/decode (counted in load_errors).
  [[nodiscard]] const SpanPayload* acquire(const std::string& tenant,
                                           const SpanKey& key,
                                           const TenantStore& store);
  void unpin(const std::string& tenant, const SpanKey& key);

  /// Drops one frame (the span was released from the store for good).
  void invalidate(const std::string& tenant, const SpanKey& key);
  /// Drops every frame of a tenant (migration away, tenant close).
  void invalidate_tenant(const std::string& tenant);

  [[nodiscard]] const BufferPoolStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t budget_bytes() const noexcept {
    return budget_bytes_;
  }

 private:
  struct FrameKey {
    std::string tenant;
    SpanKey span;
    friend auto operator<=>(const FrameKey&, const FrameKey&) = default;
  };
  struct Frame {
    SpanPayload span;
    std::uint64_t bytes = 0;
    std::uint32_t pins = 0;
    bool referenced = true;  ///< CLOCK ref bit
    std::list<FrameKey>::iterator ring_pos;
  };

  void evict_past_budget();
  void drop_frame(std::map<FrameKey, Frame>::iterator it);

  std::uint64_t budget_bytes_;
  std::map<FrameKey, Frame> frames_;
  std::list<FrameKey> ring_;  ///< CLOCK order; hand_ sweeps circularly
  std::list<FrameKey>::iterator hand_ = ring_.end();
  BufferPoolStats stats_;
};

}  // namespace ocep::store
